// Benchmark harness: one testing.B benchmark per paper table/figure (see
// DESIGN.md §5 for the index), plus ablation benches for the design
// choices DESIGN.md calls out. Simulation work is measured in ns/op as
// usual; *virtual device time* — the quantity the paper's §V reports —
// is attached as custom metrics (vsec/op, vms/op), and headline quality
// metrics (BER, distinguishable bits) are attached where the figure is
// about quality rather than time.
//
// Run: go test -bench=. -benchmem
package flashmark_test

import (
	"testing"
	"time"

	flashmark "github.com/flashmark/flashmark"
	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/ecc"
	"github.com/flashmark/flashmark/internal/experiment"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func mustDevice(b *testing.B, seed uint64) flashmark.Device {
	b.Helper()
	dev, err := flashmark.NewDevice(flashmark.PartSmallSim(), seed)
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func mustImprint(b *testing.B, dev flashmark.Device, wm []uint64, npe int) {
	b.Helper()
	if err := flashmark.Imprint(dev, 0, wm, flashmark.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig4Characterize measures one full characterization sweep
// (paper Fig. 3 procedure producing one Fig. 4 curve) on a 20 K segment.
func BenchmarkFig4Characterize(b *testing.B) {
	dev := mustDevice(b, 0xB401)
	zeros := make([]uint64, dev.Geometry().WordsPerSegment())
	mustImprint(b, dev, zeros, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := flashmark.Characterize(dev, 0, flashmark.CharacterizeOptions{Step: 4 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := flashmark.AllErasedTime(points); !ok {
			b.Fatal("sweep did not complete")
		}
	}
}

// BenchmarkFig5Detect measures the one-round stress detection (Fig. 5).
func BenchmarkFig5Detect(b *testing.B) {
	dev := mustDevice(b, 0xB501)
	zeros := make([]uint64, dev.Geometry().WordsPerSegment())
	mustImprint(b, dev, zeros, 50_000)
	cells := dev.Geometry().CellsPerSegment()
	b.ResetTimer()
	var programmed int
	for i := 0; i < b.N; i++ {
		var err error
		programmed, err = flashmark.DetectStress(dev, 0, 24*time.Microsecond, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(programmed)/float64(cells)*100, "%programmed")
}

// BenchmarkFig6Trace measures the per-cycle imprint trace (Fig. 6).
func BenchmarkFig6Trace(b *testing.B) {
	cfg := experiment.Config{Fast: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9BER measures one single-read watermark extraction (the
// Fig. 9 primitive) and reports its BER at the calibrated operating point.
func BenchmarkFig9BER(b *testing.B) {
	dev := mustDevice(b, 0xB901)
	wm := flashmark.ReferenceWatermark(dev.Geometry().WordsPerSegment())
	mustImprint(b, dev, wm, 60_000)
	b.ResetTimer()
	var ber float64
	for i := 0; i < b.N; i++ {
		got, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 24 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		ber = flashmark.BER(got, wm, 16)
	}
	b.ReportMetric(100*ber, "BER%")
}

// BenchmarkFig10Replicas measures extraction plus 7-way majority decode
// of a replicated watermark (Fig. 10).
func BenchmarkFig10Replicas(b *testing.B) {
	dev := mustDevice(b, 0xBA01)
	segWords := dev.Geometry().WordsPerSegment()
	payload := flashmark.ReferenceWatermark(segWords / 7)
	img, err := flashmark.Replicate(payload, 7, segWords)
	if err != nil {
		b.Fatal(err)
	}
	mustImprint(b, dev, img, 50_000)
	b.ResetTimer()
	var residual int
	for i := 0; i < b.N; i++ {
		extracted, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 26 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		voted, err := flashmark.MajorityDecode(extracted, len(payload), 7, 16)
		if err != nil {
			b.Fatal(err)
		}
		residual = flashmark.BitErrors(voted, payload, 16)
	}
	b.ReportMetric(float64(residual), "residual-bits")
}

// BenchmarkFig11Replication measures replica-voted extraction at each
// replica count of Fig. 11 and reports the achieved BER.
func BenchmarkFig11Replication(b *testing.B) {
	for _, reps := range []int{3, 5, 7} {
		b.Run(itoa(reps)+"replicas", func(b *testing.B) {
			dev := mustDevice(b, 0xBB00+uint64(reps))
			segWords := dev.Geometry().WordsPerSegment()
			payload := flashmark.ReferenceWatermark(segWords / reps)
			img, err := flashmark.Replicate(payload, reps, segWords)
			if err != nil {
				b.Fatal(err)
			}
			mustImprint(b, dev, img, 40_000)
			b.ResetTimer()
			var ber float64
			for i := 0; i < b.N; i++ {
				extracted, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 24 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				voted, err := flashmark.MajorityDecode(extracted, len(payload), reps, 16)
				if err != nil {
					b.Fatal(err)
				}
				ber = flashmark.BER(voted, payload, 16)
			}
			b.ReportMetric(100*ber, "BER%")
		})
	}
}

// BenchmarkImprintTimeBaseline measures a 40 K imprint with nominal
// erases and reports the virtual tester time (paper §V: 1380 s).
func BenchmarkImprintTimeBaseline(b *testing.B) {
	benchImprintTime(b, false, 1380)
}

// BenchmarkImprintTimeAccelerated measures a 40 K imprint with the
// premature-erase-exit procedure (paper §V: 387 s, ~3.5x faster).
func BenchmarkImprintTimeAccelerated(b *testing.B) {
	benchImprintTime(b, true, 387)
}

func benchImprintTime(b *testing.B, accelerated bool, paperSec float64) {
	wm := flashmark.ReferenceWatermark(flashmark.PartSmallSim().Geometry.WordsPerSegment())
	b.ResetTimer()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := mustDevice(b, 0xBC00+uint64(i))
		b.StartTimer()
		start := dev.Clock().Now()
		if err := flashmark.Imprint(dev, 0, wm, flashmark.ImprintOptions{NPE: 40_000, Accelerated: accelerated}); err != nil {
			b.Fatal(err)
		}
		virtual = dev.Clock().Now() - start
	}
	b.ReportMetric(virtual.Seconds(), "vsec/op")
	b.ReportMetric(paperSec, "paper-vsec")
}

// BenchmarkExtractTime measures the full verification extraction
// (3 reads, host readout) and reports virtual time (paper §V: ~170 ms).
func BenchmarkExtractTime(b *testing.B) {
	dev := mustDevice(b, 0xBD01)
	wm := flashmark.ReferenceWatermark(dev.Geometry().WordsPerSegment())
	mustImprint(b, dev, wm, 40_000)
	b.ResetTimer()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		start := dev.Clock().Now()
		if _, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{
			TPEW: 25 * time.Microsecond, Reads: 3, HostReadout: true,
		}); err != nil {
			b.Fatal(err)
		}
		virtual = dev.Clock().Now() - start
	}
	b.ReportMetric(virtual.Seconds()*1000, "vms/op")
	b.ReportMetric(170, "paper-vms")
}

// BenchmarkSupplyChainVerify measures one full incoming-inspection
// verification (TAB-SUPPLY's per-chip cost).
func BenchmarkSupplyChainVerify(b *testing.B) {
	key := []byte("k")
	factory := flashmark.FactoryConfig{Fab: flashmark.NORFab(flashmark.PartSmallSim()), Codec: flashmark.Codec{Key: key}}
	dev, err := flashmark.Fabricate(flashmark.ClassGenuineAccept, factory, 0xBE01, 42)
	if err != nil {
		b.Fatal(err)
	}
	v := &flashmark.Verifier{Codec: flashmark.Codec{Key: key}, Manufacturer: "TC"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := v.Verify(dev)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != flashmark.VerdictGenuine {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblateMajorityReads sweeps the AnalyzeSegment read count N and
// reports the achieved single-extraction BER: the cost/benefit of the
// majority-read noise filter.
func BenchmarkAblateMajorityReads(b *testing.B) {
	for _, reads := range []int{1, 3, 5, 7} {
		b.Run(itoa(reads)+"reads", func(b *testing.B) {
			dev := mustDevice(b, 0xBF01)
			wm := flashmark.ReferenceWatermark(dev.Geometry().WordsPerSegment())
			mustImprint(b, dev, wm, 60_000)
			b.ResetTimer()
			var ber float64
			for i := 0; i < b.N; i++ {
				got, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 24 * time.Microsecond, Reads: reads})
				if err != nil {
					b.Fatal(err)
				}
				ber = flashmark.BER(got, wm, 16)
			}
			b.ReportMetric(100*ber, "BER%")
		})
	}
}

// BenchmarkAblateFusedDecode compares plain per-replica majority voting
// against the fused decode that also uses the balanced-code complement
// cells, reporting residual payload errors for each.
func BenchmarkAblateFusedDecode(b *testing.B) {
	codec := wmcode.Codec{Key: []byte("k")}
	payload, err := codec.Encode(wmcode.Payload{Manufacturer: "TC", DieID: 1, Status: wmcode.StatusAccept})
	if err != nil {
		b.Fatal(err)
	}
	dev := mustDevice(b, 0xC001)
	segWords := dev.Geometry().WordsPerSegment()
	img, err := flashmark.Replicate(payload, 7, segWords)
	if err != nil {
		b.Fatal(err)
	}
	mustImprint(b, dev, img, 50_000)
	extracted, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 25 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain-majority", func(b *testing.B) {
		var errsN int
		for i := 0; i < b.N; i++ {
			voted, err := flashmark.MajorityDecode(extracted, len(payload), 7, 16)
			if err != nil {
				b.Fatal(err)
			}
			errsN = flashmark.BitErrors(voted, payload, 16)
		}
		b.ReportMetric(float64(errsN), "residual-bits")
	})
	b.Run("fused", func(b *testing.B) {
		views, err := flashmark.ReplicaViews(extracted, len(payload), 7)
		if err != nil {
			b.Fatal(err)
		}
		var bad int
		for i := 0; i < b.N; i++ {
			got, _, err := codec.DecodeReplicas(views)
			if err != nil {
				b.Fatal(err)
			}
			reenc, err := codec.Encode(got)
			if err != nil {
				b.Fatal(err)
			}
			bad = flashmark.BitErrors(reenc, payload, 16)
		}
		b.ReportMetric(float64(bad), "residual-bits")
	})
}

// BenchmarkAblateEraseWear sweeps the erase-only wear fraction γ — the
// model's second-most sensitive constant — and reports the achieved
// single-read BER at the 40 K operating point.
func BenchmarkAblateEraseWear(b *testing.B) {
	for _, gamma := range []float64{0, 0.0625, 0.25} {
		name := "gamma0"
		switch gamma {
		case 0.0625:
			name = "gamma1_16"
		case 0.25:
			name = "gamma1_4"
		}
		b.Run(name, func(b *testing.B) {
			part := mcu.PartSmallSim()
			params := floatgate.DefaultParams()
			params.EraseOnlyWear = gamma
			part.Params = params
			dev, err := mcu.NewDevice(part, 0xC101)
			if err != nil {
				b.Fatal(err)
			}
			wm := core.ReferenceWatermark(part.Geometry.WordsPerSegment())
			if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: 40_000, Accelerated: true}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var ber float64
			for i := 0; i < b.N; i++ {
				got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: 24 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				ber = core.BER(got, wm, 16)
			}
			b.ReportMetric(100*ber, "BER%")
		})
	}
}

// BenchmarkAblateAcceleratedErase compares the two imprint erase
// strategies at equal N_PE on both simulation cost and virtual time.
func BenchmarkAblateAcceleratedErase(b *testing.B) {
	for _, acc := range []bool{false, true} {
		name := "nominal"
		if acc {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			wm := flashmark.ReferenceWatermark(flashmark.PartSmallSim().Geometry.WordsPerSegment())
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := mustDevice(b, 0xC201)
				b.StartTimer()
				if err := flashmark.Imprint(dev, 0, wm, flashmark.ImprintOptions{NPE: 10_000, Accelerated: acc}); err != nil {
					b.Fatal(err)
				}
				virtual = dev.Clock().Now()
			}
			b.ReportMetric(virtual.Seconds(), "vsec/op")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkNANDImprintExtract measures the Flashmark round trip on the
// NAND substrate (experiment EXT-NAND) and reports the achieved BER.
func BenchmarkNANDImprintExtract(b *testing.B) {
	dev, err := nand.Open(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams(), 0xD001)
	if err != nil {
		b.Fatal(err)
	}
	geom := dev.Geometry()
	wm := make([]uint64, geom.WordsPerSegment())
	for i := range wm {
		wm[i] = uint64(byte(2*i*3)) | uint64(byte((2*i+1)*3))<<8
	}
	if err := flashmark.Imprint(dev, 0, wm, flashmark.ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ber float64
	for i := 0; i < b.N; i++ {
		got, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 24 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		ber = flashmark.BER(got, wm, geom.WordBits())
	}
	b.ReportMetric(100*ber, "BER%")
}

// BenchmarkAblateECCvsReplication compares the decode cost of the two
// §V protection alternatives on equal payloads.
func BenchmarkAblateECCvsReplication(b *testing.B) {
	payload := []byte("TC DIE-1001 ACCEPT GRADE-2 WK27")
	words := ecc.EncodeBytes(payload)
	b.Run("secded-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ecc.DecodeBytes(words, len(payload)); err != nil {
				b.Fatal(err)
			}
		}
	})
	raw := make([]uint64, (len(payload)+1)/2)
	for i, c := range payload {
		raw[i/2] |= uint64(c) << uint(8*(i%2))
	}
	img, err := flashmark.Replicate(raw, 7, len(raw)*7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("7replica-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := flashmark.MajorityDecode(img, len(raw), 7, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
