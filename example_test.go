package flashmark_test

import (
	"fmt"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

// Example_imprintAndExtract shows the full manufacturer/integrator round
// trip: metadata is imprinted into physical wear at die sort and
// recovered through a timed partial erase at incoming inspection.
func Example_imprintAndExtract() {
	dev, err := flashmark.NewDevice(flashmark.PartSmallSim(), 42)
	if err != nil {
		panic(err)
	}
	codec := flashmark.Codec{Key: []byte("manufacturer-key")}
	payload, err := codec.Encode(flashmark.Payload{
		Manufacturer: "TC", DieID: 1001, Status: flashmark.StatusAccept,
	})
	if err != nil {
		panic(err)
	}
	img, err := flashmark.Replicate(payload, 7, dev.Geometry().WordsPerSegment())
	if err != nil {
		panic(err)
	}
	if err := flashmark.Imprint(dev, 0, img, flashmark.ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		panic(err)
	}

	words, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 25 * time.Microsecond, Reads: 3})
	if err != nil {
		panic(err)
	}
	views, err := flashmark.ReplicaViews(words, codec.PayloadWords(), 7)
	if err != nil {
		panic(err)
	}
	got, report, err := codec.DecodeReplicas(views)
	if err != nil {
		panic(err)
	}
	fmt.Println(got.Manufacturer, got.DieID, got.Status, report.Tampered())
	// Output: TC 1001 ACCEPT false
}

// Example_verifier shows the one-call incoming-inspection flow.
func Example_verifier() {
	cfg := flashmark.FactoryConfig{
		Fab:   flashmark.NORFab(flashmark.PartSmallSim()),
		Codec: flashmark.Codec{Key: []byte("k")},
	}
	genuine, err := flashmark.Fabricate(flashmark.ClassGenuineAccept, cfg, 1, 500)
	if err != nil {
		panic(err)
	}
	forged, err := flashmark.Fabricate(flashmark.ClassMetadataForgery, cfg, 2, 501)
	if err != nil {
		panic(err)
	}
	v := &flashmark.Verifier{Codec: flashmark.Codec{Key: []byte("k")}, Manufacturer: "TC"}
	for _, dev := range []flashmark.Device{genuine, forged} {
		res, err := v.Verify(dev)
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Verdict)
	}
	// Output:
	// GENUINE
	// NO-WATERMARK
}

// Example_detectStress shows the one-round usage detector (paper Fig. 5):
// fresh and heavily cycled segments separate after a single timed
// partial erase.
func Example_detectStress() {
	dev, err := flashmark.NewDevice(flashmark.PartSmallSim(), 7)
	if err != nil {
		panic(err)
	}
	// Cycle segment 1 heavily; leave segment 2 fresh.
	zeros := make([]uint64, dev.Geometry().WordsPerSegment())
	if err := flashmark.Imprint(dev, 512, zeros, flashmark.ImprintOptions{NPE: 50_000, Accelerated: true}); err != nil {
		panic(err)
	}
	worn, err := flashmark.DetectStress(dev, 512, 24*time.Microsecond, 3)
	if err != nil {
		panic(err)
	}
	fresh, err := flashmark.DetectStress(dev, 1024, 24*time.Microsecond, 3)
	if err != nil {
		panic(err)
	}
	cells := dev.Geometry().CellsPerSegment()
	fmt.Println(worn > cells/2, fresh < cells/10)
	// Output: true true
}
