// Package ecc implements the error-correction alternative to watermark
// replication that the paper's §V points at ("An alternative to watermark
// data replication is to use error correction techniques"): an extended
// Hamming SECDED(16,11) code sized exactly to the 16-bit flash word —
// 11 payload bits per word, single-error correction, double-error
// detection, 1.45x redundancy (vs 3x/5x/7x for replication).
//
// The tradeoff the paper hints at is real and quantified by the `ecc`
// experiment: SECDED corrects at most one bad cell per word, so it wins
// at low raw bit error rates and loses to brute replication at high ones.
package ecc

import (
	"fmt"
	"math/bits"
)

// DataBitsPerWord is the payload capacity of one 16-bit codeword.
const DataBitsPerWord = 11

// codeword layout (0-indexed bit positions within the 16-bit word):
// position 0 holds the overall parity; positions 1,2,4,8 hold the
// Hamming parity bits; the remaining 11 positions hold data bits in
// ascending order: 3,5,6,7,9,10,11,12,13,14,15.
var dataPositions = [DataBitsPerWord]uint{3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15}

// Encode packs the low 11 bits of data into a SECDED(16,11) codeword.
func Encode(data uint16) uint16 {
	if data >= 1<<DataBitsPerWord {
		panic(fmt.Sprintf("ecc: data %#x exceeds 11 bits", data))
	}
	var w uint16
	for i, pos := range dataPositions {
		if data&(1<<uint(i)) != 0 {
			w |= 1 << pos
		}
	}
	// Hamming parity bits: parity p covers positions whose index has bit
	// p set (1-indexed classic layout, realized here on indices 1..15).
	for _, p := range []uint{1, 2, 4, 8} {
		par := uint16(0)
		for pos := uint(1); pos < 16; pos++ {
			if pos != p && pos&p != 0 && w&(1<<pos) != 0 {
				par ^= 1
			}
		}
		if par != 0 {
			w |= 1 << p
		}
	}
	// Overall parity (even) over all 16 bits.
	if bits.OnesCount16(w)%2 != 0 {
		w |= 1
	}
	return w
}

// DecodeResult reports what Decode found.
type DecodeResult int

// Decode outcomes.
const (
	// Clean: the codeword was intact.
	Clean DecodeResult = iota
	// Corrected: a single bit error was corrected.
	Corrected
	// DoubleError: two errors detected; the data is unreliable.
	DoubleError
)

// Decode recovers the 11 data bits from a codeword, correcting a single
// bit error and detecting double errors.
func Decode(w uint16) (data uint16, res DecodeResult) {
	syndrome := uint(0)
	for _, p := range []uint{1, 2, 4, 8} {
		par := uint16(0)
		for pos := uint(1); pos < 16; pos++ {
			if pos&p != 0 && w&(1<<pos) != 0 {
				par ^= 1
			}
		}
		if par != 0 {
			syndrome |= p
		}
	}
	overallOK := bits.OnesCount16(w)%2 == 0
	switch {
	case syndrome == 0 && overallOK:
		res = Clean
	case syndrome == 0 && !overallOK:
		// The overall parity bit itself flipped.
		w ^= 1
		res = Corrected
	case syndrome != 0 && !overallOK:
		// Single error at the syndrome position.
		w ^= 1 << syndrome
		res = Corrected
	default:
		// Syndrome set but overall parity consistent: double error.
		res = DoubleError
	}
	for i, pos := range dataPositions {
		if w&(1<<pos) != 0 {
			data |= 1 << uint(i)
		}
	}
	return data, res
}

// Stats summarizes a block decode.
type Stats struct {
	Words        int
	Corrected    int
	DoubleErrors int
}

// EncodeBytes packs a byte payload into SECDED codewords (11 data bits
// per 16-bit word, little-endian bit order, zero-padded).
func EncodeBytes(payload []byte) []uint64 {
	totalBits := len(payload) * 8
	words := (totalBits + DataBitsPerWord - 1) / DataBitsPerWord
	out := make([]uint64, words)
	for w := 0; w < words; w++ {
		var chunk uint16
		for i := 0; i < DataBitsPerWord; i++ {
			bit := w*DataBitsPerWord + i
			if bit < totalBits && payload[bit/8]&(1<<uint(bit%8)) != 0 {
				chunk |= 1 << uint(i)
			}
		}
		out[w] = uint64(Encode(chunk))
	}
	return out
}

// WordsForBytes returns the number of codewords EncodeBytes emits for a
// payload of n bytes.
func WordsForBytes(n int) int {
	return (n*8 + DataBitsPerWord - 1) / DataBitsPerWord
}

// DecodeBytes reverses EncodeBytes, returning n bytes and decode stats.
func DecodeBytes(words []uint64, n int) ([]byte, Stats, error) {
	if WordsForBytes(n) > len(words) {
		return nil, Stats{}, fmt.Errorf("ecc: %d words cannot hold %d bytes", len(words), n)
	}
	out := make([]byte, n)
	st := Stats{Words: WordsForBytes(n)}
	for w := 0; w < st.Words; w++ {
		data, res := Decode(uint16(words[w]))
		switch res {
		case Corrected:
			st.Corrected++
		case DoubleError:
			st.DoubleErrors++
		}
		for i := 0; i < DataBitsPerWord; i++ {
			bit := w*DataBitsPerWord + i
			if bit >= n*8 {
				break
			}
			if data&(1<<uint(i)) != 0 {
				out[bit/8] |= 1 << uint(bit%8)
			}
		}
	}
	return out, st, nil
}

// Overhead returns the code's redundancy factor (codeword bits per data
// bit).
func Overhead() float64 { return 16.0 / DataBitsPerWord }
