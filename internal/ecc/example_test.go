package ecc_test

import (
	"fmt"

	"github.com/flashmark/flashmark/internal/ecc"
)

// Example shows SECDED(16,11) surviving one bad cell per word.
func Example() {
	payload := []byte("DIE-1001")
	words := ecc.EncodeBytes(payload)
	words[0] ^= 1 << 9 // one flash cell failed
	got, stats, err := ecc.DecodeBytes(words, len(payload))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s corrected=%d double=%d\n", got, stats.Corrected, stats.DoubleErrors)
	// Output: DIE-1001 corrected=1 double=0
}
