package ecc

import (
	"bytes"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeAllValues(t *testing.T) {
	for data := uint16(0); data < 1<<DataBitsPerWord; data++ {
		w := Encode(data)
		got, res := Decode(w)
		if res != Clean || got != data {
			t.Fatalf("Decode(Encode(%#x)) = %#x, %v", data, got, res)
		}
	}
}

func TestEncodePanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("12-bit data accepted")
		}
	}()
	Encode(1 << DataBitsPerWord)
}

func TestEveryCodewordEvenParity(t *testing.T) {
	for data := uint16(0); data < 1<<DataBitsPerWord; data++ {
		if bits.OnesCount16(Encode(data))%2 != 0 {
			t.Fatalf("codeword for %#x has odd parity", data)
		}
	}
}

func TestSingleErrorCorrection(t *testing.T) {
	for _, data := range []uint16{0, 1, 0x2AA, 0x555, 0x7FF} {
		w := Encode(data)
		for b := uint(0); b < 16; b++ {
			got, res := Decode(w ^ (1 << b))
			if res != Corrected {
				t.Fatalf("data %#x, flip bit %d: result %v, want Corrected", data, b, res)
			}
			if got != data {
				t.Fatalf("data %#x, flip bit %d: decoded %#x", data, b, got)
			}
		}
	}
}

func TestDoubleErrorDetection(t *testing.T) {
	for _, data := range []uint16{0, 0x3C3, 0x7FF} {
		w := Encode(data)
		for a := uint(0); a < 16; a++ {
			for b := a + 1; b < 16; b++ {
				_, res := Decode(w ^ (1 << a) ^ (1 << b))
				if res != DoubleError {
					t.Fatalf("data %#x, flips %d+%d: result %v, want DoubleError", data, a, b, res)
				}
			}
		}
	}
}

// Property: the code has minimum distance 4 (SECDED requirement): any two
// distinct codewords differ in at least 4 bits.
func TestQuickMinimumDistance(t *testing.T) {
	f := func(a, b uint16) bool {
		da, db := a&0x7FF, b&0x7FF
		if da == db {
			return true
		}
		return bits.OnesCount16(Encode(da)^Encode(db)) >= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeBytesRoundTrip(t *testing.T) {
	payload := []byte("FLASHMARK TC DIE 1001 ACCEPT")
	words := EncodeBytes(payload)
	if len(words) != WordsForBytes(len(payload)) {
		t.Fatalf("words = %d, want %d", len(words), WordsForBytes(len(payload)))
	}
	got, st, err := DecodeBytes(words, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q", got)
	}
	if st.Corrected != 0 || st.DoubleErrors != 0 {
		t.Fatalf("clean decode stats = %+v", st)
	}
}

func TestDecodeBytesCorrectsScatteredErrors(t *testing.T) {
	payload := []byte("WATERMARK PAYLOAD BYTES")
	words := EncodeBytes(payload)
	// One bit error per word: all correctable.
	for i := range words {
		words[i] ^= 1 << uint(i%16)
	}
	got, st, err := DecodeBytes(words, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrected decode: %q", got)
	}
	if st.Corrected != len(words) {
		t.Fatalf("corrected = %d, want %d", st.Corrected, len(words))
	}
}

func TestDecodeBytesShortInput(t *testing.T) {
	if _, _, err := DecodeBytes(make([]uint64, 2), 100); err == nil {
		t.Fatal("short input accepted")
	}
}

// Property: byte payload round trip for arbitrary content.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		words := EncodeBytes(payload)
		got, st, err := DecodeBytes(words, len(payload))
		return err == nil && bytes.Equal(got, payload) && st.Corrected == 0 && st.DoubleErrors == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverhead(t *testing.T) {
	if Overhead() <= 1 || Overhead() >= 2 {
		t.Fatalf("Overhead = %v", Overhead())
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint16(i) & 0x7FF)
	}
}

func BenchmarkDecodeCorrected(b *testing.B) {
	w := Encode(0x2AA) ^ 1<<7
	for i := 0; i < b.N; i++ {
		_, _ = Decode(w)
	}
}
