package reram_test

import (
	"bytes"
	"strings"
	"testing"

	"fmt"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/reram"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func testFactory() counterfeit.FactoryConfig {
	return counterfeit.FactoryConfig{
		Fab:   reram.DefaultFab(),
		Codec: wmcode.Codec{Key: []byte("reram-test-key")},
	}
}

func testVerifier() counterfeit.Verifier {
	return counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: []byte("reram-test-key")},
		CheckRecycling: true,
	}
}

// TestVerdictMatrix is the calibration pin for the ReRAM physics: the
// unchanged core imprint/extract procedures and the verifier's fixed
// operating point (25 µs t_PEW, 4% wear screen) must separate the
// ground-truth chip classes on resistance-state conditioning just as
// they do on oxide wear.
func TestVerdictMatrix(t *testing.T) {
	cases := []struct {
		name  string
		class counterfeit.ChipClass
		want  counterfeit.Verdict
	}{
		{"genuine-accept", counterfeit.ClassGenuineAccept, counterfeit.VerdictGenuine},
		{"genuine-reject", counterfeit.ClassGenuineReject, counterfeit.VerdictRejectDie},
		{"unmarked", counterfeit.ClassUnmarked, counterfeit.VerdictNoWatermark},
		{"metadata-forgery", counterfeit.ClassMetadataForgery, counterfeit.VerdictNoWatermark},
		{"digital-clone", counterfeit.ClassDigitalClone, counterfeit.VerdictNoWatermark},
		{"recycled", counterfeit.ClassRecycled, counterfeit.VerdictRecycled},
		// The physics blind spot the challenge-response axis exists for:
		// a replayed imprint is physically indistinguishable.
		{"replay-imprint", counterfeit.ClassReplayImprint, counterfeit.VerdictGenuine},
	}
	cfg := testFactory()
	v := testVerifier()
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev, err := counterfeit.Fabricate(tc.class, cfg, 0x9000+uint64(i), 500+uint64(i))
			if err != nil {
				t.Fatalf("fabricate: %v", err)
			}
			res, err := v.Verify(dev)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if res.Verdict != tc.want {
				t.Fatalf("verdict = %v, want %v (disagreement %.3f, worn %d/%d)",
					res.Verdict, tc.want, res.ReplicaDisagreement, res.WornDataSegments, res.SampledDataSegments)
			}
		})
	}
}

// TestSaveLoadRoundTrip pins the chip-file format: a loaded chip must
// re-save byte-identically and carry the full physical state.
func TestSaveLoadRoundTrip(t *testing.T) {
	dev, err := counterfeit.Fabricate(counterfeit.ClassGenuineAccept, testFactory(), 0xA11CE, 777)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.(*reram.Device).Age(2.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := reram.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed() != dev.Seed() || loaded.PartName() != dev.PartName() {
		t.Fatalf("identity not preserved: seed %d part %q", loaded.Seed(), loaded.PartName())
	}
	if got := loaded.AgeYears(); got != 2.5 {
		t.Fatalf("age = %v, want 2.5", got)
	}
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("save -> load -> save is not byte-identical")
	}
	// The loaded chip verifies exactly like the original.
	v := testVerifier()
	res, err := v.Verify(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != counterfeit.VerdictGenuine {
		t.Fatalf("loaded chip verdict = %v, want GENUINE", res.Verdict)
	}
}

// TestLoaderRejects covers the untrusted-input validation surface.
func TestLoaderRejects(t *testing.T) {
	dev, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not-json", "not a chip", "decoding chip file"},
		{"wrong-format", strings.Replace(good, reram.ChipFormat, "flashmark-chip", 1), "not a ReRAM chip file"},
		{"bad-version", strings.Replace(good, `"version": 1`, `"version": 99`, 1), "unsupported chip file version"},
		{"bad-age", strings.Replace(good, `"seed": 7`, `"seed": 7, "ageYears": -1`, 1), "age"},
	}
	var l reram.Loader
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := l.Load([]byte(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	// The loader still works after rejections, and reuses its storage.
	if _, err := l.Load([]byte(good)); err != nil {
		t.Fatalf("loading valid file after rejections: %v", err)
	}
}

// TestRefabricateEquivalence pins the arena contract: an in-place
// refabrication is indistinguishable from a fresh construction.
func TestRefabricateEquivalence(t *testing.T) {
	worn, err := counterfeit.Fabricate(counterfeit.ClassRecycled, testFactory(), 0xBEEF, 42)
	if err != nil {
		t.Fatal(err)
	}
	d := worn.(*reram.Device)
	if err := d.Refabricate(0xF00D); err != nil {
		t.Fatal(err)
	}
	fresh, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := d.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("refabricated chip differs from a fresh construction")
	}
}

// TestAgeMonotone pins the Ager contract and the drift direction:
// storage age only grows, and aging lengthens RESET crossing times (a
// longer adaptive erase of a programmed sector).
func TestAgeMonotone(t *testing.T) {
	d, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Age(5); err != nil {
		t.Fatal(err)
	}
	if err := d.Age(1); err == nil {
		t.Fatal("aging backwards from 5 to 1 years was accepted")
	}

	young, _ := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 11)
	old, _ := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 11)
	if err := old.Age(10); err != nil {
		t.Fatal(err)
	}
	zeros := make([]uint64, reram.DefaultGeometry().WordsPerSegment())
	for _, dev := range []*reram.Device{young, old} {
		if err := dev.ProgramBlock(0, zeros); err != nil {
			t.Fatal(err)
		}
	}
	py, err := young.EraseSegmentAdaptive(0)
	if err != nil {
		t.Fatal(err)
	}
	po, err := old.EraseSegmentAdaptive(0)
	if err != nil {
		t.Fatal(err)
	}
	if po <= py {
		t.Fatalf("aged adaptive RESET %v not longer than fresh %v", po, py)
	}
}

// TestDeviceSurface pins the small inspector and accounting surface:
// the no-op lock pair, the clock/ledger accessors, the datasheet
// constants, and host-transfer time accounting.
func TestDeviceSurface(t *testing.T) {
	dev, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Unlock(); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	dev.Lock() // no-op on the crossbar command set
	if dev.Clock() == nil || dev.Ledger() == nil {
		t.Fatal("nil clock or ledger")
	}
	if got, want := dev.NominalEraseTime(), reram.OxRAMTiming().SectorReset; got != want {
		t.Fatalf("NominalEraseTime = %v, want %v", got, want)
	}
	if got, want := dev.EnduranceCycles(), reram.DefaultParams().EnduranceCycles; got != want {
		t.Fatalf("EnduranceCycles = %v, want %v", got, want)
	}
	before := dev.Clock().Now()
	dev.ChargeHostTransfer(0) // non-positive transfers charge nothing
	if dev.Clock().Now() != before {
		t.Fatal("zero-byte host transfer advanced the clock")
	}
	dev.ChargeHostTransfer(1024)
	if dev.Clock().Now() <= before {
		t.Fatal("host transfer did not advance the clock")
	}
}

// TestReadSegmentMatchesWordReads pins the bulk read path: with every
// cell in a decisive state, ReadSegment must agree word-for-word with
// individual ReadWord calls, and bad addresses must be rejected.
func TestReadSegmentMatchesWordReads(t *testing.T) {
	geom := reram.DefaultGeometry()
	dev, err := reram.NewDevice(geom, reram.OxRAMTiming(), reram.DefaultParams(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, geom.WordsPerSegment())
	for w := range values {
		values[w] = uint64(w*0x2545+0xA5A5) & (1<<uint(geom.WordBits()) - 1)
	}
	if err := dev.ProgramBlock(0, values); err != nil {
		t.Fatal(err)
	}
	seg, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != geom.WordsPerSegment() {
		t.Fatalf("ReadSegment returned %d words, want %d", len(seg), geom.WordsPerSegment())
	}
	for w, got := range seg {
		if got != values[w] {
			t.Fatalf("word %d = %#x, want %#x", w, got, values[w])
		}
		one, err := dev.ReadWord(w * geom.WordBytes)
		if err != nil {
			t.Fatal(err)
		}
		if one != got {
			t.Fatalf("ReadWord(%d) = %#x, ReadSegment gave %#x", w, one, got)
		}
	}
	if _, err := dev.ReadSegment(-1); err == nil {
		t.Fatal("ReadSegment accepted a negative address")
	}
}

// TestWearInspection pins the wear-inspection surface the recycling
// screen rides on: a fresh sector reports zero wear and zero worn
// cells; fast-forwarding imprint cycles past the datasheet endurance
// marks every stressed cell worn.
func TestWearInspection(t *testing.T) {
	geom := reram.DefaultGeometry()
	dev, err := reram.NewDevice(geom, reram.OxRAMTiming(), reram.DefaultParams(), 29)
	if err != nil {
		t.Fatal(err)
	}
	minW, meanW, maxW, err := dev.SegmentWearSummary(0)
	if err != nil {
		t.Fatal(err)
	}
	if minW != 0 || meanW != 0 || maxW != 0 {
		t.Fatalf("fresh sector wear = %v/%v/%v, want zeros", minW, meanW, maxW)
	}
	worn, err := dev.WornCellCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if worn != 0 {
		t.Fatalf("fresh sector has %d worn cells", worn)
	}

	// 1.5x the datasheet endurance in full SET/RESET cycles: every
	// cell of the sector crosses the wear threshold.
	zeros := make([]uint64, geom.WordsPerSegment())
	cycles := int(1.5 * reram.DefaultParams().EnduranceCycles)
	if err := dev.StressSegmentWords(0, zeros, cycles, false); err != nil {
		t.Fatal(err)
	}
	worn, err = dev.WornCellCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if worn != geom.CellsPerSegment() {
		t.Fatalf("worn cells = %d, want %d", worn, geom.CellsPerSegment())
	}
	minW, _, _, err = dev.SegmentWearSummary(0)
	if err != nil {
		t.Fatal(err)
	}
	if minW <= reram.DefaultParams().EnduranceCycles {
		t.Fatalf("min wear %v not past endurance %v", minW, reram.DefaultParams().EnduranceCycles)
	}

	if _, err := dev.WornCellCount(-2); err == nil {
		t.Fatal("WornCellCount accepted a negative address")
	}
	if _, _, _, err := dev.SegmentWearSummary(geom.TotalSegments()); err == nil {
		t.Fatal("SegmentWearSummary accepted an out-of-range sector")
	}
}

// TestConstructionRejects walks every validation branch of the physics
// parameters, the timing table, and the geometry.
func TestConstructionRejects(t *testing.T) {
	mut := func(f func(*reram.Params)) reram.Params {
		p := reram.DefaultParams()
		f(&p)
		return p
	}
	params := []struct {
		name string
		p    reram.Params
	}{
		{"tau-base", mut(func(p *reram.Params) { p.TauBaseMeanUs = 0 })},
		{"tau-clip", mut(func(p *reram.Params) { p.TauClipHighUs = p.TauClipLowUs })},
		{"conditioning", mut(func(p *reram.Params) { p.CondPower = 0 })},
		{"read-noise", mut(func(p *reram.Params) { p.ReadNoiseSigmaUs = 0 })},
		{"wear", mut(func(p *reram.Params) { p.ResetWearFull = 0 })},
		{"drift", mut(func(p *reram.Params) { p.DriftUsPerYear = -1 })},
		{"endurance", mut(func(p *reram.Params) { p.EnduranceCycles = 0 })},
	}
	for _, tc := range params {
		t.Run("params-"+tc.name, func(t *testing.T) {
			if _, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), tc.p, 1); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
	t.Run("timing", func(t *testing.T) {
		bad := reram.OxRAMTiming()
		bad.WordRead = 0
		if _, err := reram.NewDevice(reram.DefaultGeometry(), bad, reram.DefaultParams(), 1); err == nil {
			t.Fatal("invalid timing accepted")
		}
	})
	t.Run("geometry", func(t *testing.T) {
		if _, err := reram.NewDevice(nor.Geometry{}, reram.OxRAMTiming(), reram.DefaultParams(), 1); err == nil {
			t.Fatal("invalid geometry accepted")
		}
	})
}

// TestLoaderArrayEncodings pins the array-payload decoding paths: an
// escaped string token must decode identically to the plain form, and
// malformed payloads must be rejected.
func TestLoaderArrayEncodings(t *testing.T) {
	dev, err := reram.NewDevice(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), 37)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	marker := `"array": "`
	i := strings.Index(good, marker)
	if i < 0 {
		t.Fatalf("no array field in chip file")
	}
	i += len(marker)

	// The same base64 text with its first character \u-escaped takes
	// the full JSON string decode path and must load identically.
	escaped := fmt.Sprintf(`%s\u%04x%s`, good[:i], good[i], good[i+1:])
	ld, err := reram.Load(strings.NewReader(escaped))
	if err != nil {
		t.Fatalf("loading escaped array: %v", err)
	}
	var again bytes.Buffer
	if err := ld.Save(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != good {
		t.Fatal("escaped-array chip did not round-trip to the plain form")
	}

	if _, err := reram.Load(strings.NewReader(good[:i-1] + "42}")); err == nil {
		t.Fatal("numeric array payload accepted")
	}
	bad := good[:i] + "!!" + good[i:]
	if _, err := reram.Load(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "array payload") {
		t.Fatalf("bad base64 error = %v, want array payload rejection", err)
	}
}
