package reram

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/vclock"
)

// PartName is the catalog name the simulated crossbar reports.
const PartName = "RERAM-CB16"

// DefaultBaud is the SPI-class host link speed used for host-readout
// accounting.
const DefaultBaud = 2_000_000

// DefaultGeometry returns the simulated crossbar: 1 bank x 16 sectors
// x 512 B, 16-bit words — the same word-granular shape as the NOR
// simulation parts, so watermark images are interchangeable.
func DefaultGeometry() nor.Geometry {
	return nor.Geometry{Banks: 1, SegmentsPerBank: 16, SegmentBytes: 512, WordBytes: 2}
}

// Timing holds ReRAM operation durations. The RESET staircase is the
// erase-unit primitive: a nominal staircase sweeps the full amplitude
// ramp; the adaptive form exits once the slowest LRS cell has
// switched.
type Timing struct {
	SectorReset         time.Duration `json:"sectorReset"`         // nominal full RESET staircase (~400 µs)
	WordSet             time.Duration `json:"wordSet"`             // SET pulse per word (~1 µs)
	WordRead            time.Duration `json:"wordRead"`            // word read (~150 ns)
	OpSetup             time.Duration `json:"opSetup"`             // command/address overhead
	AdaptiveResetSettle time.Duration `json:"adaptiveResetSettle"` // verify-and-exit settle
}

// OxRAMTiming returns typical filamentary-oxide crossbar timings.
func OxRAMTiming() Timing {
	return Timing{
		SectorReset:         400 * time.Microsecond,
		WordSet:             time.Microsecond,
		WordRead:            150 * time.Nanosecond,
		OpSetup:             2 * time.Microsecond,
		AdaptiveResetSettle: 4 * time.Microsecond,
	}
}

// Validate reports whether all durations are positive.
func (t Timing) Validate() error {
	for _, d := range []time.Duration{t.SectorReset, t.WordSet, t.WordRead, t.OpSetup, t.AdaptiveResetSettle} {
		if d <= 0 {
			return fmt.Errorf("reram: all timings must be positive: %+v", t)
		}
	}
	return nil
}

// Device is one simulated ReRAM crossbar. It satisfies device.Device
// directly: the crossbar is word-addressable like NOR, so no
// page-discipline adapter is needed.
type Device struct {
	geom   nor.Geometry
	timing Timing
	params Params
	seed   uint64
	model  *Model
	cells  *nor.Array
	clock  *vclock.Clock
	ledger *vclock.Ledger
	noise  *rng.Stream
	age    float64 // storage age in years (retention drift)
	baud   int
}

func newDevice(geom nor.Geometry, timing Timing, params Params, seed uint64,
	model *Model, cells *nor.Array, age float64) *Device {
	return &Device{
		geom:   geom,
		timing: timing,
		params: params,
		seed:   seed,
		model:  model,
		cells:  cells,
		clock:  &vclock.Clock{},
		ledger: &vclock.Ledger{},
		noise:  rng.New(seed ^ 0x5245524D_52656164),
		age:    age,
		baud:   DefaultBaud,
	}
}

// NewDevice fabricates a ReRAM crossbar with the given physics and die
// seed.
func NewDevice(geom nor.Geometry, timing Timing, params Params, seed uint64) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	model, err := NewModel(params, seed, geom.TotalSegments(), geom.CellsPerSegment())
	if err != nil {
		return nil, err
	}
	arr, err := nor.NewArray(geom)
	if err != nil {
		return nil, err
	}
	return newDevice(geom, timing, params, seed, model, arr, 0), nil
}

// Open fabricates a ReRAM crossbar behind the substrate-neutral
// device interface.
func Open(geom nor.Geometry, timing Timing, params Params, seed uint64) (device.Device, error) {
	return NewDevice(geom, timing, params, seed)
}

// Fab returns a device fabricator for the geometry, timing and physics.
func Fab(geom nor.Geometry, timing Timing, params Params) device.Fab {
	return func(seed uint64) (device.Device, error) { return Open(geom, timing, params, seed) }
}

// DefaultFab returns the default simulated crossbar fabricator.
func DefaultFab() device.Fab {
	return Fab(DefaultGeometry(), OxRAMTiming(), DefaultParams())
}

// PartName identifies the part.
func (d *Device) PartName() string { return PartName }

// Seed returns the die seed (physical identity).
func (d *Device) Seed() uint64 { return d.seed }

// Geometry returns the word-granular view of the crossbar.
func (d *Device) Geometry() nor.Geometry { return d.geom }

// Unlock is a no-op: the crossbar command set has no FCTL-style lock.
func (d *Device) Unlock() error { return nil }

// Lock is a no-op (see Unlock).
func (d *Device) Lock() {}

// Clock returns the device's virtual clock.
func (d *Device) Clock() *vclock.Clock { return d.clock }

// Ledger returns the device's time ledger.
func (d *Device) Ledger() *vclock.Ledger { return d.ledger }

func (d *Device) charge(class vclock.OpClass, dur time.Duration) {
	d.clock.Advance(d.ledger.Charge(class, dur))
}

// tauAt returns the RESET crossing time of cell i within sector at the
// given wear, including the device's retention drift.
func (d *Device) tauAt(sector, i int, wear float64) float64 {
	return d.model.TauAt(sector, i, wear, d.age)
}

func (d *Device) sectorOf(addr int) (int, error) {
	return d.geom.SegmentOfAddr(addr)
}

// resetSectorCells drives every cell of the sector to HRS, with the
// model's conditioning increments.
func (d *Device) resetSectorCells(sector int) {
	margins, wear := d.cells.CellSpan(sector)
	full := d.model.ResetWear(true)
	hrs := d.model.ResetWear(false)
	for i := range margins {
		if margins[i] < 0 {
			wear[i] += full
		} else {
			wear[i] += hrs
		}
		margins[i] = nor.MarginErased
	}
}

// EraseSegment performs a nominal full RESET staircase over the sector
// containing addr.
func (d *Device) EraseSegment(addr int) error {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return err
	}
	d.resetSectorCells(sector)
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpErase, d.timing.SectorReset)
	return nil
}

// EraseSegmentAdaptive RESETs the sector but exits as soon as the
// slowest LRS cell has switched (the accelerated imprint primitive).
func (d *Device) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return 0, err
	}
	margins, wear := d.cells.CellSpan(sector)
	maxTau := 0.0
	for i := range margins {
		if margins[i] >= 0 {
			continue
		}
		if tau := d.tauAt(sector, i, wear[i]); tau > maxTau {
			maxTau = tau
		}
	}
	d.resetSectorCells(sector)
	pulse := time.Duration(maxTau*float64(time.Microsecond)) + d.timing.AdaptiveResetSettle
	if pulse > d.timing.SectorReset {
		pulse = d.timing.SectorReset
	}
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpErase, pulse)
	return pulse, nil
}

// MassEraseBank RESETs every sector of the bank containing addr.
func (d *Device) MassEraseBank(addr int) error {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return err
	}
	bank := sector / d.geom.SegmentsPerBank
	first := bank * d.geom.SegmentsPerBank
	for s := first; s < first+d.geom.SegmentsPerBank; s++ {
		d.resetSectorCells(s)
		d.charge(vclock.OpOverhead, d.timing.OpSetup)
		d.charge(vclock.OpErase, d.timing.SectorReset)
	}
	return nil
}

// PartialEraseSegment starts a RESET staircase and aborts it after
// pulse — the extraction primitive. Cells whose crossing time the
// pulse did not reach stay LRS; cells near the boundary are left
// metastable and sample noisily per read.
func (d *Device) PartialEraseSegment(addr int, pulse time.Duration) error {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return err
	}
	if pulse < 0 {
		return fmt.Errorf("reram: negative pulse %v", pulse)
	}
	if pulse >= d.timing.SectorReset {
		return d.EraseSegment(addr)
	}
	pulseUs := float64(pulse) / float64(time.Microsecond)
	margins, wear := d.cells.CellSpan(sector)
	for i := range margins {
		margin := margins[i]
		wasLRS := margin < 0
		switch {
		case margin <= nor.MarginProgrammed:
			tau := d.tauAt(sector, i, wear[i])
			d.cells.SetMargin(sector*d.geom.CellsPerSegment()+i, pulseUs-tau)
		case margin >= nor.MarginErased:
			// stays HRS
		default:
			d.cells.SetMargin(sector*d.geom.CellsPerSegment()+i, float64(margin)+pulseUs)
		}
		wear[i] += d.model.ResetWear(wasLRS)
	}
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpPartialErase, pulse)
	return nil
}

// ProgramBlock SETs the zero bits of consecutive words starting at a
// word-aligned byte address. The block must not cross a sector
// boundary. SET is selective: one bits leave the addressed cells in
// their current state.
func (d *Device) ProgramBlock(addr int, values []uint64) error {
	if len(values) == 0 {
		return nil
	}
	sector, err := d.sectorOf(addr)
	if err != nil {
		return err
	}
	if addr%d.geom.WordBytes != 0 {
		return fmt.Errorf("reram: unaligned word address %#x", addr)
	}
	word := (addr - sector*d.geom.SegmentBytes) / d.geom.WordBytes
	if word+len(values) > d.geom.WordsPerSegment() {
		return fmt.Errorf("reram: program of %d words at %#x crosses the sector boundary", len(values), addr)
	}
	bits := d.geom.WordBits()
	base := sector*d.geom.CellsPerSegment() + word*bits
	setWear := d.model.SetWear()
	for w, v := range values {
		for bit := 0; bit < bits; bit++ {
			if v&(1<<uint(bit)) != 0 {
				continue
			}
			cell := base + w*bits + bit
			d.cells.AddWear(cell, setWear)
			d.cells.SetMargin(cell, float64(nor.MarginProgrammed))
		}
	}
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpProgram, time.Duration(len(values))*d.timing.WordSet)
	return nil
}

// ReadWord reads one word at a word-aligned byte address; metastable
// cells sample per read from the device noise stream.
func (d *Device) ReadWord(addr int) (uint64, error) {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return 0, err
	}
	if addr%d.geom.WordBytes != 0 {
		return 0, fmt.Errorf("reram: unaligned word address %#x", addr)
	}
	word := (addr - sector*d.geom.SegmentBytes) / d.geom.WordBytes
	v := d.readWordBits(sector, word)
	d.charge(vclock.OpRead, d.timing.WordRead)
	return v, nil
}

func (d *Device) readWordBits(sector, word int) uint64 {
	bits := d.geom.WordBits()
	margins, _ := d.cells.CellSpan(sector)
	base := word * bits
	var v uint64
	for bit := 0; bit < bits; bit++ {
		margin := margins[base+bit]
		var hrs bool
		switch {
		case margin >= nor.MarginErased:
			hrs = true
		case margin <= nor.MarginProgrammed:
			hrs = false
		default:
			hrs = d.model.SampleRead(float64(margin), d.noise)
		}
		if hrs {
			v |= 1 << uint(bit)
		}
	}
	return v
}

// ReadSegment reads every word of the sector containing addr, in
// order.
func (d *Device) ReadSegment(addr int) ([]uint64, error) {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return nil, err
	}
	words := d.geom.WordsPerSegment()
	out := make([]uint64, words)
	for w := range out {
		out[w] = d.readWordBits(sector, w)
	}
	d.charge(vclock.OpRead, time.Duration(words)*d.timing.WordRead)
	return out, nil
}

// StressSegmentWords fast-forwards n imprint cycles (sector RESET +
// SET of the watermark zeros) over the sector containing addr, riding
// the shared closed-form stress kernel. Time is charged exactly as n
// literal cycles would be.
func (d *Device) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	if n < 0 {
		return fmt.Errorf("reram: negative cycle count %d", n)
	}
	if n == 0 {
		return nil
	}
	sector, err := d.sectorOf(addr)
	if err != nil {
		return err
	}
	if len(values) != d.geom.WordsPerSegment() {
		return fmt.Errorf("reram: values must cover the whole sector")
	}
	bits := d.geom.WordBits()
	sub := sectorCells{d: d, sector: sector, base: sector * d.geom.CellsPerSegment(), cells: d.geom.CellsPerSegment()}
	one := func(i int) bool { return values[i/bits]&(1<<uint(i%bits)) != 0 }
	wear := device.StressWear{
		FullWear:  d.model.ResetWear(true),
		EraseOnly: d.model.ResetWear(false),
		Program:   d.model.SetWear(),
	}
	device.ApplyStress(sub, one, n, wear)

	// Time accounting: per cycle one RESET setup, one SET setup plus the
	// word SET pulses, and the (nominal or integrated adaptive) RESET
	// staircase.
	d.charge(vclock.OpOverhead, time.Duration(n)*2*d.timing.OpSetup)
	d.charge(vclock.OpProgram, time.Duration(n)*time.Duration(d.geom.WordsPerSegment())*d.timing.WordSet)
	if !adaptive {
		d.charge(vclock.OpErase, time.Duration(n)*d.timing.SectorReset)
		return nil
	}
	meanTau := device.MeanAdaptiveTauUs(sub, one, n, wear)
	pulse := time.Duration(meanTau*float64(time.Microsecond)) + d.timing.AdaptiveResetSettle
	if pulse > d.timing.SectorReset {
		pulse = d.timing.SectorReset
	}
	d.charge(vclock.OpErase, time.Duration(n)*pulse)
	return nil
}

// NominalEraseTime returns the datasheet full RESET staircase
// duration.
func (d *Device) NominalEraseTime() time.Duration { return d.timing.SectorReset }

// ChargeHostTransfer accounts for moving n bytes over the SPI-class
// host link (10 bit times per byte).
func (d *Device) ChargeHostTransfer(n int) {
	if n <= 0 {
		return
	}
	bits := 10 * n
	dur := time.Duration(float64(bits) / float64(d.baud) * float64(time.Second))
	d.clock.Advance(d.ledger.Charge(device.OpHost, dur))
}

// Age advances the chip's storage age (monotone): the filament relaxes
// and every cell's RESET crossing time drifts longer.
func (d *Device) Age(years float64) error {
	if !(years >= d.age) {
		return fmt.Errorf("reram: cannot age from %.2f to %.2f years (chips do not get younger)", d.age, years)
	}
	d.age = years
	return nil
}

// AgeYears returns the chip's storage age.
func (d *Device) AgeYears() float64 { return d.age }

// SegmentWearSummary returns min/mean/max conditioning wear across a
// sector.
func (d *Device) SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error) {
	return d.cells.SegmentWearSummary(seg)
}

// WornCellCount counts cells of the sector containing addr cycled
// beyond the datasheet endurance.
func (d *Device) WornCellCount(addr int) (int, error) {
	sector, err := d.sectorOf(addr)
	if err != nil {
		return 0, err
	}
	cells := d.geom.CellsPerSegment()
	base := sector * cells
	worn := 0
	for i := 0; i < cells; i++ {
		if d.model.Worn(d.cells.Wear(base + i)) {
			worn++
		}
	}
	return worn, nil
}

// EnduranceCycles returns the datasheet endurance.
func (d *Device) EnduranceCycles() float64 { return d.params.EnduranceCycles }

// Refabricate returns the device to the pristine state a fresh
// construction with the given seed would produce, reusing the cell
// array allocation.
func (d *Device) Refabricate(seed uint64) error {
	model, err := NewModel(d.params, seed, d.geom.TotalSegments(), d.geom.CellsPerSegment())
	if err != nil {
		return err
	}
	d.seed = seed
	d.model = model
	d.cells.Reset()
	d.clock = &vclock.Clock{}
	d.ledger = &vclock.Ledger{}
	d.noise = rng.New(seed ^ 0x5245524D_52656164)
	d.age = 0
	return nil
}

// sectorCells adapts one sector to the shared stress kernel.
type sectorCells struct {
	d      *Device
	sector int
	base   int
	cells  int
}

func (s sectorCells) Cells() int               { return s.cells }
func (s sectorCells) Programmed(i int) bool    { return s.d.cells.Programmed(s.base + i) }
func (s sectorCells) Wear(i int) float64       { return s.d.cells.Wear(s.base + i) }
func (s sectorCells) AddWear(i int, w float64) { s.d.cells.AddWear(s.base+i, w) }
func (s sectorCells) SetErased(i int)          { s.d.cells.SetMargin(s.base+i, float64(nor.MarginErased)) }
func (s sectorCells) SetProgrammed(i int) {
	s.d.cells.SetMargin(s.base+i, float64(nor.MarginProgrammed))
}
func (s sectorCells) TauAt(i int, wear float64) float64 { return s.d.tauAt(s.sector, i, wear) }

// Interface conformance: the full device surface plus the wear, aging
// and refabrication capabilities.
var (
	_ device.Device        = (*Device)(nil)
	_ device.WearInspector = (*Device)(nil)
	_ device.Ager          = (*Device)(nil)
	_ device.Refabricator  = (*Device)(nil)
)
