// Package reram models a filamentary resistive-RAM (ReRAM) crossbar
// behind the substrate-neutral device.Device interface, carrying the
// Flashmark imprint/extract procedures to a third physics family
// (after NOR and NAND floating-gate wear). The scheme follows the
// watermarked-ReRAM direction of Ferdaus et al. (arXiv 2204.02104):
// the imprint mechanism is *resistance-state conditioning*, not oxide
// wear — repeated SET/RESET cycling grows a cell's conductive filament
// so its RESET crossing time lengthens, biasing the low-resistance-
// state (LRS) distribution of watermark cells in a way ordinary
// digital programming cannot reproduce.
//
// The cell dictionary maps onto the shared nor.Array store: a cell in
// the high-resistance state (HRS, after RESET) reads logic 1 and is
// "erased"; the low-resistance state (LRS, after SET) reads logic 0
// and is "programmed". A RESET staircase is the erase primitive, an
// aborted staircase the partial-erase extraction primitive, and the
// per-cell RESET crossing time tau plays the role floatgate's erase
// time plays on flash.
package reram

import (
	"fmt"
	"math"

	"github.com/flashmark/flashmark/internal/rng"
)

// Params holds the filamentary cell physics. Times are microseconds.
type Params struct {
	// TauBaseMeanUs / TauBaseSigmaUs describe the fresh-cell RESET
	// crossing time distribution (per-cell, fixed at fabrication by the
	// forming step). Clipped to [TauClipLowUs, TauClipHighUs].
	TauBaseMeanUs  float64 `json:"tauBaseMeanUs"`
	TauBaseSigmaUs float64 `json:"tauBaseSigmaUs"`
	TauClipLowUs   float64 `json:"tauClipLowUs"`
	TauClipHighUs  float64 `json:"tauClipHighUs"`

	// Conditioning: cycling a cell through SET/RESET grows its filament,
	// lengthening tau by CondCoefUs * (wear/1000)^CondPower * g, where g
	// is the cell's lognormal conditioning susceptibility with sigma
	// CondSigma (median 1).
	CondCoefUs float64 `json:"condCoefUs"`
	CondPower  float64 `json:"condPower"`
	CondSigma  float64 `json:"condSigma"`

	// ReadNoiseSigmaUs scales read-disturb noise: a cell left metastable
	// by an aborted RESET at margin m (µs past its crossing point) reads
	// HRS with probability sigmoid(m / ReadNoiseSigmaUs).
	ReadNoiseSigmaUs float64 `json:"readNoiseSigmaUs"`

	// Per-cycle conditioning increments ("wear" in the shared stress
	// kernel): a full RESET of an LRS cell, a RESET of an already-HRS
	// cell, and one SET exposure.
	ResetWearFull float64 `json:"resetWearFull"`
	ResetWearHRS  float64 `json:"resetWearHRS"`
	SetWear       float64 `json:"setWear"`

	// DriftUsPerYear models retention drift of unpowered storage: the
	// filament relaxes and every cell's tau lengthens uniformly.
	DriftUsPerYear float64 `json:"driftUsPerYear"`

	// EnduranceCycles is the datasheet cycling endurance.
	EnduranceCycles float64 `json:"enduranceCycles"`
}

// DefaultParams returns the simulated OxRAM operating point. The
// numbers are calibrated against the verifier's fixed t_PEW (25 µs)
// and recycled-wear threshold: an 80k-cycle imprint shifts tau far
// past t_PEW, 10k field cycles shift ~14% of cells past it (over the
// 4% screen), and a fresh die leaves under 1% past it.
func DefaultParams() Params {
	return Params{
		TauBaseMeanUs:    21.0,
		TauBaseSigmaUs:   1.5,
		TauClipLowUs:     16.5,
		TauClipHighUs:    26.0,
		CondCoefUs:       0.05,
		CondPower:        1.6,
		CondSigma:        0.3,
		ReadNoiseSigmaUs: 0.5,
		ResetWearFull:    1.0,
		ResetWearHRS:     0.0625,
		SetWear:          0.03125,
		DriftUsPerYear:   0.05,
		EnduranceCycles:  100_000,
	}
}

// Validate reports whether the physics parameters are usable.
func (p Params) Validate() error {
	switch {
	case !(p.TauBaseMeanUs > 0) || !(p.TauBaseSigmaUs > 0):
		return fmt.Errorf("reram: tau base distribution must be positive: %+v", p)
	case !(p.TauClipLowUs > 0) || !(p.TauClipHighUs > p.TauClipLowUs):
		return fmt.Errorf("reram: tau clip bounds must satisfy 0 < low < high: %+v", p)
	case !(p.CondCoefUs >= 0) || !(p.CondPower > 0) || !(p.CondSigma >= 0):
		return fmt.Errorf("reram: conditioning parameters out of range: %+v", p)
	case !(p.ReadNoiseSigmaUs > 0):
		return fmt.Errorf("reram: read noise sigma must be positive: %+v", p)
	case !(p.ResetWearFull > 0) || !(p.ResetWearHRS >= 0) || !(p.SetWear >= 0):
		return fmt.Errorf("reram: wear increments out of range: %+v", p)
	case !(p.DriftUsPerYear >= 0):
		return fmt.Errorf("reram: drift must be non-negative: %+v", p)
	case !(p.EnduranceCycles > 0):
		return fmt.Errorf("reram: endurance must be positive: %+v", p)
	}
	return nil
}

// cellParam is the immutable per-cell physical identity, fixed by the
// die seed at forming time.
type cellParam struct {
	tauBase float64 // fresh RESET crossing time (µs)
	cond    float64 // conditioning susceptibility (lognormal, median 1)
}

// Model evaluates the cell physics for one die. Per-cell parameters
// are derived lazily per sector from order-independent rng stream
// splits keyed on (sector, cell), so any access order yields identical
// physics.
type Model struct {
	params  Params
	base    rng.Stream // never advanced; split per cell
	sectors [][]cellParam
	cells   int // per sector
}

// NewModel builds the physics model for a die seed.
func NewModel(params Params, seed uint64, sectors, cellsPerSector int) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		params:  params,
		base:    rng.New(seed ^ 0x5245524D_4F784D6C).SplitVal(0x466F726D), // forming step
		sectors: make([][]cellParam, sectors),
		cells:   cellsPerSector,
	}, nil
}

// sectorParams returns (building on first touch) the cell identities
// of one sector.
func (m *Model) sectorParams(sector int) []cellParam {
	if ps := m.sectors[sector]; ps != nil {
		return ps
	}
	ps := make([]cellParam, m.cells)
	p := m.params
	for i := range ps {
		s := m.base.Split2Val(uint64(sector), uint64(i))
		tau := s.NormalAt(p.TauBaseMeanUs, p.TauBaseSigmaUs)
		if tau < p.TauClipLowUs {
			tau = p.TauClipLowUs
		}
		if tau > p.TauClipHighUs {
			tau = p.TauClipHighUs
		}
		ps[i] = cellParam{tauBase: tau, cond: math.Exp(p.CondSigma * s.Normal())}
	}
	m.sectors[sector] = ps
	return ps
}

// TauAt returns cell i of sector's RESET crossing time (µs) at the
// given conditioning wear and storage age.
func (m *Model) TauAt(sector, i int, wear, ageYears float64) float64 {
	cp := m.sectorParams(sector)[i]
	p := m.params
	tau := cp.tauBase + p.DriftUsPerYear*ageYears
	if wear > 0 {
		tau += p.CondCoefUs * cp.cond * math.Pow(wear/1000, p.CondPower)
	}
	return tau
}

// SampleRead samples a metastable cell at the given margin (µs past
// its crossing point): the read-disturb channel of the paper's sensing
// step, drawn from the device noise stream.
func (m *Model) SampleRead(margin float64, noise *rng.Stream) bool {
	pHRS := 1 / (1 + math.Exp(-margin/m.params.ReadNoiseSigmaUs))
	return noise.Float64() < pHRS
}

// Worn reports whether a cell's conditioning wear exceeds the
// datasheet endurance.
func (m *Model) Worn(wear float64) bool { return wear > m.params.EnduranceCycles }

// ResetWear returns the per-RESET conditioning increment.
func (m *Model) ResetWear(wasLRS bool) float64 {
	if wasLRS {
		return m.params.ResetWearFull
	}
	return m.params.ResetWearHRS
}

// SetWear returns the per-SET conditioning increment.
func (m *Model) SetWear() float64 { return m.params.SetWear }
