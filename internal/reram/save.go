package reram

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/flashmark/flashmark/internal/nor"
)

// chipFile is the on-disk JSON envelope for a ReRAM chip. Array is
// kept as raw JSON (the quoted base64 text) rather than a string,
// matching the mcu and nand chip files: RawMessage's append-into-self
// decode lets a reloading Loader recycle the payload buffer, and
// base64 text never needs unescaping.
type chipFile struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Geometry nor.Geometry    `json:"geometry"`
	Timing   Timing          `json:"timing"`
	Params   Params          `json:"params"`
	Seed     uint64          `json:"seed"`
	AgeYears float64         `json:"ageYears,omitempty"`
	Array    json.RawMessage `json:"array"` // quoted base64 of nor binary encoding
}

// ChipFormat is the format tag of serialized ReRAM chips.
const ChipFormat = "flashmark-reram-chip"

const chipVersion = 1

// saveState recycles every per-Save transient — the binary array
// encoding, the quoted-base64 token, and the JSON envelope buffer with
// its pinned encoder — mirroring the mcu and nand chip-file save
// pools.
type saveState struct {
	raw []byte
	b64 []byte
	buf bytes.Buffer
	enc *json.Encoder
}

var savePool = sync.Pool{New: func() any {
	s := &saveState{raw: make([]byte, 0, 4096)}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// Save writes the chip state (geometry, timing, physics, seed, storage
// age, cell margins and conditioning wear) to w.
func (d *Device) Save(w io.Writer) error {
	s := savePool.Get().(*saveState)
	defer savePool.Put(s)
	raw, err := d.cells.AppendBinary(s.raw[:0])
	s.raw = raw[:0]
	if err != nil {
		return fmt.Errorf("reram: serializing array: %w", err)
	}
	cf := chipFile{
		Format:   ChipFormat,
		Version:  chipVersion,
		Geometry: d.geom,
		Timing:   d.timing,
		Params:   d.params,
		Seed:     d.seed,
		AgeYears: d.age,
		Array:    s.quotedBase64(raw),
	}
	s.buf.Reset()
	if err := s.enc.Encode(cf); err != nil {
		return err
	}
	_, err = w.Write(s.buf.Bytes())
	return err
}

// quotedBase64 renders raw as the JSON string token the chip file
// embeds (base64 text needs no escaping, so the quotes can be placed
// directly), reusing the state's token buffer.
func (s *saveState) quotedBase64(raw []byte) json.RawMessage {
	n := base64.StdEncoding.EncodedLen(len(raw))
	if cap(s.b64) < n+2 {
		s.b64 = make([]byte, n+2)
	}
	out := s.b64[:n+2]
	out[0], out[n+1] = '"', '"'
	base64.StdEncoding.Encode(out[1:n+1], raw)
	return json.RawMessage(out)
}

// chipArrayBytes extracts the base64 text from the raw array payload.
// The fast path peels the quotes off an escape-free string token in
// place; anything else goes through encoding/json.
func chipArrayBytes(raw json.RawMessage) ([]byte, error) {
	if len(raw) >= 2 && raw[0] == '"' && raw[len(raw)-1] == '"' && bytes.IndexByte(raw, '\\') < 0 {
		return raw[1 : len(raw)-1], nil
	}
	if len(raw) == 0 {
		return nil, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// decodeChipArray base64-decodes the array payload into dst's
// capacity, allocating only when dst is too small.
func decodeChipArray(b64 []byte, dst []byte) ([]byte, error) {
	n := base64.StdEncoding.DecodedLen(len(b64))
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	m, err := base64.StdEncoding.Decode(dst, b64)
	if err != nil {
		return nil, err
	}
	return dst[:m], nil
}

// Load reconstructs a ReRAM chip from Save output.
func Load(r io.Reader) (*Device, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var l Loader
	return l.Load(data)
}

// Loader reconstructs ReRAM chips from Save output, recycling the JSON
// envelope, the binary array form, and the cell array across loads —
// the ReRAM counterpart of mcu.Loader and nand.Loader. The zero value
// is ready. A Loader is not safe for concurrent use, and the device it
// returns aliases the loader's storage: the next Load invalidates
// every previously returned device.
type Loader struct {
	cf  chipFile
	bin []byte
	arr *nor.Array
}

// Load reconstructs a ReRAM chip from the serialized chip file,
// decoding strictly from the byte slice and reusing the loader's
// buffers instead of allocating a fresh cell array per call.
func (l *Loader) Load(data []byte) (*Device, error) {
	l.cf = chipFile{Array: l.cf.Array[:0]}
	if err := json.Unmarshal(data, &l.cf); err != nil {
		return nil, fmt.Errorf("reram: decoding chip file: %w", err)
	}
	cf := &l.cf
	if cf.Format != ChipFormat {
		return nil, fmt.Errorf("reram: not a ReRAM chip file (format %q)", cf.Format)
	}
	if cf.Version != chipVersion {
		return nil, fmt.Errorf("reram: unsupported chip file version %d", cf.Version)
	}
	if err := cf.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cf.Timing.Validate(); err != nil {
		return nil, err
	}
	if !(cf.AgeYears >= 0) || math.IsInf(cf.AgeYears, 0) {
		return nil, fmt.Errorf("reram: chip file age %v out of range", cf.AgeYears)
	}
	model, err := NewModel(cf.Params, cf.Seed, cf.Geometry.TotalSegments(), cf.Geometry.CellsPerSegment())
	if err != nil {
		return nil, err
	}
	b64, err := chipArrayBytes(cf.Array)
	if err != nil {
		return nil, fmt.Errorf("reram: decoding chip file: %w", err)
	}
	bin, err := decodeChipArray(b64, l.bin)
	if err != nil {
		return nil, fmt.Errorf("reram: decoding array payload: %w", err)
	}
	l.bin = bin[:0]
	// As in mcu.Load: reject a mismatched array header before the
	// per-cell allocation, since chip files are untrusted input.
	headGeom, err := nor.ArrayGeometry(bin)
	if err != nil {
		return nil, err
	}
	if headGeom != cf.Geometry {
		return nil, fmt.Errorf("reram: chip file array geometry %+v does not match %+v", headGeom, cf.Geometry)
	}
	arr, err := nor.UnmarshalArrayInto(l.arr, bin)
	if err != nil {
		return nil, err
	}
	l.arr = arr
	return newDevice(cf.Geometry, cf.Timing, cf.Params, cf.Seed, model, arr, cf.AgeYears), nil
}
