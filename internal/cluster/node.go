package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/wallclock"
)

// Role is a node's position in its shard's primary/follower pair.
type Role int32

const (
	// RolePrimary accepts client enrollments and replicates them.
	RolePrimary Role = iota
	// RoleFollower refuses client enrollments, applies the primary's
	// replication stream, and serves reads. OpPromote flips it to
	// RolePrimary — after which it refuses the old primary's stream,
	// fencing a partitioned ex-primary out of the write path.
	RoleFollower
)

// ErrFenced reports an enrollment refused by a primary whose required
// follower link is down: accepting it would let an acknowledged record
// exist on one disk only, which a failover could then forget.
var ErrFenced = errors.New("cluster: primary fenced: follower link is down, refusing enrollments")

// NodeConfig configures one registry node.
type NodeConfig struct {
	// Store is the node's durable backend (required).
	Store *registry.Durable
	// Role the node starts in (a follower can be promoted at runtime).
	Role Role
	// FollowerAddr, on a primary, is the follower this node replicates
	// to (empty runs the primary solo).
	FollowerAddr string
	// RequireFollower fences the write path while the follower link is
	// down: enrollments fail with ErrFenced instead of landing on one
	// disk. This is what makes failover promotion safe — every
	// acknowledged enrollment exists on both nodes.
	RequireFollower bool
	// Timeout bounds one replication round trip (0 selects 5s).
	Timeout time.Duration
	// ReconnectEvery is the follower-link retry cadence (0 selects
	// 250ms).
	ReconnectEvery time.Duration
	// Now supplies wall time for replication deadlines (nil selects
	// wallclock.Now).
	Now func() time.Time
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)
	// Dial opens the replication link to the follower — the
	// fault-injection seam (nil selects net.Dial "tcp").
	Dial func(addr string) (net.Conn, error)
	// WrapConn wraps every accepted connection — the server-side
	// fault-injection seam (nil leaves connections bare).
	WrapConn func(net.Conn) net.Conn
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ReconnectEvery == 0 {
		c.ReconnectEvery = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = wallclock.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return c
}

// Node is one registry shard member: a wire-protocol server around a
// registry.Durable, plus (on a primary) the replication client that
// keeps its follower in lockstep.
//
// Write-path ordering: enroll-and-forward, link establishment, and (on
// a follower) apply-replication and promotion all serialize on one
// mutex. That single lock is the linearizability argument the fault
// matrix leans on — at every moment exactly one store is accepting the
// shard's writes, every acknowledged record is on both disks, and a
// promotion atomically cuts the old primary's stream before the first
// post-promotion write can be acknowledged.
type Node struct {
	cfg  NodeConfig
	role atomic.Int32
	// linkUp mirrors fw != nil for lock-free health reads.
	linkUp atomic.Bool

	mu sync.Mutex // serializes enroll+forward, link changes, repl apply, promote
	fw *followerLink

	connsMu sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}

	closed atomic.Bool
	stopc  chan struct{}
	wg     sync.WaitGroup
}

// NewNode validates the configuration and returns an idle node; Serve
// starts it.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("cluster: NodeConfig.Store is required")
	}
	if cfg.Role == RoleFollower && cfg.FollowerAddr != "" {
		return nil, errors.New("cluster: a follower does not replicate onward; FollowerAddr is for primaries")
	}
	cfg = cfg.withDefaults()
	n := &Node{cfg: cfg, stopc: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	n.role.Store(int32(cfg.Role))
	return n, nil
}

// Role returns the node's current role (a follower may have been
// promoted since NewNode).
func (n *Node) Role() Role { return Role(n.role.Load()) }

// LinkUp reports whether the follower replication link is established.
func (n *Node) LinkUp() bool { return n.linkUp.Load() }

// Serve accepts connections on ln until Close. On a primary with a
// follower it also runs the link-maintenance loop that establishes,
// resyncs, and re-establishes the replication stream.
func (n *Node) Serve(ln net.Listener) error {
	n.connsMu.Lock()
	n.ln = ln
	n.connsMu.Unlock()
	if n.cfg.FollowerAddr != "" {
		n.wg.Add(1)
		go n.maintainLink()
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return nil
			}
			return err
		}
		if n.cfg.WrapConn != nil {
			c = n.cfg.WrapConn(c)
		}
		n.connsMu.Lock()
		if n.closed.Load() {
			n.connsMu.Unlock()
			c.Close()
			return nil
		}
		n.conns[c] = struct{}{}
		n.connsMu.Unlock()
		n.wg.Add(1)
		go n.handleConn(c)
	}
}

// Close stops serving: the listener and every open connection are torn
// down, the follower link is dropped, and all goroutines are joined.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stopc)
	n.connsMu.Lock()
	if n.ln != nil {
		n.ln.Close()
	}
	for c := range n.conns {
		c.Close()
	}
	n.connsMu.Unlock()
	n.mu.Lock()
	n.dropLinkLocked()
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) deadline() time.Time { return n.cfg.Now().Add(n.cfg.Timeout) }

// roleByte is the OpPing health answer.
func (n *Node) roleByte() byte {
	if n.Role() == RoleFollower {
		return registry.RoleFollowerByte
	}
	if n.cfg.FollowerAddr != "" && n.cfg.RequireFollower && !n.linkUp.Load() {
		return registry.RoleDegradedByte
	}
	return registry.RolePrimaryByte
}

// enroll is the primary write path: apply locally (durable), then
// forward to the follower and wait for its fsynced ack — all under the
// node mutex, so the follower applies records in exactly the primary's
// WAL order. A forward failure drops the link (fencing subsequent
// enrollments when the follower is required) and surfaces as an error:
// the record exists locally but was never acknowledged, which is safe —
// an extra unacknowledged record can only make duplicate detection
// stricter, never laxer.
func (n *Node) enroll(e registry.Enrollment) (registry.EnrollResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.FollowerAddr != "" && n.cfg.RequireFollower && n.fw == nil {
		return registry.EnrollResult{}, ErrFenced
	}
	res, err := n.cfg.Store.Enroll(e)
	if err != nil {
		return res, err
	}
	if n.fw != nil {
		if ferr := n.fw.forward(e, n.deadline()); ferr != nil {
			n.dropLinkLocked()
			n.cfg.Logf("replication to %s failed, dropping link: %v", n.cfg.FollowerAddr, ferr)
			return res, fmt.Errorf("cluster: replication failed, enrollment recorded locally but not acknowledged: %w", ferr)
		}
	}
	return res, nil
}

// applyRepl is the follower write path: refuse once promoted, else
// apply to the local durable store. Sharing the node mutex with
// promote makes the promotion boundary exact — no replicated record
// can land after OpPromote has been acknowledged.
func (n *Node) applyRepl(e registry.Enrollment) (int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if Role(n.role.Load()) != RoleFollower {
		return 0, errors.New("node promoted to primary; replication stream refused")
	}
	if _, err := n.cfg.Store.Enroll(e); err != nil {
		return 0, err
	}
	return n.cfg.Store.Stats().Enrollments, nil
}

// promote flips a follower to primary. Idempotent on a primary.
func (n *Node) promote() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if Role(n.role.Load()) == RoleFollower {
		n.cfg.Logf("promoted to primary at position %d", n.cfg.Store.Stats().Enrollments)
	}
	n.role.Store(int32(RolePrimary))
}

// importState is the follower side of snapshot shipping.
func (n *Node) importState(state []registry.LookupResult) (int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if Role(n.role.Load()) != RoleFollower {
		return 0, errors.New("node promoted to primary; snapshot refused")
	}
	if err := n.cfg.Store.ImportState(state); err != nil {
		return 0, err
	}
	return n.cfg.Store.Stats().Enrollments, nil
}

func (n *Node) dropLinkLocked() {
	if n.fw != nil {
		n.fw.close()
		n.fw = nil
	}
	n.linkUp.Store(false)
}

// maintainLink re-establishes the follower link whenever it is down:
// dial, position handshake, snapshot ship if diverged, then hand the
// live connection to the enroll path.
func (n *Node) maintainLink() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.fw == nil && !n.closed.Load() {
			if err := n.connectFollowerLocked(); err != nil {
				n.cfg.Logf("follower link to %s not established: %v", n.cfg.FollowerAddr, err)
			} else {
				n.cfg.Logf("follower link to %s established", n.cfg.FollowerAddr)
			}
		}
		n.mu.Unlock()
		select {
		case <-n.stopc:
			return
		case <-time.After(n.cfg.ReconnectEvery):
		}
	}
}

// connectFollowerLocked performs the resync handshake under the node
// mutex, so no enrollment can slip between the position exchange and
// the live stream:
//
//	-> OpSync [u64 myPos]      <- OpSyncOK [u64 theirPos]
//	(diverged: -> OpSnapBegin [u64 n], n x OpSnapChunk, OpSnapEnd
//	           <- OpOK [u64 newPos])
//
// Position is the store's total applied-enrollment count — a pure
// function of the record history, so equal positions on two nodes that
// only ever talked to each other mean equal states.
func (n *Node) connectFollowerLocked() error {
	c, err := n.cfg.Dial(n.cfg.FollowerAddr)
	if err != nil {
		return err
	}
	l := newFollowerLink(c)
	myPos := n.cfg.Store.Stats().Enrollments
	theirPos, err := l.syncHandshake(myPos, n.deadline())
	if err != nil {
		l.close()
		return err
	}
	if theirPos != myPos {
		n.cfg.Logf("follower at position %d, primary at %d: shipping snapshot", theirPos, myPos)
		newPos, err := l.shipSnapshot(n.cfg.Store, n.deadline())
		if err != nil {
			l.close()
			return err
		}
		if newPos != myPos {
			l.close()
			return fmt.Errorf("cluster: follower at position %d after snapshot, want %d", newPos, myPos)
		}
	}
	n.fw = l
	n.linkUp.Store(true)
	return nil
}

// snapshotState materializes the full read-side state for shipping.
func snapshotState(store *registry.Durable) []registry.LookupResult {
	state := make([]registry.LookupResult, 0, store.Stats().Keys)
	store.Range(func(k registry.Key, r registry.LookupResult) bool {
		state = append(state, r)
		return true
	})
	return state
}

// writeU64 renders one little-endian u64 payload.
func writeU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
