package cluster

import (
	"testing"

	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/rng"
)

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
}

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(4)
	r := rng.New(0x5eed)
	for i := 0; i < 1000; i++ {
		k := registry.Key{Manufacturer: "TC", DieID: r.Uint64()}
		sa, sb := a.Shard(k), b.Shard(k)
		if sa != sb {
			t.Fatalf("ring placement not deterministic for %+v: %d vs %d", k, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("shard %d out of range", sa)
		}
	}
}

func TestRingSingleShardShortcut(t *testing.T) {
	ring, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	for die := uint64(0); die < 100; die++ {
		if s := ring.Shard(registry.Key{Manufacturer: "TC", DieID: die}); s != 0 {
			t.Fatalf("single-shard ring routed die %d to shard %d", die, s)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	const shards, keys = 4, 8000
	ring, err := NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	r := rng.New(20260808)
	for i := 0; i < keys; i++ {
		counts[ring.Shard(registry.Key{Manufacturer: "TC", DieID: r.Uint64()})]++
	}
	// With 64 vnodes per shard the arc lengths even out; anything
	// within 2x of the fair share is fine for a routing table.
	fair := keys / shards
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d holds %d of %d keys (fair share %d): %v", s, c, keys, fair, counts)
		}
	}
}

func TestRingManufacturerMatters(t *testing.T) {
	ring, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct manufacturers with the same die id should not all land
	// on one shard; the key hash covers both fields.
	same := 0
	base := ring.Shard(registry.Key{Manufacturer: "mfg-0", DieID: 42})
	for i := 1; i < 32; i++ {
		k := registry.Key{Manufacturer: "mfg-" + string(rune('a'+i)), DieID: 42}
		if ring.Shard(k) == base {
			same++
		}
	}
	if same == 31 {
		t.Fatal("manufacturer is ignored by the ring hash")
	}
}
