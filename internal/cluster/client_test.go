package cluster

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

// startCluster brings up n solo-primary shards and a client routed
// across them.
func startCluster(t *testing.T, n int) (*Client, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, n)
	spec := make([]ShardSpec, n)
	for i := range nodes {
		nodes[i] = startNode(t, t.TempDir(), NodeConfig{Role: RolePrimary})
		spec[i] = ShardSpec{Primary: nodes[i].addr}
	}
	c, err := NewClient(spec, ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, nodes
}

func TestClientRoutesAcrossShards(t *testing.T) {
	c, nodes := startCluster(t, 2)
	for die := uint64(0); die < 64; die++ {
		if _, err := c.Enroll(clusterEnr(die, 0xA1, "line")); err != nil {
			t.Fatalf("enroll %d: %v", die, err)
		}
	}
	s0 := nodes[0].store.Stats().Keys
	s1 := nodes[1].store.Stats().Keys
	if s0+s1 != 64 {
		t.Fatalf("keys split %d + %d, want 64 total", s0, s1)
	}
	if s0 == 0 || s1 == 0 {
		t.Fatalf("one shard holds everything (%d / %d): the ring is not spreading keys", s0, s1)
	}
	// Every key resolves through the client regardless of which shard
	// holds it, and duplicate detection crosses the enroll/lookup paths.
	for die := uint64(0); die < 64; die++ {
		k := registry.Key{Manufacturer: "TC", DieID: die}
		if !c.SeenBefore(k) {
			t.Fatalf("die %d lost after enrollment", die)
		}
		lr, found := c.Lookup(k)
		if !found || lr.Count != 1 {
			t.Fatalf("lookup die %d: found=%v %+v", die, found, lr)
		}
	}
	st := c.Stats()
	if st.Keys != 64 || st.Enrollments != 64 {
		t.Fatalf("aggregated stats: %+v", st)
	}
}

func TestClientDuplicateDetectionAcrossShards(t *testing.T) {
	c, _ := startCluster(t, 2)
	if _, err := c.Enroll(clusterEnr(7001, 0xA1, "victim")); err != nil {
		t.Fatal(err)
	}
	res, err := c.Enroll(clusterEnr(7001, 0xB2, "clone"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || !res.Conflict {
		t.Fatalf("clone not flagged through the cluster client: %+v", res)
	}
}

func TestClientBatchPreservesOrder(t *testing.T) {
	c, _ := startCluster(t, 3)
	dies := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	for i, die := range dies {
		if i%2 == 0 { // enroll only the even slots
			if _, err := c.Enroll(clusterEnr(die, byte(die), "line")); err != nil {
				t.Fatal(err)
			}
		}
	}
	keys := make([]registry.Key, len(dies))
	for i, die := range dies {
		keys[i] = registry.Key{Manufacturer: "TC", DieID: die}
	}
	rs, fs := c.LookupBatch(keys)
	if len(rs) != len(dies) || len(fs) != len(dies) {
		t.Fatalf("batch shape: %d results, %d founds", len(rs), len(fs))
	}
	for i, die := range dies {
		wantFound := i%2 == 0
		if fs[i] != wantFound {
			t.Fatalf("slot %d (die %d): found=%v, want %v", i, die, fs[i], wantFound)
		}
		// The scatter/gather must put each shard's answers back in the
		// caller's slots: the fingerprint byte identifies the die.
		if wantFound && rs[i].Fingerprint[0] != byte(die) {
			t.Fatalf("slot %d holds die %x's state", i, rs[i].Fingerprint[0])
		}
		// Batch answers must agree with single lookups.
		single, ok := c.Lookup(keys[i])
		if ok != fs[i] || single != rs[i] {
			t.Fatalf("slot %d: batch %+v/%v vs single %+v/%v", i, rs[i], fs[i], single, ok)
		}
	}
}

func TestClientFailoverPromotesFollower(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)

	c, err := NewClient([]ShardSpec{{Primary: primary.addr, Follower: follower.addr}},
		ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Enroll(clusterEnr(8001, 0xA1, "victim")); err != nil {
		t.Fatal(err)
	}
	primary.kill()

	// The next write hits the dead primary, pings the follower,
	// promotes it, and retries — one failover, no error surfaced.
	res, err := c.Enroll(clusterEnr(8001, 0xB2, "clone"))
	if err != nil {
		t.Fatalf("enroll after primary death: %v", err)
	}
	if !res.Duplicate || !res.Conflict {
		t.Fatalf("clone not flagged after failover: %+v", res)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("Failovers() = %d, want 1", got)
	}
	if follower.node.Role() != RolePrimary {
		t.Fatal("follower was not promoted")
	}
	// Subsequent traffic sticks to the promoted node without repeating
	// the failover dance.
	if _, err := c.Enroll(clusterEnr(8002, 0xC3, "line")); err != nil {
		t.Fatal(err)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("Failovers() after steady state = %d, want 1", got)
	}
}

func TestClientReadsFailOpen(t *testing.T) {
	node := startNode(t, t.TempDir(), NodeConfig{Role: RolePrimary})
	c, err := NewClient([]ShardSpec{{Primary: node.addr}}, ClientOptions{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Enroll(clusterEnr(9001, 0xA1, "line")); err != nil {
		t.Fatal(err)
	}
	node.kill()

	k := registry.Key{Manufacturer: "TC", DieID: 9001}
	if _, found := c.Lookup(k); found {
		t.Fatal("lookup against a dead shard claimed to find the key")
	}
	if c.SeenBefore(k) {
		t.Fatal("SeenBefore against a dead shard returned true")
	}
	if got := c.FailOpens(); got == 0 {
		t.Fatal("fail-open reads were not counted")
	}
	rs, fs := c.LookupBatch([]registry.Key{k})
	if fs[0] || rs[0].Count != 0 {
		t.Fatalf("batch against a dead shard: found=%v %+v", fs[0], rs[0])
	}
	// Writes do NOT fail open: the caller must hear about a shard that
	// cannot record an identity.
	if _, err := c.Enroll(clusterEnr(9002, 0xB2, "line")); err == nil {
		t.Fatal("enroll against a dead shard succeeded")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(nil, ClientOptions{}); err == nil {
		t.Fatal("NewClient accepted an empty membership table")
	}
}
