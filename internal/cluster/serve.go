package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"github.com/flashmark/flashmark/internal/registry"
)

// handleConn speaks the wire protocol on one accepted connection until
// the peer hangs up or sends something unspeakable. One connection may
// carry any mix of client requests and (toward a follower) the
// replication stream — the opcodes disambiguate.
func (n *Node) handleConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connsMu.Lock()
		delete(n.conns, c)
		n.connsMu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var buf, scratch []byte
	for {
		op, payload, err := registry.ReadMessage(br, buf)
		if err != nil {
			if err != io.EOF && !n.closed.Load() {
				n.cfg.Logf("connection from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		buf = payload[:0]
		scratch, err = n.serveOp(br, bw, op, payload, scratch[:0])
		if err != nil {
			if !n.closed.Load() {
				n.cfg.Logf("connection from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// serveOp answers one request, buffering the response onto bw. It
// returns the scratch buffer for reuse; a returned error tears the
// connection down.
func (n *Node) serveOp(br *bufio.Reader, bw *bufio.Writer, op registry.Op, payload, scratch []byte) ([]byte, error) {
	switch op {
	case registry.OpPing:
		return scratch, registry.WriteMessage(bw, registry.OpOK, []byte{n.roleByte()})

	case registry.OpEnroll:
		if n.Role() != RolePrimary {
			return scratch, writeErr(bw, "node is a follower; enroll at the shard primary")
		}
		e, err := registry.DecodeWireEnrollment(payload)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		res, err := n.enroll(e)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		scratch, err = registry.AppendWireEnrollResult(scratch, res)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		return scratch, registry.WriteMessage(bw, registry.OpOK, scratch)

	case registry.OpLookup:
		k, _, err := registry.DecodeWireKey(payload)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		lr, found := n.cfg.Store.Lookup(k)
		if !found {
			return scratch, registry.WriteMessage(bw, registry.OpOK, []byte{0})
		}
		scratch = append(scratch, 1)
		scratch, err = registry.AppendWireState(scratch, lr)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		return scratch, registry.WriteMessage(bw, registry.OpOK, scratch)

	case registry.OpSeen:
		k, _, err := registry.DecodeWireKey(payload)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		var seen byte
		if n.cfg.Store.SeenBefore(k) {
			seen = 1
		}
		return scratch, registry.WriteMessage(bw, registry.OpOK, []byte{seen})

	case registry.OpStats:
		scratch = registry.AppendWireStats(scratch, n.cfg.Store.Stats())
		return scratch, registry.WriteMessage(bw, registry.OpOK, scratch)

	case registry.OpLookupBatch:
		return n.serveLookupBatch(bw, payload, scratch)

	case registry.OpPromote:
		n.promote()
		return scratch, registry.WriteMessage(bw, registry.OpOK, nil)

	case registry.OpSync:
		if len(payload) != 8 {
			return scratch, writeErr(bw, "bad sync payload")
		}
		if n.Role() != RoleFollower {
			return scratch, writeErr(bw, "not a follower; sync refused")
		}
		pos := n.cfg.Store.Stats().Enrollments
		return scratch, registry.WriteMessage(bw, registry.OpSyncOK, writeU64(uint64(pos)))

	case registry.OpSnapBegin:
		return scratch, n.receiveSnapshot(br, bw, payload)

	case registry.OpRepl:
		e, err := registry.DecodeWireEnrollment(payload)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		pos, err := n.applyRepl(e)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		return scratch, registry.WriteMessage(bw, registry.OpReplAck, writeU64(uint64(pos)))

	default:
		return scratch, fmt.Errorf("cluster: unknown op %#x", byte(op))
	}
}

// serveLookupBatch answers one OpLookupBatch: u32 n | n keys in, u32 n |
// per key (u8 found | framed state) out. States are length-prefixed
// inside the payload so the client can skip past them without decoding.
func (n *Node) serveLookupBatch(bw *bufio.Writer, payload, scratch []byte) ([]byte, error) {
	if len(payload) < 4 {
		return scratch, writeErr(bw, "short batch payload")
	}
	count := int(binary.LittleEndian.Uint32(payload))
	off := 4
	scratch = binary.LittleEndian.AppendUint32(scratch, uint32(count))
	var ent []byte
	for i := 0; i < count; i++ {
		k, used, err := registry.DecodeWireKey(payload[off:])
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		off += used
		lr, found := n.cfg.Store.Lookup(k)
		if !found {
			scratch = append(scratch, 0)
			continue
		}
		scratch = append(scratch, 1)
		ent, err = registry.AppendWireState(ent[:0], lr)
		if err != nil {
			return scratch, writeErr(bw, err.Error())
		}
		scratch = binary.LittleEndian.AppendUint32(scratch, uint32(len(ent)))
		scratch = append(scratch, ent...)
	}
	if off != len(payload) {
		return scratch, writeErr(bw, "trailing bytes in batch payload")
	}
	return scratch, registry.WriteMessage(bw, registry.OpOK, scratch)
}

// receiveSnapshot is the follower side of snapshot shipping: read the
// declared number of state chunks, then the end marker, then replace
// the local store's contents wholesale and report the new position.
// The declared count caps the loop, never a preallocation.
func (n *Node) receiveSnapshot(br *bufio.Reader, bw *bufio.Writer, payload []byte) error {
	if len(payload) != 8 {
		return writeErr(bw, "bad snapshot header")
	}
	if n.Role() != RoleFollower {
		return writeErr(bw, "not a follower; snapshot refused")
	}
	count := binary.LittleEndian.Uint64(payload)
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	state := make([]registry.LookupResult, 0, capHint)
	var buf []byte
	for i := uint64(0); i < count; i++ {
		op, p, err := registry.ReadMessage(br, buf)
		if err != nil {
			return fmt.Errorf("cluster: snapshot chunk %d: %w", i, err)
		}
		buf = p[:0]
		if op != registry.OpSnapChunk {
			return fmt.Errorf("cluster: snapshot chunk %d: unexpected op %#x", i, byte(op))
		}
		lr, err := registry.DecodeWireState(p)
		if err != nil {
			return fmt.Errorf("cluster: snapshot chunk %d: %w", i, err)
		}
		state = append(state, lr)
	}
	op, _, err := registry.ReadMessage(br, buf)
	if err != nil {
		return fmt.Errorf("cluster: snapshot end: %w", err)
	}
	if op != registry.OpSnapEnd {
		return fmt.Errorf("cluster: snapshot end: unexpected op %#x", byte(op))
	}
	pos, err := n.importState(state)
	if err != nil {
		return writeErr(bw, err.Error())
	}
	n.cfg.Logf("imported snapshot: %d keys, position %d", len(state), pos)
	return registry.WriteMessage(bw, registry.OpOK, writeU64(uint64(pos)))
}

func writeErr(bw *bufio.Writer, msg string) error {
	return registry.WriteMessage(bw, registry.OpErr, []byte(msg))
}
