package cluster

// Fault matrix for the distributed plane, in the style of
// internal/registry/crash_test.go: every crash/partition window a
// deployment can hit — primary killed after or before an ack, promotion
// racing a live replication stream, the replication link cut mid-frame
// at seeded byte offsets — and the one invariant that must hold through
// all of them: no enrolled die id is ever double-accepted. Concretely,
// if a clone's enrollment for an already-victimized die id comes back
// as a clean first-enrollment ack, the victim's earlier enrollment must
// NOT have been acknowledged either — at most one of the two conflicting
// enrollments ever gets a clean ack, so a fleet auditor who trusts acks
// never holds two GENUINE certificates for one die id.

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/rng"
)

// cleanAck reports whether an enroll outcome is a clean first-enrollment
// acknowledgement — the only outcome that lets a chip ship as GENUINE.
func cleanAck(res registry.EnrollResult, err error) bool {
	return err == nil && !res.Duplicate && !res.Conflict
}

// TestFaultMatrixPrimaryCrashAfterAck: the victim is acked, the primary
// dies, the follower is promoted, and the clone must be caught.
func TestFaultMatrixPrimaryCrashAfterAck(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)

	pc := primary.remote()
	victim, err := pc.Enroll(clusterEnr(1, 0xA1, "victim"))
	if !cleanAck(victim, err) {
		t.Fatalf("victim not cleanly acked: %+v %v", victim, err)
	}
	primary.kill()

	fc := follower.remote()
	if err := fc.Promote(); err != nil {
		t.Fatal(err)
	}
	clone, err := fc.Enroll(clusterEnr(1, 0xB2, "clone"))
	if err != nil {
		t.Fatal(err)
	}
	if cleanAck(clone, err) {
		t.Fatal("clone got a clean ack for an acked die id: double acceptance")
	}
	if !clone.Conflict {
		t.Fatalf("clone accepted without a conflict flag: %+v", clone)
	}
}

// TestFaultMatrixPrimaryCrashBeforeAck: the primary dies before the
// victim enrolls. The promoted follower takes the "victim" enrollment
// cleanly — there is nothing to conflict with — and when the old
// primary's disk comes back its node must stay fenced rather than
// rejoin and hand out acks of its own.
func TestFaultMatrixPrimaryCrashBeforeAck(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primaryDir := t.TempDir()
	primary := startNode(t, primaryDir, NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)
	primary.stop()

	fc := follower.remote()
	if err := fc.Promote(); err != nil {
		t.Fatal(err)
	}
	res, err := fc.Enroll(clusterEnr(2, 0xA1, "victim"))
	if !cleanAck(res, err) {
		t.Fatalf("victim at promoted node: %+v %v", res, err)
	}

	// The old primary restarts pointing at its old follower — which is
	// now a primary and refuses the OpSync handshake. Enrollments at the
	// revenant must be refused (fenced), not acked.
	revenant := startNode(t, primaryDir, NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	time.Sleep(100 * time.Millisecond) // give the reconnect loop a few attempts
	if revenant.node.LinkUp() {
		t.Fatal("revenant primary linked to a promoted node")
	}
	rres, rerr := revenant.remote().Enroll(clusterEnr(2, 0xB2, "clone"))
	if cleanAck(rres, rerr) {
		t.Fatal("fenced revenant primary handed out a clean ack")
	}
}

// TestFaultMatrixPromotionDuringPartition: the follower is promoted
// while the old primary still believes its replication link is healthy.
// The promotion boundary (both sides of the node mutex) must guarantee
// at most one clean ack for the contested die id.
func TestFaultMatrixPromotionDuringPartition(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)

	fc := follower.remote()
	if err := fc.Promote(); err != nil {
		t.Fatal(err)
	}
	// Old primary: its follower link is still open, but the promoted
	// node refuses the replication record, so the enrollment is recorded
	// locally and NOT acknowledged.
	vres, verr := primary.remote().Enroll(clusterEnr(3, 0xA1, "victim"))
	if cleanAck(vres, verr) {
		t.Fatal("old primary acked an enrollment past the promotion boundary")
	}
	// Promoted node: the clone's enrollment is the first replicated-
	// plane record for this id, so it gets the clean ack — exactly one
	// side of the partition can win.
	cres, cerr := fc.Enroll(clusterEnr(3, 0xB2, "clone"))
	if !cleanAck(cres, cerr) {
		t.Fatalf("promoted node refused the only acknowledgeable enrollment: %+v %v", cres, cerr)
	}
}

// TestFaultMatrixFollowerCrashFencesPrimary: losing the follower mid-
// stream fences a RequireFollower primary until the follower returns,
// then resync lifts the fence with states converged.
func TestFaultMatrixFollowerCrashFencesPrimary(t *testing.T) {
	followerDir := t.TempDir()
	follower := startNode(t, followerDir, NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)
	pc := primary.remote()
	if res, err := pc.Enroll(clusterEnr(4, 0xA1, "victim")); !cleanAck(res, err) {
		t.Fatalf("seed enrollment: %+v %v", res, err)
	}
	follower.stop()

	// First write discovers the dead link (recorded locally, not acked);
	// after that the fence refuses outright.
	if res, err := pc.Enroll(clusterEnr(5, 0xB2, "during-outage")); cleanAck(res, err) {
		t.Fatal("enrollment acked with the follower dead")
	}
	var oe *registry.OpError
	if _, err := pc.Enroll(clusterEnr(6, 0xC3, "during-outage")); !errors.As(err, &oe) {
		t.Fatalf("fence not engaged: %v", err)
	}

	// Follower returns on the same port with its old disk; the sync
	// handshake ships a snapshot for the missed record and the fence
	// lifts.
	fln, err := net.Listen("tcp", follower.addr)
	if err != nil {
		t.Skipf("follower port was reclaimed by the OS: %v", err)
	}
	fstore, err := registry.Open(followerDir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fnode, err := NewNode(NodeConfig{Store: fstore, Role: RoleFollower})
	if err != nil {
		t.Fatal(err)
	}
	go fnode.Serve(fln)
	t.Cleanup(func() { fnode.Close(); fstore.Close() })
	waitLink(t, primary.node)

	if res, err := pc.Enroll(clusterEnr(7, 0xD4, "after-recovery")); !cleanAck(res, err) {
		t.Fatalf("enrollment after follower recovery: %+v %v", res, err)
	}
	if got, want := fstore.Stats().Enrollments, primary.store.Stats().Enrollments; got != want {
		t.Fatalf("states diverged after resync: follower %d, primary %d", got, want)
	}
}

// cutConn severs the connection after a seeded number of written bytes,
// simulating a partition that lands mid-frame in the replication stream.
type cutConn struct {
	net.Conn
	mu      sync.Mutex
	remain  int
	severed bool
}

func (c *cutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return 0, io.ErrClosedPipe
	}
	if len(p) >= c.remain {
		n, _ := c.Conn.Write(p[:c.remain])
		c.severed = true
		c.Conn.Close()
		return n, io.ErrClosedPipe
	}
	c.remain -= len(p)
	return c.Conn.Write(p)
}

// TestFaultMatrixSeededLinkCuts sweeps seeded byte offsets at which the
// replication link is severed mid-write, then drives the full failover
// dance and checks the no-double-accept invariant every time. The cut
// can land before the victim's record reaches the follower (victim
// unacked, clone wins cleanly at the promoted node) or after (victim
// acked, clone flagged) — both are legal; two clean acks never are.
func TestFaultMatrixSeededLinkCuts(t *testing.T) {
	r := rng.New(20260808)
	for round := 0; round < 12; round++ {
		cutAfter := 1 + r.Intn(200)
		t.Run("", func(t *testing.T) {
			follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
			var cut *cutConn
			primary := startNode(t, t.TempDir(), NodeConfig{
				Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
				Dial: func(addr string) (net.Conn, error) {
					c, err := net.Dial("tcp", addr)
					if err != nil {
						return nil, err
					}
					cut = &cutConn{Conn: c, remain: cutAfter}
					return cut, nil
				},
			})
			// The sync handshake itself may eat the budget; if the link
			// never comes up the primary is simply fenced — also a legal
			// state with zero acks. Wait briefly, then proceed either way.
			deadline := time.After(300 * time.Millisecond)
		wait:
			for !primary.node.LinkUp() {
				select {
				case <-deadline:
					break wait
				case <-time.After(5 * time.Millisecond):
				}
			}

			victimRes, victimErr := primary.remote().Enroll(clusterEnr(9, 0xA1, "victim"))
			victimAcked := cleanAck(victimRes, victimErr)

			primary.kill()
			fc := follower.remote()
			if err := fc.Promote(); err != nil {
				t.Fatal(err)
			}
			cloneRes, cloneErr := fc.Enroll(clusterEnr(9, 0xB2, "clone"))
			cloneClean := cleanAck(cloneRes, cloneErr)

			if victimAcked && cloneClean {
				t.Fatalf("cut after %d bytes: both victim and clone got clean acks (victim %+v, clone %+v)",
					cutAfter, victimRes, cloneRes)
			}
			if victimAcked && !cloneRes.Conflict {
				t.Fatalf("cut after %d bytes: victim acked but clone not flagged: %+v", cutAfter, cloneRes)
			}
		})
	}
}
