package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

// followerLink is the primary's end of the replication stream: one
// long-lived connection carrying the OpSync handshake, an optional
// snapshot ship, and then one OpRepl/OpReplAck round trip per
// enrollment. The owning Node serializes all use under its mutex.
type followerLink struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	buf     []byte
	scratch []byte
}

func newFollowerLink(c net.Conn) *followerLink {
	return &followerLink{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

func (l *followerLink) close() { l.c.Close() }

func (l *followerLink) read() (registry.Op, []byte, error) {
	op, p, err := registry.ReadMessage(l.br, l.buf)
	if err != nil {
		return 0, nil, err
	}
	l.buf = p[:0]
	return op, p, nil
}

// syncHandshake exchanges replication positions.
func (l *followerLink) syncHandshake(myPos int64, deadline time.Time) (theirPos int64, err error) {
	if err := l.c.SetDeadline(deadline); err != nil {
		return 0, err
	}
	if err := registry.WriteMessage(l.bw, registry.OpSync, writeU64(uint64(myPos))); err != nil {
		return 0, err
	}
	if err := l.bw.Flush(); err != nil {
		return 0, err
	}
	op, p, err := l.read()
	if err != nil {
		return 0, err
	}
	switch {
	case op == registry.OpSyncOK && len(p) == 8:
		return int64(binary.LittleEndian.Uint64(p)), nil
	case op == registry.OpErr:
		return 0, &registry.OpError{Msg: string(p)}
	default:
		return 0, fmt.Errorf("cluster: bad sync response op %#x", byte(op))
	}
}

// shipSnapshot streams the primary's full state to the follower, which
// replaces its contents wholesale and reports its new position.
func (l *followerLink) shipSnapshot(store *registry.Durable, deadline time.Time) (newPos int64, err error) {
	if err := l.c.SetDeadline(deadline); err != nil {
		return 0, err
	}
	state := snapshotState(store)
	if err := registry.WriteMessage(l.bw, registry.OpSnapBegin, writeU64(uint64(len(state)))); err != nil {
		return 0, err
	}
	for _, r := range state {
		l.scratch, err = registry.AppendWireState(l.scratch[:0], r)
		if err != nil {
			return 0, err
		}
		if err := registry.WriteMessage(l.bw, registry.OpSnapChunk, l.scratch); err != nil {
			return 0, err
		}
	}
	if err := registry.WriteMessage(l.bw, registry.OpSnapEnd, nil); err != nil {
		return 0, err
	}
	if err := l.bw.Flush(); err != nil {
		return 0, err
	}
	op, p, err := l.read()
	if err != nil {
		return 0, err
	}
	switch {
	case op == registry.OpOK && len(p) == 8:
		return int64(binary.LittleEndian.Uint64(p)), nil
	case op == registry.OpErr:
		return 0, &registry.OpError{Msg: string(p)}
	default:
		return 0, fmt.Errorf("cluster: bad snapshot response op %#x", byte(op))
	}
}

// forward replicates one enrollment and waits for the follower's
// fsynced acknowledgment.
func (l *followerLink) forward(e registry.Enrollment, deadline time.Time) error {
	var err error
	l.scratch, err = registry.AppendWireEnrollment(l.scratch[:0], e)
	if err != nil {
		return err
	}
	if err := l.c.SetDeadline(deadline); err != nil {
		return err
	}
	if err := registry.WriteMessage(l.bw, registry.OpRepl, l.scratch); err != nil {
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	op, p, err := l.read()
	if err != nil {
		return err
	}
	switch op {
	case registry.OpReplAck:
		return nil
	case registry.OpErr:
		return &registry.OpError{Msg: string(p)}
	default:
		return fmt.Errorf("cluster: bad replication ack op %#x", byte(op))
	}
}
