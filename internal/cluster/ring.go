// Package cluster is the distributed verification plane: a sharded
// fleet registry behind the registry.Store seam. A consistent-hash
// ring routes each die identity to one shard; every shard is an
// fmregistryd primary that synchronously replicates its WAL to a
// follower and ships snapshots to resync a diverged one; Client is the
// stateless router fmverifyd uses, with deterministic failover
// promotion when a primary dies. The Store contract the single-node
// backends honor — acknowledged enrollments are durable, duplicate and
// conflict semantics come from the one shared dedup kernel — holds
// across the plane: an enrollment is acknowledged only after both the
// primary and its follower have it on disk, so no promotion can forget
// an acked die identity.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/flashmark/flashmark/internal/registry"
)

// vnodesPerShard is how many ring points each shard contributes.
// 64 virtual nodes keep the key share of N shards within a few percent
// of 1/N without making ring construction or lookup measurable.
const vnodesPerShard = 64

// Ring is a consistent-hash ring over a static membership table of N
// shards. It is immutable after construction: membership is
// configuration, not gossip, and every router instance built from the
// same table routes every key identically — which is what lets a
// stateless verify tier scale horizontally without coordination.
type Ring struct {
	hashes []uint64 // sorted vnode positions
	shards []int    // shards[i] owns hashes[i]
	n      int
}

// NewRing builds the ring for n shards (n >= 1).
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", n)
	}
	r := &Ring{
		hashes: make([]uint64, 0, n*vnodesPerShard),
		shards: make([]int, 0, n*vnodesPerShard),
		n:      n,
	}
	var label [16]byte
	for shard := 0; shard < n; shard++ {
		for v := 0; v < vnodesPerShard; v++ {
			binary.LittleEndian.PutUint64(label[:8], uint64(shard))
			binary.LittleEndian.PutUint64(label[8:], uint64(v))
			r.hashes = append(r.hashes, fnv64a(label[:]))
			r.shards = append(r.shards, shard)
		}
	}
	sort.Sort(ringPoints{r.hashes, r.shards})
	return r, nil
}

// Shards returns the membership size.
func (r *Ring) Shards() int { return r.n }

// Shard routes a die identity to its owning shard: the first vnode at
// or after the key's hash, wrapping at the top of the ring.
func (r *Ring) Shard(k registry.Key) int {
	if r.n == 1 {
		return 0
	}
	h := keyHash(k)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

// keyHash is FNV-64a over the manufacturer bytes, a separator, and the
// little-endian die id — allocation-free and stable across processes,
// so the routing table is part of the cluster's configuration contract.
func keyHash(k registry.Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Manufacturer); i++ {
		h = (h ^ uint64(k.Manufacturer[i])) * prime64
	}
	h = (h ^ 0xFF) * prime64
	id := k.DieID
	for i := 0; i < 8; i++ {
		h = (h ^ (id & 0xFF)) * prime64
		id >>= 8
	}
	return h
}

func fnv64a(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// ringPoints sorts vnode hashes and their shard owners together.
type ringPoints struct {
	hashes []uint64
	shards []int
}

func (p ringPoints) Len() int           { return len(p.hashes) }
func (p ringPoints) Less(i, j int) bool { return p.hashes[i] < p.hashes[j] }
func (p ringPoints) Swap(i, j int) {
	p.hashes[i], p.hashes[j] = p.hashes[j], p.hashes[i]
	p.shards[i], p.shards[j] = p.shards[j], p.shards[i]
}
