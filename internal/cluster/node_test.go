package cluster

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

// testNode is one in-process registry node bound to a loopback port.
type testNode struct {
	t     *testing.T
	store *registry.Durable
	node  *Node
	addr  string
	dir   string
}

// startNode opens (or reopens) a durable store in dir and serves it.
// cfg.Store is filled in; cfg defaults keep tests snappy.
func startNode(t *testing.T, dir string, cfg NodeConfig) *testNode {
	t.Helper()
	store, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.ReconnectEvery == 0 {
		cfg.ReconnectEvery = 20 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	node, err := NewNode(cfg)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	tn := &testNode{t: t, store: store, node: node, addr: ln.Addr().String(), dir: dir}
	go node.Serve(ln)
	t.Cleanup(func() { tn.stop() })
	return tn
}

// stop shuts the node down gracefully (idempotent).
func (tn *testNode) stop() {
	tn.node.Close()
	tn.store.Close()
}

// kill tears the node's sockets down without closing the store cleanly,
// approximating a process crash: every acked enrollment was already
// fsynced by the store's write path, anything buffered is lost with the
// process.
func (tn *testNode) kill() {
	tn.node.Close()
}

func (tn *testNode) remote() *registry.Remote {
	r := registry.NewRemote(tn.addr, registry.RemoteOptions{Timeout: 2 * time.Second})
	tn.t.Cleanup(func() { r.Close() })
	return r
}

func clusterEnr(die uint64, fpb byte, src string) registry.Enrollment {
	var fp registry.Fingerprint
	fp[0] = fpb
	return registry.Enrollment{
		Key:         registry.Key{Manufacturer: "TC", DieID: die},
		Fingerprint: fp,
		Source:      src,
		UnixMicro:   1722470400000000,
	}
}

// waitLink polls until the primary reports its follower link up.
func waitLink(t *testing.T, n *Node) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !n.LinkUp() {
		select {
		case <-deadline:
			t.Fatal("follower link never came up")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestSoloPrimaryServesStore(t *testing.T) {
	tn := startNode(t, t.TempDir(), NodeConfig{Role: RolePrimary})
	rc := tn.remote()

	if role, err := rc.Ping(); err != nil || role != registry.RolePrimaryByte {
		t.Fatalf("ping: role %c err %v", role, err)
	}
	res, err := rc.Enroll(clusterEnr(1001, 0xA1, "dock"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Duplicate || res.Conflict {
		t.Fatalf("first enrollment: %+v", res)
	}
	res, err = rc.Enroll(clusterEnr(1001, 0xB2, "dock"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || !res.Conflict {
		t.Fatalf("conflicting enrollment not flagged: %+v", res)
	}

	lr, found := rc.Lookup(registry.Key{Manufacturer: "TC", DieID: 1001})
	if !found || !lr.Conflict || lr.Count != 2 {
		t.Fatalf("lookup: found=%v %+v", found, lr)
	}
	if !rc.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 1001}) {
		t.Fatal("SeenBefore missed an enrolled key")
	}
	if rc.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 9999}) {
		t.Fatal("SeenBefore invented a key")
	}
	st := rc.Stats()
	if st.Keys != 1 || st.Enrollments != 2 || st.Conflicts != 1 {
		t.Fatalf("stats over the wire: %+v", st)
	}
	if st.WALSegments < 1 {
		t.Fatalf("WALSegments = %d, want >= 1", st.WALSegments)
	}

	keys := []registry.Key{
		{Manufacturer: "TC", DieID: 1001},
		{Manufacturer: "TC", DieID: 4242},
	}
	rs, fs, err := rc.LookupBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0] || fs[1] {
		t.Fatalf("batch found = %v", fs)
	}
	if rs[0].Count != 2 || !rs[0].Conflict {
		t.Fatalf("batch result = %+v", rs[0])
	}
}

func TestFollowerRefusesClientEnroll(t *testing.T) {
	tn := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	rc := tn.remote()
	if role, err := rc.Ping(); err != nil || role != registry.RoleFollowerByte {
		t.Fatalf("ping: role %c err %v", role, err)
	}
	_, err := rc.Enroll(clusterEnr(1001, 0xA1, "dock"))
	var oe *registry.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("enroll at follower: err = %v, want OpError", err)
	}
}

func TestReplicationKeepsFollowerInLockstep(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)

	rc := primary.remote()
	for die := uint64(1); die <= 5; die++ {
		if _, err := rc.Enroll(clusterEnr(die, byte(die), "line")); err != nil {
			t.Fatalf("enroll %d: %v", die, err)
		}
	}
	// Synchronous replication: by the time an enrollment is acked, the
	// follower must already have it — no settling sleep needed.
	fc := follower.remote()
	for die := uint64(1); die <= 5; die++ {
		lr, found := fc.Lookup(registry.Key{Manufacturer: "TC", DieID: die})
		if !found || lr.Count != 1 {
			t.Fatalf("follower missing die %d: found=%v %+v", die, found, lr)
		}
	}
	if pos := follower.store.Stats().Enrollments; pos != 5 {
		t.Fatalf("follower position = %d, want 5", pos)
	}
}

func TestRequiredFollowerFencesEnrollments(t *testing.T) {
	// No follower is listening yet: the primary must refuse writes
	// rather than let an acked record exist on one disk.
	spare, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	followerAddr := spare.Addr().String()
	spare.Close() // free the port; the follower will claim it later

	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: followerAddr, RequireFollower: true,
	})
	rc := primary.remote()
	if role, err := rc.Ping(); err != nil || role != registry.RoleDegradedByte {
		t.Fatalf("fenced primary ping: role %c err %v", role, err)
	}
	_, err = rc.Enroll(clusterEnr(1001, 0xA1, "dock"))
	var oe *registry.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("fenced enroll: err = %v, want OpError", err)
	}

	// The follower arrives; the link loop picks it up and the fence lifts.
	fln, err := net.Listen("tcp", followerAddr)
	if err != nil {
		t.Skipf("follower port was reclaimed by the OS: %v", err)
	}
	fstore, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fnode, err := NewNode(NodeConfig{Store: fstore, Role: RoleFollower})
	if err != nil {
		t.Fatal(err)
	}
	go fnode.Serve(fln)
	t.Cleanup(func() { fnode.Close(); fstore.Close() })

	waitLink(t, primary.node)
	if _, err := rc.Enroll(clusterEnr(1001, 0xA1, "dock")); err != nil {
		t.Fatalf("enroll after fence lifted: %v", err)
	}
	if role, err := rc.Ping(); err != nil || role != registry.RolePrimaryByte {
		t.Fatalf("healthy primary ping: role %c err %v", role, err)
	}
}

func TestSnapshotShippingResyncsDivergedFollower(t *testing.T) {
	// The primary accumulates state solo (follower not required), then
	// the follower appears at position 0 and must be caught up by a
	// full snapshot ship before the live stream starts.
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: false,
	})
	waitLink(t, primary.node)

	rc := primary.remote()
	for die := uint64(1); die <= 8; die++ {
		if _, err := rc.Enroll(clusterEnr(die, byte(die), "line")); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the link and diverge: restart the follower with an empty
	// store (disk loss) while the primary keeps enrolling.
	follower.stop()
	// The first write after the follower dies hits the stale link: it is
	// recorded locally but the forward fails, so the client sees an
	// error and the primary drops the link.
	if _, err := rc.Enroll(clusterEnr(9, 9, "line")); err == nil {
		t.Fatal("enroll over a dead link reported full acknowledgement")
	}
	for die := uint64(10); die <= 12; die++ {
		if _, err := rc.Enroll(clusterEnr(die, byte(die), "line")); err != nil {
			t.Fatalf("enroll %d with follower down (not required): %v", die, err)
		}
	}

	freshDir := t.TempDir()
	fstore, err := registry.Open(freshDir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fln, err := net.Listen("tcp", follower.addr)
	if err != nil {
		t.Skipf("follower port was reclaimed by the OS: %v", err)
	}
	fnode, err := NewNode(NodeConfig{Store: fstore, Role: RoleFollower})
	if err != nil {
		t.Fatal(err)
	}
	go fnode.Serve(fln)
	t.Cleanup(func() { fnode.Close(); fstore.Close() })

	waitLink(t, primary.node)
	if pos := fstore.Stats().Enrollments; pos != 12 {
		t.Fatalf("follower position after snapshot ship = %d, want 12", pos)
	}
	for die := uint64(1); die <= 12; die++ {
		lr, found := fstore.Lookup(registry.Key{Manufacturer: "TC", DieID: die})
		if !found || lr.Count != 1 || lr.Fingerprint[0] != byte(die) {
			t.Fatalf("follower state for die %d after resync: found=%v %+v", die, found, lr)
		}
	}
	// Live stream resumed after the ship: a new enrollment replicates.
	if _, err := rc.Enroll(clusterEnr(13, 13, "line")); err != nil {
		t.Fatal(err)
	}
	if !fstore.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 13}) {
		t.Fatal("live replication did not resume after snapshot ship")
	}
}

func TestPromotionFencesOldPrimary(t *testing.T) {
	follower := startNode(t, t.TempDir(), NodeConfig{Role: RoleFollower})
	primary := startNode(t, t.TempDir(), NodeConfig{
		Role: RolePrimary, FollowerAddr: follower.addr, RequireFollower: true,
	})
	waitLink(t, primary.node)
	pc := primary.remote()
	if _, err := pc.Enroll(clusterEnr(1001, 0xA1, "dock")); err != nil {
		t.Fatal(err)
	}

	// A partitioned router promotes the follower while the old primary
	// still holds a live replication link.
	fc := follower.remote()
	if err := fc.Promote(); err != nil {
		t.Fatal(err)
	}
	if follower.node.Role() != RolePrimary {
		t.Fatal("follower did not promote")
	}
	// The promoted node serves enrollments itself...
	res, err := fc.Enroll(clusterEnr(1001, 0xB2, "dock-b"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conflict {
		t.Fatalf("clone enrollment at promoted node not flagged: %+v", res)
	}
	// ...and the old primary's stream is refused: its next enrollment
	// fails (recorded locally, never acknowledged) and it fences.
	if _, err := pc.Enroll(clusterEnr(1002, 0xC3, "dock")); err == nil {
		t.Fatal("old primary acknowledged an enrollment after losing its follower to promotion")
	}
	_, err = pc.Enroll(clusterEnr(1003, 0xC4, "dock"))
	var oe *registry.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("old primary not fenced after refused replication: err = %v", err)
	}
	// The reconnect loop cannot re-establish: the promoted node refuses
	// OpSync, so the fence is permanent until operators intervene.
	time.Sleep(100 * time.Millisecond)
	if primary.node.LinkUp() {
		t.Fatal("old primary re-established a link to a promoted node")
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Fatal("NewNode accepted a nil store")
	}
	store, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := NewNode(NodeConfig{Store: store, Role: RoleFollower, FollowerAddr: "x:1"}); err == nil {
		t.Fatal("NewNode accepted a follower with a FollowerAddr")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want []ShardSpec
		ok   bool
	}{
		{"127.0.0.1:9001", []ShardSpec{{Primary: "127.0.0.1:9001"}}, true},
		{"a:1,b:2;c:3", []ShardSpec{{Primary: "a:1", Follower: "b:2"}, {Primary: "c:3"}}, true},
		{" a:1 , b:2 ", []ShardSpec{{Primary: "a:1", Follower: "b:2"}}, true},
		{"", nil, false},
		{"a:1;;b:2", nil, false},
		{"a:1,b:2,c:3", nil, false},
		{",b:2", nil, false},
		{"a:1,", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Fatalf("ParseSpec(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
