package cluster

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

// ShardSpec is one shard's static membership: a primary and an
// optional follower.
type ShardSpec struct {
	Primary  string
	Follower string
}

// ParseSpec parses the -cluster membership string:
// "primary[,follower]" per shard, shards joined with ";". Example:
//
//	127.0.0.1:9001,127.0.0.1:9002;127.0.0.1:9003,127.0.0.1:9004
func ParseSpec(s string) ([]ShardSpec, error) {
	var spec []ShardSpec
	for _, shard := range strings.Split(s, ";") {
		shard = strings.TrimSpace(shard)
		if shard == "" {
			return nil, errors.New("cluster: empty shard in membership spec")
		}
		parts := strings.Split(shard, ",")
		if len(parts) > 2 {
			return nil, fmt.Errorf("cluster: shard %q has %d members, want primary[,follower]", shard, len(parts))
		}
		sp := ShardSpec{Primary: strings.TrimSpace(parts[0])}
		if sp.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %q has an empty primary address", shard)
		}
		if len(parts) == 2 {
			sp.Follower = strings.TrimSpace(parts[1])
			if sp.Follower == "" {
				return nil, fmt.Errorf("cluster: shard %q has an empty follower address", shard)
			}
		}
		spec = append(spec, sp)
	}
	return spec, nil
}

// ClientOptions tunes the router. The zero value selects defaults.
type ClientOptions struct {
	// Timeout bounds one node round trip (0 selects 5s).
	Timeout time.Duration
	// Now supplies wall time for deadlines (nil selects wallclock.Now).
	Now func() time.Time
	// Dial overrides the transport — the client-side fault-injection
	// seam (nil selects net.Dial "tcp").
	Dial func(addr string) (net.Conn, error)
	// Logf receives failover and degradation log lines (nil discards).
	Logf func(format string, args ...any)
}

// Client is the stateless verify tier's view of the cluster: a
// registry.Store whose keys are spread over N shards by the consistent
// -hash ring, with deterministic failover per shard.
//
// Failover rule: an enrollment that fails at the transport level (the
// node never answered) pings the shard's follower; if the follower is
// alive it is promoted, the shard's active node flips, and the
// enrollment is retried once. An application-level refusal (a fenced
// primary, a follower answering "not primary") never triggers failover
// — the node is alive and its refusal is the protocol working.
//
// Read-side calls fail over to the standby without promoting (a read
// cannot establish that the primary is gone for good) and fail open to
// not-found when the whole shard is unreachable; FailOpens counts those
// degradations — the partitioned-registry window THREATMODEL.md row 8
// describes.
type Client struct {
	ring   *Ring
	shards []*shardClient
	logf   func(format string, args ...any)

	failovers atomic.Int64
	failopens atomic.Int64
}

var _ registry.Store = (*Client)(nil)

// NewClient builds a router over the given membership.
func NewClient(spec []ShardSpec, opts ClientOptions) (*Client, error) {
	if len(spec) == 0 {
		return nil, errors.New("cluster: empty membership spec")
	}
	ring, err := NewRing(len(spec))
	if err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ropts := registry.RemoteOptions{Timeout: opts.Timeout, Now: opts.Now, Dial: opts.Dial}
	c := &Client{ring: ring, logf: logf}
	for i, sp := range spec {
		sc := &shardClient{
			index:   i,
			primary: registry.NewRemote(sp.Primary, ropts),
			logf:    logf,
		}
		if sp.Follower != "" {
			sc.follower = registry.NewRemote(sp.Follower, ropts)
		}
		sc.failovers = &c.failovers
		c.shards = append(c.shards, sc)
	}
	return c, nil
}

// Shards returns the membership size.
func (c *Client) Shards() int { return len(c.shards) }

// Failovers counts promotions this router has performed.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// FailOpens counts read-side calls that degraded to not-found because
// a whole shard was unreachable.
func (c *Client) FailOpens() int64 { return c.failopens.Load() }

// Close drops every pooled connection.
func (c *Client) Close() error {
	for _, s := range c.shards {
		s.primary.Close()
		if s.follower != nil {
			s.follower.Close()
		}
	}
	return nil
}

func (c *Client) shardFor(k registry.Key) *shardClient { return c.shards[c.ring.Shard(k)] }

// Enroll routes the enrollment to its shard, failing over (promote +
// retry once) if the active node is unreachable.
func (c *Client) Enroll(e registry.Enrollment) (registry.EnrollResult, error) {
	return c.shardFor(e.Key).enroll(e)
}

// Lookup routes the key to its shard, falling back to the standby for
// reads and failing open to not-found when the shard is unreachable.
func (c *Client) Lookup(k registry.Key) (registry.LookupResult, bool) {
	lr, found, err := c.shardFor(k).lookup(k)
	if err != nil {
		c.failopens.Add(1)
		c.logf("shard lookup failed open: %v", err)
		return registry.LookupResult{}, false
	}
	return lr, found
}

// SeenBefore reports whether the key is on file anywhere reachable.
func (c *Client) SeenBefore(k registry.Key) bool {
	_, found := c.Lookup(k)
	return found
}

// Stats sums counters across every shard's reachable node.
func (c *Client) Stats() registry.Stats {
	var sum registry.Stats
	for _, s := range c.shards {
		st, err := s.stats()
		if err != nil {
			c.failopens.Add(1)
			continue
		}
		sum.Keys += st.Keys
		sum.Enrollments += st.Enrollments
		sum.Lookups += st.Lookups
		sum.Conflicts += st.Conflicts
		sum.WALAppends += st.WALAppends
		sum.WALFsyncs += st.WALFsyncs
		sum.WALBytes += st.WALBytes
		sum.WALRecords += st.WALRecords
		sum.WALSegments += st.WALSegments
		sum.Compactions += st.Compactions
		if st.LastCompaction > sum.LastCompaction {
			sum.LastCompaction = st.LastCompaction
		}
		if st.Recovery > sum.Recovery {
			sum.Recovery = st.Recovery
		}
	}
	return sum
}

// LookupBatch resolves many keys with one round trip per shard, fanned
// out concurrently, preserving input order in the returned slices.
// Unreachable shards fail open: their keys report not-found.
func (c *Client) LookupBatch(keys []registry.Key) ([]registry.LookupResult, []bool) {
	results := make([]registry.LookupResult, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return results, found
	}
	byShard := make(map[int][]int)
	for i, k := range keys {
		si := c.ring.Shard(k)
		byShard[si] = append(byShard[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range byShard {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sub := make([]registry.Key, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			rs, fs, err := c.shards[si].lookupBatch(sub)
			if err != nil {
				c.failopens.Add(int64(len(idxs)))
				c.logf("shard %d batch lookup failed open for %d keys: %v", si, len(idxs), err)
				return
			}
			for j, i := range idxs {
				results[i], found[i] = rs[j], fs[j]
			}
		}(si, idxs)
	}
	wg.Wait()
	return results, found
}

// shardClient is one shard's primary/follower pair with the sticky
// active-node switch.
type shardClient struct {
	index    int
	primary  *registry.Remote
	follower *registry.Remote

	mu        sync.Mutex   // serializes the failover decision
	active    atomic.Int32 // 0 primary, 1 follower (sticky once flipped)
	failovers *atomic.Int64
	logf      func(format string, args ...any)
}

func (s *shardClient) remotes() (active, standby *registry.Remote) {
	if s.active.Load() == 1 {
		return s.follower, s.primary
	}
	return s.primary, s.follower
}

// enroll writes through the active node, promoting the follower and
// retrying once when the active node is transport-dead.
func (s *shardClient) enroll(e registry.Enrollment) (registry.EnrollResult, error) {
	active, _ := s.remotes()
	res, err := active.Enroll(e)
	if err == nil {
		return res, nil
	}
	var oe *registry.OpError
	if errors.As(err, &oe) {
		return res, err // the node answered; no failover
	}
	if !s.failover(active) {
		return res, err
	}
	active, _ = s.remotes()
	return active.Enroll(e)
}

// failover promotes the standby after a transport failure on from.
// Deterministic and sticky: the first caller to observe the dead node
// performs the promotion under the shard mutex; everyone else either
// sees the flipped switch or fails with the original error. Returns
// whether the caller should retry on the new active node.
func (s *shardClient) failover(from *registry.Remote) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	active, standby := s.remotes()
	if active != from {
		return true // someone already failed over; retry there
	}
	if standby == nil {
		return false
	}
	if _, err := standby.Ping(); err != nil {
		s.logf("shard %d: active node %s unreachable and standby %s unreachable too",
			s.index, active.Addr(), standby.Addr())
		return false
	}
	if err := standby.Promote(); err != nil {
		s.logf("shard %d: promoting %s failed: %v", s.index, standby.Addr(), err)
		return false
	}
	s.active.Store(1 - s.active.Load())
	s.failovers.Add(1)
	s.logf("shard %d: failed over from %s to %s", s.index, active.Addr(), standby.Addr())
	return true
}

// lookup reads through the active node, falling back to the standby
// without promoting.
func (s *shardClient) lookup(k registry.Key) (registry.LookupResult, bool, error) {
	active, standby := s.remotes()
	lr, found, err := active.LookupErr(k)
	if err == nil {
		return lr, found, nil
	}
	if standby != nil {
		if lr, found, err2 := standby.LookupErr(k); err2 == nil {
			return lr, found, nil
		}
	}
	return registry.LookupResult{}, false, err
}

// lookupBatch is lookup's bulk twin.
func (s *shardClient) lookupBatch(keys []registry.Key) ([]registry.LookupResult, []bool, error) {
	active, standby := s.remotes()
	rs, fs, err := active.LookupBatch(keys)
	if err == nil {
		return rs, fs, nil
	}
	if standby != nil {
		if rs, fs, err2 := standby.LookupBatch(keys); err2 == nil {
			return rs, fs, nil
		}
	}
	return nil, nil, err
}

// stats reads through the active node, falling back to the standby.
func (s *shardClient) stats() (registry.Stats, error) {
	active, standby := s.remotes()
	st, err := active.StatsErr()
	if err == nil {
		return st, nil
	}
	if standby != nil {
		if st, err2 := standby.StatsErr(); err2 == nil {
			return st, nil
		}
	}
	return registry.Stats{}, err
}
