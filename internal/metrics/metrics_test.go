package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	g := r.Gauge("queue_depth", "waiting requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %g, want 0.01", got)
	}
	if got := h.Quantile(0.99); got != 0.1 {
		t.Fatalf("p99 = %g, want 0.1", got)
	}
	// The +Inf observation clamps to the top finite bound.
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %g, want clamp to top bound 1", got)
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Fatal("out-of-range quantiles must return 0")
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatal("ObserveDuration must count")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("verify_total", "verifications")
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1})
	r.GaugeFunc("cache_size", "entries", func() int64 { return 3 })
	c.Add(2)
	h.Observe(0.05)
	h.Observe(0.5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE verify_total counter",
		"verify_total 2",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 2`,
		"latency_seconds_count 2",
		"# TYPE cache_size gauge",
		"cache_size 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestVarsHandlerValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	r.Gauge("b_level", "").Set(-4)
	r.Histogram("c_seconds", "", DefaultLatencyBuckets()).Observe(0.01)
	rec := httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, rec.Body.String())
	}
	if out["a_total"].(float64) != 1 || out["b_level"].(float64) != -4 {
		t.Fatalf("unexpected vars snapshot: %v", out)
	}
	hist := out["c_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot wrong: %v", hist)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("lat", "", DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}
