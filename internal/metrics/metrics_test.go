package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	g := r.Gauge("queue_depth", "waiting requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %g, want 0.01", got)
	}
	if got := h.Quantile(0.99); got != 0.1 {
		t.Fatalf("p99 = %g, want 0.1", got)
	}
	// The +Inf observation clamps to the top finite bound.
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %g, want clamp to top bound 1", got)
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Fatal("out-of-range quantiles must return 0")
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatal("ObserveDuration must count")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("verify_total", "verifications")
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1})
	r.GaugeFunc("cache_size", "entries", func() int64 { return 3 })
	c.Add(2)
	h.Observe(0.05)
	h.Observe(0.5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE verify_total counter",
		"verify_total 2",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 2`,
		"latency_seconds_count 2",
		"# TYPE cache_size gauge",
		"cache_size 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestVarsHandlerValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	r.Gauge("b_level", "").Set(-4)
	r.Histogram("c_seconds", "", DefaultLatencyBuckets()).Observe(0.01)
	rec := httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, rec.Body.String())
	}
	if out["a_total"].(float64) != 1 || out["b_level"].(float64) != -4 {
		t.Fatalf("unexpected vars snapshot: %v", out)
	}
	hist := out["c_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot wrong: %v", hist)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestHistogramQuantileAtBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Observations exactly on an upper bound must land in that bucket
	// (Prometheus le semantics: bucket counts observations <= bound).
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	s := h.Snapshot()
	want := []int64{1, 1, 1, 0}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (boundary observation misfiled)", i, c, want[i])
		}
	}
	// Quantile estimates are bucket upper bounds: with one observation
	// per bucket, rank = round(3q) walks the bounds in order.
	for _, tc := range []struct{ q, want float64 }{
		{0.33, 1}, {0.4, 1}, {0.5, 2}, {0.67, 2}, {0.84, 4}, {1, 4},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// A value infinitesimally above a bound belongs to the next bucket.
	h2 := NewHistogram([]float64{1, 2, 4})
	h2.Observe(1.0000001)
	if got := h2.Quantile(1); got != 2 {
		t.Fatalf("just-above-bound observation: p100 = %g, want 2", got)
	}
	// All mass in +Inf clamps to the top finite bound.
	h3 := NewHistogram([]float64{1, 2, 4})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 4 {
		t.Fatalf("+Inf mass: p50 = %g, want top bound 4", got)
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	// Hammer one histogram from many writers while readers snapshot and
	// quantile concurrently; -race must stay quiet and no observation may
	// be lost or double-counted.
	h := NewHistogram(LoadLatencyBuckets())
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var sum int64
				for _, c := range s.Counts {
					sum += c
				}
				if sum != s.Count {
					t.Error("snapshot internally inconsistent")
					return
				}
				_ = s.Quantile(0.99)
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(g*perWriter+i) * 1e-6)
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("snapshot count = %d, want %d", s.Count, writers*perWriter)
	}
}

func TestSnapshotMerge(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	a := NewHistogram(bounds)
	b := NewHistogram(bounds)
	whole := NewHistogram(bounds)
	samples := []float64{0.005, 0.004, 0.05, 0.2, 0.9, 3, 0.008, 0.06}
	for i, v := range samples {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	merged := a.Snapshot()
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()
	if merged.Count != want.Count || math.Abs(merged.Sum-want.Sum) > 1e-9 {
		t.Fatalf("merged count/sum = %d/%g, want %d/%g",
			merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("Quantile(%g): merged %g != whole %g", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Mismatched shapes must refuse, not skew.
	other := NewHistogram([]float64{0.5, 5}).Snapshot()
	if err := merged.Merge(other); err == nil {
		t.Fatal("merging mismatched bucket shapes must error")
	}
	other2 := NewHistogram([]float64{0.01, 0.2, 1}).Snapshot()
	if err := merged.Merge(other2); err == nil {
		t.Fatal("merging mismatched bounds must error")
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("lat", "", DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}
