// Package metrics is the repo's lightweight observability layer: atomic
// counters, gauges, and fixed-bucket latency histograms collected in a
// named registry and exposed in two standard wire formats — Prometheus
// text exposition on /metrics and expvar-style JSON on /debug/vars.
// It is stdlib-only and deliberately tiny: the verification service
// (internal/service) is the first consumer, but the registry is generic
// so the CLIs and the experiment engine can adopt the same instruments
// without a client-library dependency.
//
// Unlike the stdlib expvar package, registries here are instances, not
// process-global state: tests and multiple servers in one process each
// get their own namespace and nothing panics on duplicate registration
// across instances.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, cache size). The zero
// value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram upper bounds used for request
// latencies, in seconds: 1ms to ~16s in powers of two, plus +Inf.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
		0.128, 0.256, 0.512, 1.024, 2.048, 4.096, 8.192, 16.384}
}

// LoadLatencyBuckets are the finer client-side bounds the load harness
// uses, in seconds: sub-millisecond resolution at the bottom (cache-hit
// verifies land there) up to 30s at the top, so p999 estimates stay
// meaningful across the whole latency range a loaded service produces.
func LoadLatencyBuckets() []float64 {
	return []float64{0.0002, 0.0005, 0.001, 0.002, 0.003, 0.005, 0.0075,
		0.01, 0.015, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5,
		0.75, 1, 1.5, 2.5, 5, 10, 30}
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations <= its upper bound, with an
// implicit +Inf bucket). Safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // micro-units, to keep the hot path lock-free
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * 1e6))
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / 1e6 }

// Quantile returns an upper-bound estimate of the q-quantile (the bucket
// boundary at or above it); q outside (0,1] returns 0. With no
// observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram detached
// from the live atomics, so client-side aggregators (the load harness
// keeps one histogram per in-flight slot to avoid write contention) can
// merge shards and compute quantiles without racing writers.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; the last entry is the +Inf bucket
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Count is derived from
// the bucket counts, not the live total, so the snapshot is always
// internally consistent: concurrent Observes that land mid-copy are
// either fully in a bucket or fully absent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Merge folds other into s. The two snapshots must cover identical
// bucket bounds; merging differently shaped histograms is a programming
// error, not a runtime condition, and returns an error rather than a
// silently skewed distribution.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d buckets",
			len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("metrics: merging histograms with mismatched bound %d (%g vs %g)",
				i, b, other.Bounds[i])
		}
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Quantile returns the same upper-bound q-quantile estimate
// Histogram.Quantile computes, evaluated on the snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metric is one registered instrument with its render hooks.
type metric struct {
	name string
	help string
	prom func(w io.Writer, name string)
	json func() string
}

// Registry is an ordered namespace of instruments. Registration is
// typically done at construction time; rendering and instrument updates
// are safe concurrently afterwards.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
	}
	r.byName[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a named counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{
		name: name,
		help: help,
		prom: func(w io.Writer, n string) {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value())
		},
		json: func() string { return fmt.Sprintf("%d", c.Value()) },
	})
	return c
}

// Gauge registers and returns a named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{
		name: name,
		help: help,
		prom: func(w io.Writer, n string) {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value())
		},
		json: func() string { return fmt.Sprintf("%d", g.Value()) },
	})
	return g
}

// GaugeFunc registers a gauge whose level is sampled from fn at render
// time (for levels owned elsewhere, like a cache's current size).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(metric{
		name: name,
		help: help,
		prom: func(w io.Writer, n string) {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, fn())
		},
		json: func() string { return fmt.Sprintf("%d", fn()) },
	})
}

// Histogram registers and returns a named histogram over the bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(metric{
		name: name,
		help: help,
		prom: func(w io.Writer, n string) {
			fmt.Fprintf(w, "# TYPE %s histogram\n", n)
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b, cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			fmt.Fprintf(w, "%s_sum %g\n", n, h.Sum())
			fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
		},
		json: func() string {
			return fmt.Sprintf(`{"count":%d,"sum":%g,"p50":%g,"p99":%g}`,
				h.Count(), h.Sum(), h.Quantile(0.5), h.Quantile(0.99))
		},
	})
	return h
}

// WritePrometheus renders every instrument in registration order in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		m.prom(&b, m.name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every instrument as one flat JSON object, the
// /debug/vars (expvar) convention.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	var b strings.Builder
	b.WriteString("{\n")
	for i, m := range ms {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "%q: %s", m.name, m.json())
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the Prometheus text format (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the expvar-style JSON snapshot (mount at
// /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
