package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestSplitPurity(t *testing.T) {
	parent := New(7)
	// Splitting must not depend on how much the parent has been used
	// for other splits, and must not advance the parent.
	before := parent.Split(99).Uint64()
	_ = parent.Split(5)
	_ = parent.Split(12345)
	after := parent.Split(99).Uint64()
	if before != after {
		t.Fatalf("Split is not a pure function of (parent, key): %x vs %x", before, after)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams produced %d identical outputs", same)
	}
}

func TestSplit2Distinct(t *testing.T) {
	parent := New(3)
	seen := map[uint64]bool{}
	for a := uint64(0); a < 30; a++ {
		for b := uint64(0); b < 30; b++ {
			v := parent.Split2(a, b).Uint64()
			if seen[v] {
				t.Fatalf("Split2(%d,%d) collided with an earlier stream", a, b)
			}
			seen[v] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 4096} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 8, 160000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(21)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalAt(t *testing.T) {
	r := New(22)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormalAt(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormalAt(10,2) mean = %v", mean)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(23)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exp variance = %v, want ~1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(29)
	for _, shape := range []float64{0.5, 1, 1.7, 2, 4.5} {
		const n = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) returned negative %v", shape, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) variance = %v, want ~%v", shape, variance, shape)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestBoolBalance(t *testing.T) {
	r := New(31)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.01 {
		t.Fatalf("Bool imbalance: %d/%d", trues, n)
	}
}

// Property: any two distinct split keys give streams whose first outputs differ.
func TestQuickSplitKeysDiffer(t *testing.T) {
	parent := New(123)
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return parent.Split(a).Uint64() != parent.Split(b).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn never escapes its bound for arbitrary positive n.
func TestQuickIntnInRange(t *testing.T) {
	r := New(77)
	f := func(n uint16) bool {
		m := int(n%10000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split(uint64(i))
	}
}
