// Package rng provides the deterministic pseudo-random substrate used by
// the flash physics simulation.
//
// Everything in the simulator that looks random — manufacturing variation,
// wear sensitivity, read noise — must be reproducible bit-for-bit from a
// chip seed so that experiments can be re-run and chips can be serialized
// and reloaded. The package implements the xoshiro256** generator together
// with a SplitMix64-based stream splitter: a parent stream deterministically
// derives independent child streams keyed by integers (for example, one
// stream per flash cell), so adding a consumer of randomness in one module
// never perturbs the values observed by another.
package rng

import "math"

// Stream is a deterministic pseudo-random number generator
// (xoshiro256**, period 2^256-1). The zero value is not valid;
// use New or a Split derivative.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances x through the SplitMix64 sequence and returns the
// next output. It is used only for seeding, per the xoshiro authors'
// recommendation, so that similar seeds yield unrelated states.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	var st Stream
	x := seed
	st.s0 = splitMix64(&x)
	st.s1 = splitMix64(&x)
	st.s2 = splitMix64(&x)
	st.s3 = splitMix64(&x)
	return &st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child stream keyed by key. The parent's
// state is not advanced, so Split(k) is a pure function of (parent seed,
// key): per-cell streams remain stable no matter how many other cells
// exist or in which order they are visited.
func (r *Stream) Split(key uint64) *Stream {
	st := r.SplitVal(key)
	return &st
}

// SplitVal is Split returning the child stream by value. Per-cell hot
// paths (one derived stream per cell per segment rebuild) use it so the
// child lives on the caller's stack instead of the heap.
func (r *Stream) SplitVal(key uint64) Stream {
	// Mix the parent state with the key through SplitMix64 so that
	// nearby keys produce unrelated children.
	x := r.s0 ^ rotl(r.s2, 23) ^ (key * 0x9e3779b97f4a7c15)
	var st Stream
	st.s0 = splitMix64(&x)
	x ^= r.s1
	st.s1 = splitMix64(&x)
	x ^= r.s3
	st.s2 = splitMix64(&x)
	x ^= key
	st.s3 = splitMix64(&x)
	// xoshiro must not be seeded with the all-zero state.
	if st.s0|st.s1|st.s2|st.s3 == 0 {
		st.s0 = 0x9e3779b97f4a7c15
	}
	return st
}

// Split2 derives a child stream from a pair of keys, convenient for
// (segment, cell) style addressing.
func (r *Stream) Split2(a, b uint64) *Stream {
	return r.Split(a*0x9e3779b97f4a7c15 + b + 0x632be59bd9b4e019)
}

// Split2Val is Split2 returning the child stream by value.
func (r *Stream) Split2Val(a, b uint64) Stream {
	return r.SplitVal(a*0x9e3779b97f4a7c15 + b + 0x632be59bd9b4e019)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in the open interval (0, 1),
// safe as input to inverse-CDF transforms that diverge at the ends.
func (r *Stream) Float64Open() float64 {
	for {
		v := (float64(r.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
		if v > 0 && v < 1 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method gives an unbiased value
	// without a modulo in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Normal returns a draw from the standard normal distribution using the
// polar Marsaglia method.
func (r *Stream) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalAt returns a draw from Normal(mu, sigma^2).
func (r *Stream) NormalAt(mu, sigma float64) float64 {
	return mu + sigma*r.Normal()
}

// Exp returns a draw from the unit-rate exponential distribution.
func (r *Stream) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Gamma returns a draw from a Gamma distribution with the given shape
// and unit scale, using the Marsaglia-Tsang method (with Ahrens-Dieter
// boosting for shape < 1).
func (r *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) then X * U^(1/shape) ~ Gamma(shape).
		u := r.Float64Open()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Bool returns a fair pseudo-random boolean.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }
