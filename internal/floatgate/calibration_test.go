package floatgate

// Calibration probes: measure the statistics the paper reports directly
// against the cell model, without the controller stack. These tests log
// measured-vs-paper values (go test -v -run Calibration) and assert only
// the qualitative shape the reproduction must preserve; EXPERIMENTS.md
// records the quantitative comparison.

import (
	"sort"
	"testing"
)

const segCells = 4096 // 512-byte segment

// tausAtWear returns the sorted erase crossing times of a full segment
// whose cells all carry the given wear.
func tausAtWear(m *Model, seg int, wear float64) []float64 {
	taus := make([]float64, segCells)
	for c := 0; c < segCells; c++ {
		taus[c] = m.Tau(m.Base(seg, c), wear)
	}
	sort.Float64s(taus)
	return taus
}

// TestCalibrationFig4Maxima probes the minimum t_PE at which every cell in
// a stressed segment reads erased (the paper: 35, 115, 203, 226, 687,
// 811 µs at 0..100K cycles).
func TestCalibrationFig4Maxima(t *testing.T) {
	m := newTestModel(t)
	paper := map[float64]float64{0: 35, 20_000: 115, 40_000: 203, 60_000: 226, 80_000: 687, 100_000: 811}
	wears := []float64{0, 20_000, 40_000, 60_000, 80_000, 100_000}
	var prevMax float64
	for _, w := range wears {
		taus := tausAtWear(m, 0, w)
		maxTau := taus[len(taus)-1]
		t.Logf("wear %6.0fK: all-erased at t_PE >= %7.1f µs (paper: %v µs); onset %5.1f µs",
			w/1000, maxTau, paper[w], taus[0])
		if maxTau < prevMax {
			t.Errorf("all-erased time not monotone in wear at %v", w)
		}
		prevMax = maxTau
	}
	// Shape anchors: fresh segment completes within ~40 µs; 100K-stressed
	// takes several hundred µs.
	fresh := tausAtWear(m, 0, 0)
	if fresh[len(fresh)-1] > 40 {
		t.Errorf("fresh segment max tau = %v, want < 40 µs", fresh[len(fresh)-1])
	}
	worn := tausAtWear(m, 0, 100_000)
	if worn[len(worn)-1] < 300 {
		t.Errorf("100K segment max tau = %v, want several hundred µs", worn[len(worn)-1])
	}
}

// TestCalibrationFig5Detection probes single-round stress detection:
// at the best t_PEW, how many of 4096 bits distinguish a 50 K-stressed
// segment from a fresh one (paper: 3,833 at t_PEW = 23 µs).
func TestCalibrationFig5Detection(t *testing.T) {
	m := newTestModel(t)
	freshTaus := tausAtWear(m, 0, 0)
	wornTaus := tausAtWear(m, 1, 50_000)
	best, bestT := 0, 0.0
	for tpe := 18.0; tpe <= 40; tpe += 0.5 {
		// Distinguishable = fresh cells already erased + worn cells still
		// programmed, minus their complements miscounted: the count of
		// positions where the two segments read differently. Since the
		// segments are different cells, compare marginal counts.
		freshErased := countBelow(freshTaus, tpe)
		wornProgrammed := segCells - countBelow(wornTaus, tpe)
		// A bit is distinguishable when fresh reads 1 and worn reads 0;
		// expected count with independent cells:
		d := int(float64(freshErased) / segCells * float64(wornProgrammed))
		if d > best {
			best, bestT = d, tpe
		}
	}
	t.Logf("best t_PEW = %.1f µs distinguishes ~%d / %d bits (paper: 23 µs, 3833/4096)", bestT, best, segCells)
	if best < 3200 {
		t.Errorf("stress detection too weak: %d / 4096 distinguishable", best)
	}
}

func countBelow(sorted []float64, x float64) int {
	return sort.SearchFloat64s(sorted, x)
}

// TestCalibrationFig9BER probes the minimum single-read extraction BER per
// imprint count (paper: 19.9 / 11.8 / 7.6 / 2.3 % at 20/40/60/80 K).
// Good (logic-1) cells accumulate erase-only wear during imprinting;
// bad (logic-0) cells accumulate full P/E wear.
func TestCalibrationFig9BER(t *testing.T) {
	m := newTestModel(t)
	gamma := m.Params().EraseOnlyWear
	paper := map[float64]float64{20_000: 19.9, 40_000: 11.8, 60_000: 7.6, 80_000: 2.3}
	// Watermark composition: upper-case ASCII is roughly half zeros.
	const f0 = 0.48
	var prev float64 = 101
	for _, npe := range []float64{20_000, 40_000, 60_000, 80_000} {
		goodTaus := tausAtWear(m, 2, gamma*npe)
		badTaus := tausAtWear(m, 3, npe)
		bestBER, bestT := 101.0, 0.0
		for tpe := 18.0; tpe <= 120; tpe += 0.25 {
			goodAsBad := 1 - float64(countBelow(goodTaus, tpe))/segCells // still programmed
			badAsGood := float64(countBelow(badTaus, tpe)) / segCells    // already erased
			ber := 100 * ((1-f0)*goodAsBad + f0*badAsGood)
			if ber < bestBER {
				bestBER, bestT = ber, tpe
			}
		}
		t.Logf("N_PE %3.0fK: min BER %5.2f%% at t_PE %.2f µs (paper: %.1f%%)", npe/1000, bestBER, bestT, paper[npe])
		if bestBER >= prev {
			t.Errorf("BER not decreasing with imprint count at %vK", npe/1000)
		}
		prev = bestBER
	}
}
