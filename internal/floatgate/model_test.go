package floatgate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/flashmark/flashmark/internal/mathx"
	"github.com/flashmark/flashmark/internal/rng"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams(), 0xF1A5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero sigma", func(p *Params) { p.TauBaseSigmaUs = 0 }},
		{"empty clip", func(p *Params) { p.TauBaseMinUs = p.TauBaseMaxUs }},
		{"mean outside clip", func(p *Params) { p.TauBaseMeanUs = p.TauBaseMaxUs + 1 }},
		{"negative shift coef", func(p *Params) { p.ShiftCoefUs = -1 }},
		{"zero shift power", func(p *Params) { p.ShiftPower = 0 }},
		{"zero shape base", func(p *Params) { p.ShapeBase = 0 }},
		{"negative erase wear", func(p *Params) { p.EraseOnlyWear = -0.1 }},
		{"zero read noise", func(p *Params) { p.ReadNoiseSigmaUs = 0 }},
		{"zero endurance", func(p *Params) { p.EnduranceCycles = 0 }},
	}
	for _, c := range cases {
		p := DefaultParams()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad params", c.name)
		}
		if _, err := NewModel(p, 1); err == nil {
			t.Errorf("%s: NewModel accepted bad params", c.name)
		}
	}
}

func TestBaseDeterministic(t *testing.T) {
	m1 := newTestModel(t)
	m2 := newTestModel(t)
	for seg := 0; seg < 4; seg++ {
		for cell := 0; cell < 64; cell++ {
			b1 := m1.Base(seg, cell)
			b2 := m2.Base(seg, cell)
			if b1 != b2 {
				t.Fatalf("Base(%d,%d) not deterministic: %+v vs %+v", seg, cell, b1, b2)
			}
		}
	}
}

func TestBaseVariesAcrossCells(t *testing.T) {
	m := newTestModel(t)
	seen := map[CellBase]bool{}
	for cell := 0; cell < 256; cell++ {
		b := m.Base(0, cell)
		if seen[b] {
			t.Fatalf("duplicate cell base at cell %d", cell)
		}
		seen[b] = true
	}
}

func TestBaseVariesAcrossChips(t *testing.T) {
	p := DefaultParams()
	a, _ := NewModel(p, 1)
	b, _ := NewModel(p, 2)
	same := 0
	for cell := 0; cell < 100; cell++ {
		if a.Base(0, cell) == b.Base(0, cell) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d cells identical across different chip seeds", same)
	}
}

func TestBaseDistribution(t *testing.T) {
	m := newTestModel(t)
	p := m.Params()
	var taus []float64
	for cell := 0; cell < 8192; cell++ {
		b := m.Base(0, cell)
		if b.TauBaseUs < p.TauBaseMinUs || b.TauBaseUs > p.TauBaseMaxUs {
			t.Fatalf("tauBase %v outside clip range", b.TauBaseUs)
		}
		if b.U <= 0 || b.U >= 1 {
			t.Fatalf("U %v outside (0,1)", b.U)
		}
		taus = append(taus, b.TauBaseUs)
	}
	s := mathx.Summarize(taus)
	if math.Abs(s.Mean-p.TauBaseMeanUs) > 0.1 {
		t.Errorf("tauBase mean = %v, want ~%v", s.Mean, p.TauBaseMeanUs)
	}
	if math.Abs(s.StdDev-p.TauBaseSigmaUs) > 0.15 {
		t.Errorf("tauBase stddev = %v, want ~%v", s.StdDev, p.TauBaseSigmaUs)
	}
}

func TestTauFreshEqualsBase(t *testing.T) {
	m := newTestModel(t)
	b := m.Base(3, 17)
	if got := m.Tau(b, 0); got != b.TauBaseUs {
		t.Fatalf("Tau at zero wear = %v, want %v", got, b.TauBaseUs)
	}
}

// Property: tau is monotone non-decreasing in wear for every cell —
// the physical irreversibility at the heart of the paper.
func TestQuickTauMonotoneInWear(t *testing.T) {
	m := newTestModel(t)
	wears := []float64{0, 100, 1000, 5000, 10_000, 20_000, 40_000, 60_000, 80_000, 100_000, 150_000}
	f := func(cellIdx uint16) bool {
		b := m.Base(0, int(cellIdx)%4096)
		prev := -1.0
		for _, w := range wears {
			tau := m.Tau(b, w)
			if tau < prev-1e-9 {
				return false
			}
			prev = tau
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTauStressedSpreadGrows(t *testing.T) {
	m := newTestModel(t)
	spread := func(wear float64) float64 {
		var taus []float64
		for cell := 0; cell < 2048; cell++ {
			taus = append(taus, m.Tau(m.Base(1, cell), wear))
		}
		s := mathx.Summarize(taus)
		return s.Max - s.Min
	}
	s0 := spread(0)
	s20 := spread(20_000)
	s80 := spread(80_000)
	if !(s0 < s20 && s20 < s80) {
		t.Fatalf("tau spread should grow with wear: %v, %v, %v", s0, s20, s80)
	}
}

func TestShiftAndSpreadMonotone(t *testing.T) {
	m := newTestModel(t)
	prevF, prevG := -1.0, -1.0
	for _, w := range []float64{0, 1000, 10_000, 50_000, 100_000} {
		f, g := m.ShiftUs(w), m.SpreadUs(w)
		if f < prevF || g < prevG {
			t.Fatalf("F or G not monotone at wear %v", w)
		}
		prevF, prevG = f, g
	}
	if m.ShiftUs(0) != 0 || m.SpreadUs(0) != 0 {
		t.Fatal("F(0) and G(0) must be zero")
	}
}

func TestShapeSaturates(t *testing.T) {
	m := newTestModel(t)
	p := m.Params()
	atSat := m.Shape(p.ShapeSaturation)
	beyond := m.Shape(p.ShapeSaturation * 10)
	if atSat != beyond {
		t.Fatalf("shape should saturate: %v vs %v", atSat, beyond)
	}
	if m.Shape(0) != p.ShapeBase {
		t.Fatalf("Shape(0) = %v, want %v", m.Shape(0), p.ShapeBase)
	}
}

func TestEraseWearAsymmetry(t *testing.T) {
	m := newTestModel(t)
	full := m.EraseWear(true)
	gamma := m.EraseWear(false)
	if !(full > gamma && gamma > 0) {
		t.Fatalf("wear asymmetry violated: full=%v erase-only=%v", full, gamma)
	}
}

func TestReadOneProbability(t *testing.T) {
	m := newTestModel(t)
	if p := m.ReadOneProbability(0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(read 1) at zero margin = %v, want 0.5", p)
	}
	if p := m.ReadOneProbability(100); p < 0.999999 {
		t.Errorf("deep positive margin should read 1: %v", p)
	}
	if p := m.ReadOneProbability(-100); p > 1e-6 {
		t.Errorf("deep negative margin should read 0: %v", p)
	}
	// Symmetry.
	if a, b := m.ReadOneProbability(0.4), m.ReadOneProbability(-0.4); math.Abs(a+b-1) > 1e-12 {
		t.Errorf("read noise asymmetric: %v + %v != 1", a, b)
	}
}

func TestSampleReadDeterministicTails(t *testing.T) {
	m := newTestModel(t)
	noise := rng.New(1)
	for i := 0; i < 100; i++ {
		if !m.SampleRead(50, noise) {
			t.Fatal("large positive margin sampled as 0")
		}
		if m.SampleRead(-50, noise) {
			t.Fatal("large negative margin sampled as 1")
		}
	}
}

func TestSampleReadNoisyNearThreshold(t *testing.T) {
	m := newTestModel(t)
	noise := rng.New(2)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.SampleRead(0, noise) {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("zero-margin reads should be ~50/50, got %v", frac)
	}
}

func TestRetentionShift(t *testing.T) {
	m := newTestModel(t)
	if m.RetentionShiftUs(0, 0) != 0 {
		t.Error("no aging should mean no drift")
	}
	fresh := m.RetentionShiftUs(0, 10)
	worn := m.RetentionShiftUs(100_000, 10)
	if !(worn > fresh && fresh > 0) {
		t.Errorf("retention drift should grow with wear: fresh=%v worn=%v", fresh, worn)
	}
}

func TestWorn(t *testing.T) {
	m := newTestModel(t)
	if m.Worn(50_000) {
		t.Error("50K cycles should be within endurance")
	}
	if !m.Worn(100_001) {
		t.Error("beyond endurance should report worn")
	}
}

func TestTauAtMatchesBaseTau(t *testing.T) {
	m := newTestModel(t)
	if m.TauAt(2, 99, 30_000) != m.Tau(m.Base(2, 99), 30_000) {
		t.Fatal("TauAt disagrees with Base+Tau")
	}
}

func BenchmarkTauStressed(b *testing.B) {
	m, _ := NewModel(DefaultParams(), 1)
	base := m.Base(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Tau(base, 40_000)
	}
}

func BenchmarkBase(b *testing.B) {
	m, _ := NewModel(DefaultParams(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Base(0, i&4095)
	}
}
