package floatgate

import (
	"sort"

	"github.com/flashmark/flashmark/internal/mathx"
)

// This file holds the batched evaluation kernels behind the segment-
// granularity physics fast path. The per-cell methods on Model remain
// the reference implementation; everything here is a reorganization of
// the same arithmetic that (a) hoists the wear-dependent terms shared by
// every cell evaluated at one wear value, and (b) exposes the quantile
// term separately so callers can bracket it instead of evaluating it.
// Bit-identity with the per-cell path is a hard requirement (experiment
// artifacts are pinned byte-for-byte) and is covered by differential
// tests in batch_test.go.

// TauEnv captures the wear-dependent terms of the erase crossing time
//
//	tau_i(w) = tauBase_i + F(w) + G(w)·Q(k(w), u_i)
//
// for one fixed wear value w, with the Gamma-shape constants hoisted
// (mathx.GammaDist). All cells of a segment evaluated at the same wear
// share one TauEnv, so a batched sweep pays the wear-dependent
// transcendental work (Pow, Lgamma) once per wear group instead of once
// per cell. Tau is bit-identical to Model.Tau at the same wear: the
// hoisted values are pure functions of the wear, and the combining
// expression keeps Model.Tau's operation order.
type TauEnv struct {
	Wear   float64
	Shift  float64 // F(w), µs
	Spread float64 // G(w), µs
	K      float64 // k(w); meaningful only when Wear > 0

	scale float64 // 1/k, the Gamma scale Model.Tau passes
	dist  mathx.GammaDist
}

// TauEnvAt hoists the wear-dependent tau terms at the given wear.
func (m *Model) TauEnvAt(wear float64) TauEnv {
	if wear <= 0 {
		return TauEnv{Wear: wear}
	}
	k := m.Shape(wear)
	env := TauEnv{Wear: wear, Shift: m.ShiftUs(wear), Spread: m.SpreadUs(wear), K: k}
	if dist, err := mathx.NewGammaDist(k); err == nil {
		env.scale = 1 / k
		env.dist = dist
	}
	return env
}

// QuantileU returns Q(k(w), u) of the unit-mean Gamma — the exact
// quantile term of Model.Tau, including its degrade-to-1 fallback on an
// (unreachable for validated params) evaluation failure.
func (e *TauEnv) QuantileU(u float64) float64 {
	q, err := e.dist.QuantileScaled(u, e.scale)
	if err != nil {
		return 1
	}
	return q
}

// TauFromQ combines a cell's immutable base with an already-computed
// quantile term, in Model.Tau's operation order.
func (e *TauEnv) TauFromQ(base CellBase, q float64) float64 {
	return base.TauBaseUs + e.Shift + e.Spread*q
}

// Tau is bit-identical to Model.Tau(base, e.Wear).
func (e *TauEnv) Tau(base CellBase) float64 {
	if e.Wear <= 0 {
		return base.TauBaseUs
	}
	return e.TauFromQ(base, e.QuantileU(base.U))
}

// QuantilePad is the relative widening applied to an exactly-evaluated
// quantile before it is used as a bound for a *different* cell's
// quantile. The numerically evaluated quantile is monotone in u up to
// its convergence tolerance (~1e-13 relative); the pad keeps four
// orders of magnitude of margin, so a padded neighbor bound always
// brackets the exact value. Bounds are only ever used to *decide*
// (prune a max candidate, classify a read as deterministic); any cell
// whose decision the pad cannot make is evaluated exactly, so the pad
// affects speed, never results.
const QuantilePad = 1e-9

// PadQLow / PadQHigh widen a quantile evaluated at a neighboring u into
// a safe lower/upper bound for the quantile at any smaller/larger u.
func PadQLow(q float64) float64  { return q * (1 - QuantilePad) }
func PadQHigh(q float64) float64 { return q * (1 + QuantilePad) }

// BasesInto fills dst with the immutable parameters of the first `cells`
// cells of segment seg, reusing dst's capacity, and returns the filled
// slice. Equivalent to calling Base per cell.
func (m *Model) BasesInto(segIndex, cells int, dst []CellBase) []CellBase {
	if cap(dst) < cells {
		dst = make([]CellBase, cells)
	}
	dst = dst[:cells]
	for i := range dst {
		dst[i] = m.Base(segIndex, i)
	}
	return dst
}

// SortIndexByU sorts idx (cell indices into bases) so the referenced U
// values ascend. Stable order for equal U keeps results deterministic.
func SortIndexByU(bases []CellBase, idx []int32) {
	sort.SliceStable(idx, func(a, b int) bool {
		return bases[idx[a]].U < bases[idx[b]].U
	})
}

// MaxTauScratch holds the reusable buffers of MaxTauGroup so steady-state
// callers allocate nothing.
type MaxTauScratch struct {
	cand  []maxCand
	grid  []int
	gridQ []float64
}

type maxCand struct {
	pos int
	ub  float64
}

// MaxTauGroup returns the maximum of env.Tau(bases[i]) over the cells
// listed in members, which MUST be sorted by ascending U (SortIndexByU).
// The value is bit-identical to scanning every cell: quantiles are exact
// where they are evaluated, and cells are skipped only when a padded
// monotone upper bound proves they cannot exceed the best exact value
// already found. Zero cells return (0, false).
func MaxTauGroup(env *TauEnv, bases []CellBase, members []int32, scratch *MaxTauScratch) (float64, bool) {
	n := len(members)
	if n == 0 {
		return 0, false
	}
	best := 0.0
	if env.Wear <= 0 || env.Spread == 0 {
		// tau has no per-cell quantile dependence worth bracketing:
		// evaluate directly (Tau short-circuits to tauBase at zero wear,
		// and a zero spread contributes exactly 0 regardless of q).
		for _, ci := range members {
			if tau := env.Tau(bases[ci]); tau > best {
				best = tau
			}
		}
		return best, true
	}

	// Small groups: bracketing overhead cannot pay for itself.
	if n <= 8 {
		for _, ci := range members {
			if tau := env.Tau(bases[ci]); tau > best {
				best = tau
			}
		}
		return best, true
	}

	// Evaluate an exact quantile grid over the U-sorted members
	// (endpoints included) and remember each grid cell's exact tau.
	gridN := 17
	if gridN > n {
		gridN = n
	}
	grid := scratch.grid[:0]
	for g := 0; g < gridN; g++ {
		pos := g * (n - 1) / (gridN - 1)
		if len(grid) > 0 && grid[len(grid)-1] == pos {
			continue
		}
		grid = append(grid, pos)
	}
	scratch.grid = grid
	// Exact taus at the grid; grid quantiles become neighbor bounds.
	gridQ := scratch.gridQ[:0]
	for range grid {
		gridQ = append(gridQ, 0)
	}
	scratch.gridQ = gridQ
	for gi, pos := range grid {
		base := bases[members[pos]]
		q := env.QuantileU(base.U)
		gridQ[gi] = q
		if tau := env.TauFromQ(base, q); tau > best {
			best = tau
		}
	}

	// Upper-bound every non-grid member from its grid neighbor above;
	// survivors are evaluated exactly in descending-bound order until the
	// next bound cannot beat the best exact tau seen.
	cand := scratch.cand[:0]
	gi := 0
	for pos := 0; pos < n; pos++ {
		if gi < len(grid) && grid[gi] == pos {
			gi++
			continue
		}
		for gi < len(grid) && grid[gi] < pos {
			gi++
		}
		// grid[gi] is the first grid position above pos (grid ends at n-1,
		// so one always exists).
		qub := PadQHigh(gridQ[gi])
		if ub := env.TauFromQ(bases[members[pos]], qub); ub > best {
			cand = append(cand, maxCand{pos: pos, ub: ub})
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].ub > cand[b].ub })
	for _, cd := range cand {
		if cd.ub <= best {
			break
		}
		if tau := env.Tau(bases[members[cd.pos]]); tau > best {
			best = tau
		}
	}
	scratch.cand = cand
	return best, true
}
