package floatgate

import (
	"math"

	"github.com/flashmark/flashmark/internal/mathx"
	"github.com/flashmark/flashmark/internal/rng"
)

// CellBase holds the immutable, manufacturing-time parameters of one cell.
// They are a pure function of (chip seed, segment index, cell index), so a
// chip can be reloaded from its seed without storing per-cell constants.
type CellBase struct {
	TauBaseUs float64 // fresh erase crossing time, µs
	U         float64 // wear-sensitivity percentile in (0,1)
}

// Model evaluates the cell physics for one chip. It is stateless apart
// from the chip seed; per-cell mutable state (wear, digital value, analog
// margin) lives in the memory array (package nor).
type Model struct {
	params Params
	seed   uint64
	root   *rng.Stream
}

// NewModel creates a physics model for a chip with the given seed.
func NewModel(params Params, chipSeed uint64) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{params: params, seed: chipSeed, root: rng.New(chipSeed)}, nil
}

// Params returns the model's parameter set.
func (m *Model) Params() Params { return m.params }

// Seed returns the chip seed the model was built from.
func (m *Model) Seed() uint64 { return m.seed }

// Base returns the immutable parameters of the cell at (segment, cell).
// The mapping is pure: the same chip seed always yields the same cell.
func (m *Model) Base(segIndex, cellIndex int) CellBase {
	st := m.root.Split2Val(uint64(segIndex), uint64(cellIndex))
	tau := mathx.Clamp(
		st.NormalAt(m.params.TauBaseMeanUs, m.params.TauBaseSigmaUs),
		m.params.TauBaseMinUs, m.params.TauBaseMaxUs,
	)
	return CellBase{TauBaseUs: tau, U: st.Float64Open()}
}

// ShiftUs returns F(w): the deterministic erase slowdown at wear w.
func (m *Model) ShiftUs(wear float64) float64 {
	if wear <= 0 {
		return 0
	}
	return m.params.ShiftCoefUs * math.Pow(wear/1000, m.params.ShiftPower)
}

// SpreadUs returns G(w): the wear sensitivity scale at wear w.
func (m *Model) SpreadUs(wear float64) float64 {
	if wear <= 0 {
		return 0
	}
	return m.params.SpreadCoefUs * math.Pow(wear/1000, m.params.SpreadPower)
}

// Shape returns k(w): the sensitivity distribution shape at wear w.
func (m *Model) Shape(wear float64) float64 {
	frac := wear / m.params.ShapeSaturation
	if frac > 1 {
		frac = 1
	}
	return m.params.ShapeBase + m.params.ShapeSlope*frac
}

// Tau returns the erase crossing time tau_i(w) in µs for a cell with the
// given immutable base at effective wear w.
func (m *Model) Tau(base CellBase, wear float64) float64 {
	if wear <= 0 {
		return base.TauBaseUs
	}
	k := m.Shape(wear)
	// Unit-mean Gamma: shape k, scale 1/k.
	q, err := mathx.GammaQuantile(base.U, k, 1/k)
	if err != nil {
		// U is guaranteed inside (0,1) and k > 0, so this is unreachable
		// for valid params; degrade to the deterministic component.
		q = 1
	}
	return base.TauBaseUs + m.ShiftUs(wear) + m.SpreadUs(wear)*q
}

// TauAt is a convenience combining Base and Tau.
func (m *Model) TauAt(segIndex, cellIndex int, wear float64) float64 {
	return m.Tau(m.Base(segIndex, cellIndex), wear)
}

// EraseWear returns the effective wear added to a cell by one segment
// erase, given whether the cell was in the programmed state when the erase
// began. A programmed cell completes a full P/E cycle; an erased cell only
// sees the (weaker) erase-field stress.
func (m *Model) EraseWear(wasProgrammed bool) float64 {
	if wasProgrammed {
		return m.params.EraseFromProgrammedWear
	}
	return m.params.EraseOnlyWear
}

// ProgramWear returns the effective wear added by one program operation.
func (m *Model) ProgramWear() float64 { return m.params.ProgramWear }

// ReadOneProbability returns the probability that a single read senses '1'
// for a cell whose analog margin after a partial erase is marginUs
// (margin = t_PE - tau). Large positive margins read '1' deterministically,
// large negative margins '0'; cells near the crossing are metastable, which
// is why AnalyzeSegment (paper Fig. 3) reads N times and majority-votes.
func (m *Model) ReadOneProbability(marginUs float64) float64 {
	return mathx.NormalCDF(marginUs, 0, m.params.ReadNoiseSigmaUs)
}

// SampleRead draws one digital read of a cell at the given margin using
// the supplied noise stream.
func (m *Model) SampleRead(marginUs float64, noise *rng.Stream) bool {
	switch {
	case marginUs > 6*m.params.ReadNoiseSigmaUs:
		return true
	case marginUs < -6*m.params.ReadNoiseSigmaUs:
		return false
	}
	return noise.Float64() < m.ReadOneProbability(marginUs)
}

// ReadSigmaUs returns the effective read noise at the given wear:
// nominal within the endurance budget and growing linearly beyond it —
// the §II observation that a cell past its endurance "may still function
// but not consistently".
func (m *Model) ReadSigmaUs(wear float64) float64 {
	sigma := m.params.ReadNoiseSigmaUs
	if wear > m.params.EnduranceCycles {
		sigma *= 1 + (wear-m.params.EnduranceCycles)/m.params.EnduranceCycles
	}
	return sigma
}

// SampleReadAt draws one digital read of a cell at the given margin and
// wear, with beyond-endurance noise growth applied.
func (m *Model) SampleReadAt(marginUs, wear float64, noise *rng.Stream) bool {
	sigma := m.ReadSigmaUs(wear)
	switch {
	case marginUs > 6*sigma:
		return true
	case marginUs < -6*sigma:
		return false
	}
	return noise.Float64() < mathx.NormalCDF(marginUs, 0, sigma)
}

// ProgTau returns the program crossing time in µs for a cell at wear w:
// the point during a program pulse at which the cell flips to the
// programmed state. Oxide damage provides trap-assisted injection paths,
// so worn cells program *faster* — the physical signal the FFD-style
// partial-program comparator [6] keys on.
func (m *Model) ProgTau(base CellBase, wear float64) float64 {
	// Reuse the cell's wear-sensitivity percentile: a cell whose erase
	// slows a lot is a cell whose oxide is heavily damaged, and the same
	// damage accelerates its programming.
	fresh := m.progBase(base)
	if wear <= 0 {
		return fresh
	}
	speedup := m.params.ProgSpeedupCoef * math.Pow(wear/1000, m.params.ProgSpeedupPow) * (0.5 + base.U)
	if speedup > m.params.ProgSpeedupMax {
		speedup = m.params.ProgSpeedupMax
	}
	t := fresh * (1 - speedup)
	if t < m.params.ProgTauMinUs {
		t = m.params.ProgTauMinUs
	}
	return t
}

// progBase derives the cell's fresh program crossing time from its
// immutable parameters, deterministically but independently of the
// erase-side spread.
func (m *Model) progBase(base CellBase) float64 {
	// Map (tauBase, u) through a hash-like mix into a stable standard
	// normal via the erase-side values; keep it simple and smooth: use
	// the base quantile U reflected through the normal quantile.
	z := mathx.StdNormalQuantile(base.U)
	t := m.params.ProgTauMeanUs + m.params.ProgTauSigmaUs*z
	if t < m.params.ProgTauMinUs {
		t = m.params.ProgTauMinUs
	}
	return t
}

// ProgTauAt is a convenience combining Base and ProgTau.
func (m *Model) ProgTauAt(segIndex, cellIndex int, wear float64) float64 {
	return m.ProgTau(m.Base(segIndex, cellIndex), wear)
}

// RetentionShiftUs returns the erase-crossing slowdown caused by years of
// unpowered aging at wear w: a data-retention effect that grows with oxide
// damage. It is an extension hook (paper §VI future directions); the main
// experiments run at age 0.
func (m *Model) RetentionShiftUs(wear, years float64) float64 {
	if years <= 0 {
		return 0
	}
	amp := 1 + m.params.RetentionWearAmplifPer1K*wear/1000
	return m.params.RetentionDriftUsPerYear * years * amp
}

// Worn reports whether a cell at wear w has exceeded the datasheet
// endurance and should be considered unreliable.
func (m *Model) Worn(wear float64) bool {
	return wear > m.params.EnduranceCycles
}

// TempFactor returns the erase-time multiplier at ambient temperature
// tempC: >1 when cold (tunneling slows), <1 when hot, 1 at 25 °C. The
// factor is clamped to stay physical across extreme inputs.
func (m *Model) TempFactor(tempC float64) float64 {
	f := 1 + m.params.TempCoeffPerC*(25-tempC)
	if f < 0.5 {
		f = 0.5
	}
	if f > 2 {
		f = 2
	}
	return f
}
