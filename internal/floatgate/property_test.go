package floatgate

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests of the model invariants the rest of the system
// leans on. Each property is checked over many seeded-random cells,
// wear trajectories and parameter variants — not just hand-picked
// points — because the batched physics fast path *assumes* these
// invariants (monotone tau lets it carry bounds; probabilities in [0,1]
// keep the noise stream well-defined).

// propParams returns the parameter variants the properties are checked
// under: the calibrated defaults plus variants that switch on the terms
// DefaultParams leaves at zero (deterministic shift, program wear), so
// monotonicity is not an artifact of a degenerate coefficient.
func propParams(t *testing.T) map[string]Params {
	t.Helper()
	withShift := DefaultParams()
	withShift.ShiftCoefUs = 0.5
	withShift.ShiftPower = 1.3
	steepSpread := DefaultParams()
	steepSpread.SpreadCoefUs = 0.08
	steepSpread.SpreadPower = 2.2
	flatShape := DefaultParams()
	flatShape.ShapeSlope = 0
	for name, p := range map[string]Params{
		"default": DefaultParams(), "withShift": withShift,
		"steepSpread": steepSpread, "flatShape": flatShape,
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("variant %s invalid: %v", name, err)
		}
	}
	return map[string]Params{
		"default": DefaultParams(), "withShift": withShift,
		"steepSpread": steepSpread, "flatShape": flatShape,
	}
}

// TestTauMonotoneInWear: more wear never erases faster. This is the
// physical axiom Flashmark rests on (oxide damage is irreversible and
// only slows erasure) and the pruning assumption of the batched max.
// The quantile term makes it non-obvious: the Gamma shape k(w) rises
// with wear, which *shrinks* high-u quantiles — the property asserts the
// growing spread G(w) always wins.
func TestTauMonotoneInWear(t *testing.T) {
	for name, params := range propParams(t) {
		t.Run(name, func(t *testing.T) {
			m, err := NewModel(params, 0x70A0)
			if err != nil {
				t.Fatal(err)
			}
			rnd := rand.New(rand.NewSource(41))
			for cell := 0; cell < 512; cell++ {
				base := m.Base(cell%7, cell)
				// A random increasing wear trajectory from 0 past the
				// endurance limit, with dense early steps.
				wear := 0.0
				prev := m.Tau(base, wear)
				for step := 0; step < 200; step++ {
					wear += rnd.Float64() * 1500
					tau := m.Tau(base, wear)
					if tau < prev {
						t.Fatalf("cell %d (u=%v): tau dropped %v -> %v at wear %v",
							cell, base.U, prev, tau, wear)
					}
					prev = tau
				}
			}
		})
	}
}

// TestReadOneProbabilityProperties: the per-read '1' probability is a
// valid probability everywhere and monotone in margin — deeper-erased
// cells never read '1' less often.
func TestReadOneProbabilityProperties(t *testing.T) {
	m, err := NewModel(DefaultParams(), 0x70A1)
	if err != nil {
		t.Fatal(err)
	}
	margins := []float64{
		math.Inf(-1), -math.MaxFloat64, -1e12, -500, -6, -0.6, -1e-9,
		0, 1e-9, 0.6, 6, 500, 1e12, math.MaxFloat64, math.Inf(1),
	}
	rnd := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		margins = append(margins, (rnd.Float64()-0.5)*20)
	}
	for _, margin := range margins {
		p := m.ReadOneProbability(margin)
		if !(p >= 0 && p <= 1) {
			t.Fatalf("ReadOneProbability(%v) = %v outside [0,1]", margin, p)
		}
	}
	// Monotone over a sorted sweep.
	prev := -1.0
	for mg := -10.0; mg <= 10.0; mg += 0.01 {
		p := m.ReadOneProbability(mg)
		if p < prev {
			t.Fatalf("ReadOneProbability not monotone at margin %v: %v < %v", mg, p, prev)
		}
		prev = p
	}
	// Endpoints are deterministic.
	if p := m.ReadOneProbability(math.Inf(1)); p != 1 {
		t.Errorf("deeply erased cell reads 1 with p=%v, want 1", p)
	}
	if p := m.ReadOneProbability(math.Inf(-1)); p != 0 {
		t.Errorf("deeply programmed cell reads 1 with p=%v, want 0", p)
	}
}

// TestReadSigmaMonotone: effective read noise never shrinks with wear,
// and equals the nominal sigma inside the endurance budget.
func TestReadSigmaMonotone(t *testing.T) {
	params := DefaultParams()
	m, err := NewModel(params, 0x70A2)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for w := 0.0; w <= 4*params.EnduranceCycles; w += 250 {
		sigma := m.ReadSigmaUs(w)
		if sigma < prev {
			t.Fatalf("ReadSigmaUs dropped at wear %v: %v < %v", w, sigma, prev)
		}
		if w <= params.EnduranceCycles && sigma != params.ReadNoiseSigmaUs {
			t.Fatalf("ReadSigmaUs(%v) = %v inside endurance, want nominal %v",
				w, sigma, params.ReadNoiseSigmaUs)
		}
		prev = sigma
	}
}

// TestValidateRejectsSingleFieldCorruptions: for every field of Params
// there is a corruption Validate catches — no field is dead weight the
// validator silently accepts garbage in. DefaultParams itself must
// validate, and each corruption must flip exactly that verdict.
func TestValidateRejectsSingleFieldCorruptions(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	corruptions := map[string]func(*Params){
		"TauBaseMeanUs":           func(p *Params) { p.TauBaseMeanUs = p.TauBaseMaxUs + 1 },
		"TauBaseSigmaUs":          func(p *Params) { p.TauBaseSigmaUs = 0 },
		"TauBaseMinUs":            func(p *Params) { p.TauBaseMinUs = p.TauBaseMaxUs },
		"TauBaseMaxUs":            func(p *Params) { p.TauBaseMaxUs = p.TauBaseMinUs - 1 },
		"ShiftCoefUs":             func(p *Params) { p.ShiftCoefUs = -0.1 },
		"ShiftPower":              func(p *Params) { p.ShiftPower = 0 },
		"SpreadCoefUs":            func(p *Params) { p.SpreadCoefUs = -0.1 },
		"SpreadPower":             func(p *Params) { p.SpreadPower = -1 },
		"ShapeBase":               func(p *Params) { p.ShapeBase = 0 },
		"ShapeSlope":              func(p *Params) { p.ShapeSlope = -0.5 },
		"ShapeSaturation":         func(p *Params) { p.ShapeSaturation = 0 },
		"EraseFromProgrammedWear": func(p *Params) { p.EraseFromProgrammedWear = -1 },
		"EraseOnlyWear":           func(p *Params) { p.EraseOnlyWear = -0.01 },
		"ProgramWear":             func(p *Params) { p.ProgramWear = -0.01 },
		"ProgTauMeanUs":           func(p *Params) { p.ProgTauMeanUs = p.ProgTauMinUs },
		"ProgTauSigmaUs":          func(p *Params) { p.ProgTauSigmaUs = -3 },
		"ProgTauMinUs":            func(p *Params) { p.ProgTauMinUs = p.ProgTauMeanUs + 1 },
		"ProgSpeedupCoef":         func(p *Params) { p.ProgSpeedupCoef = -1 },
		"ProgSpeedupPow":          func(p *Params) { p.ProgSpeedupPow = 0 },
		"ProgSpeedupMax":          func(p *Params) { p.ProgSpeedupMax = 1 },
		"ReadNoiseSigmaUs":        func(p *Params) { p.ReadNoiseSigmaUs = 0 },
		"EnduranceCycles":         func(p *Params) { p.EnduranceCycles = -100000 },
		"RetentionDriftUsPerYear": func(p *Params) { p.RetentionDriftUsPerYear = -0.02 },
		"RetentionWearAmplifPer1K": func(p *Params) {
			p.RetentionWearAmplifPer1K = -0.05
		},
		"TempCoeffPerC": func(p *Params) { p.TempCoeffPerC = 0.03 },
	}
	for field, corrupt := range corruptions {
		p := DefaultParams()
		corrupt(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("corrupting %s was accepted by Validate", field)
		}
	}
}

// TestTempFactorBounds: the thermal scaling stays inside its documented
// clamp for any temperature, including absurd ones, and is monotone
// non-increasing in temperature (hot chips erase faster).
func TestTempFactorBounds(t *testing.T) {
	m, err := NewModel(DefaultParams(), 0x70A3)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, temp := range []float64{-1e6, -273.15, -40, 0, 24.999, 25, 25.001, 85, 125, 1e6} {
		f := m.TempFactor(temp)
		if f < 0.5 || f > 2 {
			t.Fatalf("TempFactor(%v) = %v outside [0.5, 2]", temp, f)
		}
		if f > prev {
			t.Fatalf("TempFactor not non-increasing at %v: %v > %v", temp, f, prev)
		}
		prev = f
	}
	if f := m.TempFactor(25); f != 1 {
		t.Errorf("TempFactor(25) = %v, want exactly 1", f)
	}
}
