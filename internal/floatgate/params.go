// Package floatgate models the analog physics of floating-gate NOR flash
// cells as observed through the digital interface used by Flashmark.
//
// The model follows §II-III of the paper. Each cell is a floating-gate
// MOSFET whose threshold voltage separates the programmed ('0') and erased
// ('1') states. Program/erase (P/E) cycling damages the tunnel oxide
// irreversibly; the damage is not visible to a plain digital read while the
// cell is within its endurance budget, but it slows the cell's response to
// an erase pulse. Flashmark senses this through a *partial erase*: a
// segment erase aborted after t_PE microseconds. The single analog quantity
// the model must get right is therefore the per-cell erase crossing time
//
//	tau_i(w) = tauBase_i + F(w) + G(w) * Q(k(w), u_i)
//
// where w is the cell's accumulated effective wear, tauBase_i is the
// cell's fresh crossing time (manufacturing variation), F is a
// deterministic wear-induced slowdown, G scales a per-cell wear
// sensitivity, and Q(k, u) is the u_i-quantile of a unit-mean Gamma
// distribution whose shape k rises with wear. The Gamma tail gives the
// few extremely slow cells that dominate the paper's Fig. 4 maxima
// (203–811 µs at 40–100 K cycles) while the thin-with-wear left tail
// reproduces the falling-but-asymmetric bit error rates of Figs. 9–11.
//
// All constants live in Params; calibration tests in this package compare
// the achieved statistics against every number the paper reports.
package floatgate

// Params holds every tunable constant of the cell physics model.
// DefaultParams is calibrated against the paper's MSP430F5438/F5529
// measurements; tests and ablation benches construct variants.
type Params struct {
	// Fresh erase crossing time distribution (Normal, clipped).
	TauBaseMeanUs  float64 // mean fresh crossing time, µs
	TauBaseSigmaUs float64 // manufacturing spread, µs
	TauBaseMinUs   float64 // clip floor, µs
	TauBaseMaxUs   float64 // clip ceiling, µs

	// Deterministic wear slowdown F(w) = ShiftCoefUs * (w/1000)^ShiftPower.
	ShiftCoefUs float64
	ShiftPower  float64

	// Wear sensitivity spread G(w) = SpreadCoefUs * (w/1000)^SpreadPower.
	SpreadCoefUs float64
	SpreadPower  float64

	// Shape of the per-cell sensitivity distribution:
	// k(w) = ShapeBase + ShapeSlope * min(w, ShapeSaturation)/ShapeSaturation.
	// Larger k thins the fast-erasing tail of stressed cells, which is what
	// drives the BER down at high imprint counts (Fig. 9).
	ShapeBase       float64
	ShapeSlope      float64
	ShapeSaturation float64 // cycles at which the shape stops growing

	// Wear accounting (effective cycles added per operation).
	EraseFromProgrammedWear float64 // completing a P/E cycle
	EraseOnlyWear           float64 // erasing an already-erased cell (γ)
	ProgramWear             float64 // programming a cell

	// Program-side physics (used by the prior-work FFD comparator [6],
	// which characterizes chips with partial *program* sweeps): the time
	// for a cell to cross into the programmed state during a program
	// pulse. Wear accelerates programming (trap-assisted injection), so
	// worn cells cross earlier.
	ProgTauMeanUs   float64 // fresh program crossing time mean
	ProgTauSigmaUs  float64 // manufacturing spread
	ProgTauMinUs    float64 // clip floor
	ProgSpeedupCoef float64 // fractional speedup coefficient per (w/1000)^ProgSpeedupPower
	ProgSpeedupPow  float64
	ProgSpeedupMax  float64 // cap on fractional speedup (< 1)

	// Read noise: a cell left at analog margin m µs after an aborted erase
	// reads '1' with probability Φ(m / ReadNoiseSigmaUs) per read.
	ReadNoiseSigmaUs float64

	// EnduranceCycles is the datasheet endurance; beyond it the cell is
	// "unreliable" (still functional, used only for reporting).
	EnduranceCycles float64

	// Retention drift: erased-state margin loss per decade-year of aging,
	// amplified by wear (extension hook, §VI).
	RetentionDriftUsPerYear  float64
	RetentionWearAmplifPer1K float64

	// TempCoeffPerC scales erase crossing times with ambient temperature:
	// tunneling is thermally assisted, so cells erase faster when hot and
	// slower when cold. tau_eff = tau * (1 + TempCoeffPerC*(25 - T)).
	TempCoeffPerC float64
}

// DefaultParams returns the model constants calibrated against the paper's
// reported measurements (see the calibration tests and EXPERIMENTS.md).
func DefaultParams() Params {
	return Params{
		TauBaseMeanUs:  21.5,
		TauBaseSigmaUs: 1.4,
		TauBaseMinUs:   17.0,
		TauBaseMaxUs:   27.0,

		// Calibration found no deterministic floor: the stressed
		// distributions of Fig. 4 share their onset with the fresh curve,
		// so all wear-induced slowdown is carried by the spread term.
		ShiftCoefUs: 0.0,
		ShiftPower:  1.0,

		SpreadCoefUs: 0.0227,
		SpreadPower:  1.81,

		// Shape < 1 at low wear (many stressed cells barely slowed; defect
		// generation is highly non-uniform) rising to 1 at the endurance
		// limit; this reproduces both the Fig. 9 BER ladder and the
		// Fig. 4 maxima.
		ShapeBase:       0.5,
		ShapeSlope:      0.5,
		ShapeSaturation: 100_000,

		EraseFromProgrammedWear: 1.0,
		EraseOnlyWear:           0.0625, // dyadic: repeated accumulation is exact
		ProgramWear:             0.0,

		ProgTauMeanUs:   45.0,
		ProgTauSigmaUs:  3.0,
		ProgTauMinUs:    30.0,
		ProgSpeedupCoef: 0.012,
		ProgSpeedupPow:  1.0,
		ProgSpeedupMax:  0.45,

		ReadNoiseSigmaUs: 0.6,

		EnduranceCycles: 100_000,

		RetentionDriftUsPerYear:  0.02,
		RetentionWearAmplifPer1K: 0.05,

		TempCoeffPerC: 0.004,
	}
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.TauBaseSigmaUs <= 0:
		return errParam("TauBaseSigmaUs must be positive")
	case p.TauBaseMinUs >= p.TauBaseMaxUs:
		return errParam("TauBase clip range is empty")
	case p.TauBaseMeanUs <= p.TauBaseMinUs || p.TauBaseMeanUs >= p.TauBaseMaxUs:
		return errParam("TauBaseMeanUs must lie inside the clip range")
	case p.ShiftCoefUs < 0 || p.SpreadCoefUs < 0:
		return errParam("wear coefficients must be non-negative")
	case p.ShiftPower <= 0 || p.SpreadPower <= 0:
		return errParam("wear powers must be positive")
	case p.ShapeBase <= 0 || p.ShapeSlope < 0 || p.ShapeSaturation <= 0:
		return errParam("shape parameters out of range")
	case p.EraseFromProgrammedWear < 0 || p.EraseOnlyWear < 0 || p.ProgramWear < 0:
		return errParam("wear increments must be non-negative")
	case p.ProgTauSigmaUs <= 0 || p.ProgTauMeanUs <= p.ProgTauMinUs:
		return errParam("program tau distribution out of range")
	case p.ProgSpeedupCoef < 0 || p.ProgSpeedupPow <= 0 || p.ProgSpeedupMax < 0 || p.ProgSpeedupMax >= 1:
		return errParam("program speedup parameters out of range")
	case p.ReadNoiseSigmaUs <= 0:
		return errParam("ReadNoiseSigmaUs must be positive")
	case p.EnduranceCycles <= 0:
		return errParam("EnduranceCycles must be positive")
	case p.RetentionDriftUsPerYear < 0 || p.RetentionWearAmplifPer1K < 0:
		return errParam("retention parameters must be non-negative")
	case p.TempCoeffPerC < 0 || p.TempCoeffPerC > 0.02:
		return errParam("TempCoeffPerC out of range [0, 0.02]")
	}
	return nil
}

type paramError string

func (e paramError) Error() string { return "floatgate: " + string(e) }

func errParam(msg string) error { return paramError(msg) }
