package floatgate

import (
	"testing"
	"testing/quick"
)

func TestProgTauFresh(t *testing.T) {
	m := newTestModel(t)
	p := m.Params()
	sum := 0.0
	const n = 4096
	for c := 0; c < n; c++ {
		v := m.ProgTau(m.Base(0, c), 0)
		if v < p.ProgTauMinUs {
			t.Fatalf("prog tau %v below clip floor", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < p.ProgTauMeanUs-1 || mean > p.ProgTauMeanUs+1 {
		t.Errorf("fresh prog tau mean = %v, want ~%v", mean, p.ProgTauMeanUs)
	}
}

// Property: programming gets monotonically faster with wear — the inverse
// of the erase-side slowdown, and the signal FFD [6] uses.
func TestQuickProgTauMonotoneDecreasing(t *testing.T) {
	m := newTestModel(t)
	wears := []float64{0, 1000, 10_000, 40_000, 100_000, 300_000}
	f := func(cellIdx uint16) bool {
		b := m.Base(1, int(cellIdx)%4096)
		prev := 1e18
		for _, w := range wears {
			v := m.ProgTau(b, w)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProgTauSpeedupCapped(t *testing.T) {
	m := newTestModel(t)
	p := m.Params()
	b := m.Base(0, 0)
	fresh := m.ProgTau(b, 0)
	ancient := m.ProgTau(b, 1e9)
	if ancient < fresh*(1-p.ProgSpeedupMax)-1e-9 && ancient < p.ProgTauMinUs-1e-9 {
		t.Errorf("speedup exceeded cap: %v -> %v", fresh, ancient)
	}
	if ancient >= fresh {
		t.Errorf("extreme wear should speed programming: %v -> %v", fresh, ancient)
	}
}

func TestProgTauDeterministic(t *testing.T) {
	m := newTestModel(t)
	if m.ProgTauAt(2, 5, 1234) != m.ProgTauAt(2, 5, 1234) {
		t.Fatal("ProgTauAt not deterministic")
	}
}
