package floatgate

import (
	"math"
	"math/rand"
	"testing"
)

// The fast path's correctness argument rests on these differential
// tests: every batched kernel must reproduce the per-cell reference
// arithmetic bit for bit, across wear regimes (zero, fractional, deep)
// and cell populations.

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams(), 0xBA7C4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTauEnvBitIdentical(t *testing.T) {
	m := testModel(t)
	wears := []float64{0, 0.0625, 1, 17.5, 1000, 20000, 40000, 99999, 100000, 250000}
	for _, wear := range wears {
		env := m.TauEnvAt(wear)
		for cell := 0; cell < 512; cell++ {
			base := m.Base(3, cell)
			want := m.Tau(base, wear)
			got := env.Tau(base)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("wear %v cell %d: TauEnv.Tau = %x, Model.Tau = %x",
					wear, cell, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestTauEnvHoistedTermsMatch(t *testing.T) {
	m := testModel(t)
	for _, wear := range []float64{0.5, 123, 40000} {
		env := m.TauEnvAt(wear)
		if env.Shift != m.ShiftUs(wear) || env.Spread != m.SpreadUs(wear) || env.K != m.Shape(wear) {
			t.Fatalf("wear %v: hoisted terms diverge from per-call values", wear)
		}
	}
}

func TestBasesIntoMatchesBase(t *testing.T) {
	m := testModel(t)
	dst := m.BasesInto(7, 256, nil)
	if len(dst) != 256 {
		t.Fatalf("len = %d", len(dst))
	}
	for i, b := range dst {
		if b != m.Base(7, i) {
			t.Fatalf("cell %d: BasesInto diverges from Base", i)
		}
	}
	// Reuse must not reallocate.
	again := m.BasesInto(7, 128, dst)
	if &again[0] != &dst[0] {
		t.Fatal("BasesInto reallocated despite sufficient capacity")
	}
}

func TestSortIndexByU(t *testing.T) {
	m := testModel(t)
	bases := m.BasesInto(1, 300, nil)
	idx := make([]int32, len(bases))
	for i := range idx {
		idx[i] = int32(len(idx) - 1 - i)
	}
	SortIndexByU(bases, idx)
	for i := 1; i < len(idx); i++ {
		if bases[idx[i-1]].U > bases[idx[i]].U {
			t.Fatalf("idx not U-sorted at %d", i)
		}
	}
}

// TestMaxTauGroupBitIdentical drives the pruned max against the full
// sequential scan across group sizes, wear regimes, and random member
// subsets. The returned max must match bit for bit every time: pruning
// may only skip cells it proved cannot win.
func TestMaxTauGroupBitIdentical(t *testing.T) {
	m := testModel(t)
	bases := m.BasesInto(0, 4096, nil)
	rnd := rand.New(rand.NewSource(99))
	var scratch MaxTauScratch
	for _, wear := range []float64{0, 3, 800, 20000, 100000, 180000} {
		env := m.TauEnvAt(wear)
		for _, n := range []int{0, 1, 2, 7, 8, 9, 17, 64, 1000, 4096} {
			idx := make([]int32, 0, n)
			for _, p := range rnd.Perm(4096)[:n] {
				idx = append(idx, int32(p))
			}
			SortIndexByU(bases, idx)
			got, ok := MaxTauGroup(&env, bases, idx, &scratch)
			want := 0.0
			for _, ci := range idx {
				if tau := m.Tau(bases[ci], wear); tau > want {
					want = tau
				}
			}
			if n == 0 {
				if ok {
					t.Fatal("empty group reported ok")
				}
				continue
			}
			if !ok || math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("wear %v n %d: MaxTauGroup = %x (ok=%v), scan = %x",
					wear, n, math.Float64bits(got), ok, math.Float64bits(want))
			}
		}
	}
}

// TestMaxTauGroupZeroSpread covers the SpreadCoefUs=0 parameter variant,
// where tau must shortcut past the quantile entirely.
func TestMaxTauGroupZeroSpread(t *testing.T) {
	p := DefaultParams()
	p.SpreadCoefUs = 0
	m, err := NewModel(p, 0xBA7C5)
	if err != nil {
		t.Fatal(err)
	}
	bases := m.BasesInto(0, 512, nil)
	idx := make([]int32, len(bases))
	for i := range idx {
		idx[i] = int32(i)
	}
	SortIndexByU(bases, idx)
	env := m.TauEnvAt(5000)
	if env.Spread != 0 {
		t.Fatalf("spread = %v, want 0", env.Spread)
	}
	var scratch MaxTauScratch
	got, ok := MaxTauGroup(&env, bases, idx, &scratch)
	want := 0.0
	for _, ci := range idx {
		if tau := m.Tau(bases[ci], 5000); tau > want {
			want = tau
		}
	}
	if !ok || got != want {
		t.Fatalf("zero-spread max = %v, want %v", got, want)
	}
}

func TestQuantilePadBrackets(t *testing.T) {
	m := testModel(t)
	env := m.TauEnvAt(40000)
	q := env.QuantileU(0.5)
	if !(PadQLow(q) < q && q < PadQHigh(q)) {
		t.Fatalf("pads do not bracket: %v %v %v", PadQLow(q), q, PadQHigh(q))
	}
}
