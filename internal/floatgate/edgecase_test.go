package floatgate

import (
	"math"
	"strings"
	"testing"

	"github.com/flashmark/flashmark/internal/rng"
)

// Edge-case coverage of the model boundaries the fast path leans on:
// zero wear short-circuits, the Worn boundary, degenerate noise sigma,
// and the noise-consumption contract of the sampling switch (the fast
// path's read-decision cache is only sound because deterministic
// branches consume no noise).

func edgeModel(t *testing.T, params Params, seed uint64) *Model {
	t.Helper()
	m, err := NewModel(params, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestZeroWearShortCircuits(t *testing.T) {
	m := edgeModel(t, DefaultParams(), 0xE1)
	base := m.Base(0, 0)
	for _, w := range []float64{0, -1, -1e300, math.Inf(-1)} {
		if tau := m.Tau(base, w); tau != base.TauBaseUs {
			t.Errorf("Tau at wear %v = %v, want the fresh base %v", w, tau, base.TauBaseUs)
		}
		if s := m.ShiftUs(w); s != 0 {
			t.Errorf("ShiftUs(%v) = %v, want 0", w, s)
		}
		if s := m.SpreadUs(w); s != 0 {
			t.Errorf("SpreadUs(%v) = %v, want 0", w, s)
		}
		env := m.TauEnvAt(w)
		if tau := env.Tau(base); tau != base.TauBaseUs {
			t.Errorf("TauEnvAt(%v).Tau = %v, want the fresh base %v", w, tau, base.TauBaseUs)
		}
	}
}

func TestWornBoundary(t *testing.T) {
	params := DefaultParams()
	m := edgeModel(t, params, 0xE2)
	e := params.EnduranceCycles
	if m.Worn(e) {
		t.Error("a cell exactly at the endurance budget counts as worn")
	}
	if !m.Worn(math.Nextafter(e, math.Inf(1))) {
		t.Error("a cell one ulp past the endurance budget does not count as worn")
	}
	if m.Worn(0) || m.Worn(-1) {
		t.Error("fresh cells count as worn")
	}
	// ReadSigmaUs shares the boundary: exactly-at-endurance is nominal.
	if s := m.ReadSigmaUs(e); s != params.ReadNoiseSigmaUs {
		t.Errorf("ReadSigmaUs at the endurance boundary = %v, want nominal %v", s, params.ReadNoiseSigmaUs)
	}
	if s := m.ReadSigmaUs(2 * e); s != 2*params.ReadNoiseSigmaUs {
		t.Errorf("ReadSigmaUs at twice the endurance = %v, want doubled %v", s, 2*params.ReadNoiseSigmaUs)
	}
}

func TestDegenerateSigmaStaysProbability(t *testing.T) {
	params := DefaultParams()
	params.ReadNoiseSigmaUs = 5e-324 // smallest positive denormal
	m := edgeModel(t, params, 0xE3)
	for _, margin := range []float64{-1, -1e-300, 0, 1e-300, 1} {
		p := m.ReadOneProbability(margin)
		if !(p >= 0 && p <= 1) {
			t.Errorf("degenerate sigma: ReadOneProbability(%v) = %v outside [0,1]", margin, p)
		}
	}
	if p := m.ReadOneProbability(1); p != 1 {
		t.Errorf("degenerate sigma: positive margin reads 1 with p=%v, want 1", p)
	}
	if p := m.ReadOneProbability(-1); p != 0 {
		t.Errorf("degenerate sigma: negative margin reads 1 with p=%v, want 0", p)
	}
}

// TestSampleNoiseConsumption pins the noise-stream contract: reads
// outside the metastable band are deterministic AND draw nothing from
// the stream; reads inside the band draw exactly one sample. Twin
// streams measure consumption by comparing positions afterwards.
func TestSampleNoiseConsumption(t *testing.T) {
	params := DefaultParams()
	m := edgeModel(t, params, 0xE4)
	band := 6 * params.ReadNoiseSigmaUs

	check := func(name string, sample func(noise *rng.Stream) bool, wantOne bool, wantDraws int) {
		t.Helper()
		a, b := rng.New(0xAB), rng.New(0xAB)
		got := sample(a)
		if got != wantOne {
			t.Errorf("%s: read %v, want %v", name, got, wantOne)
		}
		for i := 0; i < wantDraws; i++ {
			b.Float64()
		}
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Errorf("%s: consumed a different number of noise draws than %d", name, wantDraws)
		}
	}

	check("deep erased", func(n *rng.Stream) bool { return m.SampleRead(band*2, n) }, true, 0)
	check("deep programmed", func(n *rng.Stream) bool { return m.SampleRead(-band*2, n) }, false, 0)
	check("metastable", func(n *rng.Stream) bool { _ = m.SampleRead(0, n); return true }, true, 1)
	// SampleReadAt widens the band with wear: a margin deterministic at
	// zero wear becomes metastable (one draw) on a worn-out cell.
	margin := band * 1.5
	check("worn widens band", func(n *rng.Stream) bool {
		_ = m.SampleReadAt(margin, 2*params.EnduranceCycles, n)
		return true
	}, true, 1)
	check("fresh same margin", func(n *rng.Stream) bool { return m.SampleReadAt(margin, 0, n) }, true, 0)
}

func TestAccessors(t *testing.T) {
	params := DefaultParams()
	m := edgeModel(t, params, 0xCAFE)
	if m.Seed() != 0xCAFE {
		t.Errorf("Seed = %#x", m.Seed())
	}
	if m.ProgramWear() != params.ProgramWear {
		t.Errorf("ProgramWear = %v", m.ProgramWear())
	}
	if got := m.Params(); got != params {
		t.Errorf("Params roundtrip = %+v", got)
	}
}

func TestParamErrorPrefix(t *testing.T) {
	p := DefaultParams()
	p.ReadNoiseSigmaUs = 0
	err := p.Validate()
	if err == nil {
		t.Fatal("degenerate sigma accepted")
	}
	if !strings.HasPrefix(err.Error(), "floatgate: ") {
		t.Errorf("error %q lacks the package prefix", err)
	}
}

// TestRetentionShiftEdges: no aging, no shift; shift grows with both
// age and wear.
func TestRetentionShiftEdges(t *testing.T) {
	m := edgeModel(t, DefaultParams(), 0xE5)
	if s := m.RetentionShiftUs(50_000, 0); s != 0 {
		t.Errorf("zero years shift = %v, want 0", s)
	}
	fresh := m.RetentionShiftUs(0, 5)
	worn := m.RetentionShiftUs(50_000, 5)
	if !(worn > fresh) {
		t.Errorf("wear does not amplify retention: fresh %v, worn %v", fresh, worn)
	}
	if aged := m.RetentionShiftUs(50_000, 10); !(aged > worn) {
		t.Errorf("age does not grow retention: 5y %v, 10y %v", worn, aged)
	}
}
