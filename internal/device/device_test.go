package device_test

import (
	"errors"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
)

func smallSim(t *testing.T, seed uint64) device.Device {
	t.Helper()
	d, err := mcu.Open(mcu.PartSmallSim(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAsReachesThroughDecorators(t *testing.T) {
	d := smallSim(t, 1)
	wrapped := device.Record(device.InjectFaults(d, device.FaultConfig{}))
	if _, ok := device.As[device.WearInspector](wrapped); !ok {
		t.Error("WearInspector not found through two decorators")
	}
	if _, ok := device.As[device.Ager](wrapped); !ok {
		t.Error("Ager not found through two decorators")
	}
	if _, ok := device.As[device.Thermal](wrapped); !ok {
		t.Error("Thermal not found through two decorators")
	}
	if _, ok := device.As[device.Tracer](wrapped); !ok {
		t.Error("Tracer not found through two decorators")
	}
	if _, ok := device.As[device.PartialProgrammer](wrapped); !ok {
		t.Error("PartialProgrammer not found through two decorators")
	}
}

func TestAsAbsentOnBareBackend(t *testing.T) {
	d, err := nand.Open(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The NAND adapter has no FCTL registers, no aging model, and no
	// partial-program primitive.
	if _, ok := device.As[device.Ager](d); ok {
		t.Error("NAND adapter claims to model storage age")
	}
	if _, ok := device.As[device.PartialProgrammer](d); ok {
		t.Error("NAND adapter claims partial program")
	}
	if err := device.Age(d, 1); err == nil {
		t.Error("Age succeeded on an age-less backend")
	}
	if err := device.SetAmbientTempC(d, 85); err == nil {
		t.Error("SetAmbientTempC succeeded on a temperature-less backend")
	}
}

func TestAgeAndTempHelpers(t *testing.T) {
	d := smallSim(t, 3)
	wrapped := device.InjectFaults(d, device.FaultConfig{})
	if err := device.Age(wrapped, 2.5); err != nil {
		t.Fatal(err)
	}
	a, _ := device.As[device.Ager](wrapped)
	if got := a.AgeYears(); got != 2.5 {
		t.Errorf("AgeYears = %v, want 2.5", got)
	}
	if err := device.SetAmbientTempC(wrapped, 60); err != nil {
		t.Fatal(err)
	}
	th, _ := device.As[device.Thermal](wrapped)
	if got := th.AmbientTempC(); got != 60 {
		t.Errorf("AmbientTempC = %v, want 60", got)
	}
}

func TestFaultInjectorEraseTimeout(t *testing.T) {
	d := smallSim(t, 4)
	f := device.InjectFaults(d, device.FaultConfig{Seed: 4, EraseTimeoutProb: 1})
	if err := f.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer f.Lock()
	before := f.Clock().Now()
	err := f.EraseSegment(0)
	if !errors.Is(err, device.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if f.Clock().Now()-before != f.NominalEraseTime() {
		t.Errorf("timeout burned %v, want the nominal erase time %v", f.Clock().Now()-before, f.NominalEraseTime())
	}
	// The array is untouched: the segment still reads erased.
	v, err := f.ReadWord(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFFFF {
		t.Errorf("timed-out erase changed the array: %#x", v)
	}
	if _, err := f.EraseSegmentAdaptive(0); !errors.Is(err, device.ErrInjected) {
		t.Error("adaptive erase not injected")
	}
	if err := f.MassEraseBank(0); !errors.Is(err, device.ErrInjected) {
		t.Error("mass erase not injected")
	}
	if err := f.PartialEraseSegment(0, time.Microsecond); !errors.Is(err, device.ErrInjected) {
		t.Error("partial erase not injected")
	}
	if got := f.Stats().EraseTimeouts; got != 4 {
		t.Errorf("EraseTimeouts = %d, want 4", got)
	}
}

func TestFaultInjectorProgramError(t *testing.T) {
	d := smallSim(t, 5)
	f := device.InjectFaults(d, device.FaultConfig{Seed: 5, ProgramErrorProb: 1})
	if err := f.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer f.Lock()
	if err := f.ProgramBlock(0, []uint64{0}); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("program err = %v, want ErrInjected", err)
	}
	wm := make([]uint64, f.Geometry().WordsPerSegment())
	if err := f.StressSegmentWords(0, wm, 10, false); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("stress err = %v, want ErrInjected", err)
	}
	if got := f.Stats().ProgramErrors; got != 2 {
		t.Errorf("ProgramErrors = %d, want 2", got)
	}
}

func TestFaultInjectorReadBitFlips(t *testing.T) {
	d := smallSim(t, 6)
	f := device.InjectFaults(d, device.FaultConfig{Seed: 6, ReadBitFlipProb: 1})
	// Every read returns with exactly one bit flipped, never an error.
	v, err := f.ReadWord(0)
	if err != nil {
		t.Fatal(err)
	}
	if flips := popcount(v ^ 0xFFFF); flips != 1 {
		t.Errorf("read flipped %d bits, want exactly 1", flips)
	}
	words, err := f.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if flips := popcount(w ^ 0xFFFF); flips != 1 {
			t.Fatalf("segment word %d flipped %d bits", i, flips)
		}
	}
	if got := f.Stats().ReadBitFlips; got != 1+len(words) {
		t.Errorf("ReadBitFlips = %d, want %d", got, 1+len(words))
	}
}

func TestFaultInjectorDeterministicPattern(t *testing.T) {
	script := func(seed uint64) []bool {
		d := smallSim(t, 100) // same die every time; only the fault seed varies
		f := device.InjectFaults(d, device.FaultConfig{Seed: seed, EraseTimeoutProb: 0.3})
		if err := f.Unlock(); err != nil {
			t.Fatal(err)
		}
		defer f.Lock()
		fired := make([]bool, 40)
		for i := range fired {
			fired[i] = f.EraseSegment(0) != nil
		}
		return fired
	}
	a, b, c := script(7), script(7), script(8)
	anyFired, allFired := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same fault seed diverged at op %d", i)
		}
		anyFired = anyFired || a[i]
		allFired = allFired && a[i]
	}
	if !anyFired || allFired {
		t.Errorf("p=0.3 over 40 ops fired unexpectedly (any=%v all=%v)", anyFired, allFired)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different fault seeds produced the same pattern")
	}
}

func TestFaultInjectorZeroConfigTransparent(t *testing.T) {
	plain := smallSim(t, 9)
	faulty := device.InjectFaults(smallSim(t, 9), device.FaultConfig{Seed: 9})
	wm := make([]uint64, plain.Geometry().WordsPerSegment())
	for _, dev := range []device.Device{plain, faulty} {
		if err := dev.Unlock(); err != nil {
			t.Fatal(err)
		}
		if err := dev.StressSegmentWords(0, wm, 1000, true); err != nil {
			t.Fatal(err)
		}
		dev.Lock()
	}
	if plain.Clock().Now() != faulty.Clock().Now() {
		t.Errorf("zero-config injector perturbed the clock: %v vs %v", plain.Clock().Now(), faulty.Clock().Now())
	}
	pw, _ := plain.ReadSegment(0)
	fw, _ := faulty.ReadSegment(0)
	for i := range pw {
		if pw[i] != fw[i] {
			t.Fatalf("zero-config injector perturbed word %d", i)
		}
	}
}

func TestRecorderCounts(t *testing.T) {
	d := smallSim(t, 10)
	r := device.Record(d)
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := r.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := r.ProgramBlock(0, []uint64{0x5443}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadWord(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadSegment(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EraseSegmentAdaptive(0); err != nil {
		t.Fatal(err)
	}
	if err := r.PartialEraseSegment(0, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := r.MassEraseBank(0); err != nil {
		t.Fatal(err)
	}
	if err := r.StressSegmentWords(0, make([]uint64, r.Geometry().WordsPerSegment()), 5, false); err != nil {
		t.Fatal(err)
	}
	r.ChargeHostTransfer(16)
	r.Lock()
	want := map[string]int{
		"unlock": 1, "erase-segment": 1, "program-block": 1, "read-word": 1,
		"read-segment": 1, "erase-segment-adaptive": 1, "partial-erase-segment": 1,
		"mass-erase-bank": 1, "stress-segment-words": 1, "host-transfer": 1, "lock": 1,
	}
	got := r.Counts()
	for op, n := range want {
		if got[op] != n {
			t.Errorf("count[%s] = %d, want %d", op, got[op], n)
		}
	}
	if len(r.ErrorCounts()) != 0 {
		t.Errorf("spurious errors recorded: %v", r.ErrorCounts())
	}
	// Errors are tallied separately.
	if err := r.ProgramBlock(1<<30, []uint64{0}); err == nil {
		t.Fatal("bad program accepted")
	}
	if r.ErrorCounts()["program-block"] != 1 {
		t.Errorf("program error not recorded: %v", r.ErrorCounts())
	}
	if r.CountOf("program-block") != 2 {
		t.Errorf("CountOf(program-block) = %d, want 2", r.CountOf("program-block"))
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
