package device

import (
	"fmt"
	"io"
	"time"

	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/vclock"
)

// FaultConfig configures a FaultInjector. Probabilities are per
// operation in [0,1]; zero disables that fault class, so the zero value
// is a fully transparent wrapper.
type FaultConfig struct {
	// Seed derives the injector's private decision stream (via
	// parallel.SubSeed), so fault patterns are deterministic per chip
	// and independent of the chip's own physics RNG.
	Seed uint64
	// EraseTimeoutProb is the chance an erase-class command (full,
	// adaptive, mass, partial) times out: the nominal erase time is
	// burned on the clock but the array state is untouched and the
	// command reports an ErrInjected failure.
	EraseTimeoutProb float64
	// ReadBitFlipProb is the chance a ReadWord returns with one random
	// bit flipped (a transient sense error; no state change, no error).
	ReadBitFlipProb float64
	// ProgramErrorProb is the chance a program-class command (word,
	// block, stress) fails with ErrInjected before touching the array.
	ProgramErrorProb float64
}

// FaultStats counts the faults an injector actually fired.
type FaultStats struct {
	EraseTimeouts int
	ReadBitFlips  int
	ProgramErrors int
}

// FaultInjector wraps a Device and injects configurable per-operation
// faults — erase timeouts, read bit-flips, program errors — so
// verification flows can be exercised against misbehaving silicon.
// Injection decisions come from a private deterministic stream: the
// same seed produces the same fault pattern for the same op sequence.
type FaultInjector struct {
	dev   Device
	cfg   FaultConfig
	r     *rng.Stream
	stats FaultStats
}

// InjectFaults wraps dev with a fault injector.
func InjectFaults(dev Device, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{
		dev: dev,
		cfg: cfg,
		r:   rng.New(parallel.SubSeed(cfg.Seed, 0xFA17)),
	}
}

// Unwrap returns the wrapped device.
func (f *FaultInjector) Unwrap() Device { return f.dev }

// Stats returns the counts of faults fired so far.
func (f *FaultInjector) Stats() FaultStats { return f.stats }

func (f *FaultInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.r.Float64() < p
}

// eraseTimeout burns the nominal erase duration without touching the
// array — the observable behavior of an erase that never verified.
func (f *FaultInjector) eraseTimeout(op string, addr int) error {
	f.stats.EraseTimeouts++
	f.dev.Clock().Advance(f.dev.Ledger().Charge(vclock.OpErase, f.dev.NominalEraseTime()))
	return fmt.Errorf("device: %s at %#x timed out: %w", op, addr, ErrInjected)
}

// PartName identifies the wrapped part with a fault-injection tag.
func (f *FaultInjector) PartName() string { return f.dev.PartName() + "+faults" }

// Seed returns the wrapped device's seed.
func (f *FaultInjector) Seed() uint64 { return f.dev.Seed() }

// Geometry returns the wrapped device's geometry.
func (f *FaultInjector) Geometry() nor.Geometry { return f.dev.Geometry() }

// Unlock forwards to the wrapped device.
func (f *FaultInjector) Unlock() error { return f.dev.Unlock() }

// Lock forwards to the wrapped device.
func (f *FaultInjector) Lock() { f.dev.Lock() }

// EraseSegment forwards, possibly injecting a timeout.
func (f *FaultInjector) EraseSegment(addr int) error {
	if f.roll(f.cfg.EraseTimeoutProb) {
		return f.eraseTimeout("erase", addr)
	}
	return f.dev.EraseSegment(addr)
}

// EraseSegmentAdaptive forwards, possibly injecting a timeout.
func (f *FaultInjector) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	if f.roll(f.cfg.EraseTimeoutProb) {
		return 0, f.eraseTimeout("erase-adaptive", addr)
	}
	return f.dev.EraseSegmentAdaptive(addr)
}

// MassEraseBank forwards, possibly injecting a timeout.
func (f *FaultInjector) MassEraseBank(addr int) error {
	if f.roll(f.cfg.EraseTimeoutProb) {
		return f.eraseTimeout("mass-erase", addr)
	}
	return f.dev.MassEraseBank(addr)
}

// PartialEraseSegment forwards, possibly injecting a timeout.
func (f *FaultInjector) PartialEraseSegment(addr int, pulse time.Duration) error {
	if f.roll(f.cfg.EraseTimeoutProb) {
		return f.eraseTimeout("partial-erase", addr)
	}
	return f.dev.PartialEraseSegment(addr, pulse)
}

// ProgramBlock forwards, possibly injecting a program error.
func (f *FaultInjector) ProgramBlock(addr int, values []uint64) error {
	if f.roll(f.cfg.ProgramErrorProb) {
		f.stats.ProgramErrors++
		return fmt.Errorf("device: program-block at %#x failed: %w", addr, ErrInjected)
	}
	return f.dev.ProgramBlock(addr, values)
}

// ReadWord forwards, possibly flipping one bit of the result.
func (f *FaultInjector) ReadWord(addr int) (uint64, error) {
	v, err := f.dev.ReadWord(addr)
	if err != nil {
		return v, err
	}
	if f.roll(f.cfg.ReadBitFlipProb) {
		f.stats.ReadBitFlips++
		v ^= 1 << uint(f.r.Intn(f.dev.Geometry().WordBits()))
	}
	return v, nil
}

// ReadSegment reads word by word so per-read bit-flips apply.
func (f *FaultInjector) ReadSegment(addr int) ([]uint64, error) {
	geom := f.dev.Geometry()
	seg, err := geom.SegmentOfAddr(addr)
	if err != nil {
		return nil, err
	}
	base := seg * geom.SegmentBytes
	out := make([]uint64, geom.WordsPerSegment())
	for w := range out {
		v, err := f.ReadWord(base + w*geom.WordBytes)
		if err != nil {
			return nil, err
		}
		out[w] = v
	}
	return out, nil
}

// StressSegmentWords forwards, possibly injecting a program error.
func (f *FaultInjector) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	if f.roll(f.cfg.ProgramErrorProb) {
		f.stats.ProgramErrors++
		return fmt.Errorf("device: stress at %#x failed: %w", addr, ErrInjected)
	}
	return f.dev.StressSegmentWords(addr, values, n, adaptive)
}

// NominalEraseTime forwards to the wrapped device.
func (f *FaultInjector) NominalEraseTime() time.Duration { return f.dev.NominalEraseTime() }

// Clock forwards to the wrapped device.
func (f *FaultInjector) Clock() *vclock.Clock { return f.dev.Clock() }

// Ledger forwards to the wrapped device.
func (f *FaultInjector) Ledger() *vclock.Ledger { return f.dev.Ledger() }

// ChargeHostTransfer forwards to the wrapped device.
func (f *FaultInjector) ChargeHostTransfer(n int) { f.dev.ChargeHostTransfer(n) }

// Save persists the wrapped device's state (fault configuration is a
// harness concern, not chip state).
func (f *FaultInjector) Save(w io.Writer) error { return f.dev.Save(w) }
