package device_test

import (
	"errors"
	"testing"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
)

// failingReads vetoes every word read, exercising the injector's
// error-propagation path through ReadSegment.
type failingReads struct {
	device.Device
}

var errSenseAmp = errors.New("sense amplifier dead")

func (f failingReads) ReadWord(addr int) (uint64, error) { return 0, errSenseAmp }

func TestFaultInjectorReadSegmentBadAddress(t *testing.T) {
	d, err := mcu.Open(mcu.PartSmallSim(), 31)
	if err != nil {
		t.Fatal(err)
	}
	f := device.InjectFaults(d, device.FaultConfig{Seed: 1})
	if _, err := f.ReadSegment(-1); err == nil {
		t.Fatal("negative address must be rejected")
	}
	if _, err := f.ReadSegment(d.Geometry().TotalBytes()); err == nil {
		t.Fatal("address past the array must be rejected")
	}
}

func TestFaultInjectorReadSegmentPropagatesReadError(t *testing.T) {
	d, err := mcu.Open(mcu.PartSmallSim(), 32)
	if err != nil {
		t.Fatal(err)
	}
	f := device.InjectFaults(failingReads{d}, device.FaultConfig{Seed: 2})
	if _, err := f.ReadSegment(0); !errors.Is(err, errSenseAmp) {
		t.Fatalf("underlying read error must surface, got %v", err)
	}
}

// wearCell is a one-cell StressSubstrate for pinning the kernel's wear
// arithmetic per starting state.
type wearCell struct {
	programmed bool
	wear       float64
	finalProg  bool
}

func (c *wearCell) Cells() int                     { return 1 }
func (c *wearCell) Programmed(i int) bool          { return c.programmed }
func (c *wearCell) Wear(i int) float64             { return c.wear }
func (c *wearCell) AddWear(i int, w float64)       { c.wear += w }
func (c *wearCell) SetErased(i int)                { c.finalProg = false }
func (c *wearCell) SetProgrammed(i int)            { c.finalProg = true }
func (c *wearCell) TauAt(i int, w float64) float64 { return 25 + w }

func TestApplyStressFirstEraseSeesCurrentState(t *testing.T) {
	wear := device.StressWear{FullWear: 2, EraseOnly: 1, Program: 0.5}
	const n = 3
	cases := []struct {
		name       string
		programmed bool
		one        bool
		want       float64
	}{
		// Erased start, watermark 1: n cheap erases, no programs.
		{"erased-one", false, true, 1 + 2*1},
		// Erased start, watermark 0: first erase cheap, then full, plus programs.
		{"erased-zero", false, false, 1 + 2*2 + 3*0.5},
		// Programmed start, watermark 1: first erase is full-cost.
		{"programmed-one", true, true, 2 + 2*1},
		// Programmed start, watermark 0: every erase full-cost.
		{"programmed-zero", true, false, 2 + 2*2 + 3*0.5},
	}
	for _, tc := range cases {
		c := &wearCell{programmed: tc.programmed}
		device.ApplyStress(c, func(i int) bool { return tc.one }, n, wear)
		if c.wear != tc.want {
			t.Errorf("%s: wear %v, want %v", tc.name, c.wear, tc.want)
		}
		if c.finalProg != !tc.one {
			t.Errorf("%s: final state programmed=%v, want %v", tc.name, c.finalProg, !tc.one)
		}
	}
}
