// Package devicetest is the conformance suite every device.Device
// backend must pass: the mcu NOR parts, the NAND adapter, and any
// decorator that claims to be transparent. Run exercises the full
// interface contract — geometry sanity, erased-state reads,
// program/read round trips, erase and partial-erase semantics, the
// stress fast-forward, virtual-clock monotonicity — and pins the
// determinism guarantee the whole experiment engine rests on: the same
// seed must reproduce byte-identical chip state.
//
// A new backend earns its place by adding one devicetest.Run line to
// internal/device/conformance_test.go (see DESIGN.md, "Adding a
// backend").
package devicetest

import (
	"bytes"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
)

// Run executes the conformance suite against a backend family. fab must
// return a fresh, independent chip for every seed; name labels the
// subtests.
func Run(t *testing.T, name string, fab device.Fab) {
	t.Helper()
	t.Run(name+"/geometry", func(t *testing.T) { testGeometry(t, fab) })
	t.Run(name+"/fresh-reads-erased", func(t *testing.T) { testFreshReadsErased(t, fab) })
	t.Run(name+"/program-read-roundtrip", func(t *testing.T) { testProgramReadRoundTrip(t, fab) })
	t.Run(name+"/erase-resets", func(t *testing.T) { testEraseResets(t, fab) })
	t.Run(name+"/partial-erase", func(t *testing.T) { testPartialErase(t, fab) })
	t.Run(name+"/stress", func(t *testing.T) { testStress(t, fab) })
	t.Run(name+"/clock", func(t *testing.T) { testClock(t, fab) })
	t.Run(name+"/determinism", func(t *testing.T) { testDeterminism(t, fab) })
}

func fabricate(t *testing.T, fab device.Fab, seed uint64) device.Device {
	t.Helper()
	dev, err := fab(seed)
	if err != nil {
		t.Fatalf("fab(%#x): %v", seed, err)
	}
	return dev
}

// pattern fills a segment image with a mixed-bit test pattern.
func pattern(geom interface{ WordsPerSegment() int }, mask uint64) []uint64 {
	out := make([]uint64, geom.WordsPerSegment())
	for i := range out {
		out[i] = (uint64(i)*0x9E37 + 0x5443) & mask
	}
	return out
}

func testGeometry(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F1)
	geom := dev.Geometry()
	if err := geom.Validate(); err != nil {
		t.Fatalf("invalid geometry: %v", err)
	}
	if dev.PartName() == "" {
		t.Error("empty part name")
	}
	if dev.Seed() != 0xC0F1 {
		t.Errorf("Seed() = %#x, want 0xC0F1", dev.Seed())
	}
	if dev.NominalEraseTime() <= 0 {
		t.Errorf("NominalEraseTime() = %v", dev.NominalEraseTime())
	}
	if dev.Clock() == nil || dev.Ledger() == nil {
		t.Fatal("nil clock or ledger")
	}
}

func testFreshReadsErased(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F2)
	geom := dev.Geometry()
	erased := uint64(1)<<geom.WordBits() - 1
	words, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != geom.WordsPerSegment() {
		t.Fatalf("ReadSegment returned %d words, segment holds %d", len(words), geom.WordsPerSegment())
	}
	for i, w := range words {
		if w != erased {
			t.Fatalf("fresh word %d = %#x, want erased %#x", i, w, erased)
		}
	}
	// Word-granular reads agree with the segment read.
	v, err := dev.ReadWord(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != erased {
		t.Errorf("fresh ReadWord(0) = %#x, want %#x", v, erased)
	}
}

func testProgramReadRoundTrip(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F3)
	geom := dev.Geometry()
	mask := uint64(1)<<geom.WordBits() - 1
	img := pattern(geom, mask)
	if err := dev.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer dev.Lock()
	if err := dev.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramBlock(0, img); err != nil {
		t.Fatal(err)
	}
	words, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != img[i] {
			t.Fatalf("word %d = %#x, want %#x", i, w, img[i])
		}
	}
	// ReadWord sees the same values.
	for _, i := range []int{0, len(img) / 2, len(img) - 1} {
		v, err := dev.ReadWord(i * geom.WordBytes)
		if err != nil {
			t.Fatal(err)
		}
		if v != img[i] {
			t.Errorf("ReadWord(word %d) = %#x, want %#x", i, v, img[i])
		}
	}
	// Out-of-range addresses are rejected, not wrapped.
	if err := dev.ProgramBlock(geom.TotalBytes(), img[:1]); err == nil {
		t.Error("program past end of array accepted")
	}
	if _, err := dev.ReadWord(geom.TotalBytes()); err == nil {
		t.Error("read past end of array accepted")
	}
}

func testEraseResets(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F4)
	geom := dev.Geometry()
	mask := uint64(1)<<geom.WordBits() - 1
	if err := dev.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer dev.Lock()
	if err := dev.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())); err != nil {
		t.Fatal(err)
	}
	if err := dev.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	words, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != mask {
			t.Fatalf("word %d = %#x after erase, want %#x", i, w, mask)
		}
	}
	// Mass erase covers every segment of the bank.
	if err := dev.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())); err != nil {
		t.Fatal(err)
	}
	if err := dev.MassEraseBank(0); err != nil {
		t.Fatal(err)
	}
	last := geom.SegmentsPerBank - 1
	addr, err := geom.AddrOfSegment(last)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dev.ReadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != mask {
		t.Errorf("last segment of bank reads %#x after mass erase", v)
	}
}

func testPartialErase(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F5)
	geom := dev.Geometry()
	cells := geom.CellsPerSegment()
	if err := dev.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer dev.Lock()
	if err := dev.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())); err != nil {
		t.Fatal(err)
	}
	// A pulse far below any cell's erase time moves nothing observable.
	if err := dev.PartialEraseSegment(0, 100*time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if n := countOnes(t, dev, geom.WordBits()); n > cells/10 {
		t.Errorf("%d/%d cells erased by a 100ns pulse", n, cells)
	}
	// A pulse of the full nominal time is a complete erase on fresh cells.
	if err := dev.PartialEraseSegment(0, dev.NominalEraseTime()); err != nil {
		t.Fatal(err)
	}
	if n := countOnes(t, dev, geom.WordBits()); n < cells-cells/100 {
		t.Errorf("only %d/%d cells erased by a nominal-length pulse", n, cells)
	}
	if err := dev.PartialEraseSegment(0, -time.Microsecond); err == nil {
		t.Error("negative pulse accepted")
	}
}

func testStress(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F6)
	geom := dev.Geometry()
	mask := uint64(1)<<geom.WordBits() - 1
	img := pattern(geom, mask)
	if err := dev.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer dev.Lock()
	const n = 500
	before := dev.Clock().Now()
	if err := dev.StressSegmentWords(0, img, n, false); err != nil {
		t.Fatal(err)
	}
	if dev.Clock().Now() <= before {
		t.Error("stress did not advance the clock")
	}
	// The final program cycle leaves the pattern readable.
	words, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != img[i] {
			t.Fatalf("word %d = %#x after stress, want %#x", i, w, img[i])
		}
	}
	// Backends with wear diagnostics must show the cycles.
	if wi, ok := device.As[device.WearInspector](dev); ok {
		_, mean, maxW, err := wi.SegmentWearSummary(0)
		if err != nil {
			t.Fatal(err)
		}
		if mean <= 0 || maxW < n-1 {
			t.Errorf("wear after %d cycles: mean %.1f max %.1f", n, mean, maxW)
		}
	}
	// The adaptive variant runs too and is cheaper or equal in time.
	dev2 := fabricate(t, fab, 0xC0F6+1)
	if err := dev2.Unlock(); err != nil {
		t.Fatal(err)
	}
	defer dev2.Lock()
	if err := dev2.StressSegmentWords(0, pattern(dev2.Geometry(), mask), n, true); err != nil {
		t.Fatal(err)
	}
	if dev2.Clock().Now() > dev.Clock().Now() {
		t.Errorf("adaptive stress slower than nominal: %v > %v", dev2.Clock().Now(), dev.Clock().Now())
	}
}

func testClock(t *testing.T, fab device.Fab) {
	dev := fabricate(t, fab, 0xC0F7)
	geom := dev.Geometry()
	last := dev.Clock().Now()
	step := func(op string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		now := dev.Clock().Now()
		if now < last {
			t.Fatalf("%s moved the clock backwards: %v -> %v", op, last, now)
		}
		last = now
	}
	step("unlock", dev.Unlock)
	step("erase", func() error { return dev.EraseSegment(0) })
	step("program", func() error { return dev.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())) })
	step("read", func() error { _, err := dev.ReadSegment(0); return err })
	step("partial-erase", func() error { return dev.PartialEraseSegment(0, time.Microsecond) })
	step("adaptive-erase", func() error { _, err := dev.EraseSegmentAdaptive(0); return err })
	dev.Lock()
	// Host transfers are charged to the ledger's host class.
	before := dev.Ledger().Of(device.OpHost)
	dev.ChargeHostTransfer(1024)
	if dev.Ledger().Of(device.OpHost) <= before {
		t.Error("host transfer not charged")
	}
}

// testDeterminism runs an identical op script on two same-seed chips and
// demands bit-identical observations, clocks, and persisted state.
func testDeterminism(t *testing.T, fab device.Fab) {
	run := func(dev device.Device) ([]uint64, time.Duration, []byte) {
		t.Helper()
		geom := dev.Geometry()
		mask := uint64(1)<<geom.WordBits() - 1
		img := pattern(geom, mask)
		if err := dev.Unlock(); err != nil {
			t.Fatal(err)
		}
		if err := dev.StressSegmentWords(0, img, 2000, true); err != nil {
			t.Fatal(err)
		}
		if err := dev.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := dev.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())); err != nil {
			t.Fatal(err)
		}
		// A mid-scale pulse lands cells in the metastable band, so this
		// read exercises the noise stream too — it must still replay.
		if err := dev.PartialEraseSegment(0, dev.NominalEraseTime()/2); err != nil {
			t.Fatal(err)
		}
		words, err := dev.ReadSegment(0)
		if err != nil {
			t.Fatal(err)
		}
		dev.Lock()
		var buf bytes.Buffer
		if err := dev.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return words, dev.Clock().Now(), buf.Bytes()
	}
	a := fabricate(t, fab, 0xC0F8)
	b := fabricate(t, fab, 0xC0F8)
	aw, at, ab := run(a)
	bw, bt, bb := run(b)
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("same-seed chips diverged at word %d: %#x vs %#x", i, aw[i], bw[i])
		}
	}
	if at != bt {
		t.Errorf("same-seed clocks diverged: %v vs %v", at, bt)
	}
	if !bytes.Equal(ab, bb) {
		t.Error("same-seed chips persisted different state")
	}
	// A different seed is a different die: process variation shifts every
	// cell's erase time, so the adaptive-stress portion of the script
	// takes a measurably different amount of device time.
	c := fabricate(t, fab, 0xC0F9)
	_, ct, cb := run(c)
	if ct == at && bytes.Equal(cb, ab) {
		t.Error("different seeds produced an identical die")
	}
}

func countOnes(t *testing.T, dev device.Device, wordBits int) int {
	t.Helper()
	words, err := dev.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, w := range words {
		for b := 0; b < wordBits; b++ {
			if w>>uint(b)&1 == 1 {
				n++
			}
		}
	}
	return n
}
