package devicetest_test

import (
	"testing"

	"github.com/flashmark/flashmark/internal/device/devicetest"
	"github.com/flashmark/flashmark/internal/mcu"
)

// The suite must itself pass against a known-good backend; this also
// keeps the contract checks honest when they are edited.
func TestSuiteAgainstReferenceBackend(t *testing.T) {
	devicetest.Run(t, "FM-SIM16", mcu.Fab(mcu.PartSmallSim()))
}
