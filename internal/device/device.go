// Package device defines the substrate-neutral chip interface the
// Flashmark procedures run against. The paper's algorithms (imprint,
// partial-erase extract, characterize, calibrate) only ever observe a
// chip through digital reads after timed operations, so they need
// nothing beyond this narrow surface: geometry, erase/program/read, the
// abortable erase, virtual-clock accounting, and persistence. The NOR
// microcontroller (package mcu) satisfies it directly; package nand
// adapts a NAND chip to it at block granularity; the decorators in this
// package (FaultInjector, Recorder) wrap any implementation with the
// same surface, so one watermark code path serves every backend.
package device

import (
	"errors"
	"io"
	"time"

	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

// OpHost is the ledger class for host-link (serial/SPI) transfer time.
const OpHost = vclock.OpClass("host-io")

// ErrInjected marks failures produced by a fault-injecting backend
// rather than by the simulated chip itself. Consumers that want a
// degraded-but-explicit outcome (instead of a hard error) test for it
// with errors.Is; see counterfeit.VerdictInconclusive.
var ErrInjected = errors.New("device: injected fault")

// Device is one simulated chip viewed through the only operations the
// Flashmark procedures need. Addresses are byte addresses into the
// word-granular geometry returned by Geometry; on substrates whose
// native erase unit is larger than a NOR segment (NAND blocks), the
// adapter maps one geometry segment onto one native erase unit.
//
// A Device is not safe for concurrent use: like the silicon it models,
// it executes one flash operation at a time. Run independent devices on
// independent goroutines instead.
type Device interface {
	// PartName identifies the backing part (catalog name or adapter tag).
	PartName() string
	// Seed returns the chip seed (the die's physical identity).
	Seed() uint64
	// Geometry returns the word-granular view of the array.
	Geometry() nor.Geometry

	// Unlock enables erase/program commands; Lock re-protects. Backends
	// without a lock protocol treat both as no-ops.
	Unlock() error
	Lock()

	// EraseSegment performs a nominal full erase of the segment
	// containing addr.
	EraseSegment(addr int) error
	// EraseSegmentAdaptive erases the segment but exits as soon as every
	// cell has physically crossed (the §V accelerated-imprint
	// primitive). It returns the erase pulse duration actually spent.
	EraseSegmentAdaptive(addr int) (time.Duration, error)
	// MassEraseBank erases every segment of the bank containing addr.
	MassEraseBank(addr int) error
	// PartialEraseSegment starts an erase and aborts it after pulse (the
	// paper's emergency-exit extraction primitive).
	PartialEraseSegment(addr int, pulse time.Duration) error
	// ProgramBlock programs consecutive words starting at a word-aligned
	// byte address. The block must not cross a segment boundary.
	ProgramBlock(addr int, values []uint64) error
	// ReadWord reads the word at a word-aligned byte address; metastable
	// cells sample per read.
	ReadWord(addr int) (uint64, error)
	// ReadSegment reads every word of the segment containing addr.
	ReadSegment(addr int) ([]uint64, error)
	// StressSegmentWords fast-forwards n imprint cycles (erase + program
	// values) over one segment, with time charged as n literal cycles
	// (see the closed-form stress kernel in this package).
	StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error

	// NominalEraseTime is the datasheet duration of a full segment-unit
	// erase — the cap for partial-erase sweeps.
	NominalEraseTime() time.Duration

	// Clock returns the device's virtual clock.
	Clock() *vclock.Clock
	// Ledger returns the device's virtual-time ledger.
	Ledger() *vclock.Ledger
	// ChargeHostTransfer accounts for moving n bytes over the host link.
	ChargeHostTransfer(n int)

	// Save persists the chip state so it can be reloaded later.
	Save(w io.Writer) error
}

// Fab fabricates a fresh chip for a given die seed. Procedures that
// consume whole device families (calibration, population experiments)
// take a Fab instead of a concrete part so they run against any backend.
type Fab func(seed uint64) (Device, error)

// Unwrapper is implemented by decorators; Unwrap returns the wrapped
// Device so capability probes can reach through decorator chains.
type Unwrapper interface {
	Unwrap() Device
}

// As reports whether d — or any device it wraps — implements T, and
// returns the first implementation found walking the Unwrap chain.
func As[T any](d Device) (T, bool) {
	for {
		if t, ok := d.(T); ok {
			return t, true
		}
		u, ok := d.(Unwrapper)
		if !ok {
			var zero T
			return zero, false
		}
		d = u.Unwrap()
	}
}

// Refabricator is the optional capability of backends that can return
// to the pristine state a fresh construction with the given seed would
// produce — in place, reusing their allocations. Population arenas use
// it to recycle device instances instead of reconstructing them; the
// contract is exact equivalence with a fresh fabrication, except that
// a selected physics path survives the reset (fab wrappers like
// WithPhysicsPath run only at construction and an arena never re-runs
// them). Unlike the other capabilities, Refabricate must only be
// asserted on the outermost value, never probed through As: a decorator
// chain carries per-wrapper state no inner reset can see, so there is
// deliberately no package-level helper that walks Unwrap for it.
type Refabricator interface {
	Refabricate(seed uint64) error
}

// PhysicsPath selects how a backend evaluates its cell physics.
type PhysicsPath string

const (
	// PhysicsFast is the batched evaluation: per-segment base caches,
	// wear-grouped hoisting of the shared tau terms, lazily materialized
	// partial-erase margins, and pruned adaptive-erase maxima. It is the
	// default. Results are bit-identical to the reference path (the
	// golden-equivalence suite pins this), and decorators observe the
	// same operation sequence: only the arithmetic inside an operation
	// is reorganized, never the operations themselves.
	PhysicsFast PhysicsPath = "fast"
	// PhysicsReference is the original per-cell evaluation, kept as the
	// executable specification the fast path is tested against.
	PhysicsReference PhysicsPath = "reference"
)

// PhysicsSelector is the optional capability of backends that implement
// both physics paths and can switch between them.
type PhysicsSelector interface {
	PhysicsPath() PhysicsPath
	SetPhysicsPath(PhysicsPath) error
}

// SetPhysicsPath selects the backend's physics path, reaching through
// decorator chains. Backends without the capability reject the request.
func SetPhysicsPath(d Device, p PhysicsPath) error {
	s, ok := As[PhysicsSelector](d)
	if !ok {
		return errors.New("device: backend does not support physics path selection")
	}
	return s.SetPhysicsPath(p)
}

// WithPhysicsPath wraps fab so every fabricated device comes up on the
// given physics path — how equivalence harnesses run a whole population
// on the reference path.
func WithPhysicsPath(fab Fab, p PhysicsPath) Fab {
	return func(seed uint64) (Device, error) {
		d, err := fab(seed)
		if err != nil {
			return nil, err
		}
		if err := SetPhysicsPath(d, p); err != nil {
			return nil, err
		}
		return d, nil
	}
}

// Ager is the optional capability of backends that model unpowered
// storage age (retention drift).
type Ager interface {
	// Age advances the chip's storage age to the given total years
	// (monotone: chips do not get younger).
	Age(years float64) error
	// AgeYears returns the chip's storage age.
	AgeYears() float64
}

// Thermal is the optional capability of backends that model ambient
// operating temperature.
type Thermal interface {
	SetAmbientTempC(t float64) error
	AmbientTempC() float64
}

// Tracer is the optional capability of backends that can record an
// operation trace.
type Tracer interface {
	SetTrace(t *vclock.Trace)
	Trace() *vclock.Trace
}

// PartialProgrammer is the optional capability behind the prior-work FFD
// comparator: start programming a whole segment and abort after pulse.
type PartialProgrammer interface {
	PartialProgramSegment(addr int, pulse time.Duration) error
}

// WearInspector is the optional capability of backends that expose cell
// wear diagnostics (the reliability counters a production driver has).
type WearInspector interface {
	// SegmentWearSummary returns min/mean/max wear across segment seg.
	SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error)
	// WornCellCount counts cells of the segment containing addr that
	// exceeded the datasheet endurance.
	WornCellCount(addr int) (int, error)
	// EnduranceCycles returns the datasheet endurance in P/E cycles.
	EnduranceCycles() float64
}

// Age advances the chip's storage age if the backend supports aging.
func Age(d Device, years float64) error {
	a, ok := As[Ager](d)
	if !ok {
		return errors.New("device: backend does not model storage age")
	}
	return a.Age(years)
}

// SetAmbientTempC sets the operating temperature if the backend models
// temperature.
func SetAmbientTempC(d Device, t float64) error {
	th, ok := As[Thermal](d)
	if !ok {
		return errors.New("device: backend does not model temperature")
	}
	return th.SetAmbientTempC(t)
}
