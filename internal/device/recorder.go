package device

import (
	"io"
	"time"

	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

// Recorder wraps a Device and counts every operation and error passing
// through it — the seam where a future observability layer (metrics,
// structured op logs) attaches without touching the backends or the
// procedures. Like the devices it wraps, a Recorder is not safe for
// concurrent use.
type Recorder struct {
	dev    Device
	counts map[string]int
	errs   map[string]int
}

// Record wraps dev with an op-counting recorder.
func Record(dev Device) *Recorder {
	return &Recorder{dev: dev, counts: make(map[string]int), errs: make(map[string]int)}
}

// Unwrap returns the wrapped device.
func (r *Recorder) Unwrap() Device { return r.dev }

// Counts returns a copy of the per-operation call counts.
func (r *Recorder) Counts() map[string]int {
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// ErrorCounts returns a copy of the per-operation error counts.
func (r *Recorder) ErrorCounts() map[string]int {
	out := make(map[string]int, len(r.errs))
	for k, v := range r.errs {
		out[k] = v
	}
	return out
}

// CountOf returns how many times op was invoked.
func (r *Recorder) CountOf(op string) int { return r.counts[op] }

func (r *Recorder) note(op string, err error) {
	r.counts[op]++
	if err != nil {
		r.errs[op]++
	}
}

// PartName forwards to the wrapped device.
func (r *Recorder) PartName() string { return r.dev.PartName() }

// Seed forwards to the wrapped device.
func (r *Recorder) Seed() uint64 { return r.dev.Seed() }

// Geometry forwards to the wrapped device.
func (r *Recorder) Geometry() nor.Geometry { return r.dev.Geometry() }

// Unlock forwards and counts.
func (r *Recorder) Unlock() error {
	err := r.dev.Unlock()
	r.note("unlock", err)
	return err
}

// Lock forwards and counts.
func (r *Recorder) Lock() {
	r.dev.Lock()
	r.note("lock", nil)
}

// EraseSegment forwards and counts.
func (r *Recorder) EraseSegment(addr int) error {
	err := r.dev.EraseSegment(addr)
	r.note("erase-segment", err)
	return err
}

// EraseSegmentAdaptive forwards and counts.
func (r *Recorder) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	d, err := r.dev.EraseSegmentAdaptive(addr)
	r.note("erase-segment-adaptive", err)
	return d, err
}

// MassEraseBank forwards and counts.
func (r *Recorder) MassEraseBank(addr int) error {
	err := r.dev.MassEraseBank(addr)
	r.note("mass-erase-bank", err)
	return err
}

// PartialEraseSegment forwards and counts.
func (r *Recorder) PartialEraseSegment(addr int, pulse time.Duration) error {
	err := r.dev.PartialEraseSegment(addr, pulse)
	r.note("partial-erase-segment", err)
	return err
}

// ProgramBlock forwards and counts.
func (r *Recorder) ProgramBlock(addr int, values []uint64) error {
	err := r.dev.ProgramBlock(addr, values)
	r.note("program-block", err)
	return err
}

// ReadWord forwards and counts.
func (r *Recorder) ReadWord(addr int) (uint64, error) {
	v, err := r.dev.ReadWord(addr)
	r.note("read-word", err)
	return v, err
}

// ReadSegment forwards and counts.
func (r *Recorder) ReadSegment(addr int) ([]uint64, error) {
	v, err := r.dev.ReadSegment(addr)
	r.note("read-segment", err)
	return v, err
}

// StressSegmentWords forwards and counts.
func (r *Recorder) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	err := r.dev.StressSegmentWords(addr, values, n, adaptive)
	r.note("stress-segment-words", err)
	return err
}

// NominalEraseTime forwards to the wrapped device.
func (r *Recorder) NominalEraseTime() time.Duration { return r.dev.NominalEraseTime() }

// Clock forwards to the wrapped device.
func (r *Recorder) Clock() *vclock.Clock { return r.dev.Clock() }

// Ledger forwards to the wrapped device.
func (r *Recorder) Ledger() *vclock.Ledger { return r.dev.Ledger() }

// ChargeHostTransfer forwards and counts.
func (r *Recorder) ChargeHostTransfer(n int) {
	r.dev.ChargeHostTransfer(n)
	r.note("host-transfer", nil)
}

// Save forwards and counts.
func (r *Recorder) Save(w io.Writer) error {
	err := r.dev.Save(w)
	r.note("save", err)
	return err
}
