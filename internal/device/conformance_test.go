package device_test

import (
	"testing"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/device/devicetest"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/reram"
)

// TestConformance runs the backend contract suite over every shipped
// implementation: all catalog NOR parts, the NAND adapter, and both
// decorators (which must be fully transparent at their zero
// configuration).
func TestConformance(t *testing.T) {
	for _, part := range []mcu.Part{
		mcu.PartMSP430F5438(),
		mcu.PartMSP430F5529(),
		mcu.PartSmallSim(),
		mcu.PartFastNOR(),
		mcu.PartAltNOR(),
	} {
		devicetest.Run(t, part.Name, mcu.Fab(part))
	}

	devicetest.Run(t, "NAND-SIM", nand.Fab(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams()))

	devicetest.Run(t, "RERAM-CB16", reram.DefaultFab())

	base := mcu.Fab(mcu.PartSmallSim())
	devicetest.Run(t, "FM-SIM16+faults-off", func(seed uint64) (device.Device, error) {
		d, err := base(seed)
		if err != nil {
			return nil, err
		}
		return device.InjectFaults(d, device.FaultConfig{Seed: seed}), nil
	})
	devicetest.Run(t, "FM-SIM16+recorder", func(seed uint64) (device.Device, error) {
		d, err := base(seed)
		if err != nil {
			return nil, err
		}
		return device.Record(d), nil
	})
	devicetest.Run(t, "NAND-SIM+recorder+faults-off", func(seed uint64) (device.Device, error) {
		d, err := nand.Open(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams(), seed)
		if err != nil {
			return nil, err
		}
		return device.Record(device.InjectFaults(d, device.FaultConfig{Seed: seed})), nil
	})
	reramFab := reram.DefaultFab()
	devicetest.Run(t, "RERAM-CB16+faults-off", func(seed uint64) (device.Device, error) {
		d, err := reramFab(seed)
		if err != nil {
			return nil, err
		}
		return device.InjectFaults(d, device.FaultConfig{Seed: seed}), nil
	})
	devicetest.Run(t, "RERAM-CB16+recorder", func(seed uint64) (device.Device, error) {
		d, err := reramFab(seed)
		if err != nil {
			return nil, err
		}
		return device.Record(d), nil
	})
}
