package device

// The closed-form stress kernel shared by every backend. Fast-forwarding
// n imprint cycles (erase whole unit + program the watermark) is pure
// cell-state arithmetic: wear per cycle is state-independent after the
// first cycle, so the final wear and margins are computed in O(cells)
// instead of O(cells·n). The NOR controller and the NAND adapter both
// ride this kernel and keep only their own time/stats charging, so the
// equivalence argument (fast-forward == literal loop, covered by tests)
// lives in exactly one place.
//
// The arithmetic below preserves the operation order of the original
// per-backend implementations bit for bit — experiment artifacts are
// pinned byte-identical across the refactor.

// StressSubstrate is the minimal cell-state view the kernel needs: one
// erase unit (NOR segment or NAND block) of `Cells` cells, indexed from
// zero within the unit.
type StressSubstrate interface {
	Cells() int
	// Programmed reports whether cell i currently reads programmed.
	Programmed(i int) bool
	// Wear returns cell i's accumulated wear.
	Wear(i int) float64
	// AddWear adds w to cell i's wear.
	AddWear(i int, w float64)
	// SetErased / SetProgrammed drive cell i to a deep stable state.
	SetErased(i int)
	SetProgrammed(i int)
	// TauAt returns cell i's effective erase crossing time (µs) at the
	// given wear, including any age/temperature adjustment the backend
	// applies.
	TauAt(i int, wear float64) float64
}

// StressWear holds the per-cycle wear increments of the physics model.
type StressWear struct {
	FullWear  float64 // erase of a programmed cell
	EraseOnly float64 // erase of an already-erased cell
	Program   float64 // one program exposure
}

// ApplyStress applies the physical outcome of n erase+program cycles to
// the substrate: wear bookkeeping in closed form per cell — cycle 1's
// erase sees the current state; cycles 2..n see the state left by the
// previous cycle's program, which is determined by the watermark bit —
// then the final state (erased, then programmed with the watermark).
// one(i) reports whether cell i's watermark bit is logic 1.
func ApplyStress(s StressSubstrate, one func(i int) bool, n int, wear StressWear) {
	cells := s.Cells()
	for i := 0; i < cells; i++ {
		watermarkOne := one(i)

		// First erase: depends on current state.
		w := wear.EraseOnly
		if s.Programmed(i) {
			w = wear.FullWear
		}
		// Remaining n-1 erases: depend on the watermark bit.
		if n > 1 {
			if watermarkOne {
				w += float64(n-1) * wear.EraseOnly
			} else {
				w += float64(n-1) * wear.FullWear
			}
		}
		// n program exposures for watermark-zero cells.
		if !watermarkOne {
			w += float64(n) * wear.Program
		}
		s.AddWear(i, w)
		// Final state: erased, then programmed with the watermark.
		if watermarkOne {
			s.SetErased(i)
		} else {
			s.SetProgrammed(i)
		}
	}
}

// AdaptiveMaxer is the optional capability of substrates whose backend
// can compute the maximum crossing time over a cell subset in one
// batched, pruned pass. The returned value must be bit-identical to the
// sequential TauAt scan (the equivalence tests pin this); ok=false falls
// back to the scan, so substrates can decline per call (e.g. when the
// backend runs its reference physics path).
type AdaptiveMaxer interface {
	MaxTauOver(include func(i int) bool, wearOf func(i int) float64) (maxTau float64, ok bool)
}

// MeanAdaptiveTauUs integrates the adaptive erase pulse series over the
// n cycles of a stress that ApplyStress has already applied, returning
// the mean max-tau in microseconds. Cycle k's erase must outlast the
// slowest watermark-zero cell at its wear after k-1 cycles
// (watermark-one cells are already erased and impose no wait); the
// series is integrated by sampling the max-tau curve at a few wear
// points and trapezoid-averaging, since tau grows smoothly with wear.
func MeanAdaptiveTauUs(s StressSubstrate, one func(i int) bool, n int, wear StressWear) float64 {
	cells := s.Cells()
	am, hasAM := s.(AdaptiveMaxer)
	maxTauAt := func(cycles float64) float64 {
		wearOf := func(i int) float64 {
			// Wear of a zero cell after `cycles` cycles, relative to its
			// wear before the stress began (ApplyStress already added
			// the full n cycles).
			w := s.Wear(i) - float64(n)*(wear.FullWear+wear.Program) + cycles*(wear.FullWear+wear.Program)
			if w < 0 {
				w = 0
			}
			return w
		}
		include := func(i int) bool { return !one(i) }
		if hasAM {
			if maxTau, ok := am.MaxTauOver(include, wearOf); ok {
				return maxTau
			}
		}
		maxTau := 0.0
		for i := 0; i < cells; i++ {
			if !include(i) {
				continue
			}
			tau := s.TauAt(i, wearOf(i))
			if tau > maxTau {
				maxTau = tau
			}
		}
		return maxTau
	}
	const samples = 9
	taus := make([]float64, samples)
	for s := 0; s < samples; s++ {
		frac := float64(s) / float64(samples-1)
		taus[s] = maxTauAt(frac * float64(n))
	}
	meanTau := 0.0
	for s := 0; s < samples-1; s++ {
		meanTau += (taus[s] + taus[s+1]) / 2
	}
	meanTau /= float64(samples - 1)
	return meanTau
}
