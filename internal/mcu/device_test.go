package mcu

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/flashctl"
	"github.com/flashmark/flashmark/internal/vclock"
)

func newSim(t *testing.T, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(PartSmallSim(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCatalogPartsValid(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.Geometry.Validate(); err != nil {
			t.Errorf("%s geometry: %v", p.Name, err)
		}
		if err := p.Timing.Validate(); err != nil {
			t.Errorf("%s timing: %v", p.Name, err)
		}
		if err := p.Params.Validate(); err != nil {
			t.Errorf("%s params: %v", p.Name, err)
		}
		if p.SerialBaud <= 0 {
			t.Errorf("%s has no serial baud", p.Name)
		}
		if _, err := NewDevice(p, 1); err != nil {
			t.Errorf("NewDevice(%s): %v", p.Name, err)
		}
	}
}

func TestPartByName(t *testing.T) {
	p, err := PartByName("MSP430F5438")
	if err != nil || p.Name != "MSP430F5438" {
		t.Fatalf("PartByName = %+v, %v", p, err)
	}
	if _, err := PartByName("Z80"); err == nil {
		t.Fatal("unknown part accepted")
	}
}

func TestDeviceIdentity(t *testing.T) {
	d := newSim(t, 99)
	if d.Seed() != 99 {
		t.Errorf("Seed = %d", d.Seed())
	}
	if d.Part().Name != "FM-SIM16" {
		t.Errorf("Part = %s", d.Part().Name)
	}
	if d.Controller() == nil || d.Clock() == nil || d.Ledger() == nil {
		t.Fatal("nil subsystem")
	}
}

func TestDevicesDifferBySeed(t *testing.T) {
	a := newSim(t, 1)
	b := newSim(t, 2)
	ma := a.Controller().Model().Base(0, 0)
	mb := b.Controller().Model().Base(0, 0)
	if ma == mb {
		t.Error("different seeds produced identical cells")
	}
}

func TestChargeHostTransfer(t *testing.T) {
	d := newSim(t, 1)
	d.ChargeHostTransfer(1536) // 512 bytes x 3 reads
	got := d.Ledger().Of(OpHost)
	bits := 15360.0
	want := time.Duration(bits / 115200 * float64(time.Second))
	if got != want {
		t.Errorf("host transfer = %v, want %v", got, want)
	}
	if d.Clock().Now() != got {
		t.Error("clock not advanced by host transfer")
	}
	// ~133 ms: the dominant part of the paper's 170 ms extract time.
	if got < 130*time.Millisecond || got > 137*time.Millisecond {
		t.Errorf("3-read segment host readout = %v, expected ~133 ms", got)
	}
	before := d.Clock().Now()
	d.ChargeHostTransfer(0)
	d.ChargeHostTransfer(-5)
	if d.Clock().Now() != before {
		t.Error("non-positive transfer should be a no-op")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := newSim(t, 7)
	ctl := d.Controller()
	if err := ctl.Unlock(flashctl.UnlockKey); err != nil {
		t.Fatal(err)
	}
	if err := ctl.ProgramWord(16, 0x5443); err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, d.Part().Geometry.WordsPerSegment())
	if err := ctl.StressSegmentWords(512, values, 1000, false); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Seed() != 7 || d2.Part().Name != "FM-SIM16" {
		t.Fatalf("identity lost: seed %d part %s", d2.Seed(), d2.Part().Name)
	}
	v, err := d2.Controller().ReadWord(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5443 {
		t.Errorf("programmed word = %#x after reload", v)
	}
	w1 := d.Controller().Array().Wear(d.Part().Geometry.CellIndex(1, 0, 0))
	w2 := d2.Controller().Array().Wear(d.Part().Geometry.CellIndex(1, 0, 0))
	if w1 != w2 {
		t.Errorf("wear lost: %v vs %v", w1, w2)
	}
	// Physics identical: same tau for same cell.
	t1 := d.Controller().Model().TauAt(1, 0, w1)
	t2 := d2.Controller().Model().TauAt(1, 0, w2)
	if t1 != t2 {
		t.Errorf("tau diverged after reload: %v vs %v", t1, t2)
	}
}

func TestSaveLoadPreservesCustomParams(t *testing.T) {
	part := PartSmallSim()
	part.Params.ReadNoiseSigmaUs = 1.25
	d, err := NewDevice(part, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Part().Params.ReadNoiseSigmaUs; got != 1.25 {
		t.Errorf("custom params lost: ReadNoiseSigmaUs = %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"format":"other","version":1}`,
		`{"format":"flashmark-chip","version":99,"part":"FM-SIM16"}`,
		`{"format":"flashmark-chip","version":1,"part":"NOPE","array":""}`,
		`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":"!!!"}`,
		`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":""}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadRejectsGeometryMismatch(t *testing.T) {
	// Save a SIM16 chip, then claim it is an MSP430F5438.
	d := newSim(t, 1)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), `"FM-SIM16"`, `"MSP430F5438"`, 1)
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestFreshChipFileCompact(t *testing.T) {
	d := newSim(t, 1)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Errorf("fresh chip file is %d bytes; sparse encoding expected", buf.Len())
	}
}

func TestLedgerClassesAfterActivity(t *testing.T) {
	d := newSim(t, 5)
	ctl := d.Controller()
	if err := ctl.Unlock(flashctl.UnlockKey); err != nil {
		t.Fatal(err)
	}
	if err := ctl.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	d.ChargeHostTransfer(100)
	l := d.Ledger()
	if l.Of(vclock.OpErase) == 0 || l.Of(OpHost) == 0 {
		t.Errorf("ledger missing classes: %s", l)
	}
}

// savedBytes serializes a device the way a client uploads it.
func savedBytes(t *testing.T, d *Device) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoaderMatchesLoad proves the reusable Loader is equivalent to the
// one-shot Load: the device a warm (already-populated) Loader produces
// re-serializes to the same bytes, across chips of different parts and
// states, and rejects exactly the garbage Load rejects.
func TestLoaderMatchesLoad(t *testing.T) {
	worn := newSim(t, 7)
	ctl := worn.Controller()
	if err := ctl.Unlock(flashctl.UnlockKey); err != nil {
		t.Fatal(err)
	}
	if err := ctl.ProgramWord(16, 0x5443); err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, worn.Part().Geometry.WordsPerSegment())
	if err := ctl.StressSegmentWords(512, values, 1000, false); err != nil {
		t.Fatal(err)
	}
	aged, err := NewDevice(PartSmallSim(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := aged.Age(2.5); err != nil {
		t.Fatal(err)
	}
	big, err := NewDevice(PartMSP430F5529(), 11)
	if err != nil {
		t.Fatal(err)
	}
	var l Loader
	for i, d := range []*Device{worn, aged, big, newSim(t, 3)} {
		file := savedBytes(t, d)
		got, err := l.Load(file)
		if err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		want, err := Load(bytes.NewReader(file))
		if err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		if !bytes.Equal(savedBytes(t, got), savedBytes(t, want)) {
			t.Fatalf("chip %d: Loader device diverges from Load device", i)
		}
		if got.AgeYears() != want.AgeYears() {
			t.Fatalf("chip %d: age %v vs %v", i, got.AgeYears(), want.AgeYears())
		}
	}
	for i, c := range []string{
		"",
		"not json",
		`{"format":"other","version":1}`,
		`{"format":"flashmark-chip","version":99,"part":"FM-SIM16"}`,
		`{"format":"flashmark-chip","version":1,"part":"NOPE","array":""}`,
		`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":"!!!"}`,
		`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":""}`,
	} {
		if _, err := l.Load([]byte(c)); err == nil {
			t.Errorf("garbage case %d accepted by warm Loader", i)
		}
	}
	// The loader must still work after rejecting garbage.
	if _, err := l.Load(savedBytes(t, worn)); err != nil {
		t.Fatalf("Loader broken after rejections: %v", err)
	}
}

// TestLoaderWarmAllocs pins the zero-alloc property the service hot
// path rests on: reloading same-geometry chip files through a warm
// Loader does not allocate for the payload, binary form, or cell array.
func TestLoaderWarmAllocs(t *testing.T) {
	file := savedBytes(t, newSim(t, 5))
	var l Loader
	if _, err := l.Load(file); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := l.Load(file); err != nil {
			t.Fatal(err)
		}
	})
	// The envelope parse and device construction still allocate a
	// handful of small objects; the point is the ~100KB payload, the
	// binary form, and the 768KB cell array are all recycled.
	if n > 50 {
		t.Errorf("warm Loader.Load allocates %v times per run, want O(10)", n)
	}
}

// TestRefabricateMatchesNewDevice proves in-place refabrication is
// exactly a fresh construction: same serialized state, same physics,
// and the physics path survives while everything else resets.
func TestRefabricateMatchesNewDevice(t *testing.T) {
	d := newSim(t, 7)
	ctl := d.Controller()
	if err := ctl.Unlock(flashctl.UnlockKey); err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, d.Part().Geometry.WordsPerSegment())
	if err := ctl.StressSegmentWords(512, values, 500, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Age(1.5); err != nil {
		t.Fatal(err)
	}
	if err := d.SetPhysicsPath(device.PhysicsReference); err != nil {
		t.Fatal(err)
	}
	if err := d.Refabricate(42); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDevice(PartSmallSim(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seed() != 42 || d.AgeYears() != 0 || d.Clock().Now() != 0 {
		t.Fatalf("refabricated state not pristine: seed %d age %v clock %v",
			d.Seed(), d.AgeYears(), d.Clock().Now())
	}
	if d.PhysicsPath() != device.PhysicsReference {
		t.Fatalf("physics path lost across Refabricate: %v", d.PhysicsPath())
	}
	if err := d.SetPhysicsPath(device.PhysicsFast); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(savedBytes(t, d), savedBytes(t, fresh)) {
		t.Fatal("refabricated device serializes differently from a fresh one")
	}
	// Same die identity physics: identical tau for identical cells.
	if got, want := d.Controller().Model().TauAt(1, 0, 0), fresh.Controller().Model().TauAt(1, 0, 0); got != want {
		t.Fatalf("tau diverged: %v vs %v", got, want)
	}
	// And the device still behaves: a full verify-style op sequence works.
	if err := d.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
}
