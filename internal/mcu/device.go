// Package mcu assembles the simulated microcontroller: a flash array with
// its physics model, the flash controller, a virtual clock, and the host
// serial link used to drive Flashmark procedures from outside the chip
// (the paper demonstrates on TI MSP430F5438/F5529 parts). It also persists
// chip state to a file format so the flashmark CLI can operate on a "chip"
// across invocations, the way a bench setup operates on physical silicon.
package mcu

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/flashctl"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

// OpHost is the ledger class for host-link (serial) transfer time.
const OpHost = device.OpHost

// Part describes a microcontroller model: flash geometry, controller
// timings, cell physics, and the host link speed.
type Part struct {
	Name     string
	Geometry nor.Geometry
	Timing   flashctl.Timing
	Params   floatgate.Params
	// SerialBaud is the host link speed used when watermark data is read
	// out to a verifier (the paper's 170 ms extract time is dominated by
	// this link).
	SerialBaud int
}

// Catalog returns the supported parts.
func Catalog() []Part {
	return []Part{PartMSP430F5438(), PartMSP430F5529(), PartSmallSim(), PartFastNOR(), PartAltNOR()}
}

// PartByName finds a catalog part by name.
func PartByName(name string) (Part, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(Catalog()))
	for _, p := range Catalog() {
		names = append(names, p.Name)
	}
	return Part{}, fmt.Errorf("mcu: unknown part %q (available: %s)", name, strings.Join(names, ", "))
}

// PartMSP430F5438 models the larger paper microcontroller (256 KB flash).
func PartMSP430F5438() Part {
	return Part{
		Name:       "MSP430F5438",
		Geometry:   nor.MSP430F5438(),
		Timing:     flashctl.MSP430Timing(),
		Params:     floatgate.DefaultParams(),
		SerialBaud: 115200,
	}
}

// PartMSP430F5529 models the smaller paper microcontroller (128 KB flash).
func PartMSP430F5529() Part {
	return Part{
		Name:       "MSP430F5529",
		Geometry:   nor.MSP430F5529(),
		Timing:     flashctl.MSP430Timing(),
		Params:     floatgate.DefaultParams(),
		SerialBaud: 115200,
	}
}

// PartSmallSim is a compact simulated part for tests, examples and fast
// experiments: identical physics and timing, 16 segments of flash.
func PartSmallSim() Part {
	return Part{
		Name:       "FM-SIM16",
		Geometry:   nor.Small(),
		Timing:     flashctl.MSP430Timing(),
		Params:     floatgate.DefaultParams(),
		SerialBaud: 115200,
	}
}

// PartFastNOR models a stand-alone NOR flash chip with the significantly
// faster erase/program operations the paper's §V anticipates ("a number
// of stand-alone NOR flash memory chips have significantly faster erase
// and program operations and we expect that their imprint time will be
// significantly smaller"). Same cell physics; SPI-class host link.
func PartFastNOR() Part {
	return Part{
		Name:     "FAST-NOR",
		Geometry: nor.Geometry{Banks: 1, SegmentsPerBank: 16, SegmentBytes: 512, WordBytes: 2},
		Timing: flashctl.Timing{
			SegmentErase:        5 * time.Millisecond,
			MassErase:           12 * time.Millisecond,
			WordProgram:         12 * time.Microsecond,
			BlockProgramFirst:   10 * time.Microsecond,
			BlockProgramNext:    6 * time.Microsecond,
			WordRead:            400 * time.Nanosecond,
			OpSetup:             5 * time.Microsecond,
			AdaptiveEraseSettle: 10 * time.Microsecond,
		},
		Params:     floatgate.DefaultParams(),
		SerialBaud: 2_000_000, // SPI-class link
	}
}

// PartAltNOR models a NOR family from a different process node: the
// same qualitative physics with visibly different constants (slower,
// wider fresh erase distribution). It exists to demonstrate the §IV
// requirement that the extraction window is calibrated and published
// *per device family* — one family's t_PEW reads garbage on another.
func PartAltNOR() Part {
	params := floatgate.DefaultParams()
	params.TauBaseMeanUs = 34.0
	params.TauBaseSigmaUs = 2.2
	params.TauBaseMinUs = 27.0
	params.TauBaseMaxUs = 42.0
	params.SpreadCoefUs = 0.035
	return Part{
		Name:       "ALT-NOR",
		Geometry:   nor.Small(),
		Timing:     flashctl.MSP430Timing(),
		Params:     params,
		SerialBaud: 115200,
	}
}

// Device is one simulated chip. A Device is not safe for concurrent use:
// like the silicon it models, it executes one flash operation at a time.
// Run independent devices on independent goroutines instead (see
// counterfeit.RunPopulationParallel).
type Device struct {
	part Part
	seed uint64
	ctl  *flashctl.Controller
}

// NewDevice fabricates a fresh chip of the given part with the given chip
// seed (the seed stands in for the die's physical identity: two devices
// with different seeds have different manufacturing variation).
func NewDevice(part Part, chipSeed uint64) (*Device, error) {
	arr, err := nor.NewArray(part.Geometry)
	if err != nil {
		return nil, err
	}
	return newDeviceWithArray(part, chipSeed, arr)
}

func newDeviceWithArray(part Part, chipSeed uint64, arr *nor.Array) (*Device, error) {
	if part.SerialBaud <= 0 {
		return nil, fmt.Errorf("mcu: part %q has no serial baud", part.Name)
	}
	model, err := floatgate.NewModel(part.Params, chipSeed)
	if err != nil {
		return nil, err
	}
	ctl, err := flashctl.New(flashctl.Config{
		Array:  arr,
		Model:  model,
		Timing: part.Timing,
	})
	if err != nil {
		return nil, err
	}
	return &Device{part: part, seed: chipSeed, ctl: ctl}, nil
}

// Part returns the device's part description.
func (d *Device) Part() Part { return d.part }

// Seed returns the chip seed (die identity).
func (d *Device) Seed() uint64 { return d.seed }

// Controller returns the flash controller.
func (d *Device) Controller() *flashctl.Controller { return d.ctl }

// Clock returns the device's virtual clock.
func (d *Device) Clock() *vclock.Clock { return d.ctl.Clock() }

// Ledger returns the device's time ledger.
func (d *Device) Ledger() *vclock.Ledger { return d.ctl.Ledger() }

// ChargeHostTransfer accounts for moving n bytes over the host serial
// link (10 bit times per byte: start + 8 data + stop).
func (d *Device) ChargeHostTransfer(n int) {
	if n <= 0 {
		return
	}
	bits := 10 * n
	dur := time.Duration(float64(bits) / float64(d.part.SerialBaud) * float64(time.Second))
	d.Clock().Advance(d.Ledger().Charge(OpHost, dur))
}

// chipFile is the on-disk JSON envelope for a chip. The array payload —
// the dominant field by orders of magnitude — stays a raw JSON string
// on the decode side: json.RawMessage reuses its backing capacity
// across Unmarshal calls, which is what lets a pooled Loader parse chip
// files without reallocating the payload (base64 never contains JSON
// escapes, so the quoted bytes are decodable in place).
type chipFile struct {
	Format   string            `json:"format"`
	Version  int               `json:"version"`
	PartName string            `json:"part"`
	Seed     uint64            `json:"seed"`
	Params   *floatgate.Params `json:"params,omitempty"` // overrides catalog params
	AgeYears float64           `json:"ageYears,omitempty"`
	Array    json.RawMessage   `json:"array"` // quoted base64 of nor binary encoding
}

const (
	chipFormat  = "flashmark-chip"
	chipVersion = 1
)

// saveState recycles every per-Save transient: the binary array
// encoding, the quoted-base64 token (the file's dominant field), and
// the JSON envelope buffer with its pinned encoder — the encoder's
// internal indent scratch only amortizes when the encoder itself is
// reused (fmverifyd snapshots registries in a loop; these buffers are
// the save path's entire allocation profile).
type saveState struct {
	raw []byte
	b64 []byte
	buf bytes.Buffer
	enc *json.Encoder
}

var savePool = sync.Pool{New: func() any {
	s := &saveState{raw: make([]byte, 0, 4096)}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// Save writes the chip state (part, seed, cell margins and wear) to w.
func (d *Device) Save(w io.Writer) error {
	s := savePool.Get().(*saveState)
	defer savePool.Put(s)
	raw, err := d.ctl.Array().AppendBinary(s.raw[:0])
	s.raw = raw[:0]
	if err != nil {
		return fmt.Errorf("mcu: serializing array: %w", err)
	}
	params := d.part.Params
	cf := chipFile{
		Format:   chipFormat,
		Version:  chipVersion,
		PartName: d.part.Name,
		Seed:     d.seed,
		Params:   &params,
		AgeYears: d.ctl.AgeYears(),
		Array:    s.quotedBase64(raw),
	}
	s.buf.Reset()
	if err := s.enc.Encode(cf); err != nil {
		return err
	}
	_, err = w.Write(s.buf.Bytes())
	return err
}

// quotedBase64 renders raw as the JSON string token the chip file
// stores the array payload under (base64 needs no JSON escaping, so
// quoting is just delimiters), reusing the state's token buffer.
func (s *saveState) quotedBase64(raw []byte) json.RawMessage {
	n := base64.StdEncoding.EncodedLen(len(raw))
	if cap(s.b64) < n+2 {
		s.b64 = make([]byte, n+2)
	}
	out := s.b64[:n+2]
	out[0], out[n+1] = '"', '"'
	base64.StdEncoding.Encode(out[1:n+1], raw)
	return json.RawMessage(out)
}

// chipArrayBytes extracts the base64 text from the raw array payload.
// The fast path slices the quoted token in place; a payload with
// escapes (never produced by Save) or a non-string value falls back to
// the strict decoder, whose error the caller wraps as a chip-file
// decode failure.
func chipArrayBytes(raw json.RawMessage) ([]byte, error) {
	if len(raw) >= 2 && raw[0] == '"' && raw[len(raw)-1] == '"' && bytes.IndexByte(raw, '\\') < 0 {
		return raw[1 : len(raw)-1], nil
	}
	if len(raw) == 0 {
		return nil, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// decodeChipArray base64-decodes the array payload into dst's capacity,
// growing it only when the payload outgrows it.
func decodeChipArray(b64 []byte, dst []byte) ([]byte, error) {
	n := base64.StdEncoding.DecodedLen(len(b64))
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	m, err := base64.StdEncoding.Decode(dst, b64)
	if err != nil {
		return nil, err
	}
	return dst[:m], nil
}

// Load reconstructs a chip from Save output. The part is looked up in the
// catalog by name; the saved physics parameters override the catalog's so
// chips fabricated with experimental parameters reload faithfully.
func Load(r io.Reader) (*Device, error) {
	var cf chipFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("mcu: decoding chip file: %w", err)
	}
	if cf.Format != chipFormat {
		return nil, fmt.Errorf("mcu: not a chip file (format %q)", cf.Format)
	}
	if cf.Version != chipVersion {
		return nil, fmt.Errorf("mcu: unsupported chip file version %d", cf.Version)
	}
	part, err := PartByName(cf.PartName)
	if err != nil {
		return nil, err
	}
	if cf.Params != nil {
		part.Params = *cf.Params
	}
	b64, err := chipArrayBytes(cf.Array)
	if err != nil {
		return nil, fmt.Errorf("mcu: decoding chip file: %w", err)
	}
	raw, err := decodeChipArray(b64, nil)
	if err != nil {
		return nil, fmt.Errorf("mcu: decoding array payload: %w", err)
	}
	// Check the serialized geometry against the named part before
	// UnmarshalArray commits the per-cell allocation: chip files are
	// untrusted input, and a forged header must not be able to command
	// an allocation larger than the part it claims to be.
	headGeom, err := nor.ArrayGeometry(raw)
	if err != nil {
		return nil, err
	}
	if headGeom != part.Geometry {
		return nil, fmt.Errorf("mcu: chip file geometry %+v does not match part %s", headGeom, part.Name)
	}
	arr, err := nor.UnmarshalArray(raw)
	if err != nil {
		return nil, err
	}
	dev, err := newDeviceWithArray(part, cf.Seed, arr)
	if err != nil {
		return nil, err
	}
	if cf.AgeYears > 0 {
		if err := dev.ctl.SetAgeYears(cf.AgeYears); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// Loader parses chip files with fully reusable scratch: the JSON
// envelope (its raw array payload included), the base64-decoded binary
// form, and the cell array itself are all recycled across Load calls
// when the geometry repeats — the service hot path, where one catalog
// part dominates any given dock. The device returned by Load aliases
// the Loader's array storage, so it is invalidated by the next Load;
// callers keep a device and its loader together for the request and
// recycle both when the report is rendered. A Loader is not safe for
// concurrent use; pool instances instead. The zero value is ready.
type Loader struct {
	cf  chipFile
	bin []byte
	arr *nor.Array
}

// Load reconstructs a chip from data (one complete chip file, the
// bytes Save writes). Identical in behavior to Load(bytes.NewReader(
// data)) except that trailing data after the JSON object is rejected —
// which is what the service's former whole-body format sniff already
// enforced for every request.
func (l *Loader) Load(data []byte) (*Device, error) {
	l.cf = chipFile{Array: l.cf.Array[:0]}
	if err := json.Unmarshal(data, &l.cf); err != nil {
		return nil, fmt.Errorf("mcu: decoding chip file: %w", err)
	}
	cf := &l.cf
	if cf.Format != chipFormat {
		return nil, fmt.Errorf("mcu: not a chip file (format %q)", cf.Format)
	}
	if cf.Version != chipVersion {
		return nil, fmt.Errorf("mcu: unsupported chip file version %d", cf.Version)
	}
	part, err := PartByName(cf.PartName)
	if err != nil {
		return nil, err
	}
	if cf.Params != nil {
		part.Params = *cf.Params
	}
	b64, err := chipArrayBytes(cf.Array)
	if err != nil {
		return nil, fmt.Errorf("mcu: decoding chip file: %w", err)
	}
	bin, err := decodeChipArray(b64, l.bin)
	if err != nil {
		return nil, fmt.Errorf("mcu: decoding array payload: %w", err)
	}
	l.bin = bin[:0]
	headGeom, err := nor.ArrayGeometry(bin)
	if err != nil {
		return nil, err
	}
	if headGeom != part.Geometry {
		return nil, fmt.Errorf("mcu: chip file geometry %+v does not match part %s", headGeom, part.Name)
	}
	arr, err := nor.UnmarshalArrayInto(l.arr, bin)
	if err != nil {
		return nil, err
	}
	l.arr = arr
	dev, err := newDeviceWithArray(part, cf.Seed, arr)
	if err != nil {
		return nil, err
	}
	if cf.AgeYears > 0 {
		if err := dev.ctl.SetAgeYears(cf.AgeYears); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// LoadDevice reconstructs a chip behind the substrate-neutral device
// interface (the Loader counterpart of the package-level LoadDevice).
func (l *Loader) LoadDevice(data []byte) (device.Device, error) {
	return l.Load(data)
}

// Refabricate returns the device to the pristine state NewDevice(part,
// seed) constructs, in place: every cell erased with zero wear, a fresh
// physics model for the new die identity, and zeroed clock, ledger and
// controller state — but reusing the cell array, which is the dominant
// allocation. The selected physics path survives the reset, because fab
// wrappers like device.WithPhysicsPath run only at construction and a
// recycling arena never re-invokes them.
func (d *Device) Refabricate(seed uint64) error {
	path := d.ctl.PhysicsPath()
	arr := d.ctl.Array()
	arr.Reset()
	nd, err := newDeviceWithArray(d.part, seed, arr)
	if err != nil {
		return err
	}
	*d = *nd
	return d.ctl.SetPhysicsPath(path)
}

// Age advances the chip's unpowered-storage age to the given total years
// (monotone; used for watermark-longevity studies).
func (d *Device) Age(years float64) error { return d.ctl.SetAgeYears(years) }

// AgeYears returns the chip's storage age.
func (d *Device) AgeYears() float64 { return d.ctl.AgeYears() }

// SetAmbientTempC sets the chip's operating temperature (affects erase
// physics; see the temperature experiment).
func (d *Device) SetAmbientTempC(t float64) error { return d.ctl.SetAmbientTempC(t) }

// AmbientTempC returns the chip's operating temperature.
func (d *Device) AmbientTempC() float64 { return d.ctl.AmbientTempC() }

// The methods below complete the device.Device interface (plus the
// optional capabilities) by forwarding to the flash controller, so
// every consumer above this package drives the chip through the
// substrate-neutral surface instead of the concrete controller.

// Open fabricates a fresh chip and returns it behind the
// substrate-neutral device interface.
func Open(part Part, chipSeed uint64) (device.Device, error) {
	return NewDevice(part, chipSeed)
}

// Fab returns a device fabricator for the part, for procedures that
// consume whole device families (calibration, populations).
func Fab(part Part) device.Fab {
	return func(seed uint64) (device.Device, error) { return NewDevice(part, seed) }
}

// LoadDevice reconstructs a chip from Save output behind the
// substrate-neutral device interface.
func LoadDevice(r io.Reader) (device.Device, error) {
	return Load(r)
}

// PartName returns the catalog name of the device's part.
func (d *Device) PartName() string { return d.part.Name }

// Geometry returns the flash array geometry.
func (d *Device) Geometry() nor.Geometry { return d.part.Geometry }

// Unlock enables erase/program commands (the FCTL password handshake).
func (d *Device) Unlock() error { return d.ctl.Unlock(flashctl.UnlockKey) }

// Lock re-enables write protection.
func (d *Device) Lock() { d.ctl.Lock() }

// EraseSegment erases the segment containing addr.
func (d *Device) EraseSegment(addr int) error { return d.ctl.EraseSegment(addr) }

// EraseSegmentAdaptive erases the segment containing addr, exiting as
// soon as every cell has crossed; it returns the pulse actually spent.
func (d *Device) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	return d.ctl.EraseSegmentAdaptive(addr)
}

// MassEraseBank erases every segment of the bank containing addr.
func (d *Device) MassEraseBank(addr int) error { return d.ctl.MassEraseBank(addr) }

// PartialEraseSegment starts an erase and aborts it after pulse.
func (d *Device) PartialEraseSegment(addr int, pulse time.Duration) error {
	return d.ctl.PartialEraseSegment(addr, pulse)
}

// PartialProgramSegment starts programming the whole segment and aborts
// after pulse (the FFD comparator primitive).
func (d *Device) PartialProgramSegment(addr int, pulse time.Duration) error {
	return d.ctl.PartialProgramSegment(addr, pulse)
}

// ProgramBlock programs consecutive words starting at addr.
func (d *Device) ProgramBlock(addr int, values []uint64) error {
	return d.ctl.ProgramBlock(addr, values)
}

// ReadWord reads the word at addr.
func (d *Device) ReadWord(addr int) (uint64, error) { return d.ctl.ReadWord(addr) }

// ReadSegment reads every word of the segment containing addr.
func (d *Device) ReadSegment(addr int) ([]uint64, error) { return d.ctl.ReadSegment(addr) }

// StressSegmentWords fast-forwards n imprint cycles over one segment.
func (d *Device) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	return d.ctl.StressSegmentWords(addr, values, n, adaptive)
}

// NominalEraseTime returns the datasheet segment erase duration.
func (d *Device) NominalEraseTime() time.Duration { return d.part.Timing.SegmentErase }

// SegmentWearSummary returns min/mean/max wear across segment seg.
func (d *Device) SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error) {
	return d.ctl.Array().SegmentWearSummary(seg)
}

// WornCellCount counts cells of the segment containing addr beyond the
// datasheet endurance.
func (d *Device) WornCellCount(addr int) (int, error) { return d.ctl.WornCellCount(addr) }

// EnduranceCycles returns the part's datasheet endurance.
func (d *Device) EnduranceCycles() float64 { return d.part.Params.EnduranceCycles }

// SetTrace attaches an operation trace; nil detaches.
func (d *Device) SetTrace(t *vclock.Trace) { d.ctl.SetTrace(t) }

// Trace returns the attached trace, if any.
func (d *Device) Trace() *vclock.Trace { return d.ctl.Trace() }

// Registers exposes the FCTL register file (the firmware-level protocol
// surface; see core's register-sequence procedures).
func (d *Device) Registers() *flashctl.RegisterFile { return d.ctl.Registers() }

// PhysicsPath reports which physics path the controller runs.
func (d *Device) PhysicsPath() device.PhysicsPath { return d.ctl.PhysicsPath() }

// SetPhysicsPath selects the physics path (fast by default; reference
// for equivalence runs).
func (d *Device) SetPhysicsPath(p device.PhysicsPath) error { return d.ctl.SetPhysicsPath(p) }

// Interface conformance (device.Device plus every optional capability).
var (
	_ device.Device            = (*Device)(nil)
	_ device.Ager              = (*Device)(nil)
	_ device.Thermal           = (*Device)(nil)
	_ device.Tracer            = (*Device)(nil)
	_ device.PartialProgrammer = (*Device)(nil)
	_ device.WearInspector     = (*Device)(nil)
	_ device.PhysicsSelector   = (*Device)(nil)
	_ device.Refabricator      = (*Device)(nil)
)
