package mcu_test

import (
	"testing"

	"github.com/flashmark/flashmark/internal/device/devicetest"
	"github.com/flashmark/flashmark/internal/mcu"
)

// The NOR backend honors the device contract for every catalog part.
func TestDeviceConformance(t *testing.T) {
	for _, part := range []mcu.Part{
		mcu.PartMSP430F5438(),
		mcu.PartSmallSim(),
		mcu.PartFastNOR(),
	} {
		devicetest.Run(t, part.Name, mcu.Fab(part))
	}
}
