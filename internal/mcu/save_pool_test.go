package mcu

// The save path reuses pooled buffers (array encoding, base64 token,
// JSON envelope). These tests pin that reuse never leaks one chip's
// bytes into another's file: output must be a pure function of device
// state, dirty pool entries included, under concurrency included.

import (
	"bytes"
	"sync"
	"testing"
)

func saveBytes(t *testing.T, d *Device) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveDeterministicAcrossPoolReuse(t *testing.T) {
	a := newSim(t, 11)
	b := newSim(t, 12)
	first := saveBytes(t, a)
	// Dirty every pooled buffer with a different chip's (different
	// seed's) contents, then save the first chip again.
	for i := 0; i < 4; i++ {
		saveBytes(t, b)
	}
	if again := saveBytes(t, a); !bytes.Equal(first, again) {
		t.Fatal("Save output changed after pool reuse")
	}
}

func TestSaveConcurrentDevicesDoNotCrossContaminate(t *testing.T) {
	devs := []*Device{newSim(t, 21), newSim(t, 22), newSim(t, 23)}
	want := make([][]byte, len(devs))
	for i, d := range devs {
		want[i] = saveBytes(t, d)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 8; round++ {
		for i, d := range devs {
			wg.Add(1)
			go func(i int, d *Device) {
				defer wg.Done()
				var buf bytes.Buffer
				if err := d.Save(&buf); err != nil {
					errs <- err.Error()
					return
				}
				if !bytes.Equal(buf.Bytes(), want[i]) {
					errs <- "concurrent Save produced bytes from another device"
				}
			}(i, d)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func BenchmarkDeviceSave(b *testing.B) {
	d, err := Fab(PartSmallSim())(41)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := d.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
