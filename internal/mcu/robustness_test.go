package mcu

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Load never panics and never fabricates a device from random
// bytes.
func TestQuickLoadRandomBytes(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		dev, err := Load(bytes.NewReader(data))
		// Random bytes must never parse into a device.
		return err != nil && dev == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting a valid chip file at one byte either still loads a
// device (harmless corruption, e.g. whitespace) or fails cleanly — never
// panics.
func TestQuickLoadCorruptedChipFile(t *testing.T) {
	d, err := NewDevice(PartSmallSim(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	f := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		bad := append([]byte(nil), good...)
		bad[int(pos)%len(bad)] = val
		_, _ = Load(bytes.NewReader(bad))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsNegativeAge(t *testing.T) {
	d, err := NewDevice(PartSmallSim(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), `"array"`, `"ageYears": -4, "array"`, 1)
	dev, err := Load(strings.NewReader(s))
	// Negative age must not become device state.
	if err == nil && dev.AgeYears() < 0 {
		t.Fatal("negative age loaded")
	}
}

func TestAgePersistsThroughSaveLoad(t *testing.T) {
	d, err := NewDevice(PartSmallSim(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Age(7.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.AgeYears() != 7.5 {
		t.Errorf("age after reload = %v", d2.AgeYears())
	}
}
