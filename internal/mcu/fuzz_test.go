package mcu

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

// bombChipFile builds the allocation-bomb regression input the fuzzer
// originally found: a tiny chip file naming a small catalog part whose
// array header declares a huge geometry with zero cell records. Loading
// it must fail on the geometry check without committing the multi-GB
// per-cell allocation the header implies.
func bombChipFile(banks, segs, segBytes uint32) []byte {
	var arr bytes.Buffer
	arr.WriteString("NORA")
	for _, v := range []any{uint16(1), banks, segs, segBytes, uint32(2), uint64(0)} {
		_ = binary.Write(&arr, binary.LittleEndian, v)
	}
	return []byte(fmt.Sprintf(
		`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","seed":1,"array":%q}`,
		base64.StdEncoding.EncodeToString(arr.Bytes())))
}

func TestLoadRejectsForgedGeometry(t *testing.T) {
	for name, raw := range map[string][]byte{
		// 64 MB declared: ~6 GB of host state if allocated eagerly.
		"oversized": bombChipFile(4, 1<<15, 512),
		// Valid size for another part, but not FM-SIM16's shape.
		"mismatched": bombChipFile(4, 128, 512),
	} {
		if _, err := Load(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s forged-geometry chip file accepted: %s", name, raw[:60])
		}
	}
}

// FuzzLoadDevice feeds arbitrary bytes to the chip-file parser — the
// exact surface fmverifyd exposes to untrusted uploads. It must never
// panic, and any file it accepts must survive a Save/Load round trip
// with identity intact.
func FuzzLoadDevice(f *testing.F) {
	dev, err := NewDevice(PartSmallSim(), 42)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := dev.Save(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Aged chip: exercises the SetAgeYears path on reload.
	if err := dev.Age(3.5); err != nil {
		f.Fatal(err)
	}
	var aged bytes.Buffer
	if err := dev.Save(&aged); err != nil {
		f.Fatal(err)
	}
	f.Add(aged.Bytes())
	// Structured near-misses: valid JSON shapes that each trip one
	// validation branch.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"flashmark-chip","version":1}`))
	f.Add([]byte(`{"format":"flashmark-chip","version":99,"part":"FM-SIM16"}`))
	f.Add([]byte(`{"format":"flashmark-chip","version":1,"part":"NO-SUCH-PART"}`))
	f.Add([]byte(`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":"!!not-base64!!"}`))
	f.Add([]byte(`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","ageYears":-2,"array":""}`))
	f.Add([]byte(strings.Replace(good.String(), `"seed"`, `"params":{"EnduranceCycles":0},"seed"`, 1)))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})
	// Regression: the allocation bomb (forged oversized array header).
	f.Add(bombChipFile(4, 1<<15, 512))
	f.Add(bombChipFile(1<<20, 1<<20, 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		dev, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := dev.Save(&buf); err != nil {
			t.Fatalf("accepted chip failed to re-save: %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-saved chip failed to reload: %v", err)
		}
		if back.Seed() != dev.Seed() || back.PartName() != dev.PartName() {
			t.Fatalf("identity drifted through round trip: %d/%s vs %d/%s",
				dev.Seed(), dev.PartName(), back.Seed(), back.PartName())
		}
		if back.AgeYears() != dev.AgeYears() {
			t.Fatalf("age drifted through round trip: %v vs %v", dev.AgeYears(), back.AgeYears())
		}
	})
}
