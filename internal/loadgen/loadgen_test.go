package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/service"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 500, Duration: 2 * time.Second}
	a := BuildPlan(cfg)
	b := BuildPlan(cfg)
	if len(a.Requests) == 0 {
		t.Fatal("plan is empty")
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("identical configs produced different plans")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest mismatch: %s vs %s", a.Digest(), b.Digest())
	}
	c := BuildPlan(Config{Seed: 43, Rate: 500, Duration: 2 * time.Second})
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestPlanShape(t *testing.T) {
	cfg := Config{Seed: 7, Rate: 400, Duration: 3 * time.Second}.withDefaults()
	p := BuildPlan(cfg)
	if got := p.Count(OpVerify) + p.Count(OpBatch) + p.Count(OpEnroll); got != len(p.Requests) {
		t.Fatalf("kind counts sum to %d, want %d", got, len(p.Requests))
	}
	// With ~1200 expected arrivals at 8:1:1 every kind should appear.
	for _, k := range []OpKind{OpVerify, OpBatch, OpEnroll} {
		if p.Count(k) == 0 {
			t.Errorf("no %s requests planned", k)
		}
	}
	var prev time.Duration
	for i, r := range p.Requests {
		if r.At < prev {
			t.Fatalf("request %d arrives at %v, before predecessor %v", i, r.At, prev)
		}
		prev = r.At
		if r.At >= cfg.Duration {
			t.Fatalf("request %d at %v exceeds duration %v", i, r.At, cfg.Duration)
		}
		if len(r.Chips) == 0 {
			t.Fatalf("request %d has no chips", i)
		}
		if r.Kind == OpBatch && len(r.Chips) > cfg.BatchMax {
			t.Fatalf("batch %d holds %d chips, cap %d", i, len(r.Chips), cfg.BatchMax)
		}
		limit := cfg.Fleet.Size()
		if r.Kind == OpEnroll {
			limit = cfg.Fleet.Enrollable()
		}
		for _, c := range r.Chips {
			if c < 0 || c >= limit {
				t.Fatalf("request %d (%s) picks chip %d outside [0,%d)", i, r.Kind, c, limit)
			}
		}
	}
}

func TestFleetDeterminism(t *testing.T) {
	spec := FleetSpec{Genuine: 3, Clones: 2, Counterfeits: 2}
	a, err := BuildFleet(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFleet(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Chips, b.Chips) {
		t.Fatal("identical seeds produced different fleets")
	}
	if len(a.Chips) != spec.Size() {
		t.Fatalf("fleet holds %d chips, want %d", len(a.Chips), spec.Size())
	}
	for i := 0; i < spec.Genuine; i++ {
		if a.Chips[i].Class != counterfeit.ClassGenuineAccept {
			t.Fatalf("chip %d is %s, want genuine", i, a.Chips[i].Class)
		}
	}
	for i := spec.Genuine; i < spec.Genuine+spec.Clones; i++ {
		c := a.Chips[i]
		if c.Class != counterfeit.ClassReplayImprint {
			t.Fatalf("chip %d is %s, want replay-imprint clone", i, c.Class)
		}
		victim := a.Chips[(i-spec.Genuine)%spec.Genuine]
		if c.DieID != victim.DieID {
			t.Fatalf("clone %d carries die %#x, want victim's %#x", i, c.DieID, victim.DieID)
		}
	}
}

func TestFleetSpecDefaults(t *testing.T) {
	d := FleetSpec{}.withDefaults()
	if d.Genuine != 24 || d.Clones != 8 || d.Counterfeits != 8 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	none := FleetSpec{Genuine: 2, Clones: -1, Counterfeits: -1}.withDefaults()
	if none.Clones != 0 || none.Counterfeits != 0 {
		t.Fatalf("negative counts should disable: %+v", none)
	}
	if none.Size() != 2 || none.Enrollable() != 2 {
		t.Fatalf("size/enrollable wrong: %d/%d", none.Size(), none.Enrollable())
	}
}

// TestRunEndToEnd drives a real in-process fmverifyd handler with a
// short scenario and checks the accounting invariants.
func TestRunEndToEnd(t *testing.T) {
	cfg := Config{
		Seed:        11,
		Rate:        300,
		Duration:    1 * time.Second,
		MaxInFlight: 32,
		Fleet:       FleetSpec{Genuine: 4, Clones: 3, Counterfeits: 3},
		Mix:         Mix{Verify: 6, Batch: 2, Enroll: 2},
	}
	srv, err := service.New(service.Config{
		Verifier:   counterfeit.Verifier{Codec: wmcode.Codec{Key: []byte("loadgen-key")}},
		Provenance: registry.NewMemory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cfg.Target = ts.URL

	plan := BuildPlan(cfg)
	fleet, err := BuildFleet(cfg.Fleet, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg, plan, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sent + res.Dropped; got != int64(len(plan.Requests)) {
		t.Fatalf("sent %d + dropped %d != planned %d", res.Sent, res.Dropped, len(plan.Requests))
	}
	if res.httpErrors() != 0 {
		t.Fatalf("%d http errors against healthy in-process server", res.httpErrors())
	}
	launched := res.Verify.requests.Load() + res.Batch.requests.Load() + res.Enroll.requests.Load()
	if launched != res.Sent {
		t.Fatalf("per-kind requests sum to %d, want sent %d", launched, res.Sent)
	}
	if res.Verify.chips.Load()+res.Batch.chips.Load() == 0 {
		t.Fatal("no chips verified")
	}
	// The fleet has 3 clones sharing genuine die ids and the scenario
	// enrolls from the enrollable prefix, so the registry must flag
	// duplicate identities somewhere in the run.
	if plan.Count(OpEnroll) > 3 && res.DuplicateID.Load() == 0 {
		t.Error("clone storm produced no DUPLICATE-ID verdicts")
	}
	// A latency histogram must hold exactly the OK responses.
	served := res.Sent - res.shed() - res.httpErrors()
	merged := res.Verify.merged()
	for _, s := range []*opStats{res.Batch, res.Enroll} {
		snap := s.merged()
		if err := merged.Merge(snap); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count != served {
		t.Fatalf("latency observations %d != served %d", merged.Count, served)
	}

	rep := BuildReport(cfg, res)
	if rep.Schema != "flashmark-bench-service/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.ScheduleSHA256 != plan.Digest() {
		t.Fatal("report digest differs from plan digest")
	}
	if rep.ChipsVerified == 0 || rep.VerifiesPerSec <= 0 {
		t.Fatalf("report throughput empty: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round != rep {
		t.Fatal("report did not round-trip through JSON")
	}
}

// TestRunBoundedConcurrency squeezes the in-flight cap to force
// client-side shedding and checks drops are counted, not queued.
func TestRunBoundedConcurrency(t *testing.T) {
	cfg := Config{
		Seed:        3,
		Rate:        2000,
		Duration:    500 * time.Millisecond,
		MaxInFlight: 2,
		Fleet:       FleetSpec{Genuine: 2, Clones: -1, Counterfeits: -1},
		Mix:         Mix{Verify: 1},
	}
	srv, err := service.New(service.Config{
		Verifier: counterfeit.Verifier{Codec: wmcode.Codec{Key: []byte("loadgen-key")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cfg.Target = ts.URL

	plan := BuildPlan(cfg)
	fleet, err := BuildFleet(cfg.Fleet, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg, plan, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("2-slot cap at 2000 req/s shed nothing client-side")
	}
	if got := res.Sent + res.Dropped; got != int64(len(plan.Requests)) {
		t.Fatalf("sent %d + dropped %d != planned %d", res.Sent, res.Dropped, len(plan.Requests))
	}
	rep := BuildReport(cfg, res)
	if rep.ShedRate <= 0 {
		t.Fatalf("shed rate %v with %d drops", rep.ShedRate, res.Dropped)
	}
}

func TestRunRequiresTarget(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, Plan{}, &Fleet{}); err == nil {
		t.Fatal("Run without target succeeded")
	}
}
