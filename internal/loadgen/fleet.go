package loadgen

import (
	"bytes"
	"fmt"
	"runtime"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// FleetSpec shapes the synthetic chip population. The fleet is laid out
// as [genuine | clones | counterfeits]: clones are replay-imprinted
// copies of genuine victims' die ids (the attack the registry exists
// for), counterfeits are drawn per chip from the cheaper attacker
// models in internal/counterfeit.
type FleetSpec struct {
	// Genuine is the number of manufacturer-watermarked ACCEPT chips
	// (0 selects 24).
	Genuine int
	// Clones is the number of replay-imprint clones; clone i carries
	// the die id of genuine victim i mod Genuine (0 selects 8; negative
	// means none).
	Clones int
	// Counterfeits is the number of non-clone counterfeits: metadata
	// forgeries, rebranded blanks, digital clones, recycled chips
	// (0 selects 8; negative means none).
	Counterfeits int

	// Part is the catalog NOR part to fabricate (empty selects FM-SIM16).
	Part string
	// Key is the watermark HMAC key (empty selects "loadgen-key"); it
	// must match the target daemon's -key.
	Key string
	// Manufacturer is the imprinted manufacturer string (empty selects
	// the factory default).
	Manufacturer string
}

func (f FleetSpec) withDefaults() FleetSpec {
	if f.Genuine == 0 {
		f.Genuine = 24
	}
	switch {
	case f.Clones == 0:
		f.Clones = 8
	case f.Clones < 0:
		f.Clones = 0
	}
	switch {
	case f.Counterfeits == 0:
		f.Counterfeits = 8
	case f.Counterfeits < 0:
		f.Counterfeits = 0
	}
	if f.Part == "" {
		f.Part = "FM-SIM16"
	}
	if f.Key == "" {
		f.Key = "loadgen-key"
	}
	return f
}

// Size is the total chip count.
func (f FleetSpec) Size() int { return f.Genuine + f.Clones + f.Counterfeits }

// Enrollable is how many leading fleet indices carry a signed identity
// worth enrolling (genuine chips and their clones); enroll operations
// draw only from this prefix.
func (f FleetSpec) Enrollable() int { return f.Genuine + f.Clones }

// Chip is one fabricated fleet member.
type Chip struct {
	Class counterfeit.ChipClass
	DieID uint64
	// Bytes is the serialized chip file exactly as a client uploads it.
	Bytes []byte
}

// Fleet is the fabricated population a scenario draws requests from.
type Fleet struct {
	Spec  FleetSpec
	Chips []Chip
}

// counterfeitClasses are the non-clone attacker models a counterfeit
// fleet slot is drawn from.
var counterfeitClasses = []counterfeit.ChipClass{
	counterfeit.ClassMetadataForgery,
	counterfeit.ClassUnmarked,
	counterfeit.ClassDigitalClone,
	counterfeit.ClassRecycled,
}

// baseDieID keeps loadgen identities out of the small-integer space
// tests and smoke scripts use.
const baseDieID = 0x10_0000

// BuildFleet fabricates the population. Chip i's device seed derives
// from (seed, i) via the rng splitter, so each chip's bytes are a pure
// function of the spec and the scenario seed no matter the fabrication
// order — the fan-out below is safe to parallelize.
func BuildFleet(spec FleetSpec, seed uint64) (*Fleet, error) {
	spec = spec.withDefaults()
	if spec.Genuine <= 0 {
		return nil, fmt.Errorf("loadgen: fleet needs at least one genuine chip")
	}
	part, err := mcu.PartByName(spec.Part)
	if err != nil {
		return nil, err
	}
	factory := counterfeit.FactoryConfig{
		Fab:          mcu.Fab(part),
		Codec:        wmcode.Codec{Key: []byte(spec.Key)},
		Manufacturer: spec.Manufacturer,
	}
	// One child stream per chip for class draws; fabrication seeds come
	// from the same split so the fleet is order-independent.
	master := rng.New(seed)
	n := spec.Size()
	pool := parallel.Pool{Workers: runtime.GOMAXPROCS(0)}
	chips, err := parallel.Map(pool, n, func(i int) (Chip, error) {
		r := master.Split2(0xF1EE7, uint64(i))
		devSeed := r.Uint64()
		var class counterfeit.ChipClass
		var die uint64
		switch {
		case i < spec.Genuine:
			class = counterfeit.ClassGenuineAccept
			die = baseDieID + uint64(i)
		case i < spec.Genuine+spec.Clones:
			class = counterfeit.ClassReplayImprint
			die = baseDieID + uint64((i-spec.Genuine)%spec.Genuine)
		default:
			class = counterfeitClasses[r.Intn(len(counterfeitClasses))]
			die = baseDieID + uint64(i)
		}
		dev, err := counterfeit.Fabricate(class, factory, devSeed, die)
		if err != nil {
			return Chip{}, fmt.Errorf("loadgen: fabricating chip %d (%s): %w", i, class, err)
		}
		var buf bytes.Buffer
		if err := dev.Save(&buf); err != nil {
			return Chip{}, fmt.Errorf("loadgen: serializing chip %d: %w", i, err)
		}
		return Chip{Class: class, DieID: die, Bytes: buf.Bytes()}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fleet{Spec: spec, Chips: chips}, nil
}
