package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/rng"
)

// OpKind is the kind of one planned request.
type OpKind uint8

// Planned operation kinds.
const (
	OpVerify OpKind = iota // POST /v1/verify, one chip
	OpBatch                // POST /v1/verify/batch
	OpEnroll               // POST /v1/enroll, one enrollable chip
)

// String names the op kind for reports and logs.
func (k OpKind) String() string {
	switch k {
	case OpVerify:
		return "verify"
	case OpBatch:
		return "batch"
	case OpEnroll:
		return "enroll"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Request is one planned arrival: what to send and when.
type Request struct {
	// At is the arrival offset from scenario start.
	At time.Duration
	// Kind selects the endpoint.
	Kind OpKind
	// Chips are fleet indices: one for verify/enroll, the batch
	// composition for batch.
	Chips []int
}

// Plan is the full request sequence of a scenario, fixed before the
// first byte is sent. Replaying a plan against the same fleet bytes
// reproduces the exact client workload.
type Plan struct {
	Requests []Request
}

// BuildPlan derives the request sequence from the scenario config. It
// consumes only the config and the seed — never the clock, the fleet
// bytes, or responses — so two identical configs yield identical plans.
func BuildPlan(cfg Config) Plan {
	cfg = cfg.withDefaults()
	// A dedicated child stream per concern: arrival times, op kinds, and
	// chip picks stay stable against each other if one consumer's draw
	// count changes.
	master := rng.New(cfg.Seed)
	arrivals := master.Split(0xA221)
	kinds := master.Split(0x0B5)
	picks := master.Split(0xC419)

	wVerify := cfg.Mix.Verify
	wBatch := wVerify + cfg.Mix.Batch
	wTotal := wBatch + cfg.Mix.Enroll
	fleetSize := cfg.Fleet.Size()
	enrollable := cfg.Fleet.Enrollable()

	var p Plan
	var at time.Duration
	for {
		// Poisson process: exponential inter-arrival gaps at rate Rate.
		at += time.Duration(arrivals.Exp() / cfg.Rate * float64(time.Second))
		if at >= cfg.Duration {
			return p
		}
		req := Request{At: at}
		switch draw := kinds.Float64() * wTotal; {
		case draw < wVerify:
			req.Kind = OpVerify
			req.Chips = []int{picks.Intn(fleetSize)}
		case draw < wBatch:
			req.Kind = OpBatch
			n := 1 + int(picks.Exp()*cfg.BatchMean)
			if n > cfg.BatchMax {
				n = cfg.BatchMax
			}
			req.Chips = make([]int, n)
			for i := range req.Chips {
				req.Chips[i] = picks.Intn(fleetSize)
			}
		default:
			req.Kind = OpEnroll
			req.Chips = []int{picks.Intn(enrollable)}
		}
		p.Requests = append(p.Requests, req)
	}
}

// Digest is a SHA-256 over the canonical encoding of the request
// sequence (arrival nanoseconds, kind, chip indices). Two runs with the
// same digest sent the same requests at the same planned offsets — the
// reproducibility contract the CI gate checks by building the plan
// twice.
func (p Plan) Digest() string {
	h := sha256.New()
	h.Write([]byte("flashmark-loadgen-plan/v1\x00"))
	var buf [8]byte
	for _, r := range p.Requests {
		binary.LittleEndian.PutUint64(buf[:], uint64(r.At.Nanoseconds()))
		h.Write(buf[:])
		h.Write([]byte{byte(r.Kind)})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(r.Chips)))
		h.Write(buf[:])
		for _, c := range r.Chips {
			binary.LittleEndian.PutUint64(buf[:], uint64(c))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Count returns how many planned requests are of kind k.
func (p Plan) Count(k OpKind) int {
	n := 0
	for _, r := range p.Requests {
		if r.Kind == k {
			n++
		}
	}
	return n
}
