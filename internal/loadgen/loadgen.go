// Package loadgen is the synthetic-fleet load harness for fmverifyd: it
// models a supply-chain dock interrogating chips at scale and drives a
// live service over HTTP, the workload the ROADMAP's "millions of
// chips" claim has to survive.
//
// The workload is an open-loop Poisson arrival process: request launch
// times are drawn from the scenario seed ahead of time and do not slow
// down when the service does, which is what real dock traffic (and any
// honest overload measurement) looks like — a closed loop that waits
// for responses before sending more would flatter a saturated server by
// throttling the offered load to whatever it can absorb. Concurrency is
// still bounded (MaxInFlight) so a melting server degrades into counted
// client-side drops instead of unbounded goroutines.
//
// Everything random — arrival times, operation mix, chip selection,
// batch sizes, the fleet's chip classes — derives from one internal/rng
// seed, so two runs with the same configuration produce byte-identical
// request sequences (Plan.Digest pins this). Latency is recorded into
// internal/metrics histograms, one shard per in-flight slot to keep the
// hot path contention-free, merged at the end for the report.
package loadgen

import (
	"time"

	"github.com/flashmark/flashmark/internal/wallclock"
)

// Mix is the operation mix as relative weights (they need not sum to 1).
type Mix struct {
	// Verify weights POST /v1/verify of a single random fleet chip.
	Verify float64
	// Batch weights POST /v1/verify/batch with a drawn batch size.
	Batch float64
	// Enroll weights POST /v1/enroll of a random enrollable chip
	// (genuine or clone) — clones make this a DUPLICATE-ID storm
	// against the registry.
	Enroll float64
}

// Config describes one load scenario. The zero value of most fields
// selects a usable default; Target must be set for Run.
type Config struct {
	// Target is the base URL of a live fmverifyd (e.g. http://127.0.0.1:8900).
	Target string
	// Seed is the master scenario seed: the plan, the fleet, and every
	// stochastic choice derive from it.
	Seed uint64
	// Rate is the mean Poisson arrival rate in requests/second
	// (0 selects 100).
	Rate float64
	// Duration is the span arrivals are generated over (0 selects 10s).
	// The run itself lasts until the last response lands.
	Duration time.Duration
	// MaxInFlight bounds open-loop concurrency: arrivals past the cap
	// are counted as client drops, never queued (0 selects 64).
	MaxInFlight int
	// Timeout is the per-request client timeout (0 selects 30s).
	Timeout time.Duration

	// Fleet shapes the chip population the scenario draws from.
	Fleet FleetSpec
	// Mix weights the operation kinds (zero value selects 8:1:1
	// verify:batch:enroll).
	Mix Mix
	// BatchMean is the mean number of chips beyond the first in a batch
	// request (0 selects 3); BatchMax caps the draw (0 selects 16).
	BatchMean float64
	BatchMax  int

	// Now supplies wall time for pacing and latency measurement
	// (nil selects wallclock.Now).
	Now func() time.Time
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Mix.Verify == 0 && c.Mix.Batch == 0 && c.Mix.Enroll == 0 {
		c.Mix = Mix{Verify: 8, Batch: 1, Enroll: 1}
	}
	if c.BatchMean <= 0 {
		c.BatchMean = 3
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.Now == nil {
		c.Now = wallclock.Now
	}
	c.Fleet = c.Fleet.withDefaults()
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
