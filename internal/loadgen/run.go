package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashmark/flashmark/internal/metrics"
)

// chipVerdict is the slice of a service report the client needs for
// accounting; both ChipReport and EnrollReport decode into it.
type chipVerdict struct {
	Verdict  string `json:"verdict"`
	Conflict bool   `json:"conflict"`
}

// batchEnvelope is the slice of a batch response the client accounts.
type batchEnvelope struct {
	Results []chipVerdict `json:"results"`
	Summary struct {
		Chips int `json:"chips"`
	} `json:"summary"`
}

// opStats aggregates one operation kind across the run. Latency shards
// per in-flight slot keep Observe contention-free; Snapshot/Merge folds
// them for the report.
type opStats struct {
	requests atomic.Int64
	chips    atomic.Int64 // chips covered (batch counts each)
	shed     atomic.Int64 // 429 responses
	errors   atomic.Int64 // transport errors and non-200/429 statuses
	lat      []*metrics.Histogram
}

func newOpStats(slots int) *opStats {
	s := &opStats{lat: make([]*metrics.Histogram, slots)}
	for i := range s.lat {
		s.lat[i] = metrics.NewHistogram(metrics.LoadLatencyBuckets())
	}
	return s
}

// merged folds the per-slot latency shards into one snapshot.
func (s *opStats) merged() metrics.HistogramSnapshot {
	out := s.lat[0].Snapshot()
	for _, h := range s.lat[1:] {
		// Shards share one bucket layout; a mismatch is impossible here.
		if err := out.Merge(h.Snapshot()); err != nil {
			panic(err)
		}
	}
	return out
}

// Result is the measured outcome of one scenario run.
type Result struct {
	Plan    Plan
	Elapsed time.Duration
	// Sent counts requests actually launched; Dropped counts arrivals
	// refused client-side because MaxInFlight slots were all busy.
	Sent    int64
	Dropped int64

	Verify *opStats
	Batch  *opStats
	Enroll *opStats

	// DuplicateID counts DUPLICATE-ID verdicts (single verifies, batch
	// members, and conflicted enrollments) — the registry catching the
	// clone storm.
	DuplicateID atomic.Int64
}

func (r *Result) statsFor(k OpKind) *opStats {
	switch k {
	case OpBatch:
		return r.Batch
	case OpEnroll:
		return r.Enroll
	default:
		return r.Verify
	}
}

// shed sums 429 responses across operation kinds.
func (r *Result) shed() int64 {
	return r.Verify.shed.Load() + r.Batch.shed.Load() + r.Enroll.shed.Load()
}

// httpErrors sums transport and non-200/429 outcomes across kinds.
func (r *Result) httpErrors() int64 {
	return r.Verify.errors.Load() + r.Batch.errors.Load() + r.Enroll.errors.Load()
}

// Run executes the plan against cfg.Target. Arrivals are paced
// open-loop off the plan's offsets: a request fires at its planned time
// if an in-flight slot is free and is dropped (counted) otherwise. Run
// returns once every launched request has completed; ctx cancellation
// abandons pacing early but still waits for in-flight requests.
func Run(ctx context.Context, cfg Config, plan Plan, fleet *Fleet) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: Config.Target is required")
	}
	if len(fleet.Chips) != fleet.Spec.Size() {
		return nil, fmt.Errorf("loadgen: fleet holds %d chips, spec says %d", len(fleet.Chips), fleet.Spec.Size())
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
	}
	defer client.CloseIdleConnections()

	res := &Result{
		Plan:   plan,
		Verify: newOpStats(cfg.MaxInFlight),
		Batch:  newOpStats(cfg.MaxInFlight),
		Enroll: newOpStats(cfg.MaxInFlight),
	}
	// Slot tokens carry the histogram-shard index.
	slots := make(chan int, cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		slots <- i
	}
	var wg sync.WaitGroup
	start := cfg.Now()
pacing:
	for i := range plan.Requests {
		req := &plan.Requests[i]
		if wait := req.At - cfg.Now().Sub(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break pacing
			}
		}
		select {
		case slot := <-slots:
			res.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { slots <- slot }()
				res.send(ctx, cfg, client, fleet, req, slot)
			}()
		default:
			// Open loop: the arrival happened; the client sheds it
			// rather than queueing behind the cap.
			res.Dropped++
		}
	}
	wg.Wait()
	res.Elapsed = cfg.Now().Sub(start)
	return res, ctx.Err()
}

// send issues one planned request and accounts the outcome.
func (r *Result) send(ctx context.Context, cfg Config, client *http.Client, fleet *Fleet, req *Request, slot int) {
	st := r.statsFor(req.Kind)
	st.requests.Add(1)

	var path string
	var body []byte
	switch req.Kind {
	case OpBatch:
		path = "/v1/verify/batch"
		var buf bytes.Buffer
		buf.WriteString(`{"chips":[`)
		for i, c := range req.Chips {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.Write(fleet.Chips[c].Bytes)
		}
		buf.WriteString(`]}`)
		body = buf.Bytes()
	case OpEnroll:
		path = "/v1/enroll?source=loadgen"
		body = fleet.Chips[req.Chips[0]].Bytes
	default:
		path = "/v1/verify"
		body = fleet.Chips[req.Chips[0]].Bytes
	}

	t0 := cfg.Now()
	resp, err := post(ctx, client, cfg.Target+path, body)
	lat := cfg.Now().Sub(t0)
	if err != nil {
		st.errors.Add(1)
		cfg.logf("loadgen: %s: %v", req.Kind, err)
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		st.errors.Add(1)
		return
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Shed by admission control: the latency histogram only holds
		// served requests, so overload shows up as shed rate, not as a
		// fake fast percentile.
		st.shed.Add(1)
		return
	case resp.StatusCode != http.StatusOK:
		st.errors.Add(1)
		cfg.logf("loadgen: %s -> %d: %s", req.Kind, resp.StatusCode, payload)
		return
	}
	st.lat[slot].ObserveDuration(lat)
	switch req.Kind {
	case OpBatch:
		var env batchEnvelope
		if err := json.Unmarshal(payload, &env); err != nil {
			st.errors.Add(1)
			return
		}
		st.chips.Add(int64(env.Summary.Chips))
		for _, cr := range env.Results {
			if cr.Verdict == duplicateIDVerdict {
				r.DuplicateID.Add(1)
			}
		}
	default:
		var cv chipVerdict
		if err := json.Unmarshal(payload, &cv); err != nil {
			st.errors.Add(1)
			return
		}
		st.chips.Add(1)
		if cv.Verdict == duplicateIDVerdict || cv.Conflict {
			r.DuplicateID.Add(1)
		}
	}
}

// duplicateIDVerdict mirrors counterfeit.VerdictDuplicateID.String()
// without importing the package for one constant.
const duplicateIDVerdict = "DUPLICATE-ID"

func post(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}
