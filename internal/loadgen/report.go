package loadgen

import (
	"encoding/json"
	"os"
	"runtime"

	"github.com/flashmark/flashmark/internal/metrics"
)

// Report is the BENCH_service.json payload (schema
// flashmark-bench-service/v1), the service-level counterpart of
// BENCH_physics.json and BENCH_registry.json. Field names are globally
// unique on purpose: scripts/check_bench.sh extracts them with a flat
// first-match scan, so no key may appear twice with different meanings.
type Report struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	Seed           uint64  `json:"seed"`
	RateHz         float64 `json:"rate_hz"`
	PlannedS       float64 `json:"planned_duration_s"`
	ElapsedS       float64 `json:"elapsed_s"`
	FleetChips     int     `json:"fleet_chips"`
	ScheduleSHA256 string  `json:"schedule_sha256"`

	PlannedRequests int   `json:"planned_requests"`
	SentRequests    int64 `json:"sent_requests"`
	ClientDropped   int64 `json:"client_dropped"`

	VerifyRequests int64   `json:"verify_requests"`
	VerifyP50Ms    float64 `json:"verify_p50_ms"`
	VerifyP99Ms    float64 `json:"verify_p99_ms"`
	VerifyP999Ms   float64 `json:"verify_p999_ms"`
	BatchRequests  int64   `json:"batch_requests"`
	BatchP99Ms     float64 `json:"batch_p99_ms"`
	ChipsVerified  int64   `json:"chips_verified"`
	VerifiesPerSec float64 `json:"verifies_per_sec"`

	EnrollRequests int64   `json:"enroll_requests"`
	EnrollP99Ms    float64 `json:"enroll_p99_ms"`
	EnrollsPerSec  float64 `json:"enrolls_per_sec"`

	DuplicateIDVerdicts int64   `json:"duplicate_id_verdicts"`
	Shed429             int64   `json:"shed_429"`
	ShedRate            float64 `json:"shed_rate"`
	HTTPErrors          int64   `json:"http_errors"`
}

// ms converts a quantile in seconds to milliseconds.
func ms(s metrics.HistogramSnapshot, q float64) float64 { return s.Quantile(q) * 1e3 }

// BuildReport renders a run into the gated report shape.
func BuildReport(cfg Config, res *Result) Report {
	cfg = cfg.withDefaults()
	elapsed := res.Elapsed.Seconds()
	verifyLat := res.Verify.merged()
	batchLat := res.Batch.merged()
	enrollLat := res.Enroll.merged()
	rep := Report{
		Schema:     "flashmark-bench-service/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),

		Seed:           cfg.Seed,
		RateHz:         cfg.Rate,
		PlannedS:       cfg.Duration.Seconds(),
		ElapsedS:       elapsed,
		FleetChips:     cfg.Fleet.Size(),
		ScheduleSHA256: res.Plan.Digest(),

		PlannedRequests: len(res.Plan.Requests),
		SentRequests:    res.Sent,
		ClientDropped:   res.Dropped,

		VerifyRequests: res.Verify.requests.Load(),
		VerifyP50Ms:    ms(verifyLat, 0.50),
		VerifyP99Ms:    ms(verifyLat, 0.99),
		VerifyP999Ms:   ms(verifyLat, 0.999),
		BatchRequests:  res.Batch.requests.Load(),
		BatchP99Ms:     ms(batchLat, 0.99),
		ChipsVerified:  res.Verify.chips.Load() + res.Batch.chips.Load(),

		EnrollRequests: res.Enroll.requests.Load(),
		EnrollP99Ms:    ms(enrollLat, 0.99),

		DuplicateIDVerdicts: res.DuplicateID.Load(),
		Shed429:             res.shed(),
		HTTPErrors:          res.httpErrors(),
	}
	if elapsed > 0 {
		rep.VerifiesPerSec = float64(rep.ChipsVerified) / elapsed
		rep.EnrollsPerSec = float64(res.Enroll.chips.Load()) / elapsed
	}
	if res.Sent+res.Dropped > 0 {
		// Shed rate counts both server 429s and client-side drops: every
		// planned arrival the system (client cap included) refused.
		rep.ShedRate = float64(rep.Shed429+res.Dropped) / float64(res.Sent+res.Dropped)
	}
	return rep
}

// WriteFile writes the report as indented JSON, the layout
// scripts/check_bench.sh's field scanner expects.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
