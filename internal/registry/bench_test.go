package registry

// Registry benchmarks: hot-path lookup latency against a fleet-sized
// index (1M enrolled ids; acceptance: sub-microsecond and zero
// allocations), plus durable group-commit enrollment throughput. With
// -regjson the results are written as BENCH_registry.json (schema
// flashmark-bench-registry/v1), which CI gates via
// scripts/check_bench.sh against the acceptance thresholds.
//
// Run: make bench-registry
// (equivalently: go test -run xxx -bench 'RegistryLookup|RegistryEnroll' -benchtime 10000x -regjson BENCH_registry.json ./internal/registry)

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sync"
	"testing"
)

var regJSON = flag.String("regjson", "", "write registry benchmark results to this JSON file")

// regLookup is the fleet-scale read-path measurement. AllocsOp must be
// zero and NsOp sub-microsecond: the lookup path is one atomic bump,
// one striped RLock, one map probe.
type regLookup struct {
	NsOp     int64   `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	Keys     int     `json:"keys"`
}

// regEnroll is the durable write-path measurement; AppendsPerFsync > 1
// is group commit working (concurrent enrollers sharing fsyncs).
type regEnroll struct {
	NsOp            int64   `json:"ns_op"`
	AppendsPerFsync float64 `json:"appends_per_fsync"`
}

type regReport struct {
	Schema     string     `json:"schema"`
	GoMaxProcs int        `json:"go_max_procs"`
	GoVersion  string     `json:"go_version"`
	Lookup     *regLookup `json:"lookup,omitempty"`
	Enroll     *regEnroll `json:"enroll_durable,omitempty"`
}

var (
	regMu  sync.Mutex
	regOut = regReport{
		Schema:     "flashmark-bench-registry/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
)

func writeRegReport() error {
	regMu.Lock()
	defer regMu.Unlock()
	if *regJSON == "" || (regOut.Lookup == nil && regOut.Enroll == nil) {
		return nil
	}
	data, err := json.MarshalIndent(regOut, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*regJSON, append(data, '\n'), 0o644)
}

// TestMain flushes the bench report after all benchmarks have finished;
// it is a no-op for plain test runs.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writeRegReport(); err != nil {
		os.Stderr.WriteString("regjson: " + err.Error() + "\n")
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func benchNsOp(b *testing.B) int64 {
	if b.N == 0 {
		return 0
	}
	return b.Elapsed().Nanoseconds() / int64(b.N)
}

// benchFleetKeys is the enrolled-identity count for the lookup
// benchmark — the "1M ids on file" acceptance scale.
const benchFleetKeys = 1_000_000

var (
	benchFleetOnce sync.Once
	benchFleet     *Memory
)

// fleetIndex builds the 1M-key index once across all b.N escalations.
func fleetIndex() *Memory {
	benchFleetOnce.Do(func() {
		benchFleet = NewMemory(0)
		var fp Fingerprint
		for i := uint64(0); i < benchFleetKeys; i++ {
			fp[0], fp[1], fp[2] = byte(i), byte(i>>8), byte(i>>16)
			benchFleet.apply(Enrollment{
				Key:         Key{Manufacturer: "acme", DieID: i},
				Fingerprint: fp,
				Source:      "bench",
			})
		}
	})
	return benchFleet
}

// BenchmarkRegistryLookup measures the hot read path against 1M
// enrolled ids. Acceptance (gated in CI): 0 allocs/op, < 1 µs/op.
func BenchmarkRegistryLookup(b *testing.B) {
	m := fleetIndex()
	k := Key{Manufacturer: "acme"}
	allocs := testing.AllocsPerRun(100, func() {
		k.DieID = 12345
		if _, ok := m.Lookup(k); !ok {
			b.Fatal("lookup miss")
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride through the id space so the probe pattern spans shards
		// and defeats any single-line cache residency.
		k.DieID = uint64(i*2654435761) % benchFleetKeys
		if _, ok := m.Lookup(k); !ok {
			b.Fatal("lookup miss")
		}
	}
	b.StopTimer()
	regMu.Lock()
	regOut.Lookup = &regLookup{NsOp: benchNsOp(b), AllocsOp: allocs, Keys: benchFleetKeys}
	regMu.Unlock()
}

// BenchmarkRegistryEnroll measures durable enrollment throughput with
// real fsyncs under parallel load — the group-commit path. The
// appends-per-fsync metric shows how many acknowledgements each fsync
// amortizes.
func BenchmarkRegistryEnroll(b *testing.B) {
	dir := b.TempDir()
	d, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var next uint64
	var nextMu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var fp Fingerprint
		for pb.Next() {
			nextMu.Lock()
			id := next
			next++
			nextMu.Unlock()
			fp[0], fp[1], fp[2], fp[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
			if _, err := d.Enroll(Enrollment{
				Key:         Key{Manufacturer: "acme", DieID: id},
				Fingerprint: fp,
				Source:      "bench",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := d.Stats()
	perFsync := 0.0
	if st.WALFsyncs > 0 {
		perFsync = float64(st.WALAppends) / float64(st.WALFsyncs)
	}
	b.ReportMetric(perFsync, "appends/fsync")
	regMu.Lock()
	regOut.Enroll = &regEnroll{NsOp: benchNsOp(b), AppendsPerFsync: perFsync}
	regMu.Unlock()
}
