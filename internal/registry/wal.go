package registry

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Record wire format, shared by the WAL and the snapshot body:
//
//	frame   := u32 payloadLen (LE) | u32 crc32c(payload) | payload
//	payload := u8 version
//	           u8 len(manufacturer) | manufacturer bytes
//	           u64 dieID (LE)
//	           32B fingerprint
//	           u8 len(source) | source bytes
//	           i64 unixMicro (LE)
//
// Snapshot payloads append `u32 count | u8 flags` after the enrollment.
// Payload length is hard-capped at maxRecordBytes so a forged length
// header can never commit a large allocation: decoding works in small,
// bounded buffers no matter what the header claims.
const (
	recVersion     = 1
	frameHeadBytes = 8
	maxRecordBytes = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a record that stops cleanly at the tail of a log: a
// truncated frame, a length beyond the cap, or a checksum mismatch.
// Recovery truncates the file at the last good offset and continues.
var errTorn = errors.New("registry: torn log record")

// ErrCorrupt reports damage that power loss cannot explain: torn bytes
// in the middle of a closed log generation, or an invalid snapshot that
// was atomically renamed into place. Recovery refuses to guess.
var ErrCorrupt = errors.New("registry: corrupt store")

// appendEnrollment encodes e onto dst in the payload format.
func appendEnrollment(dst []byte, e Enrollment) ([]byte, error) {
	if len(e.Key.Manufacturer) > 255 {
		return nil, fmt.Errorf("registry: manufacturer exceeds 255 bytes")
	}
	if len(e.Source) > 255 {
		return nil, fmt.Errorf("registry: source label exceeds 255 bytes")
	}
	dst = append(dst, recVersion)
	dst = append(dst, byte(len(e.Key.Manufacturer)))
	dst = append(dst, e.Key.Manufacturer...)
	dst = binary.LittleEndian.AppendUint64(dst, e.Key.DieID)
	dst = append(dst, e.Fingerprint[:]...)
	dst = append(dst, byte(len(e.Source)))
	dst = append(dst, e.Source...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.UnixMicro))
	return dst, nil
}

// decodeEnrollment parses one enrollment payload, returning the number
// of bytes consumed (snapshot payloads carry trailing fields).
func decodeEnrollment(p []byte) (Enrollment, int, error) {
	var e Enrollment
	if len(p) < 2 {
		return e, 0, fmt.Errorf("registry: enrollment record too short")
	}
	if p[0] != recVersion {
		return e, 0, fmt.Errorf("registry: unknown record version %d", p[0])
	}
	off := 1
	mfgLen := int(p[off])
	off++
	if len(p) < off+mfgLen+8+32+1 {
		return e, 0, fmt.Errorf("registry: enrollment record truncated")
	}
	e.Key.Manufacturer = string(p[off : off+mfgLen])
	off += mfgLen
	e.Key.DieID = binary.LittleEndian.Uint64(p[off:])
	off += 8
	copy(e.Fingerprint[:], p[off:])
	off += 32
	srcLen := int(p[off])
	off++
	if len(p) < off+srcLen+8 {
		return e, 0, fmt.Errorf("registry: enrollment record truncated")
	}
	e.Source = string(p[off : off+srcLen])
	off += srcLen
	e.UnixMicro = int64(binary.LittleEndian.Uint64(p[off:]))
	off += 8
	return e, off, nil
}

// appendFrame wraps payload in the length+checksum frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// readFrame reads one frame from r into buf (reused across calls). A
// clean EOF at a frame boundary returns io.EOF; anything that stops
// mid-record — short header, short payload, oversized length, checksum
// mismatch — returns errTorn.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var head [frameHeadBytes]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > maxRecordBytes {
		return nil, errTorn
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(head[4:]) {
		return nil, errTorn
	}
	return buf, nil
}

// replayLog reads every valid enrollment record from r, invoking apply
// for each, and returns the byte offset just past the last good record
// plus whether the log ended in a torn record.
func replayLog(r io.Reader, apply func(Enrollment)) (good int64, torn bool, err error) {
	br := bufio.NewReader(r)
	var buf []byte
	for {
		payload, rerr := readFrame(br, buf)
		if rerr == io.EOF {
			return good, false, nil
		}
		if rerr != nil {
			return good, true, nil
		}
		buf = payload
		e, n, derr := decodeEnrollment(payload)
		if derr != nil || n != len(payload) {
			// A checksummed frame holding garbage is not a torn write.
			return good, true, fmt.Errorf("%w: undecodable WAL record at offset %d", ErrCorrupt, good)
		}
		apply(e)
		good += frameHeadBytes + int64(len(payload))
	}
}

// walStats aggregates append/fsync counters across WAL generations; the
// Durable owner shares one instance with every generation it opens.
type walStats struct {
	appends atomic.Int64
	fsyncs  atomic.Int64
	bytes   atomic.Int64
}

// walFile is one open WAL generation. Appends are serialized by the
// owning Durable's mutex (shared via mu); syncTo implements group
// commit: concurrent enrollers pile up on syncMu and the first one
// through fsyncs everything flushed so far, so under load the fsync
// count grows far slower than the append count.
type walFile struct {
	mu *sync.Mutex // the owning Durable's write mutex
	f  *os.File
	w  *bufio.Writer
	st *walStats

	writeSeq int64        // records appended (guarded by mu)
	syncMu   sync.Mutex   // group-commit leader election
	synced   atomic.Int64 // highest writeSeq known durable
	scratch  []byte       // frame build buffer (guarded by mu)
}

// createWAL opens (creating or appending) the WAL generation file.
func createWAL(path string, mu *sync.Mutex, st *walStats) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walFile{mu: mu, f: f, w: bufio.NewWriter(f), st: st}, nil
}

// appendLocked encodes and buffers one record; the caller holds mu.
// Durability is the caller's next syncTo call.
func (w *walFile) appendLocked(e Enrollment) (seq int64, err error) {
	w.scratch = w.scratch[:0]
	payload, err := appendEnrollment(nil, e)
	if err != nil {
		return 0, err
	}
	w.scratch = appendFrame(w.scratch, payload)
	if _, err := w.w.Write(w.scratch); err != nil {
		return 0, err
	}
	w.writeSeq++
	w.st.appends.Add(1)
	w.st.bytes.Add(int64(len(w.scratch)))
	return w.writeSeq, nil
}

// syncTo blocks until record seq is durable. Group commit: whoever wins
// syncMu flushes and fsyncs on behalf of everyone queued behind it.
func (w *walFile) syncTo(seq int64) error {
	if w.synced.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= seq {
		return nil
	}
	w.mu.Lock()
	if w.synced.Load() >= seq {
		// A compaction switchover synced this generation meanwhile.
		w.mu.Unlock()
		return nil
	}
	target := w.writeSeq
	err := w.w.Flush()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.st.fsyncs.Add(1)
	storeMax(&w.synced, target)
	return nil
}

// flushAndSyncLocked makes everything appended so far durable; the
// caller holds mu (compaction switchover and Close use it).
func (w *walFile) flushAndSyncLocked() error {
	target := w.writeSeq
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.st.fsyncs.Add(1)
	storeMax(&w.synced, target)
	return nil
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
