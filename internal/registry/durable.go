package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashmark/flashmark/internal/wallclock"
)

// Options tunes a durable store. The zero value selects production-sane
// defaults.
type Options struct {
	// Shards is the in-memory index stripe count (0 selects
	// DefaultShards).
	Shards int
	// CompactEvery triggers snapshot compaction once the live WAL
	// generation holds this many records (0 selects 65536; negative
	// disables auto-compaction — Compact can still be called manually).
	CompactEvery int
	// NoSync skips the per-enrollment fsync barrier. Acknowledged
	// enrollments are then only as durable as the OS page cache —
	// useful for bulk loads and tests, never for production.
	NoSync bool
	// Now supplies wall time for recovery accounting (nil selects
	// wallclock.Now); tests inject a fake to make Stats().Recovery
	// fixture-checkable.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	switch {
	case o.CompactEvery == 0:
		o.CompactEvery = 65536
	case o.CompactEvery < 0:
		o.CompactEvery = 0
	}
	if o.Now == nil {
		o.Now = wallclock.Now
	}
	return o
}

// ErrClosed reports use of a closed durable store.
var ErrClosed = errors.New("registry: store is closed")

// Durable is the crash-safe fleet-scope Store: the sharded Memory index
// for reads, fronted by a write-ahead log for durability and compacted
// into snapshots to bound recovery time.
//
// Write path: Enroll serializes on one mutex to append the WAL record
// and apply the shared dedup kernel in the same order (so recovery
// replay reproduces results exactly), then releases the mutex and waits
// on the group-commit barrier — concurrent enrollers share fsyncs. Read
// path: Lookup goes straight to the lock-striped index and never touches
// the log.
//
// On-disk layout (inside Dir): wal-<gen>.log generations plus
// snap-<gen>.snap snapshots, where snap-G covers every WAL generation
// <= G. Compaction opens generation G+1, snapshots the state as snap-G,
// then deletes obsolete files; recovery loads the newest valid snapshot
// and replays every newer WAL generation in order, truncating a torn
// tail on the live generation.
type Durable struct {
	dir  string
	opts Options
	// mem is the live read index. It is an atomic pointer because
	// snapshot shipping (ImportState) swaps the whole index while
	// lock-free readers are in flight.
	mem atomic.Pointer[Memory]

	mu         sync.Mutex // orders WAL appends with index application
	wal        *walFile
	gen        uint64 // live WAL generation
	walRecords int64  // records in the live generation (guarded by mu)
	closed     atomic.Bool

	compactMu   sync.Mutex // one compaction at a time
	compacting  atomic.Bool
	walStats    walStats
	compactions atomic.Int64
	// walSegments counts WAL generation files on disk; lastCompaction
	// is the newest on-disk snapshot generation. Both are surfaced in
	// Stats so fmregistryd can export them as gauges.
	walSegments    atomic.Int64
	lastCompaction atomic.Uint64
	recovery       time.Duration
}

// index returns the live read index.
func (d *Durable) index() *Memory { return d.mem.Load() }

// Open creates or recovers a durable store in dir.
func Open(dir string, opts Options) (*Durable, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, opts: opts}
	d.mem.Store(NewMemory(opts.Shards))
	start := opts.Now()
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.recovery = opts.Now().Sub(start)
	return d, nil
}

// scanDir inventories the store directory, removing leftover .tmp files
// from interrupted compactions.
func (d *Durable) scanDir() (walGens, snapGens []uint64, err error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash mid-compaction: the snapshot never reached its
			// final name, so it holds nothing the WALs don't.
			if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if gen, ok := parseGen(name, "wal-", ".log"); ok {
				walGens = append(walGens, gen)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if gen, ok := parseGen(name, "snap-", ".snap"); ok {
				snapGens = append(snapGens, gen)
			}
		}
	}
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	return walGens, snapGens, nil
}

func parseGen(name, prefix, suffix string) (uint64, bool) {
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	gen, err := strconv.ParseUint(body, 10, 64)
	return gen, err == nil
}

// recover rebuilds the index: newest valid snapshot, then every newer
// WAL generation in ascending order.
func (d *Durable) recover() error {
	walGens, snapGens, err := d.scanDir()
	if err != nil {
		return err
	}
	var snapGen uint64
	if len(snapGens) > 0 {
		best := snapGens[len(snapGens)-1]
		_, err := loadSnapshotFile(filepath.Join(d.dir, snapName(best)), func(ent snapEntry) {
			d.index().restore(ent.first.Key, ent.first, ent.fp, ent.count, ent.taint)
		})
		if err != nil {
			// An atomically renamed snapshot is complete by construction;
			// an invalid one means the disk lied. Refuse to guess.
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		snapGen = best
	}
	d.lastCompaction.Store(snapGen)
	live := snapGen + 1
	for _, gen := range walGens {
		if gen <= snapGen {
			continue // already folded into the snapshot
		}
		if gen > live {
			live = gen
		}
		path := filepath.Join(d.dir, walName(gen))
		records, err := d.replayWALFile(path, gen == walGens[len(walGens)-1])
		if err != nil {
			return err
		}
		if gen == walGens[len(walGens)-1] {
			d.walRecords = records
		}
	}
	wal, err := createWAL(filepath.Join(d.dir, walName(live)), &d.mu, &d.walStats)
	if err != nil {
		return err
	}
	d.wal = wal
	d.gen = live
	segments := int64(len(walGens))
	if len(walGens) == 0 || walGens[len(walGens)-1] < live {
		segments++ // createWAL just opened a generation scanDir never saw
	}
	d.walSegments.Store(segments)
	// Everything replayed is on disk already; start the durability
	// cursor at the replayed record count.
	d.wal.writeSeq = d.walRecords
	d.wal.synced.Store(d.walRecords)
	return nil
}

// replayWALFile applies one WAL generation to the index. A torn tail is
// tolerated — and truncated — only on the final (live) generation;
// earlier generations were sealed by a compaction switchover and must
// read back whole.
func (d *Durable) replayWALFile(path string, isLast bool) (records int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	good, torn, replayErr := replayLog(f, func(e Enrollment) {
		d.index().apply(e)
		records++
	})
	f.Close()
	if replayErr != nil {
		return 0, replayErr
	}
	if torn {
		if !isLast {
			return 0, fmt.Errorf("%w: torn record inside sealed generation %s", ErrCorrupt, filepath.Base(path))
		}
		// Power loss mid-append: the tail record was never acknowledged.
		// Truncate to the last good frame so the next append starts clean.
		if err := os.Truncate(path, good); err != nil {
			return 0, err
		}
		if err := syncDir(d.dir); err != nil {
			return 0, err
		}
	}
	return records, nil
}

// Enroll records one sighting, returning after the record is durable
// (unless Options.NoSync). Result semantics are identical to Memory's:
// the shared dedup kernel runs in WAL order.
func (d *Durable) Enroll(e Enrollment) (EnrollResult, error) {
	if d.closed.Load() {
		return EnrollResult{}, ErrClosed
	}
	d.mu.Lock()
	w := d.wal
	seq, err := w.appendLocked(e)
	if err != nil {
		d.mu.Unlock()
		return EnrollResult{}, err
	}
	res := d.index().apply(e)
	d.walRecords++
	needCompact := d.opts.CompactEvery > 0 && d.walRecords >= int64(d.opts.CompactEvery)
	d.mu.Unlock()
	if !d.opts.NoSync {
		if err := w.syncTo(seq); err != nil {
			return EnrollResult{}, fmt.Errorf("registry: enrollment not durable: %w", err)
		}
	}
	if needCompact && d.compacting.CompareAndSwap(false, true) {
		err := d.Compact()
		d.compacting.Store(false)
		if err != nil {
			// The enrollment itself is durable; compaction can retry on
			// the next threshold crossing.
			return res, fmt.Errorf("registry: compaction failed (enrollment is durable): %w", err)
		}
	}
	return res, nil
}

// Lookup reads the in-memory index; it never touches the log.
func (d *Durable) Lookup(k Key) (LookupResult, bool) { return d.index().Lookup(k) }

// SeenBefore reads the in-memory index; it never touches the log.
func (d *Durable) SeenBefore(k Key) bool { return d.index().SeenBefore(k) }

// Range calls fn for every enrolled key until fn returns false — the
// sending half of snapshot shipping. Iteration order is unspecified.
func (d *Durable) Range(fn func(k Key, r LookupResult) bool) { d.index().Range(fn) }

// Stats merges the index counters with the durability counters.
func (d *Durable) Stats() Stats {
	s := d.index().Stats()
	s.WALAppends = d.walStats.appends.Load()
	s.WALFsyncs = d.walStats.fsyncs.Load()
	s.WALBytes = d.walStats.bytes.Load()
	d.mu.Lock()
	s.WALRecords = d.walRecords
	d.mu.Unlock()
	s.Compactions = d.compactions.Load()
	s.WALSegments = d.walSegments.Load()
	s.LastCompaction = d.lastCompaction.Load()
	s.Recovery = d.recovery
	return s
}

// Compact seals the live WAL generation behind a snapshot: flush and
// sync the old generation, switch appends to generation G+1, persist
// the frozen state as snap-G (tmp + fsync + atomic rename + dir fsync),
// then delete the files the snapshot covers. Lookups proceed throughout;
// enrollments stall only for the switchover and state capture, not the
// snapshot write.
func (d *Durable) Compact() error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	d.mu.Lock()
	if err := d.wal.flushAndSyncLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	oldGen := d.gen
	oldWal := d.wal
	newWal, err := createWAL(filepath.Join(d.dir, walName(oldGen+1)), &d.mu, &d.walStats)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.wal = newWal
	d.gen = oldGen + 1
	d.walRecords = 0
	d.walSegments.Add(1)
	state := make([]snapEntry, 0, d.index().Len())
	d.index().Range(func(k Key, r LookupResult) bool {
		state = append(state, snapEntry{first: r.First, fp: r.Fingerprint, count: r.Count, taint: r.Conflict})
		return true
	})
	d.mu.Unlock()
	oldWal.f.Close()

	if err := writeSnapshot(d.dir, oldGen, state); err != nil {
		// The old WAL files remain; recovery still has everything.
		return err
	}
	d.compactions.Add(1)
	d.lastCompaction.Store(oldGen)
	d.removeObsolete(oldGen)
	return nil
}

// ImportState atomically replaces the store's entire contents with a
// shipped state — the receiving half of snapshot shipping during
// replica resync. The swap is visible to readers immediately; a
// compaction then persists the new state and retires every WAL record
// of the old one. Until that compaction lands, a crash recovers the
// *old* contents, which is safe: nothing imported has been
// acknowledged to the shipping primary yet, so it resyncs again.
func (d *Durable) ImportState(state []LookupResult) error {
	if d.closed.Load() {
		return ErrClosed
	}
	fresh := NewMemory(d.opts.Shards)
	for _, r := range state {
		fresh.restore(r.First.Key, r.First, r.Fingerprint, r.Count, r.Conflict)
	}
	d.mu.Lock()
	d.mem.Store(fresh)
	d.mu.Unlock()
	return d.Compact()
}

// removeObsolete best-effort deletes WAL generations <= gen and
// snapshots < gen: everything snap-<gen> covers.
func (d *Durable) removeObsolete(gen uint64) {
	walGens, snapGens, err := d.scanDir()
	if err != nil {
		return
	}
	for _, g := range walGens {
		if g <= gen {
			os.Remove(filepath.Join(d.dir, walName(g)))
		}
	}
	for _, g := range snapGens {
		if g < gen {
			os.Remove(filepath.Join(d.dir, snapName(g)))
		}
	}
	var remaining int64
	for _, g := range walGens {
		if g > gen {
			remaining++
		}
	}
	d.walSegments.Store(remaining)
}

// Close flushes and syncs the live WAL generation and releases the
// store. Enrollments after Close fail with ErrClosed; Close is
// idempotent.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.wal.flushAndSyncLocked(); err != nil {
		d.wal.f.Close()
		return err
	}
	return d.wal.f.Close()
}
