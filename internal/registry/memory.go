package registry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the lock-stripe count used when NewMemory is given 0.
// 64 stripes keep shard-lock contention negligible at any realistic
// verifier parallelism while costing ~3 KiB of empty maps.
const DefaultShards = 64

// Memory is the in-memory sharded enrollment index: N lock-striped
// shards keyed by a hash of (manufacturer, die id). Reads touch exactly
// one striped read-lock and allocate nothing, so the hot Lookup path
// stays sub-microsecond even with millions of identities on file. It is
// both a complete Store (the batch-local scope: counterfeit.Auditor is
// built on it) and the runtime index of the durable backend (the fleet
// scope) — one dedup implementation, two scopes.
type Memory struct {
	shards []memShard
	mask   uint32

	enrollments atomic.Int64
	lookups     atomic.Int64
	conflicts   atomic.Int64
	keys        atomic.Int64
}

type memShard struct {
	mu sync.RWMutex
	m  map[Key]*memEntry
}

// memEntry is the per-key dedup state. first and fp are immutable once
// set; count and taint only grow.
type memEntry struct {
	first Enrollment  // earliest enrollment (any fingerprint)
	fp    Fingerprint // first non-zero fingerprint observed
	count int
	taint bool // two different non-zero fingerprints seen
}

// NewMemory returns an empty index with the given stripe count rounded
// up to a power of two (0 selects DefaultShards).
func NewMemory(shards int) *Memory {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Memory{shards: make([]memShard, n), mask: uint32(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[Key]*memEntry)
	}
	return m
}

// shardOf picks the stripe for a key with FNV-1a over the manufacturer
// bytes and the die id — allocation-free and stable for the process
// lifetime (stripe assignment never touches the durable format).
func (m *Memory) shardOf(k Key) *memShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.Manufacturer); i++ {
		h = (h ^ uint32(k.Manufacturer[i])) * prime32
	}
	id := k.DieID
	for i := 0; i < 8; i++ {
		h = (h ^ uint32(id&0xFF)) * prime32
		id >>= 8
	}
	return &m.shards[h&m.mask]
}

// Enroll records one sighting. It never fails; the error return exists
// to satisfy Store (durable backends can fail on I/O).
func (m *Memory) Enroll(e Enrollment) (EnrollResult, error) {
	res := m.apply(e)
	return res, nil
}

// apply is the shared dedup kernel: both the public Enroll and the
// durable backend's WAL replay go through it, so batch-local audits,
// live fleet enrollment, and crash recovery agree on duplicate and
// conflict semantics by construction.
func (m *Memory) apply(e Enrollment) EnrollResult {
	s := m.shardOf(e.Key)
	s.mu.Lock()
	ent := s.m[e.Key]
	if ent == nil {
		ent = &memEntry{first: e, fp: e.Fingerprint, count: 1}
		s.m[e.Key] = ent
		m.keys.Add(1)
	} else {
		ent.count++
		switch {
		case ent.fp.IsZero():
			// Adopt the first measurable fingerprint however late it shows.
			ent.fp = e.Fingerprint
		case e.Fingerprint.IsZero() || e.Fingerprint == ent.fp:
			// Unknown or same physical item: no new evidence.
		case !ent.taint:
			ent.taint = true
			m.conflicts.Add(1)
		}
	}
	res := EnrollResult{
		Count:     ent.count,
		Duplicate: ent.count > 1,
		Conflict:  ent.taint,
		First:     ent.first,
	}
	s.mu.Unlock()
	m.enrollments.Add(1)
	return res
}

// restore installs a key's full dedup state verbatim — the snapshot
// load path. It must only run before the store serves traffic.
func (m *Memory) restore(k Key, first Enrollment, fp Fingerprint, count int, taint bool) {
	s := m.shardOf(k)
	s.mu.Lock()
	if _, dup := s.m[k]; !dup {
		m.keys.Add(1)
	}
	s.m[k] = &memEntry{first: first, fp: fp, count: count, taint: taint}
	s.mu.Unlock()
	m.enrollments.Add(int64(count))
	if taint {
		m.conflicts.Add(1)
	}
}

// Lookup returns the read-side view of a key. The path is allocation
// free: one atomic counter bump, one striped RLock, one map probe.
func (m *Memory) Lookup(k Key) (LookupResult, bool) {
	m.lookups.Add(1)
	s := m.shardOf(k)
	s.mu.RLock()
	ent := s.m[k]
	if ent == nil {
		s.mu.RUnlock()
		return LookupResult{}, false
	}
	res := LookupResult{
		First:       ent.first,
		Fingerprint: ent.fp,
		Count:       ent.count,
		Conflict:    ent.taint,
	}
	s.mu.RUnlock()
	return res, true
}

// SeenBefore reports whether the key has any enrollment on file.
func (m *Memory) SeenBefore(k Key) bool {
	m.lookups.Add(1)
	s := m.shardOf(k)
	s.mu.RLock()
	_, ok := s.m[k]
	s.mu.RUnlock()
	return ok
}

// Stats snapshots the counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Keys:        m.keys.Load(),
		Enrollments: m.enrollments.Load(),
		Lookups:     m.lookups.Load(),
		Conflicts:   m.conflicts.Load(),
	}
}

// Len returns the number of distinct keys on file.
func (m *Memory) Len() int { return int(m.keys.Load()) }

// Range calls fn for every enrolled key until fn returns false.
// Iteration order is unspecified; fn must not call back into the same
// Memory's write path.
func (m *Memory) Range(fn func(k Key, r LookupResult) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, ent := range s.m {
			r := LookupResult{
				First:       ent.first,
				Fingerprint: ent.fp,
				Count:       ent.count,
				Conflict:    ent.taint,
			}
			if !fn(k, r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Duplicates returns every key enrolled more than once, sorted by
// manufacturer then die id — the batch-audit report order.
func (m *Memory) Duplicates() []Key {
	var out []Key
	m.Range(func(k Key, r LookupResult) bool {
		if r.Count > 1 {
			out = append(out, k)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Manufacturer != out[j].Manufacturer {
			return out[i].Manufacturer < out[j].Manufacturer
		}
		return out[i].DieID < out[j].DieID
	})
	return out
}
