package registry

// Wire protocol for the distributed registry plane. fmregistryd nodes
// and their clients (registry.Remote, the cluster router, the
// replication stream) all speak the same tiny length-prefixed framing:
//
//	message := u32 payloadLen (LE) | u8 op | payload
//
// Payloads reuse the WAL/snapshot record encodings (wal.go,
// snapshot.go), so an enrollment is laid out identically on the wire,
// in the log, and in a shipped snapshot chunk — one codec, three
// transports. Message length is capped at MaxWireMessage so a hostile
// or corrupted peer can never commit a large allocation with a forged
// header, mirroring the WAL's maxRecordBytes discipline.
//
// Requests (client -> node): OpPing, OpEnroll, OpLookup, OpSeen,
// OpStats, OpLookupBatch, OpPromote. Replication (primary -> follower,
// over one long-lived conn): OpSync handshake, then either a snapshot
// ship (OpSnapBegin / OpSnapChunk* / OpSnapEnd) or nothing, then a live
// stream of OpRepl records each acknowledged by OpReplAck. Responses:
// OpOK, OpErr (UTF-8 message payload), OpSyncOK.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Op tags one wire message.
type Op byte

// Request, replication and response opcodes.
const (
	OpPing        Op = 0x01 // -> OpOK [role byte]
	OpEnroll      Op = 0x02 // [enrollment] -> OpOK [enroll result] | OpErr
	OpLookup      Op = 0x03 // [key] -> OpOK [u8 found | state]
	OpSeen        Op = 0x04 // [key] -> OpOK [u8 found]
	OpStats       Op = 0x05 // -> OpOK [stats]
	OpLookupBatch Op = 0x06 // [u32 n | n*key] -> OpOK [u32 n | n*(u8 found | state)]
	OpPromote     Op = 0x07 // -> OpOK (follower becomes primary; idempotent)
	OpSync        Op = 0x08 // [u64 pos] -> OpSyncOK [u64 pos] | OpErr
	OpSnapBegin   Op = 0x09 // [u64 entryCount]
	OpSnapChunk   Op = 0x0A // [state]
	OpSnapEnd     Op = 0x0B // -> OpOK [u64 pos] | OpErr
	OpRepl        Op = 0x0C // [enrollment] -> OpReplAck [u64 pos] | OpErr

	OpOK      Op = 0x20
	OpErr     Op = 0x21
	OpSyncOK  Op = 0x22
	OpReplAck Op = 0x23
)

// Node role bytes carried in an OpPing response.
const (
	RolePrimaryByte  = 'P' // primary, accepting enrollments
	RoleDegradedByte = 'D' // primary fenced: required follower link is down
	RoleFollowerByte = 'F' // follower, refusing client enrollments
)

// MaxWireMessage caps one message payload. Snapshot chunks carry one
// state entry each, so nothing legitimate comes near the cap.
const MaxWireMessage = 1 << 20

const wireHeadBytes = 5

// WriteMessage frames op+payload onto w. It buffers only; the caller
// flushes once per request (or per replication batch).
func WriteMessage(w *bufio.Writer, op Op, payload []byte) error {
	if len(payload) > MaxWireMessage {
		return fmt.Errorf("registry: wire message of %d bytes exceeds cap", len(payload))
	}
	var head [wireHeadBytes]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = byte(op)
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message from r into buf (reused across
// calls when it has capacity). A clean EOF at a frame boundary returns
// io.EOF; an oversized length header fails without allocating.
func ReadMessage(r *bufio.Reader, buf []byte) (Op, []byte, error) {
	var head [wireHeadBytes]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("registry: wire header: %w", err)
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > MaxWireMessage {
		return 0, nil, fmt.Errorf("registry: wire message of %d bytes exceeds cap", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("registry: wire payload: %w", err)
	}
	return Op(head[4]), buf, nil
}

// AppendWireEnrollment encodes e in the shared record payload format.
func AppendWireEnrollment(dst []byte, e Enrollment) ([]byte, error) {
	return appendEnrollment(dst, e)
}

// DecodeWireEnrollment parses an enrollment payload that must fill p
// exactly.
func DecodeWireEnrollment(p []byte) (Enrollment, error) {
	e, n, err := decodeEnrollment(p)
	if err != nil {
		return e, err
	}
	if n != len(p) {
		return e, fmt.Errorf("registry: %d trailing bytes after enrollment", len(p)-n)
	}
	return e, nil
}

// AppendWireKey encodes k: u8 len(manufacturer) | manufacturer | u64
// dieID (LE).
func AppendWireKey(dst []byte, k Key) ([]byte, error) {
	if len(k.Manufacturer) > 255 {
		return nil, fmt.Errorf("registry: manufacturer exceeds 255 bytes")
	}
	dst = append(dst, byte(len(k.Manufacturer)))
	dst = append(dst, k.Manufacturer...)
	return binary.LittleEndian.AppendUint64(dst, k.DieID), nil
}

// DecodeWireKey parses one key from the front of p, returning the bytes
// consumed (batch payloads carry keys back to back).
func DecodeWireKey(p []byte) (Key, int, error) {
	var k Key
	if len(p) < 1 {
		return k, 0, fmt.Errorf("registry: key payload too short")
	}
	mfgLen := int(p[0])
	if len(p) < 1+mfgLen+8 {
		return k, 0, fmt.Errorf("registry: key payload truncated")
	}
	k.Manufacturer = string(p[1 : 1+mfgLen])
	k.DieID = binary.LittleEndian.Uint64(p[1+mfgLen:])
	return k, 1 + mfgLen + 8, nil
}

// Enroll-result flag bits.
const (
	wireFlagDuplicate = 1 << 0
	wireFlagConflict  = 1 << 1
)

// AppendWireEnrollResult encodes r: u32 count | u8 flags | enrollment
// (the first sighting).
func AppendWireEnrollResult(dst []byte, r EnrollResult) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Count))
	var flags byte
	if r.Duplicate {
		flags |= wireFlagDuplicate
	}
	if r.Conflict {
		flags |= wireFlagConflict
	}
	dst = append(dst, flags)
	return appendEnrollment(dst, r.First)
}

// DecodeWireEnrollResult parses an enroll-result payload.
func DecodeWireEnrollResult(p []byte) (EnrollResult, error) {
	var r EnrollResult
	if len(p) < 5 {
		return r, fmt.Errorf("registry: enroll result payload too short")
	}
	r.Count = int(binary.LittleEndian.Uint32(p))
	r.Duplicate = p[4]&wireFlagDuplicate != 0
	r.Conflict = p[4]&wireFlagConflict != 0
	first, n, err := decodeEnrollment(p[5:])
	if err != nil {
		return r, err
	}
	if n != len(p)-5 {
		return r, fmt.Errorf("registry: %d trailing bytes after enroll result", len(p)-5-n)
	}
	r.First = first
	return r, nil
}

// AppendWireState encodes one key's full read-side state in the
// snapshot-entry layout: enrollment | 32B first-nonzero fingerprint |
// u32 count | u8 flags. Lookup responses and shipped snapshot chunks
// share it.
func AppendWireState(dst []byte, r LookupResult) ([]byte, error) {
	return appendSnapEntry(dst, snapEntry{first: r.First, fp: r.Fingerprint, count: r.Count, taint: r.Conflict})
}

// DecodeWireState parses one state payload.
func DecodeWireState(p []byte) (LookupResult, error) {
	ent, err := decodeSnapEntry(p)
	if err != nil {
		return LookupResult{}, err
	}
	return LookupResult{First: ent.first, Fingerprint: ent.fp, Count: ent.count, Conflict: ent.taint}, nil
}

// wireStatsFields is the fixed u64 field count of a stats payload.
const wireStatsFields = 12

// AppendWireStats encodes s as twelve little-endian u64s in declaration
// order (Recovery travels as microseconds).
func AppendWireStats(dst []byte, s Stats) []byte {
	for _, v := range [wireStatsFields]int64{
		s.Keys, s.Enrollments, s.Lookups, s.Conflicts,
		s.WALAppends, s.WALFsyncs, s.WALBytes, s.WALRecords,
		s.Compactions, int64(s.LastCompaction), s.WALSegments,
		s.Recovery.Microseconds(),
	} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeWireStats parses a stats payload.
func DecodeWireStats(p []byte) (Stats, error) {
	var s Stats
	if len(p) != wireStatsFields*8 {
		return s, fmt.Errorf("registry: stats payload is %d bytes, want %d", len(p), wireStatsFields*8)
	}
	u := func(i int) int64 { return int64(binary.LittleEndian.Uint64(p[i*8:])) }
	s.Keys, s.Enrollments, s.Lookups, s.Conflicts = u(0), u(1), u(2), u(3)
	s.WALAppends, s.WALFsyncs, s.WALBytes, s.WALRecords = u(4), u(5), u(6), u(7)
	s.Compactions, s.LastCompaction, s.WALSegments = u(8), uint64(u(9)), u(10)
	s.Recovery = time.Duration(u(11)) * time.Microsecond
	return s, nil
}
