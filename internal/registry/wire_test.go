package registry

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func wireEnr(mfg string, die uint64, fpb byte, src string) Enrollment {
	var fp Fingerprint
	if fpb != 0 {
		fp[0] = fpb
	}
	return Enrollment{
		Key:         Key{Manufacturer: mfg, DieID: die},
		Fingerprint: fp,
		Source:      src,
		UnixMicro:   1722470400123456,
	}
}

func TestWireMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteMessage(bw, Op(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	var scratch []byte
	for i, want := range payloads {
		op, got, err := ReadMessage(br, scratch)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if op != Op(i+1) {
			t.Fatalf("message %d: op = %#x, want %#x", i, byte(op), i+1)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: payload mismatch", i)
		}
		scratch = got[:0]
	}
	if _, _, err := ReadMessage(br, scratch); err != io.EOF {
		t.Fatalf("after last message: err = %v, want io.EOF", err)
	}
}

func TestWireMessageRejectsOversized(t *testing.T) {
	var bw bufio.Writer
	if err := WriteMessage(&bw, OpPing, make([]byte, MaxWireMessage+1)); err == nil {
		t.Fatal("WriteMessage accepted an oversized payload")
	}
	// A forged length header must fail before committing an allocation.
	frame := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(OpPing)}
	if _, _, err := ReadMessage(bufio.NewReader(bytes.NewReader(frame)), nil); err == nil {
		t.Fatal("ReadMessage accepted a forged oversized length")
	}
}

func TestWireMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteMessage(bw, OpEnroll, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	whole := buf.Bytes()
	for _, cut := range []int{1, 4, 7, len(whole) - 1} {
		if _, _, err := ReadMessage(bufio.NewReader(bytes.NewReader(whole[:cut])), nil); err == nil {
			t.Fatalf("ReadMessage accepted a message truncated to %d bytes", cut)
		}
	}
}

func TestWireEnrollmentRoundTrip(t *testing.T) {
	for _, e := range []Enrollment{
		wireEnr("TC", 0x1001, 7, "dock-4"),
		wireEnr("", 0, 0, ""),
		wireEnr(strings.Repeat("m", 255), ^uint64(0), 0xFF, strings.Repeat("s", 255)),
	} {
		p, err := AppendWireEnrollment(nil, e)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		got, err := DecodeWireEnrollment(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != e {
			t.Fatalf("round trip: got %+v, want %+v", got, e)
		}
		if _, err := DecodeWireEnrollment(append(p, 0)); err == nil {
			t.Fatal("DecodeWireEnrollment accepted trailing bytes")
		}
	}
}

func TestWireKeyRoundTrip(t *testing.T) {
	keys := []Key{
		{Manufacturer: "TC", DieID: 0x1001},
		{Manufacturer: "", DieID: 0},
		{Manufacturer: strings.Repeat("x", 255), DieID: ^uint64(0)},
	}
	var p []byte
	for _, k := range keys {
		var err error
		if p, err = AppendWireKey(p, k); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	off := 0
	for i, want := range keys {
		k, n, err := DecodeWireKey(p[off:])
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if k != want {
			t.Fatalf("key %d: got %+v, want %+v", i, k, want)
		}
		off += n
	}
	if off != len(p) {
		t.Fatalf("consumed %d of %d bytes", off, len(p))
	}
}

func TestWireEnrollResultRoundTrip(t *testing.T) {
	for _, r := range []EnrollResult{
		{Count: 1, First: wireEnr("TC", 1, 3, "line-a")},
		{Count: 4, Duplicate: true, Conflict: true, First: wireEnr("TC", 2, 9, "")},
	} {
		p, err := AppendWireEnrollResult(nil, r)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		got, err := DecodeWireEnrollResult(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestWireStateRoundTrip(t *testing.T) {
	var fp Fingerprint
	fp[0], fp[31] = 0xA5, 0x5A
	for _, r := range []LookupResult{
		{First: wireEnr("TC", 1, 3, "line-a"), Fingerprint: fp, Count: 1},
		{First: wireEnr("TC", 2, 0, ""), Fingerprint: fp, Count: 12, Conflict: true},
	} {
		p, err := AppendWireState(nil, r)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		got, err := DecodeWireState(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestWireStatsRoundTrip(t *testing.T) {
	s := Stats{
		Keys: 1, Enrollments: 2, Lookups: 3, Conflicts: 4,
		WALAppends: 5, WALFsyncs: 6, WALBytes: 7, WALRecords: 8,
		WALSegments: 9, Compactions: 10, LastCompaction: 11,
		Recovery: 1234 * time.Microsecond,
	}
	got, err := DecodeWireStats(AppendWireStats(nil, s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: got %+v, want %+v", got, s)
	}
	if _, err := DecodeWireStats(make([]byte, 17)); err == nil {
		t.Fatal("DecodeWireStats accepted a short payload")
	}
}
