package registry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file format:
//
//	header  := "FMSNAP1\n" | u64 gen (LE) | u64 keyCount (LE)
//	body    := keyCount framed records (see wal.go), each payload an
//	           enrollment followed by u32 count (LE) | u8 flags
//	trailer := "FMSNPEND"
//
// flags bit 0 is the sticky conflict taint. The trailer plus the exact
// key count make truncation detectable: a snapshot missing either is
// invalid and never loaded. Compaction writes to a .tmp sibling,
// fsyncs, atomically renames into place, then fsyncs the directory, so
// a crash can only ever leave (a) an ignorable .tmp or (b) a complete
// snapshot — never a half-written one under the final name.
const (
	snapMagic   = "FMSNAP1\n"
	snapTrailer = "FMSNPEND"
	flagTaint   = 1
)

// snapEntry is one key's full dedup state, as persisted.
type snapEntry struct {
	first Enrollment
	fp    Fingerprint
	count int
	taint bool
}

// appendSnapEntry encodes one snapshot body payload. The entry's
// first-nonzero fingerprint rides in the enrollment slot when the first
// enrollment itself was fingerprint-less, so restore reproduces the
// in-memory entry exactly.
func appendSnapEntry(dst []byte, ent snapEntry) ([]byte, error) {
	dst, err := appendEnrollment(dst, ent.first)
	if err != nil {
		return nil, err
	}
	dst = append(dst, ent.fp[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ent.count))
	var flags byte
	if ent.taint {
		flags |= flagTaint
	}
	return append(dst, flags), nil
}

// decodeSnapEntry parses one snapshot body payload.
func decodeSnapEntry(p []byte) (snapEntry, error) {
	var ent snapEntry
	e, n, err := decodeEnrollment(p)
	if err != nil {
		return ent, err
	}
	rest := p[n:]
	if len(rest) != 32+4+1 {
		return ent, fmt.Errorf("registry: snapshot entry has %d trailing bytes, want 37", len(rest))
	}
	ent.first = e
	copy(ent.fp[:], rest)
	ent.count = int(binary.LittleEndian.Uint32(rest[32:]))
	if ent.count < 1 {
		return ent, fmt.Errorf("registry: snapshot entry count %d", ent.count)
	}
	ent.taint = rest[36]&flagTaint != 0
	return ent, nil
}

// writeSnapshot persists the state covering WAL generations <= gen,
// using the tmp + fsync + rename + dir-fsync discipline.
func writeSnapshot(dir string, gen uint64, entries []snapEntry) error {
	final := filepath.Join(dir, snapName(gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	head := make([]byte, 0, len(snapMagic)+16)
	head = append(head, snapMagic...)
	head = binary.LittleEndian.AppendUint64(head, gen)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(entries)))
	if _, err := w.Write(head); err != nil {
		f.Close()
		return err
	}
	var scratch, payload []byte
	for _, ent := range entries {
		payload, err = appendSnapEntry(payload[:0], ent)
		if err != nil {
			f.Close()
			return err
		}
		scratch = appendFrame(scratch[:0], payload)
		if _, err := w.Write(scratch); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := w.WriteString(snapTrailer); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// readSnapshot parses a snapshot stream, calling restore for each
// entry. Any deviation — bad magic, bad frame, short body, missing
// trailer, count mismatch — fails the whole load: snapshots are valid
// in full or not at all.
func readSnapshot(r io.Reader, restore func(snapEntry)) (gen uint64, err error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(snapMagic)+16)
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("registry: snapshot header: %w", err)
	}
	if string(head[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("registry: bad snapshot magic")
	}
	gen = binary.LittleEndian.Uint64(head[len(snapMagic):])
	count := binary.LittleEndian.Uint64(head[len(snapMagic)+8:])
	var buf []byte
	// The declared count caps the loop but never a preallocation:
	// entries materialize one bounded record at a time, so a forged
	// count cannot commit memory.
	for i := uint64(0); i < count; i++ {
		payload, rerr := readFrame(br, buf)
		if rerr != nil {
			return 0, fmt.Errorf("registry: snapshot entry %d: unreadable", i)
		}
		buf = payload
		ent, derr := decodeSnapEntry(payload)
		if derr != nil {
			return 0, fmt.Errorf("registry: snapshot entry %d: %w", i, derr)
		}
		restore(ent)
	}
	trailer := make([]byte, len(snapTrailer))
	if _, err := io.ReadFull(br, trailer); err != nil || string(trailer) != snapTrailer {
		return 0, fmt.Errorf("registry: snapshot trailer missing")
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, fmt.Errorf("registry: trailing bytes after snapshot trailer")
	}
	return gen, nil
}

// loadSnapshotFile validates and loads one snapshot file into restore.
func loadSnapshotFile(path string, restore func(snapEntry)) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return readSnapshot(f, restore)
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snap", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016d.log", gen) }

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
