package registry

// Crash-recovery matrix: every file state a kill can leave behind —
// torn final WAL record (killed between append and fsync), leftover
// compaction .tmp (killed mid-snapshot-write), plus the states that
// power loss cannot produce and recovery must therefore refuse —
// corruption inside a sealed generation, a damaged renamed snapshot,
// and forged length headers.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// seedStore opens a store in dir, enrolls n ids, and closes it.
func seedStore(t *testing.T, dir string, n int) {
	t.Helper()
	d, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := d.Enroll(enr("acme", uint64(i), fpByte(byte(i+1)), "seed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRecoverTornTail simulates a kill between the WAL append and its
// fsync: the final record is half-written. Recovery must keep every
// earlier record, truncate the torn tail, and accept new enrollments.
func TestRecoverTornTail(t *testing.T) {
	frame := func(e Enrollment) []byte {
		payload, err := appendEnrollment(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		return appendFrame(nil, payload)
	}
	full := frame(enr("acme", 1000, fpByte(9), "torn"))
	for name, tail := range map[string][]byte{
		"half_header":  full[:3],
		"half_payload": full[:frameHeadBytes+5],
		"bad_crc": func() []byte {
			b := bytes.Clone(full)
			b[frameHeadBytes] ^= 0xFF
			return b
		}(),
		"oversized_length": func() []byte {
			b := bytes.Clone(full)
			binary.LittleEndian.PutUint32(b, maxRecordBytes+1)
			return b
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir, 5)
			wal := filepath.Join(dir, walName(1))
			goodSize := fileSize(t, wal)
			appendBytes(t, wal, tail)

			d, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery failed on torn tail: %v", err)
			}
			defer d.Close()
			if got := d.Stats().Keys; got != 5 {
				t.Fatalf("recovered %d keys, want 5", got)
			}
			if got := fileSize(t, wal); got != goodSize {
				t.Fatalf("torn tail not truncated: size %d, want %d", got, goodSize)
			}
			// The torn record was never acknowledged; its id must be absent.
			if d.SeenBefore(Key{Manufacturer: "acme", DieID: 1000}) {
				t.Fatal("unacknowledged torn record resurrected")
			}
			// Appends continue cleanly from the truncation point.
			if _, err := d.Enroll(enr("acme", 2000, fpByte(1), "post")); err != nil {
				t.Fatal(err)
			}
			d.Close()
			d2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			if got := d2.Stats().Keys; got != 6 {
				t.Fatalf("second recovery: %d keys, want 6", got)
			}
		})
	}
}

// TestRecoverTornSealedGeneration plants torn bytes in a non-final WAL
// generation — a state a crash cannot produce (generations are sealed
// with an fsync before the next one opens). Recovery must refuse.
func TestRecoverTornSealedGeneration(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 3)
	appendBytes(t, filepath.Join(dir, walName(1)), []byte{1, 2, 3})
	// A later generation makes generation 1 sealed.
	f, err := os.Create(filepath.Join(dir, walName(2)))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn sealed generation: err=%v, want ErrCorrupt", err)
	}
}

// TestRecoverChecksummedGarbage plants a frame whose checksum is valid
// but whose payload is not an enrollment — bit rot or tampering, not a
// torn write. Recovery must refuse rather than truncate silently.
func TestRecoverChecksummedGarbage(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 3)
	garbage := []byte{recVersion + 40, 0xAA, 0xBB}
	appendBytes(t, filepath.Join(dir, walName(1)), appendFrame(nil, garbage))
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checksummed garbage: err=%v, want ErrCorrupt", err)
	}
}

// TestRecoverMidCompactionTmp simulates a kill during the snapshot
// write: a .tmp file exists alongside intact WALs. Recovery must ignore
// and remove the .tmp and rebuild from the WALs alone.
func TestRecoverMidCompactionTmp(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 7)
	tmp := filepath.Join(dir, snapName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Stats().Keys; got != 7 {
		t.Fatalf("recovered %d keys, want 7", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover .tmp not removed: %v", err)
	}
}

// compactedStore builds a store whose state lives in a snapshot.
func compactedStore(t *testing.T, dir string, n int) {
	t.Helper()
	d, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := d.Enroll(enr("acme", uint64(i), fpByte(byte(i+1)), "seed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverCorruptSnapshot damages a renamed snapshot in several ways.
// A renamed snapshot is complete by construction, so any damage means
// the disk lied — recovery must refuse, never load a partial state.
func TestRecoverCorruptSnapshot(t *testing.T) {
	for name, mutate := range map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			if err := os.Truncate(path, fileSize(t, path)-10); err != nil {
				t.Fatal(err)
			}
		},
		"bad_magic": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0xFF
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"flipped_body_bit": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(snapMagic)+16+frameHeadBytes+2] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"trailing_bytes": func(t *testing.T, path string) {
			appendBytes(t, path, []byte("x"))
		},
		"overstated_count": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint64(b[len(snapMagic)+8:], 1<<40)
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			compactedStore(t, dir, 4)
			mutate(t, filepath.Join(dir, snapName(1)))
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt snapshot: err=%v, want ErrCorrupt", err)
			}
		})
	}
}

// TestForgedLengthHeaderAllocation proves a forged frame length cannot
// commit a large allocation: readFrame rejects anything over the record
// cap before allocating, even when the header claims gigabytes.
func TestForgedLengthHeaderAllocation(t *testing.T) {
	var head [frameHeadBytes]byte
	binary.LittleEndian.PutUint32(head[:4], 1<<31)
	r := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(10, func() {
		r.Reset(head[:])
		if _, err := readFrame(r, nil); err != errTorn {
			t.Fatalf("forged length: %v", err)
		}
	})
	// The 8-byte header buffer may escape through the io.Reader
	// interface call; what must never happen is a payload-sized
	// allocation driven by the forged length.
	if allocs > 1 {
		t.Fatalf("forged length header caused %.0f allocs", allocs)
	}
}

// TestReplayLogOffsets pins the byte-offset accounting replayLog feeds
// the truncation path.
func TestReplayLogOffsets(t *testing.T) {
	var log []byte
	var want int64
	for i := 0; i < 3; i++ {
		payload, err := appendEnrollment(nil, enr("acme", uint64(i), Fingerprint{}, "s"))
		if err != nil {
			t.Fatal(err)
		}
		frame := appendFrame(nil, payload)
		log = append(log, frame...)
		want += int64(len(frame))
	}
	log = append(log, 0xDE, 0xAD) // torn tail
	var n int
	good, torn, err := replayLog(bytes.NewReader(log), func(Enrollment) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if !torn || n != 3 || good != want {
		t.Fatalf("torn=%v n=%d good=%d want=%d", torn, n, good, want)
	}
	// Clean log: no tear, full offset.
	good, torn, err = replayLog(bytes.NewReader(log[:want]), func(Enrollment) {})
	if err != nil || torn || good != want {
		t.Fatalf("clean replay: good=%d torn=%v err=%v", good, torn, err)
	}
}

// TestWALRoundTrip pins the record encoding against itself for edge
// shapes: empty fields, max-length fields, extreme ids and timestamps.
func TestWALRoundTrip(t *testing.T) {
	long := make([]byte, 255)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	cases := []Enrollment{
		{},
		enr("", 0, Fingerprint{}, ""),
		enr(string(long), 1<<63, fpByte(0xFF), string(long)),
		{Key: Key{Manufacturer: "m", DieID: ^uint64(0)}, Source: "s", UnixMicro: -1},
	}
	for i, e := range cases {
		payload, err := appendEnrollment(nil, e)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, n, err := decodeEnrollment(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(payload) || got != e {
			t.Fatalf("case %d: round trip %+v -> %+v (n=%d/%d)", i, e, got, n, len(payload))
		}
	}
}

// TestFrameCRCIsCastagnoli pins the checksum polynomial: a different
// table would silently orphan every existing store.
func TestFrameCRCIsCastagnoli(t *testing.T) {
	payload := []byte("flashmark")
	frame := appendFrame(nil, payload)
	got := binary.LittleEndian.Uint32(frame[4:])
	want := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if got != want {
		t.Fatalf("frame crc %08x, want castagnoli %08x", got, want)
	}
	r, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil || !bytes.Equal(r, payload) {
		t.Fatalf("readFrame: %q %v", r, err)
	}
	if _, err := readFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty reader: %v, want io.EOF", err)
	}
}
