package registry_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/registry"
)

// These tests live in an external test package so they can stand up a
// real fmregistryd-style node (internal/cluster serves the wire
// protocol) and drive the Remote client against it over loopback —
// the registry-side half of what cluster's own tests exercise from
// the node side.

// startWireNode serves a fresh durable store on a loopback port.
func startWireNode(t *testing.T, cfg cluster.NodeConfig) (string, *registry.Durable) {
	t.Helper()
	store, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	node, err := cluster.NewNode(cfg)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	go node.Serve(ln)
	t.Cleanup(func() {
		node.Close()
		store.Close()
	})
	return ln.Addr().String(), store
}

func remoteEnr(die uint64, fpb byte) registry.Enrollment {
	var fp registry.Fingerprint
	fp[0] = fpb
	return registry.Enrollment{
		Key:         registry.Key{Manufacturer: "TC", DieID: die},
		Fingerprint: fp,
		Source:      "remote-test",
		UnixMicro:   1722470400000000,
	}
}

// TestRemoteRoundTrips drives every read and write verb of the wire
// client against a live solo primary.
func TestRemoteRoundTrips(t *testing.T) {
	addr, _ := startWireNode(t, cluster.NodeConfig{Role: cluster.RolePrimary})
	r := registry.NewRemote(addr, registry.RemoteOptions{Timeout: 2 * time.Second})
	defer r.Close()

	if got := r.Addr(); got != addr {
		t.Fatalf("Addr = %q, want %q", got, addr)
	}
	role, err := r.Ping()
	if err != nil || role != registry.RolePrimaryByte {
		t.Fatalf("ping: role %c err %v", role, err)
	}

	res, err := r.Enroll(remoteEnr(7001, 0xA1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Duplicate || res.Conflict {
		t.Fatalf("first enrollment: %+v", res)
	}
	// A second sighting under a different fingerprint: duplicate and
	// sticky conflict.
	res, err = r.Enroll(remoteEnr(7001, 0xB2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || !res.Duplicate || !res.Conflict {
		t.Fatalf("conflicting enrollment: %+v", res)
	}

	key := registry.Key{Manufacturer: "TC", DieID: 7001}
	lr, found, err := r.LookupErr(key)
	if err != nil || !found {
		t.Fatalf("LookupErr: found %v err %v", found, err)
	}
	if lr.Count != 2 || !lr.Conflict || lr.Fingerprint[0] != 0xA1 {
		t.Fatalf("lookup state: %+v", lr)
	}
	if _, found, err := r.LookupErr(registry.Key{Manufacturer: "TC", DieID: 9999}); err != nil || found {
		t.Fatalf("LookupErr miss: found %v err %v", found, err)
	}
	if lr, found := r.Lookup(key); !found || lr.Count != 2 {
		t.Fatalf("Lookup: found %v state %+v", found, lr)
	}
	if !r.SeenBefore(key) {
		t.Fatal("SeenBefore(enrolled) = false")
	}
	if r.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 9999}) {
		t.Fatal("SeenBefore(unknown) = true")
	}

	s, err := r.StatsErr()
	if err != nil {
		t.Fatal(err)
	}
	if s.Keys != 1 || s.Enrollments != 2 || s.Conflicts != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s := r.Stats(); s.Keys != 1 {
		t.Fatalf("Stats: %+v", s)
	}

	keys := []registry.Key{key, {Manufacturer: "TC", DieID: 9999}, key}
	results, hits, err := r.LookupBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !hits[0] || hits[1] || !hits[2] {
		t.Fatalf("batch hits: %v", hits)
	}
	if results[0].Count != 2 || results[2].Count != 2 {
		t.Fatalf("batch results: %+v", results)
	}

	if err := r.Promote(); err != nil { // idempotent on a primary
		t.Fatalf("promote: %v", err)
	}
	if n := r.Errors(); n != 0 {
		t.Fatalf("Errors = %d after an error-free run", n)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestRemoteFailOpen points the client at a dead port: reads fail open
// (not found / zero) while counting the degradations, and the
// error-bearing variants surface the transport failure.
func TestRemoteFailOpen(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	r := registry.NewRemote(dead, registry.RemoteOptions{Timeout: 200 * time.Millisecond})
	defer r.Close()
	key := registry.Key{Manufacturer: "TC", DieID: 1}
	if _, found := r.Lookup(key); found {
		t.Fatal("Lookup against a dead node reported found")
	}
	if r.SeenBefore(key) {
		t.Fatal("SeenBefore against a dead node reported true")
	}
	if s := r.Stats(); s != (registry.Stats{}) {
		t.Fatalf("Stats against a dead node: %+v", s)
	}
	if got := r.Errors(); got != 3 {
		t.Fatalf("Errors = %d, want 3", got)
	}
	if _, _, err := r.LookupErr(key); err == nil {
		t.Fatal("LookupErr against a dead node returned no error")
	}
	if _, err := r.Enroll(remoteEnr(1, 1)); err == nil {
		t.Fatal("Enroll against a dead node returned no error")
	}
}

// TestRemoteOpError checks an application-level refusal travels back
// as *OpError, distinct from transport failures: enrolling on a fenced
// primary (required follower link down) is refused by the node.
func TestRemoteOpError(t *testing.T) {
	addr, _ := startWireNode(t, cluster.NodeConfig{
		Role:            cluster.RolePrimary,
		FollowerAddr:    "127.0.0.1:1", // never up
		RequireFollower: true,
		ReconnectEvery:  10 * time.Millisecond,
	})
	r := registry.NewRemote(addr, registry.RemoteOptions{Timeout: 2 * time.Second})
	defer r.Close()
	_, err := r.Enroll(remoteEnr(42, 0x42))
	var oe *registry.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error = %v (%T), want *registry.OpError", err, err)
	}
	if !strings.Contains(oe.Error(), "registry: remote:") {
		t.Fatalf("OpError text: %q", oe.Error())
	}
	// The refusal was processed, not degraded transport: reads count no
	// fail-opens against this node.
	if r.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 42}) {
		t.Fatal("fenced enrollment landed anyway")
	}
	if got := r.Errors(); got != 0 {
		t.Fatalf("Errors = %d after an application-level refusal", got)
	}
}

// TestRangeAndImportState pins snapshot shipping's two halves on the
// durable store directly: Range enumerates every enrolled key (with
// early stop), and ImportState atomically replaces a second store's
// contents with the shipped state.
func TestRangeAndImportState(t *testing.T) {
	src, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for die := uint64(1); die <= 3; die++ {
		if _, err := src.Enroll(remoteEnr(die, byte(die))); err != nil {
			t.Fatal(err)
		}
	}

	var state []registry.LookupResult
	src.Range(func(k registry.Key, lr registry.LookupResult) bool {
		state = append(state, lr)
		return true
	})
	if len(state) != 3 {
		t.Fatalf("Range yielded %d entries, want 3", len(state))
	}
	stopped := 0
	src.Range(func(k registry.Key, lr registry.LookupResult) bool {
		stopped++
		return false
	})
	if stopped != 1 {
		t.Fatalf("Range ignored the early stop (saw %d entries)", stopped)
	}

	dst, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.Enroll(remoteEnr(99, 0x99)); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if s := dst.Stats(); s.Keys != 3 {
		t.Fatalf("imported store has %d keys, want 3", s.Keys)
	}
	if dst.SeenBefore(registry.Key{Manufacturer: "TC", DieID: 99}) {
		t.Fatal("pre-import key survived ImportState")
	}
	for die := uint64(1); die <= 3; die++ {
		lr, found := dst.Lookup(registry.Key{Manufacturer: "TC", DieID: die})
		if !found || lr.Fingerprint[0] != byte(die) {
			t.Fatalf("die %d after import: found %v state %+v", die, found, lr)
		}
	}
}
