package registry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/flashmark/flashmark/internal/wallclock"
)

// Remote is a client-side Store backend: every call becomes one wire
// round trip to an fmregistryd node. It pools idle connections, applies
// a per-operation deadline, and keeps the Store contract's error
// shapes:
//
//   - Enroll returns the node's error verbatim — enrollment is the
//     durability-bearing operation and must never fail silently.
//   - Lookup, SeenBefore and Stats fail open (not found / zero) when
//     the node is unreachable, because the Store interface has no error
//     channel on the read side; Errors() counts the degradations and
//     the *Err variants expose the cause for callers (the cluster
//     router) that can do better than fail-open.
//
// Remote is safe for concurrent use.
type Remote struct {
	addr string
	opts RemoteOptions
	idle chan *remoteConn

	errs   atomic.Int64
	closed atomic.Bool
}

// RemoteOptions tunes a Remote. The zero value selects defaults.
type RemoteOptions struct {
	// Timeout bounds one round trip, dial included (0 selects 5s).
	Timeout time.Duration
	// Pool caps idle connections kept between calls (0 selects 2).
	Pool int
	// Now supplies wall time for deadlines (nil selects wallclock.Now).
	Now func() time.Time
	// Dial overrides the transport — the fault-injection seam tests use
	// to wrap connections (nil selects net.Dial "tcp").
	Dial func(addr string) (net.Conn, error)
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Pool == 0 {
		o.Pool = 2
	}
	if o.Now == nil {
		o.Now = wallclock.Now
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// OpError is an application-level refusal from the node (fenced
// primary, enrollment on a follower, replication rejection) — the node
// processed the request and said no, as opposed to a transport failure
// where the answer is unknown. The cluster router fails over only on
// transport errors; an OpError travels back to the caller.
type OpError struct{ Msg string }

func (e *OpError) Error() string { return "registry: remote: " + e.Msg }

// NewRemote returns a client for the node at addr. No connection is
// made until the first call.
func NewRemote(addr string, opts RemoteOptions) *Remote {
	opts = opts.withDefaults()
	return &Remote{addr: addr, opts: opts, idle: make(chan *remoteConn, opts.Pool)}
}

var _ Store = (*Remote)(nil)

// Addr returns the node address this client targets.
func (r *Remote) Addr() string { return r.addr }

// Errors returns how many read-side calls have failed open so far.
func (r *Remote) Errors() int64 { return r.errs.Load() }

// Close drops every pooled connection. In-flight calls finish; later
// calls dial fresh and fail if the node is gone.
func (r *Remote) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	for {
		select {
		case rc := <-r.idle:
			rc.Close()
		default:
			return nil
		}
	}
}

func (r *Remote) get() (*remoteConn, bool, error) {
	select {
	case rc := <-r.idle:
		return rc, true, nil
	default:
	}
	c, err := r.opts.Dial(r.addr)
	if err != nil {
		return nil, false, err
	}
	return newRemoteConn(c), false, nil
}

func (r *Remote) put(rc *remoteConn) {
	if r.closed.Load() {
		rc.Close()
		return
	}
	select {
	case r.idle <- rc:
	default:
		rc.Close()
	}
}

// do runs one round trip. decode runs while the connection is held (the
// response payload aliases the connection's read buffer). A transport
// failure on a *pooled* connection is retried exactly once on a fresh
// dial when retry is set: idle connections go stale across node
// restarts, and read-only operations are safe to reissue. Writes
// (enroll, promote) never auto-retry — their retry policy belongs to
// the cluster router, which knows about failover.
func (r *Remote) do(op Op, req []byte, retry bool, decode func(respOp Op, payload []byte) error) error {
	rc, pooled, err := r.get()
	if err != nil {
		return err
	}
	err = rc.roundtrip(r.opts.Now().Add(r.opts.Timeout), op, req, decode)
	if err == nil {
		r.put(rc)
		return nil
	}
	rc.Close()
	if _, refused := err.(*OpError); refused {
		return err // the node answered; nothing to retry
	}
	if !retry || !pooled {
		return err
	}
	c, derr := r.opts.Dial(r.addr)
	if derr != nil {
		return derr
	}
	rc = newRemoteConn(c)
	err = rc.roundtrip(r.opts.Now().Add(r.opts.Timeout), op, req, decode)
	if err != nil {
		rc.Close()
		return err
	}
	r.put(rc)
	return nil
}

// Ping asks the node for its role byte (RolePrimaryByte,
// RoleDegradedByte or RoleFollowerByte).
func (r *Remote) Ping() (byte, error) {
	var role byte
	err := r.do(OpPing, nil, true, func(op Op, p []byte) error {
		if op != OpOK || len(p) != 1 {
			return fmt.Errorf("registry: remote: bad ping response")
		}
		role = p[0]
		return nil
	})
	return role, err
}

// Enroll records one sighting on the node, returning after the node —
// and, through replication, its follower — has it durable.
func (r *Remote) Enroll(e Enrollment) (EnrollResult, error) {
	req, err := AppendWireEnrollment(nil, e)
	if err != nil {
		return EnrollResult{}, err
	}
	var res EnrollResult
	err = r.do(OpEnroll, req, false, func(op Op, p []byte) error {
		if op != OpOK {
			return respErr(op, p)
		}
		var derr error
		res, derr = DecodeWireEnrollResult(p)
		return derr
	})
	return res, err
}

// LookupErr is Lookup with the transport error exposed.
func (r *Remote) LookupErr(k Key) (LookupResult, bool, error) {
	req, err := AppendWireKey(nil, k)
	if err != nil {
		return LookupResult{}, false, err
	}
	var (
		res   LookupResult
		found bool
	)
	err = r.do(OpLookup, req, true, func(op Op, p []byte) error {
		if op != OpOK {
			return respErr(op, p)
		}
		if len(p) < 1 {
			return fmt.Errorf("registry: remote: empty lookup response")
		}
		if p[0] == 0 {
			return nil
		}
		var derr error
		res, derr = DecodeWireState(p[1:])
		found = derr == nil
		return derr
	})
	return res, found, err
}

// Lookup returns the node's view of a key, failing open to not-found
// when the node is unreachable.
func (r *Remote) Lookup(k Key) (LookupResult, bool) {
	res, found, err := r.LookupErr(k)
	if err != nil {
		r.errs.Add(1)
		return LookupResult{}, false
	}
	return res, found
}

// SeenBefore reports whether the key is on file, failing open to false
// when the node is unreachable.
func (r *Remote) SeenBefore(k Key) bool {
	req, err := AppendWireKey(nil, k)
	if err != nil {
		return false
	}
	var seen bool
	err = r.do(OpSeen, req, true, func(op Op, p []byte) error {
		if op != OpOK || len(p) != 1 {
			return respErr(op, p)
		}
		seen = p[0] != 0
		return nil
	})
	if err != nil {
		r.errs.Add(1)
		return false
	}
	return seen
}

// StatsErr is Stats with the transport error exposed.
func (r *Remote) StatsErr() (Stats, error) {
	var s Stats
	err := r.do(OpStats, nil, true, func(op Op, p []byte) error {
		if op != OpOK {
			return respErr(op, p)
		}
		var derr error
		s, derr = DecodeWireStats(p)
		return derr
	})
	return s, err
}

// Stats returns the node's counters, failing open to zero when the
// node is unreachable.
func (r *Remote) Stats() Stats {
	s, err := r.StatsErr()
	if err != nil {
		r.errs.Add(1)
		return Stats{}
	}
	return s
}

// LookupBatch resolves many keys in one round trip. found[i] reports
// whether keys[i] is on file; results[i] is only meaningful when it is.
func (r *Remote) LookupBatch(keys []Key) (results []LookupResult, found []bool, err error) {
	req := binary.LittleEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		if req, err = AppendWireKey(req, k); err != nil {
			return nil, nil, err
		}
	}
	results = make([]LookupResult, len(keys))
	found = make([]bool, len(keys))
	err = r.do(OpLookupBatch, req, true, func(op Op, p []byte) error {
		if op != OpOK {
			return respErr(op, p)
		}
		if len(p) < 4 {
			return fmt.Errorf("registry: remote: short batch response")
		}
		n := int(binary.LittleEndian.Uint32(p))
		if n != len(keys) {
			return fmt.Errorf("registry: remote: batch response has %d entries, want %d", n, len(keys))
		}
		off := 4
		for i := 0; i < n; i++ {
			if off >= len(p) {
				return fmt.Errorf("registry: remote: truncated batch response")
			}
			hit := p[off] != 0
			off++
			if !hit {
				continue
			}
			if off+4 > len(p) {
				return fmt.Errorf("registry: remote: truncated batch response")
			}
			entLen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if off+entLen > len(p) {
				return fmt.Errorf("registry: remote: truncated batch response")
			}
			st, derr := DecodeWireState(p[off : off+entLen])
			if derr != nil {
				return derr
			}
			off += entLen
			results[i], found[i] = st, true
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results, found, nil
}

// Promote tells a follower to start serving as primary. Idempotent on
// a node that already promoted itself.
func (r *Remote) Promote() error {
	return r.do(OpPromote, nil, false, func(op Op, p []byte) error {
		if op != OpOK {
			return respErr(op, p)
		}
		return nil
	})
}

func respErr(op Op, p []byte) error {
	if op == OpErr {
		return &OpError{Msg: string(p)}
	}
	return fmt.Errorf("registry: remote: unexpected response op %#x", byte(op))
}

// remoteConn is one pooled connection with its buffered reader/writer
// and a reusable read buffer.
type remoteConn struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
}

func newRemoteConn(c net.Conn) *remoteConn {
	return &remoteConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

func (rc *remoteConn) Close() { rc.c.Close() }

// roundtrip sends one request and decodes one response under deadline.
func (rc *remoteConn) roundtrip(deadline time.Time, op Op, req []byte, decode func(Op, []byte) error) error {
	if err := rc.c.SetDeadline(deadline); err != nil {
		return err
	}
	if err := WriteMessage(rc.bw, op, req); err != nil {
		return err
	}
	if err := rc.bw.Flush(); err != nil {
		return err
	}
	respOp, payload, err := ReadMessage(rc.br, rc.buf)
	if err != nil {
		return err
	}
	rc.buf = payload[:0]
	return decode(respOp, payload)
}
