// Package registry is Flashmark's fleet-scale provenance layer: a
// crash-safe, concurrent, sharded enrollment store for verified die
// identities. It closes the gap THREATMODEL.md attack #7 leaves open
// when the batch-local Auditor is the only bookkeeping: a counterfeiter
// who splits replay-imprinted clones across shipments or verification
// sessions never collides inside one batch, but every clone must carry
// the victim's signed die id, so a durable ledger spanning batches and
// process lifetimes catches the collision the moment the second physical
// chip with that identity appears.
//
// Two backends implement the same narrow Store interface and share one
// dedup implementation:
//
//   - Memory: a lock-striped in-memory index. Scoped to a batch it *is*
//     the old Auditor semantics; the counterfeit package builds its
//     batch audit on it.
//   - Durable (Open): Memory as the runtime index, fronted by an
//     append-only WAL with checksummed, length-prefixed records and
//     group-commit fsync batching, plus periodic snapshot compaction
//     with atomic rename. Recovery loads the newest valid snapshot and
//     replays every WAL generation after it; torn WAL tails are
//     truncated cleanly, and no acknowledged enrollment is ever lost.
//
// Identities are keyed by (manufacturer, die id) — the pair the signed
// watermark payload binds. Each enrollment may carry a physical
// fingerprint: a digest of the die's physical identity (in this
// simulation, part name + fabrication seed, the quantities that
// generate all of a die's analog microstructure; on real hardware, a
// measured analog signature the digital interface cannot forge). Two
// enrollments of the same key with *different* non-zero fingerprints
// are a conflict: two distinct physical chips claiming one identity,
// the unambiguous signature of a replay-imprinted clone (or its
// victim). Equal fingerprints are the same physical item re-screened —
// a retry, not an attack.
package registry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"time"
)

// Key identifies one die: the (manufacturer, die id) pair bound by the
// watermark signature.
type Key struct {
	Manufacturer string
	DieID        uint64
}

// Fingerprint is a digest of a die's physical identity. The zero value
// means "unknown" and never conflicts with anything: a verifier that
// cannot measure the physical signature can still count appearances.
type Fingerprint [32]byte

// IsZero reports whether the fingerprint is the unknown sentinel.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// DeviceFingerprint derives the simulation's physical fingerprint from
// the two quantities that generate a simulated die's entire analog
// microstructure: the part name and the fabrication seed. It stays
// stable across wear (verification stresses cells; the identity does
// not move), which a raw content hash of the chip file would not.
func DeviceFingerprint(part string, seed uint64) Fingerprint {
	h := sha256.New()
	h.Write([]byte("flashmark-fingerprint/v1\x00"))
	h.Write([]byte(part))
	h.Write([]byte{0})
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	h.Write(s[:])
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Enrollment is one recorded sighting of a die identity.
type Enrollment struct {
	Key         Key
	Fingerprint Fingerprint
	// Source labels where the sighting came from (a batch id, a station,
	// an enrolling manufacturer line). At most 255 bytes.
	Source string
	// UnixMicro is the enrollment wall time in microseconds (0 = unset;
	// the durable backend does not fill it in, callers stamp it).
	UnixMicro int64
}

// EnrollResult reports what the store knew about the key at the moment
// the enrollment was applied.
type EnrollResult struct {
	// Count is how many enrollments of this key exist, including this one.
	Count int
	// Duplicate is Count > 1: the identity was already on file.
	Duplicate bool
	// Conflict is true once the key has been enrolled under two different
	// non-zero fingerprints — two physical chips claiming one identity.
	// The flag is sticky: it retroactively taints every holder of the id,
	// including the first-seen (possibly the genuine victim).
	Conflict bool
	// First is the earliest enrollment of the key (this one, if new).
	First Enrollment
}

// LookupResult is the read-side view of one enrolled key.
type LookupResult struct {
	// First is the earliest enrollment of the key.
	First Enrollment
	// Fingerprint is the first non-zero fingerprint enrolled for the key
	// (zero if every sighting was fingerprint-less).
	Fingerprint Fingerprint
	// Count is how many enrollments of the key exist.
	Count int
	// Conflict reports the sticky two-fingerprints taint.
	Conflict bool
}

// Stats is a point-in-time snapshot of a store's counters. Memory
// backends leave the WAL/compaction fields zero.
type Stats struct {
	// Keys is the number of distinct identities on file.
	Keys int64
	// Enrollments counts Enroll calls applied (including duplicates).
	Enrollments int64
	// Lookups counts Lookup/SeenBefore calls served.
	Lookups int64
	// Conflicts counts keys that have entered the conflicted state.
	Conflicts int64

	// WALAppends counts records appended to the write-ahead log.
	WALAppends int64
	// WALFsyncs counts fsync calls on the log; with group commit this
	// grows slower than WALAppends under concurrent enrollment.
	WALFsyncs int64
	// WALBytes counts bytes appended to the log.
	WALBytes int64
	// WALRecords is the record count of the *current* log generation
	// (reset by compaction).
	WALRecords int64
	// WALSegments is the number of WAL generation files currently on
	// disk (the live generation plus any a failed compaction left
	// behind) — a growing value with Compactions flat is the operator
	// signal that compaction is failing while enrollment stays durable.
	WALSegments int64
	// Compactions counts completed snapshot compactions.
	Compactions int64
	// LastCompaction is the generation of the newest on-disk snapshot
	// (0 when the store has never compacted).
	LastCompaction uint64
	// Recovery is how long Open spent rebuilding state from disk.
	Recovery time.Duration
}

// Store is the narrow provenance interface the rest of the system
// programs against: the counterfeit batch audit, the fmverifyd fleet
// registry, and tests all use the same four methods.
type Store interface {
	// Enroll records one sighting and reports what was known at that
	// moment. Durable implementations return only after the record is
	// safely on disk (the acknowledged-enrollment guarantee).
	Enroll(e Enrollment) (EnrollResult, error)
	// Lookup returns the read-side view of a key.
	Lookup(k Key) (LookupResult, bool)
	// SeenBefore reports whether the key has any enrollment on file.
	SeenBefore(k Key) bool
	// Stats returns the store's current counters.
	Stats() Stats
}
