package registry

import (
	"fmt"
	"sync"
	"testing"
)

func enr(mfg string, die uint64, fp Fingerprint, src string) Enrollment {
	return Enrollment{Key: Key{Manufacturer: mfg, DieID: die}, Fingerprint: fp, Source: src}
}

func fpByte(b byte) Fingerprint {
	var f Fingerprint
	f[0] = b
	return f
}

func TestFingerprintZero(t *testing.T) {
	var z Fingerprint
	if !z.IsZero() {
		t.Fatal("zero fingerprint should report IsZero")
	}
	if fpByte(1).IsZero() {
		t.Fatal("non-zero fingerprint should not report IsZero")
	}
	if len(z.String()) != 64 {
		t.Fatalf("hex rendering length %d, want 64", len(z.String()))
	}
}

func TestDeviceFingerprintStable(t *testing.T) {
	a := DeviceFingerprint("MX25L6406E", 42)
	if a != DeviceFingerprint("MX25L6406E", 42) {
		t.Fatal("fingerprint must be deterministic")
	}
	if a == DeviceFingerprint("MX25L6406E", 43) {
		t.Fatal("different seeds must fingerprint differently")
	}
	if a == DeviceFingerprint("W25Q64", 42) {
		t.Fatal("different parts must fingerprint differently")
	}
	if a.IsZero() {
		t.Fatal("derived fingerprint must not be the unknown sentinel")
	}
}

func TestMemoryEnrollNewAndDuplicate(t *testing.T) {
	m := NewMemory(0)
	res, err := m.Enroll(enr("acme", 7, fpByte(1), "line-a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Duplicate || res.Conflict {
		t.Fatalf("first enrollment: %+v", res)
	}
	if res.First.Source != "line-a" {
		t.Fatalf("first source %q", res.First.Source)
	}
	res, _ = m.Enroll(enr("acme", 7, fpByte(1), "line-b"))
	if res.Count != 2 || !res.Duplicate || res.Conflict {
		t.Fatalf("same-fingerprint repeat: %+v", res)
	}
	if res.First.Source != "line-a" {
		t.Fatalf("first enrollment must be preserved, got %q", res.First.Source)
	}
	// Same die id at a different manufacturer is a distinct identity.
	res, _ = m.Enroll(enr("other", 7, fpByte(9), "line-c"))
	if res.Duplicate {
		t.Fatalf("cross-manufacturer id must not collide: %+v", res)
	}
}

func TestMemoryConflictSticky(t *testing.T) {
	m := NewMemory(4)
	m.Enroll(enr("acme", 7, fpByte(1), "victim"))
	res, _ := m.Enroll(enr("acme", 7, fpByte(2), "clone"))
	if !res.Conflict {
		t.Fatal("second fingerprint on one identity must conflict")
	}
	// Sticky: the original holder is now tainted too.
	lr, ok := m.Lookup(Key{Manufacturer: "acme", DieID: 7})
	if !ok || !lr.Conflict {
		t.Fatalf("lookup after conflict: ok=%v %+v", ok, lr)
	}
	if lr.Fingerprint != fpByte(1) {
		t.Fatal("lookup fingerprint must stay the first non-zero one")
	}
	// Re-seeing either fingerprint keeps the taint.
	res, _ = m.Enroll(enr("acme", 7, fpByte(1), "victim-again"))
	if !res.Conflict {
		t.Fatal("taint must be sticky")
	}
	if got := m.Stats().Conflicts; got != 1 {
		t.Fatalf("conflicts counter %d, want 1 (per key, not per sighting)", got)
	}
}

func TestMemoryZeroFingerprintNeverConflicts(t *testing.T) {
	m := NewMemory(0)
	m.Enroll(enr("acme", 1, Fingerprint{}, "blind-station"))
	res, _ := m.Enroll(enr("acme", 1, Fingerprint{}, "blind-station"))
	if res.Conflict {
		t.Fatal("two unknown fingerprints must not conflict")
	}
	// Late adoption: the first measurable fingerprint becomes the key's.
	res, _ = m.Enroll(enr("acme", 1, fpByte(5), "lab"))
	if res.Conflict {
		t.Fatal("first non-zero fingerprint must be adopted, not conflicted")
	}
	lr, _ := m.Lookup(Key{Manufacturer: "acme", DieID: 1})
	if lr.Fingerprint != fpByte(5) {
		t.Fatal("late fingerprint not adopted")
	}
	// A *different* one after adoption does conflict.
	res, _ = m.Enroll(enr("acme", 1, fpByte(6), "lab"))
	if !res.Conflict {
		t.Fatal("differing fingerprint after adoption must conflict")
	}
	// And an unknown sighting of a conflicted key stays conflicted.
	res, _ = m.Enroll(enr("acme", 1, Fingerprint{}, "blind-station"))
	if !res.Conflict {
		t.Fatal("conflict must survive fingerprint-less sightings")
	}
}

func TestMemoryLookupAndSeenBefore(t *testing.T) {
	m := NewMemory(0)
	k := Key{Manufacturer: "acme", DieID: 99}
	if m.SeenBefore(k) {
		t.Fatal("empty store claims to have seen a key")
	}
	if _, ok := m.Lookup(k); ok {
		t.Fatal("empty store returned a lookup hit")
	}
	m.Enroll(enr("acme", 99, fpByte(3), "s"))
	if !m.SeenBefore(k) {
		t.Fatal("enrolled key not seen")
	}
	lr, ok := m.Lookup(k)
	if !ok || lr.Count != 1 || lr.Fingerprint != fpByte(3) {
		t.Fatalf("lookup: ok=%v %+v", ok, lr)
	}
	st := m.Stats()
	if st.Keys != 1 || st.Enrollments != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Lookups == 0 {
		t.Fatal("lookup counter did not move")
	}
	if st.WALAppends != 0 || st.Compactions != 0 {
		t.Fatalf("memory backend must leave WAL fields zero: %+v", st)
	}
}

func TestMemoryLookupAllocFree(t *testing.T) {
	m := NewMemory(0)
	for i := uint64(0); i < 1000; i++ {
		m.Enroll(enr("acme", i, fpByte(byte(i)), "s"))
	}
	k := Key{Manufacturer: "acme", DieID: 500}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := m.Lookup(k); !ok {
			t.Fatal("lookup miss")
		}
		if !m.SeenBefore(k) {
			t.Fatal("seen-before miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("hot read path allocates %.1f/op, want 0", allocs)
	}
}

func TestMemoryDuplicatesSorted(t *testing.T) {
	m := NewMemory(8)
	for _, e := range []Enrollment{
		enr("zeta", 5, Fingerprint{}, ""),
		enr("zeta", 5, Fingerprint{}, ""),
		enr("acme", 9, Fingerprint{}, ""),
		enr("acme", 9, Fingerprint{}, ""),
		enr("acme", 2, Fingerprint{}, ""),
		enr("acme", 2, Fingerprint{}, ""),
		enr("acme", 1, Fingerprint{}, ""), // singleton, must not appear
	} {
		m.Enroll(e)
	}
	got := m.Duplicates()
	want := []Key{{"acme", 2}, {"acme", 9}, {"zeta", 5}}
	if len(got) != len(want) {
		t.Fatalf("duplicates %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("duplicates[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMemoryRangeEarlyStop(t *testing.T) {
	m := NewMemory(4)
	for i := uint64(0); i < 50; i++ {
		m.Enroll(enr("acme", i, Fingerprint{}, ""))
	}
	if m.Len() != 50 {
		t.Fatalf("len %d", m.Len())
	}
	seen := 0
	m.Range(func(Key, LookupResult) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("range visited %d after early stop, want 10", seen)
	}
}

func TestNewMemoryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {100, 128},
	} {
		m := NewMemory(tc.in)
		if len(m.shards) != tc.want {
			t.Errorf("NewMemory(%d) has %d shards, want %d", tc.in, len(m.shards), tc.want)
		}
	}
}

func TestMemoryConcurrentEnroll(t *testing.T) {
	m := NewMemory(0)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every worker enrolls the same id space with its own
				// fingerprint: each key ends up conflicted exactly once.
				m.Enroll(enr("acme", uint64(i), fpByte(byte(w+1)), fmt.Sprintf("w%d", w)))
				m.Lookup(Key{Manufacturer: "acme", DieID: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Keys != perWorker {
		t.Fatalf("keys %d, want %d", st.Keys, perWorker)
	}
	if st.Enrollments != workers*perWorker {
		t.Fatalf("enrollments %d, want %d", st.Enrollments, workers*perWorker)
	}
	if st.Conflicts != perWorker {
		t.Fatalf("conflicts %d, want %d (each key tainted once)", st.Conflicts, perWorker)
	}
	for i := 0; i < perWorker; i++ {
		lr, ok := m.Lookup(Key{Manufacturer: "acme", DieID: uint64(i)})
		if !ok || lr.Count != workers || !lr.Conflict {
			t.Fatalf("key %d: ok=%v %+v", i, ok, lr)
		}
	}
}

var _ Store = (*Memory)(nil)
var _ Store = (*Durable)(nil)
