package registry

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Durable {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDurableEnrollAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, Options{})
	res, err := d.Enroll(enr("acme", 7, fpByte(1), "line-a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Duplicate {
		t.Fatalf("first enrollment: %+v", res)
	}
	if _, err := d.Enroll(enr("acme", 8, fpByte(2), "line-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Enroll(enr("acme", 7, fpByte(3), "clone")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the acknowledged-enrollment guarantee — everything above
	// must be back, including the sticky conflict on id 7.
	d2 := openTest(t, dir, Options{})
	lr, ok := d2.Lookup(Key{Manufacturer: "acme", DieID: 7})
	if !ok || lr.Count != 2 || !lr.Conflict || lr.Fingerprint != fpByte(1) {
		t.Fatalf("recovered id 7: ok=%v %+v", ok, lr)
	}
	if lr.First.Source != "line-a" {
		t.Fatalf("recovered first source %q", lr.First.Source)
	}
	if !d2.SeenBefore(Key{Manufacturer: "acme", DieID: 8}) {
		t.Fatal("id 8 lost across restart")
	}
	st := d2.Stats()
	if st.Keys != 2 || st.Enrollments != 3 || st.Conflicts != 1 {
		t.Fatalf("recovered stats %+v", st)
	}
	if st.Recovery <= 0 {
		t.Fatal("recovery duration not recorded")
	}
}

func TestDurableEnrollResultMatchesMemory(t *testing.T) {
	// The two backends share one dedup kernel; feed an identical
	// enrollment sequence to both and require identical results.
	seq := []Enrollment{
		enr("acme", 1, Fingerprint{}, "a"),
		enr("acme", 1, fpByte(1), "b"),
		enr("acme", 1, fpByte(2), "c"),
		enr("acme", 2, fpByte(1), "d"),
		enr("acme", 1, fpByte(1), "e"),
	}
	m := NewMemory(0)
	d := openTest(t, t.TempDir(), Options{})
	for i, e := range seq {
		mr, _ := m.Enroll(e)
		dr, err := d.Enroll(e)
		if err != nil {
			t.Fatal(err)
		}
		if mr != dr {
			t.Fatalf("step %d: memory %+v != durable %+v", i, mr, dr)
		}
	}
}

func TestDurableCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, Options{CompactEvery: -1})
	for i := uint64(0); i < 20; i++ {
		if _, err := d.Enroll(enr("acme", i, fpByte(byte(i)), "s")); err != nil {
			t.Fatal(err)
		}
	}
	d.Enroll(enr("acme", 3, fpByte(99), "clone")) // taint id 3
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Compactions; got != 1 {
		t.Fatalf("compactions %d", got)
	}
	// Post-compaction enrollments land in the new WAL generation.
	if _, err := d.Enroll(enr("acme", 100, fpByte(7), "late")); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().WALRecords; got != 1 {
		t.Fatalf("live generation holds %d records, want 1", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Old WAL generation must be gone, snapshot present.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("compacted WAL generation still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(1))); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	// Recovery = snapshot + newer WAL replay.
	d2 := openTest(t, dir, Options{})
	st := d2.Stats()
	if st.Keys != 21 || st.Enrollments != 22 || st.Conflicts != 1 {
		t.Fatalf("recovered stats %+v", st)
	}
	lr, ok := d2.Lookup(Key{Manufacturer: "acme", DieID: 3})
	if !ok || !lr.Conflict || lr.Count != 2 {
		t.Fatalf("taint lost through compaction: ok=%v %+v", ok, lr)
	}
	if !d2.SeenBefore(Key{Manufacturer: "acme", DieID: 100}) {
		t.Fatal("post-compaction enrollment lost")
	}
}

func TestDurableAutoCompact(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, Options{CompactEvery: 10, NoSync: true})
	for i := uint64(0); i < 35; i++ {
		if _, err := d.Enroll(enr("acme", i, Fingerprint{}, "s")); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Compactions < 3 {
		t.Fatalf("auto-compaction ran %d times over 35 enrolls at CompactEvery=10", st.Compactions)
	}
	if st.Keys != 35 {
		t.Fatalf("keys %d", st.Keys)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTest(t, dir, Options{})
	if got := d2.Stats().Keys; got != 35 {
		t.Fatalf("recovered keys %d, want 35", got)
	}
}

func TestDurableRepeatedCompactionGenerations(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, Options{CompactEvery: -1, NoSync: true})
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if _, err := d.Enroll(enr("acme", uint64(round*5+i), Fingerprint{}, "s")); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	// Only the newest snapshot and the live (empty) WAL should remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		names = append(names, ent.Name())
	}
	if len(names) != 2 {
		t.Fatalf("directory holds %v, want newest snapshot + live WAL only", names)
	}
	d.Close()
	d2 := openTest(t, dir, Options{})
	if got := d2.Stats().Keys; got != 15 {
		t.Fatalf("recovered keys %d, want 15", got)
	}
}

func TestDurableCloseSemantics(t *testing.T) {
	d := openTest(t, t.TempDir(), Options{})
	if _, err := d.Enroll(enr("acme", 1, Fingerprint{}, "s")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := d.Enroll(enr("acme", 2, Fingerprint{}, "s")); !errors.Is(err, ErrClosed) {
		t.Fatalf("enroll after close: %v", err)
	}
	if err := d.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v", err)
	}
	// Reads still work off the in-memory index after close.
	if !d.SeenBefore(Key{Manufacturer: "acme", DieID: 1}) {
		t.Fatal("read after close lost the index")
	}
}

func TestDurableConcurrentEnrollGroupCommit(t *testing.T) {
	d := openTest(t, t.TempDir(), Options{})
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := d.Enroll(enr("acme", uint64(w*perWorker+i), fpByte(byte(w+1)), "s")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := d.Stats()
	if st.Keys != workers*perWorker || st.Enrollments != workers*perWorker {
		t.Fatalf("stats %+v", st)
	}
	if st.WALAppends != workers*perWorker {
		t.Fatalf("WAL appends %d, want %d", st.WALAppends, workers*perWorker)
	}
	if st.WALFsyncs == 0 || st.WALFsyncs > st.WALAppends {
		t.Fatalf("fsyncs %d vs appends %d", st.WALFsyncs, st.WALAppends)
	}
	if st.WALFsyncs == st.WALAppends {
		t.Logf("no fsync batching observed (fsyncs == appends == %d); legal but unexpected under %d workers", st.WALFsyncs, workers)
	}
}

func TestDurableOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := Open(filepath.Join(dir, "reg"), Options{}); err == nil {
		t.Fatal("Open in unwritable parent should fail")
	}
}

func TestDurableRejectsOversizedFields(t *testing.T) {
	d := openTest(t, t.TempDir(), Options{})
	long := strings.Repeat("x", 256)
	if _, err := d.Enroll(enr(long, 1, Fingerprint{}, "s")); err == nil {
		t.Fatal("256-byte manufacturer must be rejected")
	}
	if _, err := d.Enroll(enr("acme", 1, Fingerprint{}, long)); err == nil {
		t.Fatal("256-byte source must be rejected")
	}
	// The store stays usable after a rejected append.
	if _, err := d.Enroll(enr("acme", 1, Fingerprint{}, "s")); err != nil {
		t.Fatal(err)
	}
}
