package registry

// Fuzz targets for the two on-disk decoders, mirroring the repo's
// FuzzLoadDevice pattern: adversarial bytes must produce a clean
// error or a valid load — never a panic, and never a large allocation
// (forged length headers and forged key counts are the interesting
// inputs; both are capped before any memory is committed).
//
// Run: go test -run xxx -fuzz FuzzWALReplay ./internal/registry

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrame builds one valid framed enrollment for seed corpora.
func fuzzFrame(tb testing.TB, e Enrollment) []byte {
	tb.Helper()
	payload, err := appendEnrollment(nil, e)
	if err != nil {
		tb.Fatal(err)
	}
	return appendFrame(nil, payload)
}

// fuzzSnapshot builds one valid snapshot stream for seed corpora.
func fuzzSnapshot(tb testing.TB, gen uint64, entries []snapEntry) []byte {
	tb.Helper()
	var out []byte
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint64(out, gen)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(entries)))
	for _, ent := range entries {
		payload, err := appendSnapEntry(nil, ent)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, appendFrame(nil, payload)...)
	}
	return append(out, snapTrailer...)
}

func FuzzWALReplay(f *testing.F) {
	e1 := enr("acme", 7, fpByte(1), "line-a")
	e2 := enr("zeta", ^uint64(0), Fingerprint{}, "")
	valid := append(fuzzFrame(f, e1), fuzzFrame(f, e2)...)
	f.Add(valid)                            // clean log
	f.Add(valid[:len(valid)-3])             // torn tail
	f.Add(append(bytes.Clone(valid), 0xFF)) // torn extra byte
	f.Add(fuzzFrame(f, Enrollment{}))       // minimal record
	f.Add([]byte{})                         // empty log
	forged := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(forged, 1<<30) // forged length header
	f.Add(forged)
	garbage := appendFrame(nil, []byte{recVersion + 9, 1, 2, 3})
	f.Add(garbage) // checksummed non-record

	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMemory(4)
		var n int
		good, torn, err := replayLog(bytes.NewReader(data), func(e Enrollment) {
			m.apply(e)
			n++
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		if err != nil && !torn {
			t.Fatalf("hard error %v without torn flag", err)
		}
		if int(m.Stats().Enrollments) != n {
			t.Fatalf("applied %d, counted %d", n, m.Stats().Enrollments)
		}
		// Replaying the good prefix again must be deterministic: same
		// record count, no tear, full consumption.
		var n2 int
		good2, torn2, err2 := replayLog(bytes.NewReader(data[:good]), func(Enrollment) { n2++ })
		if err2 != nil || torn2 || good2 != good || n2 != n {
			t.Fatalf("good-prefix replay diverged: n=%d/%d good=%d/%d torn=%v err=%v",
				n2, n, good2, good, torn2, err2)
		}
	})
}

func FuzzSnapshot(f *testing.F) {
	ent1 := snapEntry{first: enr("acme", 7, fpByte(1), "line-a"), fp: fpByte(1), count: 3, taint: true}
	ent2 := snapEntry{first: enr("zeta", 1, Fingerprint{}, ""), fp: Fingerprint{}, count: 1}
	valid := fuzzSnapshot(f, 5, []snapEntry{ent1, ent2})
	f.Add(valid)                         // clean snapshot
	f.Add(fuzzSnapshot(f, 0, nil))       // empty snapshot
	f.Add(valid[:len(valid)-4])          // clipped trailer
	f.Add(append(bytes.Clone(valid), 0)) // trailing byte
	forgedCount := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(forgedCount[len(snapMagic)+8:], 1<<50)
	f.Add(forgedCount)       // forged key count
	f.Add([]byte(snapMagic)) // header only

	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []snapEntry
		gen, err := readSnapshot(bytes.NewReader(data), func(ent snapEntry) {
			entries = append(entries, ent)
		})
		if err != nil {
			return
		}
		// A load that succeeded must survive a re-encode round trip.
		again := fuzzSnapshot(t, gen, entries)
		var entries2 []snapEntry
		gen2, err2 := readSnapshot(bytes.NewReader(again), func(ent snapEntry) {
			entries2 = append(entries2, ent)
		})
		if err2 != nil || gen2 != gen || len(entries2) != len(entries) {
			t.Fatalf("re-encode diverged: gen=%d/%d n=%d/%d err=%v",
				gen2, gen, len(entries2), len(entries), err2)
		}
		for i := range entries {
			if entries2[i] != entries[i] {
				t.Fatalf("entry %d diverged: %+v -> %+v", i, entries[i], entries2[i])
			}
		}
		// Loading into a real index must not panic either.
		m := NewMemory(4)
		for _, ent := range entries {
			m.restore(ent.first.Key, ent.first, ent.fp, ent.count, ent.taint)
		}
	})
}
