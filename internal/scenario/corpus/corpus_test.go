package corpus

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flashmark/flashmark/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden transcripts from this run")

// TestCorpusGolden replays every committed scenario in parallel and
// byte-diffs its transcript against the committed golden. Each subtest
// also runs its scenario twice: the two transcripts must be identical,
// which — together with t.Parallel() across the whole corpus — proves
// transcripts do not depend on scheduling or worker count.
func TestCorpusGolden(t *testing.T) {
	names := Names()
	if len(names) < 12 {
		t.Fatalf("corpus has %d scenarios, want at least 12", len(names))
	}
	for _, name := range names {
		t.Run(strings.TrimSuffix(name, ".yaml"), func(t *testing.T) {
			t.Parallel()
			src, err := Source(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			sc, err := scenario.Parse(src)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			first := runEncoded(t, sc)
			second := runEncoded(t, sc)
			if !bytes.Equal(first, second) {
				t.Fatalf("scenario %s is not deterministic: two runs produced different transcripts", sc.Name)
			}

			goldenPath := filepath.Join("golden", sc.Name+".json")
			if *update {
				if err := os.MkdirAll("golden", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, first, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("no golden for %s (run with -update to create): %v", sc.Name, err)
			}
			if !bytes.Equal(first, want) {
				t.Errorf("transcript for %s diverged from golden %s\n(regenerate with: go test ./internal/scenario/corpus -run TestCorpusGolden -update)",
					sc.Name, goldenPath)
			}
		})
	}
}

func runEncoded(t *testing.T, sc *scenario.Scenario) []byte {
	t.Helper()
	tr, err := scenario.Run(sc, scenario.RunOptions{WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}
