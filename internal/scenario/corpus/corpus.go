// Package corpus embeds the committed temporal scenario suite: the
// declarative supply-chain attack timelines that exercise the full
// stack — fabrication, aging, cloning, enrollment, restart windows —
// over the virtual clock. Each scenario pairs with a golden transcript
// under golden/; `make scenarios-check` (and TestCorpusGolden) replays
// the suite and byte-diffs the transcripts.
package corpus

import (
	"embed"
	"io/fs"
	"sort"
	"strings"
)

//go:embed *.yaml
var scenarioFS embed.FS

//go:embed golden/*.json
var goldenFS embed.FS

// Names lists the embedded scenario files (sorted, with extension).
func Names() []string {
	entries, err := fs.ReadDir(scenarioFS, ".")
	if err != nil {
		// The embed is build-time static; a read failure is a broken build.
		panic("corpus: reading embedded scenarios: " + err.Error())
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".yaml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Source returns the raw YAML of one embedded scenario file.
func Source(name string) ([]byte, error) {
	return scenarioFS.ReadFile(name)
}

// Golden returns the committed golden transcript for the scenario of
// the given name (the scenario's name: field, no extension).
func Golden(scenarioName string) ([]byte, error) {
	return goldenFS.ReadFile("golden/" + scenarioName + ".json")
}
