package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

// TestDurablePlaneStoreSurvivesRestart pins the swap-lock contract: the
// registry.Store handle the daemon holds keeps answering — with the
// same data — across a restart that closed and reopened the backing
// Durable underneath it.
func TestDurablePlaneStoreSurvivesRestart(t *testing.T) {
	now := time.Unix(0, 0).UTC()
	p, err := openDurablePlane(t.TempDir(), registry.Options{NoSync: true, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()

	store := p.store()
	key := registry.Key{Manufacturer: "TC", DieID: 0xD1}
	if _, err := store.Enroll(registry.Enrollment{Key: key, Fingerprint: [32]byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// The pre-restart handle, not a fresh one, must see the recovery.
	if !store.SeenBefore(key) {
		t.Fatal("enrollment lost across restart through the held Store handle")
	}
	if _, ok := store.Lookup(key); !ok {
		t.Fatal("lookup missed the recovered enrollment")
	}
	if got := store.Stats().Keys; got != 1 {
		t.Fatalf("recovered stats claim %d keys, want 1", got)
	}
}

// TestClusterPlaneRestartUnsupported pins the error (rather than a
// silent no-op) for restart-registry on the sharded plane, and checks
// the sharded store answers SeenBefore through the client router.
func TestClusterPlaneRestartUnsupported(t *testing.T) {
	p, err := openClusterPlane(t.TempDir(), 2, registry.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()

	if err := p.restart(); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("cluster restart: got %v, want an unsupported error", err)
	}
	store := p.store()
	key := registry.Key{Manufacturer: "TC", DieID: 0xD2}
	if store.SeenBefore(key) {
		t.Fatal("empty plane claims to have seen the key")
	}
	if _, err := store.Enroll(registry.Enrollment{Key: key, Fingerprint: [32]byte{2}}); err != nil {
		t.Fatal(err)
	}
	if !store.SeenBefore(key) {
		t.Fatal("enrolled key not visible through the sharded store")
	}
}
