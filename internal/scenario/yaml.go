// Package scenario is the temporal supply-chain test harness: a
// declarative YAML scenario engine in which every step carries an `at:`
// offset on the virtual clock (internal/vclock) and a verb covering the
// whole stack — fabricate/imprint/stress/age/clone chips on any
// device.Fab backend, enroll and verify them against a live in-process
// fmverifyd (single-node durable registry or a sharded cluster plane),
// restart the registry mid-scenario, and assert verdicts, escalations,
// and /metrics counters. A scenario is deterministic by construction: a
// seeded rng, validated forward-only step times, and a canonical JSON
// transcript of every result, so whole suites golden-diff byte-for-byte.
//
// Because the module is standard-library-only, scenarios are written in
// a strict YAML subset parsed by this file: block mappings and
// sequences with two-space indentation, flow collections ({k: v},
// [a, b]), double-quoted and plain scalars, and '#' comments. Anchors,
// aliases, multi-document streams, multi-line scalars, and tabs are
// rejected — loudly, with line numbers — rather than half-supported.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser hard limits: every cap exists so a hostile scenario file (the
// fuzz target feeds arbitrary bytes) fails fast with an error instead
// of ballooning allocations or recursing unboundedly.
const (
	// MaxScenarioBytes caps one scenario file.
	MaxScenarioBytes = 256 << 10
	// maxLineBytes caps one source line.
	maxLineBytes = 4096
	// maxNodes caps the total node count of one document.
	maxNodes = 50_000
	// maxDepth caps block and flow nesting.
	maxDepth = 24
)

// nodeKind discriminates the three YAML node shapes the subset keeps.
type nodeKind int

const (
	kindScalar nodeKind = iota
	kindMapping
	kindSequence
)

func (k nodeKind) String() string {
	switch k {
	case kindScalar:
		return "scalar"
	case kindMapping:
		return "mapping"
	case kindSequence:
		return "sequence"
	}
	return "invalid"
}

// node is one parsed YAML value. Mappings remember key order so error
// messages and strict-decode walks are stable.
type node struct {
	kind   nodeKind
	line   int // 1-based source line, for error messages
	scalar string
	quoted bool // scalar came quoted: always a string, never null/number
	keys   []string
	fields map[string]*node
	items  []*node
}

// yamlError is a parse/decode failure with a source position.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("line %d: %s", e.line, e.msg)
	}
	return e.msg
}

func errAt(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// srcLine is one logical source line after comment stripping.
type srcLine struct {
	indent int
	text   string // content with indentation removed
	num    int    // 1-based line number
}

// yamlParser owns the line cursor and the node budget.
type yamlParser struct {
	lines []srcLine
	pos   int
	nodes int
}

// parseYAML parses one document of the subset into a root mapping.
func parseYAML(data []byte) (*node, error) {
	if len(data) > MaxScenarioBytes {
		return nil, fmt.Errorf("scenario file is %d bytes (cap %d)", len(data), MaxScenarioBytes)
	}
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	p := &yamlParser{lines: lines}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty scenario document")
	}
	if lines[0].indent != 0 {
		return nil, errAt(lines[0].num, "document must start at column 0")
	}
	root, err := p.parseBlock(0, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, errAt(p.lines[p.pos].num, "unexpected de-indent or stray content")
	}
	if root.kind != kindMapping {
		return nil, errAt(root.line, "document root must be a mapping, got %s", root.kind)
	}
	return root, nil
}

// splitLines strips comments and blanks and measures indentation.
func splitLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for n, raw := range strings.Split(string(data), "\n") {
		num := n + 1
		if len(raw) > maxLineBytes {
			return nil, errAt(num, "line is %d bytes (cap %d)", len(raw), maxLineBytes)
		}
		raw = strings.TrimSuffix(raw, "\r")
		trimmed := strings.TrimLeft(raw, " ")
		indent := len(raw) - len(trimmed)
		if strings.ContainsRune(raw[:indent], '\t') || strings.HasPrefix(trimmed, "\t") {
			return nil, errAt(num, "tab in indentation (use spaces)")
		}
		text, err := stripComment(trimmed, num)
		if err != nil {
			return nil, err
		}
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if text == "---" || text == "..." {
			return nil, errAt(num, "multi-document markers are not supported")
		}
		if strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") {
			return nil, errAt(num, "anchors and aliases are not supported")
		}
		out = append(out, srcLine{indent: indent, text: text, num: num})
	}
	return out, nil
}

// stripComment removes a trailing '# ...' comment, respecting quotes.
func stripComment(s string, num int) (string, error) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			if inQuote {
				i++
			}
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ') {
				return s[:i], nil
			}
		}
	}
	if inQuote {
		return "", errAt(num, "unterminated quoted string")
	}
	return s, nil
}

func (p *yamlParser) budget(line int) error {
	p.nodes++
	if p.nodes > maxNodes {
		return errAt(line, "document exceeds %d nodes", maxNodes)
	}
	return nil
}

// parseBlock parses the node whose first line is the current line, which
// must be indented exactly `indent` columns.
func (p *yamlParser) parseBlock(indent, depth int) (*node, error) {
	if depth > maxDepth {
		return nil, errAt(p.lines[p.pos].num, "nesting exceeds depth %d", maxDepth)
	}
	ln := p.lines[p.pos]
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSequence(indent, depth)
	}
	// A whole-line flow collection (e.g. a "- {k: v}" sequence item after
	// the inline rewrite) parses as one flow value consuming the line.
	if strings.HasPrefix(ln.text, "{") || strings.HasPrefix(ln.text, "[") {
		n, err := p.parseFlow(ln.text, ln.num, depth)
		if err != nil {
			return nil, err
		}
		p.pos++
		return n, nil
	}
	return p.parseMapping(indent, depth)
}

// parseSequence parses consecutive "- item" lines at the given indent.
func (p *yamlParser) parseSequence(indent, depth int) (*node, error) {
	seq := &node{kind: kindSequence, line: p.lines[p.pos].num}
	if err := p.budget(seq.line); err != nil {
		return nil, err
	}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// Item body on the following deeper-indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, errAt(ln.num, "empty sequence item")
			}
			item, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
			continue
		}
		// Inline item content: rewrite the line as if the content started
		// its own block at the content column, then parse that block.
		p.lines[p.pos] = srcLine{indent: ln.indent + 2, text: rest, num: ln.num}
		item, err := p.parseBlock(ln.indent+2, depth+1)
		if err != nil {
			return nil, err
		}
		seq.items = append(seq.items, item)
	}
	return seq, nil
}

// keySplit finds the top-level ": " separator of a mapping line.
func keySplit(text string) (key, value string, ok bool) {
	inQuote := false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			if inQuote {
				i++
			}
		case ':':
			if inQuote {
				continue
			}
			if i+1 == len(text) {
				return text[:i], "", true
			}
			if text[i+1] == ' ' {
				return text[:i], strings.TrimLeft(text[i+1:], " "), true
			}
		}
	}
	return "", "", false
}

// parseMapping parses consecutive "key: value" lines at the given indent.
func (p *yamlParser) parseMapping(indent, depth int) (*node, error) {
	m := &node{kind: kindMapping, line: p.lines[p.pos].num, fields: map[string]*node{}}
	if err := p.budget(m.line); err != nil {
		return nil, err
	}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, errAt(ln.num, "unexpected indentation")
			}
			break
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, errAt(ln.num, "sequence item inside a mapping")
		}
		key, value, ok := keySplit(ln.text)
		if !ok {
			return nil, errAt(ln.num, "expected 'key: value'")
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, errAt(ln.num, "empty mapping key")
		}
		if strings.HasPrefix(key, "\"") {
			unq, err := unquoteScalar(key, ln.num)
			if err != nil {
				return nil, err
			}
			key = unq
		}
		if _, dup := m.fields[key]; dup {
			return nil, errAt(ln.num, "duplicate mapping key %q", key)
		}
		var child *node
		if value == "" {
			// Block value on deeper lines, or an empty (null-like) value.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				var err error
				child, err = p.parseBlock(p.lines[p.pos].indent, depth+1)
				if err != nil {
					return nil, err
				}
			} else {
				child = &node{kind: kindMapping, line: ln.num, fields: map[string]*node{}}
				if err := p.budget(ln.num); err != nil {
					return nil, err
				}
			}
		} else {
			var err error
			child, err = p.parseFlow(value, ln.num, depth+1)
			if err != nil {
				return nil, err
			}
			p.pos++
		}
		m.keys = append(m.keys, key)
		m.fields[key] = child
	}
	return m, nil
}

// parseFlow parses an inline value: a flow mapping, flow sequence, or
// scalar. The whole string must be consumed.
func (p *yamlParser) parseFlow(s string, line, depth int) (*node, error) {
	n, rest, err := p.parseFlowValue(s, line, depth)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, errAt(line, "trailing content %q after value", strings.TrimSpace(rest))
	}
	return n, nil
}

func (p *yamlParser) parseFlowValue(s string, line, depth int) (*node, string, error) {
	if depth > maxDepth {
		return nil, "", errAt(line, "nesting exceeds depth %d", maxDepth)
	}
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", errAt(line, "empty flow value")
	}
	switch s[0] {
	case '{':
		return p.parseFlowMapping(s[1:], line, depth)
	case '[':
		return p.parseFlowSequence(s[1:], line, depth)
	case '"':
		end := quotedEnd(s)
		if end < 0 {
			return nil, "", errAt(line, "unterminated quoted string")
		}
		unq, err := unquoteScalar(s[:end+1], line)
		if err != nil {
			return nil, "", err
		}
		if err := p.budget(line); err != nil {
			return nil, "", err
		}
		return &node{kind: kindScalar, line: line, scalar: unq, quoted: true}, s[end+1:], nil
	}
	// Plain scalar: runs to the next flow terminator.
	end := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '}' || s[i] == ']' {
			end = i
			break
		}
	}
	val := strings.TrimSpace(s[:end])
	if val == "" {
		return nil, "", errAt(line, "empty flow scalar")
	}
	if val[0] == '&' || val[0] == '*' {
		return nil, "", errAt(line, "anchors and aliases are not supported")
	}
	if err := p.budget(line); err != nil {
		return nil, "", err
	}
	return &node{kind: kindScalar, line: line, scalar: val}, s[end:], nil
}

// quotedEnd returns the index of the closing quote of a string starting
// with '"', or -1.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

func (p *yamlParser) parseFlowMapping(s string, line, depth int) (*node, string, error) {
	m := &node{kind: kindMapping, line: line, fields: map[string]*node{}}
	if err := p.budget(line); err != nil {
		return nil, "", err
	}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "}") {
		return m, s[1:], nil
	}
	for {
		s = strings.TrimLeft(s, " ")
		key, rest, ok := flowKey(s)
		if !ok {
			return nil, "", errAt(line, "expected 'key: value' in flow mapping")
		}
		if strings.HasPrefix(key, "\"") {
			unq, err := unquoteScalar(key, line)
			if err != nil {
				return nil, "", err
			}
			key = unq
		}
		if key == "" {
			return nil, "", errAt(line, "empty flow mapping key")
		}
		if _, dup := m.fields[key]; dup {
			return nil, "", errAt(line, "duplicate mapping key %q", key)
		}
		val, after, err := p.parseFlowValue(rest, line, depth+1)
		if err != nil {
			return nil, "", err
		}
		m.keys = append(m.keys, key)
		m.fields[key] = val
		after = strings.TrimLeft(after, " ")
		if strings.HasPrefix(after, ",") {
			s = after[1:]
			continue
		}
		if strings.HasPrefix(after, "}") {
			return m, after[1:], nil
		}
		return nil, "", errAt(line, "expected ',' or '}' in flow mapping")
	}
}

// flowKey splits "key: rest" at the first unquoted colon.
func flowKey(s string) (key, rest string, ok bool) {
	i := 0
	if strings.HasPrefix(s, "\"") {
		end := quotedEnd(s)
		if end < 0 {
			return "", "", false
		}
		i = end + 1
	}
	for ; i < len(s); i++ {
		if s[i] == ':' {
			if i+1 < len(s) && s[i+1] != ' ' {
				return "", "", false
			}
			return strings.TrimSpace(s[:i]), strings.TrimLeft(s[i+1:], " "), true
		}
		if s[i] == ',' || s[i] == '}' || s[i] == ']' || s[i] == '{' || s[i] == '[' {
			return "", "", false
		}
	}
	return "", "", false
}

func (p *yamlParser) parseFlowSequence(s string, line, depth int) (*node, string, error) {
	seq := &node{kind: kindSequence, line: line}
	if err := p.budget(line); err != nil {
		return nil, "", err
	}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "]") {
		return seq, s[1:], nil
	}
	for {
		val, after, err := p.parseFlowValue(s, line, depth+1)
		if err != nil {
			return nil, "", err
		}
		seq.items = append(seq.items, val)
		after = strings.TrimLeft(after, " ")
		if strings.HasPrefix(after, ",") {
			s = after[1:]
			continue
		}
		if strings.HasPrefix(after, "]") {
			return seq, after[1:], nil
		}
		return nil, "", errAt(line, "expected ',' or ']' in flow sequence")
	}
}

// unquoteScalar decodes a double-quoted scalar with Go-style escapes.
func unquoteScalar(s string, line int) (string, error) {
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", errAt(line, "bad quoted string %s", s)
	}
	return unq, nil
}

// --- strict typed accessors used by the spec decoder ---

func (n *node) expect(kind nodeKind, what string) error {
	if n.kind != kind {
		return errAt(n.line, "%s must be a %s, got %s", what, kind, n.kind)
	}
	return nil
}

// get returns the child for key, or nil.
func (n *node) get(key string) *node { return n.fields[key] }

// checkKeys rejects mapping keys outside the allowed set.
func (n *node) checkKeys(what string, allowed ...string) error {
	for _, k := range n.keys {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return errAt(n.fields[k].line, "unknown %s key %q (allowed: %s)",
				what, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

func (n *node) asString(what string) (string, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return "", err
	}
	return n.scalar, nil
}

func (n *node) asUint64(what string) (uint64, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, errAt(n.line, "%s must be an unquoted integer", what)
	}
	v, err := strconv.ParseUint(n.scalar, 0, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: bad integer %q", what, n.scalar)
	}
	return v, nil
}

func (n *node) asInt(what string) (int, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, errAt(n.line, "%s must be an unquoted integer", what)
	}
	v, err := strconv.ParseInt(n.scalar, 0, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: bad integer %q", what, n.scalar)
	}
	const maxInt = int64(^uint(0) >> 1)
	if v > maxInt || v < -maxInt-1 {
		return 0, errAt(n.line, "%s: integer %q out of range", what, n.scalar)
	}
	return int(v), nil
}

func (n *node) asInt64(what string) (int64, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, errAt(n.line, "%s must be an unquoted integer", what)
	}
	v, err := strconv.ParseInt(n.scalar, 0, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: bad integer %q", what, n.scalar)
	}
	return v, nil
}

func (n *node) asFloat(what string) (float64, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return 0, err
	}
	if n.quoted {
		return 0, errAt(n.line, "%s must be an unquoted number", what)
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: bad number %q", what, n.scalar)
	}
	return v, nil
}

func (n *node) asBool(what string) (bool, error) {
	if err := n.expect(kindScalar, what); err != nil {
		return false, err
	}
	switch n.scalar {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, errAt(n.line, "%s: bad bool %q (want true or false)", what, n.scalar)
}
