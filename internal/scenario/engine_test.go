package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// steppingDoc uses deliberately awkward offsets — sub-second gaps, a
// zero-duration hold (two steps at the same instant), and a long jump —
// to pin the exact-instant contract: the virtual clock lands on
// precisely each step's at: offset, never a tick early or late.
const steppingDoc = `name: stepping
seed: 0xC10C
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: genuine-accept, die: 0x77}
  - at: 1ns
    name: first-tick
    verify: {chip: c, expect: {verdict: GENUINE}}
  - at: 1ns
    name: same-instant
    expect:
      metrics:
        fmverifyd_chips_total: 1
  - at: 1h30m7s
    name: odd-offset
    verify: {chip: c, expect: {verdict: GENUINE}}
  - at: 876000h
    name: horizon-edge
    verify: {chip: c, expect: {verdict: GENUINE}}
`

// TestSteppingClockExactInstants runs the awkward-offset scenario and
// checks every step executed at exactly its declared virtual instant.
func TestSteppingClockExactInstants(t *testing.T) {
	sc, err := Parse([]byte(steppingDoc))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(sc, RunOptions{WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	wantAt := []time.Duration{0, time.Nanosecond, time.Nanosecond, time.Hour + 30*time.Minute + 7*time.Second, 876000 * time.Hour}
	if len(tr.Steps) != len(wantAt) {
		t.Fatalf("got %d steps, want %d", len(tr.Steps), len(wantAt))
	}
	for i, st := range tr.Steps {
		if st.At != wantAt[i].String() {
			t.Errorf("step %d: recorded at %s, want %s", i, st.At, wantAt[i])
		}
		if st.Clock != st.At {
			t.Errorf("step %d (%s): clock %s != at %s — the engine missed the instant", i, st.Name, st.Clock, st.At)
		}
	}
}

// TestVirtualNowReachesDaemon checks the daemon's wall clock is the
// scenario timeline: a report produced at virtual t=1h carries a
// deterministic device timestamp, and two full runs agree on every
// byte even though real wall time moved between them.
func TestVirtualNowReachesDaemon(t *testing.T) {
	sc, err := Parse([]byte(steppingDoc))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		tr, err := Run(sc, RunOptions{WorkDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same scenario produced different transcripts")
	}
}

// allVerbsDoc exercises every verb in one durable-registry timeline:
// the blank chip gets a die-sort imprint and later burns its wear
// budget (RECYCLED), the victim ages a year and survives, and its
// replay-imprint clone is escalated across a registry restart.
const allVerbsDoc = `name: all-verbs
seed: 0xA11
registry: durable
steps:
  - at: 0s
    name: fab-victim
    fabricate: {chip: victim, class: genuine-accept, die: 0xA001}
  - at: 0s
    name: fab-blank
    fabricate: {chip: blank, class: unmarked}
  - at: 1h
    name: diesort-blank
    imprint: {chip: blank, die: 0xA002, status: accept}
  - at: 2h
    name: enroll-victim
    enroll:
      chip: victim
      expect: {verdict: GENUINE, duplicate: false, conflict: false, count: 1}
  - at: 3h
    name: verify-imprinted
    verify: {chip: blank, expect: {verdict: GENUINE, accepted: true}}
  - at: 8760h
    name: shelf-year
    age: {chip: victim, years: 1}
  - at: 8761h
    name: verify-aged
    verify: {chip: victim, expect: {verdict: GENUINE, escalated: false}}
  - at: 8762h
    name: registry-bounce
    restart-registry: {}
  - at: 8763h
    name: clone-victim
    clone: {chip: impostor, of: victim}
  - at: 8764h
    name: verify-impostor
    verify:
      chip: impostor
      expect: {verdict: DUPLICATE-ID, accepted: false, escalated: true}
  - at: 8765h
    name: first-life
    stress: {chip: blank, cycles: 10000, segments: 3}
  - at: 8766h
    name: verify-worn
    verify: {chip: blank, expect: {verdict: RECYCLED, accepted: false}}
  - at: 8767h
    name: audit
    expect:
      registry: {keys: 1, enrollments: 1, conflicts: 0}
      metrics:
        fmverifyd_provenance_escalations_total: 1
        fmverifyd_errors_total: 0
`

// TestRunAllVerbsDurable replays the kitchen-sink timeline and checks
// the transcript covers every verb with its expectations met.
func TestRunAllVerbsDurable(t *testing.T) {
	sc, err := Parse([]byte(allVerbsDoc))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(sc, RunOptions{WorkDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, st := range tr.Steps {
		seen[st.Verb] = true
	}
	for _, verb := range []string{"fabricate", "imprint", "age", "stress", "clone", "enroll", "verify", "restart-registry", "expect"} {
		if !seen[verb] {
			t.Errorf("transcript missing verb %q", verb)
		}
	}
}

// TestRunClusterPlane runs a two-shard cluster scenario: enrollments
// spread across shards, aggregated stats see both, and a clone is
// still escalated through the sharded lookup path.
func TestRunClusterPlane(t *testing.T) {
	doc := `name: cluster
seed: 0xC1
registry: cluster
shards: 2
steps:
  - at: 0s
    name: fab-a
    fabricate: {chip: a, class: genuine-accept, die: 0xCA}
  - at: 0s
    name: fab-b
    fabricate: {chip: b, class: genuine-accept, die: 0xCB}
  - at: 1h
    name: enroll-a
    enroll: {chip: a, expect: {count: 1}}
  - at: 1h
    name: enroll-b
    enroll: {chip: b, expect: {count: 1}}
  - at: 2h
    name: clone-a
    clone: {chip: fake, of: a}
  - at: 3h
    name: verify-fake
    verify: {chip: fake, expect: {verdict: DUPLICATE-ID, escalated: true}}
  - at: 4h
    name: audit
    expect:
      registry: {keys: 2, enrollments: 2, conflicts: 0}
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, RunOptions{WorkDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStepFailureNamesStep checks an unmet expectation aborts with
// the step name and offset in the error.
func TestRunStepFailureNamesStep(t *testing.T) {
	doc := `name: failing
seed: 1
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: unmarked}
  - at: 2h
    name: doomed
    verify: {chip: c, expect: {verdict: GENUINE}}
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(sc, RunOptions{WorkDir: t.TempDir()})
	if err == nil {
		t.Fatal("unmet expectation did not fail the run")
	}
	for _, want := range []string{"doomed", "2h", "NO-WATERMARK", "GENUINE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunExpectationFailures drives each expect-carrying verb into a
// deliberate mismatch and checks the run aborts with the offending
// step named — the engine's whole value is that a wrong timeline dies
// loudly, not quietly.
func TestRunExpectationFailures(t *testing.T) {
	durable := func(body string) string {
		return "name: x\nregistry: durable\nsteps:\n  - at: 0s\n    name: fab\n    fabricate: {chip: c, class: genuine-accept, die: 0xE1}\n" + body
	}
	cases := map[string]struct{ doc, want string }{
		"enroll count": {
			durable("  - at: 1h\n    name: bad-count\n    enroll: {chip: c, expect: {count: 7}}\n"),
			"bad-count",
		},
		"enroll conflict": {
			durable("  - at: 1h\n    name: bad-conflict\n    enroll: {chip: c, expect: {conflict: true}}\n"),
			"bad-conflict",
		},
		"verify escalated": {
			durable("  - at: 1h\n    name: bad-escalation\n    verify: {chip: c, expect: {verdict: GENUINE, escalated: true}}\n"),
			"bad-escalation",
		},
		"verify fault": {
			durable("  - at: 1h\n    name: bad-fault\n    verify: {chip: c, expect: {fault: true}}\n"),
			"bad-fault",
		},
		"metrics value": {
			durable("  - at: 1h\n    name: bad-metric\n    expect:\n      metrics:\n        fmverifyd_chips_total: 99\n"),
			"bad-metric",
		},
		"unknown metric": {
			durable("  - at: 1h\n    name: ghost-metric\n    expect:\n      metrics:\n        fmverifyd_nonexistent_total: 1\n"),
			"ghost-metric",
		},
		"registry keys": {
			durable("  - at: 1h\n    name: bad-keys\n    expect:\n      registry: {keys: 42}\n"),
			"bad-keys",
		},
	}
	for label, tc := range cases {
		t.Run(label, func(t *testing.T) {
			sc, err := Parse([]byte(tc.doc))
			if err != nil {
				t.Fatal(err)
			}
			_, err = Run(sc, RunOptions{WorkDir: t.TempDir()})
			if err == nil {
				t.Fatal("mismatched expectation did not fail the run")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name step %q", err, tc.want)
			}
		})
	}
}

// TestRunFaultInjection runs a faulty-hardware scenario in-package: a
// certain erase timeout must surface as INCONCLUSIVE with the fault
// recorded, never as a crash or a silent accept.
func TestRunFaultInjection(t *testing.T) {
	doc := `name: faulty
seed: 0xFA
config:
  fault: {erase-timeout: 1.0}
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: genuine-accept, die: 0xF1}
  - at: 1h
    name: check
    verify: {chip: c, expect: {verdict: INCONCLUSIVE, accepted: false, fault: true}}
  - at: 2h
    name: counters
    expect:
      metrics:
        fmverifyd_device_faults_total: 1
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, RunOptions{WorkDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

// TestTranscriptCanonicalJSON checks Encode emits sorted-key metric
// maps and a trailing newline — the byte-diffable canonical form.
func TestTranscriptCanonicalJSON(t *testing.T) {
	tr := &Transcript{
		Format:   TranscriptFormat,
		Scenario: "x",
		Steps: []StepRecord{{
			Name:   "m",
			Verb:   "expect",
			Result: mustMarshal(t, expectResult{Metrics: map[string]int64{"zzz": 1, "aaa": 2}}),
		}},
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc[len(enc)-1] != '\n' {
		t.Error("transcript does not end with a newline")
	}
	if bytes.Index(enc, []byte("aaa")) > bytes.Index(enc, []byte("zzz")) {
		t.Error("metric keys are not sorted in the encoded transcript")
	}
	var back Transcript
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("transcript does not round-trip: %v", err)
	}
}

func mustMarshal(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunChallengePlane runs the challenge-response axis end to end on
// the ReRAM backend: with the oracle fingerprint withheld, a replayed
// clone passes physics verification and only the challenge verb
// separates it from the enrolled original. Also exercises challenging
// a chip that was never enrolled.
func TestRunChallengePlane(t *testing.T) {
	doc := `name: challenge
seed: 0xC4A1
registry: durable
config:
  backend: reram
  challenge: true
  oracle-fingerprint: false
steps:
  - at: 0s
    name: fab-orig
    fabricate: {chip: orig, class: genuine-accept, die: 0xD1}
  - at: 0s
    name: fab-stray
    fabricate: {chip: stray, class: genuine-accept, die: 0xD2}
  - at: 1h
    name: challenge-unenrolled
    challenge: {chip: stray, expect: {verdict: GENUINE, enrolled: false}}
  - at: 2h
    name: enroll-orig
    enroll: {chip: orig, expect: {count: 1, conflict: false}}
  - at: 3h
    name: clone-orig
    clone: {chip: fake, of: orig}
  - at: 4h
    name: verify-fake-physics-pass
    verify: {chip: fake, expect: {verdict: GENUINE, accepted: true, escalated: false}}
  - at: 4h
    name: challenge-fake
    challenge: {chip: fake, expect: {verdict: DUPLICATE-ID, enrolled: true, match: false}}
  - at: 5h
    name: challenge-orig
    challenge: {chip: orig, expect: {verdict: GENUINE, enrolled: true, match: true}}
  - at: 6h
    name: audit
    expect:
      metrics:
        fmverifyd_challenge_total: 3
        fmverifyd_challenge_matches_total: 1
        fmverifyd_challenge_mismatches_total: 1
        fmverifyd_challenge_unenrolled_total: 1
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(sc, RunOptions{WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, st := range tr.Steps {
		if st.Verb == "challenge" {
			seen++
		}
	}
	if seen != 3 {
		t.Fatalf("transcript has %d challenge steps, want 3", seen)
	}
}

// TestRunChallengeExpectMismatch drives the challenge verb into each
// assertion failure: wrong verdict, wrong enrollment state, wrong
// match bit.
func TestRunChallengeExpectMismatch(t *testing.T) {
	base := `name: x
registry: durable
config:
  challenge: true
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: genuine-accept, die: 0xE7}
  - at: 1h
    name: enroll
    enroll: {chip: c}
  - at: 2h
    name: doomed
    challenge: {chip: c, expect: {%s}}
`
	cases := map[string]struct{ expect, want string }{
		"verdict":  {"verdict: TAMPERED", "verdict"},
		"enrolled": {"enrolled: false", "enrolled"},
		"match":    {"match: false", "match"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			sc, err := Parse([]byte(strings.Replace(base, "%s", tc.expect, 1)))
			if err != nil {
				t.Fatal(err)
			}
			_, err = Run(sc, RunOptions{WorkDir: t.TempDir()})
			if err == nil || !strings.Contains(err.Error(), "doomed") || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want step doomed failing on %s", err, tc.want)
			}
		})
	}
}
