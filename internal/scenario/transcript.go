package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// TranscriptFormat versions the canonical transcript schema. Bump it
// whenever a field changes meaning; golden files carry it so a stale
// corpus fails loudly instead of diffing confusingly.
const TranscriptFormat = "flashmark-scenario-transcript/v1"

// Transcript is the canonical record of one scenario run: every step's
// verb-specific result in execution order. Given one scenario document,
// the transcript is byte-identical across runs, platforms, and worker
// counts — that invariant is what lets whole suites golden-diff.
type Transcript struct {
	Format   string       `json:"format"`
	Scenario string       `json:"scenario"`
	Seed     string       `json:"seed"`
	Registry string       `json:"registry"`
	Backend  string       `json:"backend"`
	Steps    []StepRecord `json:"steps"`
}

// StepRecord is one executed step.
type StepRecord struct {
	Step int    `json:"step"`
	Name string `json:"name"`
	// At is the step's declared offset; Clock is the virtual-clock
	// reading at execution. They are always equal — recording both makes
	// the exact-instant contract visible in every golden file.
	At     string          `json:"at"`
	Clock  string          `json:"clock"`
	Verb   string          `json:"verb"`
	Result json.RawMessage `json:"result"`
}

// chipResult records a chip-mutating verb: which chip, what changed,
// and the SHA-256 of its serialized state afterwards — the digest ties
// the transcript to the exact bytes a verify step would upload.
type chipResult struct {
	Chip   string  `json:"chip"`
	Class  string  `json:"class,omitempty"`
	Part   string  `json:"part,omitempty"`
	Die    *uint64 `json:"die,omitempty"`
	Seed   string  `json:"seed,omitempty"`
	Of     string  `json:"of,omitempty"`
	Status string  `json:"status,omitempty"`
	Years  float64 `json:"years,omitempty"`
	Cycles int     `json:"cycles,omitempty"`
	SHA256 string  `json:"sha256"`
}

// httpResult records a verify or enroll round trip: the HTTP status and
// the daemon's raw JSON response, embedded compact and verbatim.
type httpResult struct {
	Chip   string          `json:"chip"`
	Status int             `json:"status"`
	Report json.RawMessage `json:"report"`
}

// expectResult records what an expect step actually observed. Metric
// keys marshal sorted (encoding/json orders map keys), so the record is
// canonical.
type expectResult struct {
	Metrics  map[string]int64 `json:"metrics,omitempty"`
	Registry *registrySnap    `json:"registry,omitempty"`
}

// registrySnap is the registry-stats view recorded by expect and
// restart-registry steps.
type registrySnap struct {
	Keys        int64 `json:"keys"`
	Enrollments int64 `json:"enrollments"`
	Conflicts   int64 `json:"conflicts"`
}

// Encode renders the transcript as indented canonical JSON with a
// trailing newline — the byte stream golden files commit.
func (t *Transcript) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding transcript: %w", err)
	}
	return append(out, '\n'), nil
}

// marshalResult compacts a verb result into the transcript's RawMessage.
func marshalResult(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding step result: %w", err)
	}
	return b, nil
}

// compactJSON canonicalizes a daemon response body for embedding.
func compactJSON(body []byte) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, bytes.TrimSpace(body)); err != nil {
		return nil, fmt.Errorf("scenario: daemon answered invalid JSON: %w", err)
	}
	return buf.Bytes(), nil
}
