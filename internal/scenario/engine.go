package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/reram"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/service"
	"github.com/flashmark/flashmark/internal/vclock"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// RunOptions tunes one scenario execution.
type RunOptions struct {
	// WorkDir hosts registry state. Empty creates a private temp
	// directory that is removed when Run returns.
	WorkDir string
	// Logf receives one line per executed step (nil discards).
	Logf func(format string, args ...any)
}

// chipState is one chip living in the scenario world.
type chipState struct {
	name  string
	dev   device.Device
	class counterfeit.ChipClass
	die   uint64
	seed  uint64
	// bytes caches the serialized chip file; mutating verbs clear it.
	bytes []byte
}

// world is the running scenario: the virtual timeline, the chip bench,
// and the live in-process daemon.
type world struct {
	sc       *Scenario
	logf     func(string, ...any)
	timeline vclock.Clock
	epoch    time.Time
	factory  counterfeit.FactoryConfig
	chips    map[string]*chipState
	plane    provPlane
	srv      *service.Server
	ts       *httptest.Server
}

// scenarioEpoch anchors the virtual timeline to wall-time zero: every
// duration-since-epoch the daemon observes equals the vclock reading.
var scenarioEpoch = time.Unix(0, 0).UTC()

// Run executes one validated scenario and returns its transcript. Any
// failed step — a device error, an HTTP failure, or an unmet expect —
// aborts the run with an error naming the step.
func Run(sc *Scenario, opts RunOptions) (*Transcript, error) {
	workDir := opts.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "fmscenario-"+sc.Name+"-")
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	w := &world{
		sc:    sc,
		logf:  opts.Logf,
		epoch: scenarioEpoch,
		chips: make(map[string]*chipState),
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	if err := w.start(workDir); err != nil {
		return nil, err
	}
	defer w.stop()

	tr := &Transcript{
		Format:   TranscriptFormat,
		Scenario: sc.Name,
		Seed:     "0x" + strconv.FormatUint(sc.Seed, 16),
		Registry: string(sc.Registry),
		Backend:  sc.Config.Backend,
	}
	for i := range sc.Steps {
		st := &sc.Steps[i]
		// Land the virtual clock on exactly the step's instant; the
		// validator guarantees At never decreases, so the delta is
		// non-negative and Advance cannot panic.
		w.timeline.Advance(st.At - w.timeline.Now())
		w.logf("scenario %s: t=%v step %s (%s)", sc.Name, w.timeline.Now(), st.Name, st.Verb)
		result, err := w.execute(st)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: step %q at %v: %w", sc.Name, st.Name, st.At, err)
		}
		tr.Steps = append(tr.Steps, StepRecord{
			Step:   i,
			Name:   st.Name,
			At:     st.At.String(),
			Clock:  w.timeline.Now().String(),
			Verb:   string(st.Verb),
			Result: result,
		})
	}
	return tr, nil
}

// now is the daemon's wall clock: the virtual timeline mapped onto the
// epoch, so latency accounting and enrollment timestamps are pure
// functions of the scenario.
func (w *world) now() time.Time { return w.epoch.Add(w.timeline.Now()) }

// start assembles the factory, the provenance plane, and the in-process
// daemon.
func (w *world) start(workDir string) error {
	cfg := w.sc.Config
	var fab device.Fab
	switch cfg.Backend {
	case "nor":
		part, err := mcu.PartByName(cfg.Part)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		fab = mcu.Fab(part)
	case "nand":
		fab = nand.Fab(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams())
	case "reram":
		fab = reram.DefaultFab()
	default:
		return fmt.Errorf("scenario: unknown backend %q", cfg.Backend)
	}
	w.factory = counterfeit.FactoryConfig{
		Fab:          fab,
		Codec:        wmcode.Codec{Key: []byte(cfg.Key)},
		Manufacturer: cfg.Manufacturer,
		NPE:          cfg.NPE,
	}

	regOpts := registry.Options{NoSync: true, Now: w.now}
	switch w.sc.Registry {
	case RegistryDurable:
		p, err := openDurablePlane(filepath.Join(workDir, "registry"), regOpts)
		if err != nil {
			return err
		}
		w.plane = p
	case RegistryCluster:
		p, err := openClusterPlane(filepath.Join(workDir, "cluster"), w.sc.Shards, regOpts)
		if err != nil {
			return err
		}
		w.plane = p
	}

	svcCfg := service.Config{
		Verifier: counterfeit.Verifier{
			Codec:          wmcode.Codec{Key: []byte(cfg.Key)},
			Manufacturer:   cfg.Manufacturer,
			CheckRecycling: cfg.RecyclingScreen,
		},
		Workers: 1,
		Now:     w.now,
	}
	if f := cfg.Fault; f != nil {
		fc := device.FaultConfig{
			Seed:             f.Seed,
			EraseTimeoutProb: f.EraseTimeout,
			ReadBitFlipProb:  f.ReadBitFlip,
			ProgramErrorProb: f.ProgramError,
		}
		svcCfg.Decorate = func(d device.Device) device.Device {
			return device.InjectFaults(d, fc)
		}
	}
	if w.plane != nil {
		svcCfg.Provenance = w.plane.store()
	}
	if cfg.Challenge {
		// The nonce splits from the scenario seed so every scenario
		// probes its own cell population; a zero draw falls back to the
		// policy default nonce — still a pure function of the document.
		svcCfg.Challenge = &challenge.Policy{
			Nonce: rng.New(w.sc.Seed).Split(0x43525021).Uint64(),
		}
	}
	svcCfg.OmitDeviceFingerprint = !cfg.OracleFingerprint
	srv, err := service.New(svcCfg)
	if err != nil {
		w.stopPlane()
		return fmt.Errorf("scenario: %w", err)
	}
	w.srv = srv
	w.ts = httptest.NewServer(srv.Handler())
	return nil
}

func (w *world) stopPlane() {
	if w.plane != nil {
		if err := w.plane.close(); err != nil {
			w.logf("scenario %s: closing provenance plane: %v", w.sc.Name, err)
		}
		w.plane = nil
	}
}

func (w *world) stop() {
	if w.ts != nil {
		w.ts.Close()
		w.ts = nil
	}
	w.stopPlane()
}

// chipSeed derives a chip's device seed from the scenario seed and the
// chip's name, so every chip's physical identity is a pure function of
// the document no matter where in the step list it is fabricated.
func (w *world) chipSeed(name string, pinned *uint64) uint64 {
	if pinned != nil {
		return *pinned
	}
	h := fnv.New64a()
	io.WriteString(h, name)
	return rng.New(w.sc.Seed).Split2(0x5CE9A810, h.Sum64()).Uint64()
}

func (w *world) chip(name string) (*chipState, error) {
	c, ok := w.chips[name]
	if !ok {
		// The validator rejects references to unfabricated chips, so
		// this only fires for engine bugs — still an error, not a panic.
		return nil, fmt.Errorf("chip %q does not exist", name)
	}
	return c, nil
}

// chipBytes serializes the chip, caching until the next mutation.
func (c *chipState) chipBytes() ([]byte, error) {
	if c.bytes != nil {
		return c.bytes, nil
	}
	var buf bytes.Buffer
	if err := c.dev.Save(&buf); err != nil {
		return nil, fmt.Errorf("serializing chip %q: %w", c.name, err)
	}
	c.bytes = buf.Bytes()
	return c.bytes, nil
}

// chipDigest is the SHA-256 of the chip's serialized state — the same
// digest the daemon reports, recorded after every mutating verb.
func (c *chipState) chipDigest() (string, error) {
	b, err := c.chipBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// execute runs one step and returns its canonical result record.
func (w *world) execute(st *Step) (json.RawMessage, error) {
	switch st.Verb {
	case VerbFabricate:
		return w.execFabricate(st.Fabricate)
	case VerbImprint:
		return w.execImprint(st.Imprint)
	case VerbAge:
		return w.execAge(st.Age)
	case VerbStress:
		return w.execStress(st.Stress)
	case VerbClone:
		return w.execClone(st.Clone)
	case VerbEnroll:
		return w.execEnroll(st.Enroll)
	case VerbVerify:
		return w.execVerify(st.Verify)
	case VerbChallenge:
		return w.execChallenge(st.Challenge)
	case VerbRestartRegistry:
		return w.execRestart()
	case VerbExpect:
		return w.execExpect(st.Expect)
	}
	return nil, fmt.Errorf("unknown verb %q", st.Verb)
}

func (w *world) execFabricate(f *FabricateStep) (json.RawMessage, error) {
	class, err := classByName(f.Class)
	if err != nil {
		return nil, err
	}
	seed := w.chipSeed(f.Chip, f.Seed)
	dev, err := counterfeit.Fabricate(class, w.factory, seed, f.Die)
	if err != nil {
		return nil, fmt.Errorf("fabricating %q: %w", f.Chip, err)
	}
	c := &chipState{name: f.Chip, dev: dev, class: class, die: f.Die, seed: seed}
	w.chips[f.Chip] = c
	digest, err := c.chipDigest()
	if err != nil {
		return nil, err
	}
	die := f.Die
	return marshalResult(chipResult{
		Chip:   f.Chip,
		Class:  class.String(),
		Part:   dev.PartName(),
		Die:    &die,
		Seed:   "0x" + strconv.FormatUint(seed, 16),
		SHA256: digest,
	})
}

func (w *world) execImprint(im *ImprintStep) (json.RawMessage, error) {
	c, err := w.chip(im.Chip)
	if err != nil {
		return nil, err
	}
	status := wmcode.StatusAccept
	if im.Status == "reject" {
		status = wmcode.StatusReject
	}
	if err := w.factory.Imprint(c.dev, im.Die, status); err != nil {
		return nil, fmt.Errorf("imprinting %q: %w", im.Chip, err)
	}
	c.die = im.Die
	c.bytes = nil
	digest, err := c.chipDigest()
	if err != nil {
		return nil, err
	}
	die := im.Die
	return marshalResult(chipResult{Chip: im.Chip, Die: &die, Status: im.Status, SHA256: digest})
}

func (w *world) execAge(a *AgeStep) (json.RawMessage, error) {
	c, err := w.chip(a.Chip)
	if err != nil {
		return nil, err
	}
	if err := device.Age(c.dev, a.Years); err != nil {
		return nil, fmt.Errorf("aging %q: %w", a.Chip, err)
	}
	c.bytes = nil
	digest, err := c.chipDigest()
	if err != nil {
		return nil, err
	}
	return marshalResult(chipResult{Chip: a.Chip, Years: a.Years, SHA256: digest})
}

func (w *world) execStress(s *StressStep) (json.RawMessage, error) {
	c, err := w.chip(s.Chip)
	if err != nil {
		return nil, err
	}
	factory := w.factory
	factory.FieldWearCycles = s.Cycles
	factory.FieldWearSegments = s.Segments
	// The wear pattern splits from the chip's own seed the same way the
	// recycled factory class does, so stressed-then-wiped chips and
	// ClassRecycled chips wear identically.
	if err := factory.ApplyFieldUse(c.dev, c.seed^0xFEED); err != nil {
		return nil, fmt.Errorf("stressing %q: %w", s.Chip, err)
	}
	c.bytes = nil
	digest, err := c.chipDigest()
	if err != nil {
		return nil, err
	}
	return marshalResult(chipResult{Chip: s.Chip, Cycles: s.Cycles, SHA256: digest})
}

func (w *world) execClone(cl *CloneStep) (json.RawMessage, error) {
	victim, err := w.chip(cl.Of)
	if err != nil {
		return nil, err
	}
	seed := w.chipSeed(cl.Chip, cl.Seed)
	dev, err := w.factory.Fab(seed)
	if err != nil {
		return nil, fmt.Errorf("fabricating clone %q: %w", cl.Chip, err)
	}
	if err := counterfeit.ReplayImprintAttack(dev, w.factory, victim.die); err != nil {
		return nil, fmt.Errorf("replay-imprinting %q: %w", cl.Chip, err)
	}
	c := &chipState{
		name:  cl.Chip,
		dev:   dev,
		class: counterfeit.ClassReplayImprint,
		die:   victim.die,
		seed:  seed,
	}
	w.chips[cl.Chip] = c
	digest, err := c.chipDigest()
	if err != nil {
		return nil, err
	}
	die := victim.die
	return marshalResult(chipResult{
		Chip:   cl.Chip,
		Class:  counterfeit.ClassReplayImprint.String(),
		Of:     cl.Of,
		Die:    &die,
		Seed:   "0x" + strconv.FormatUint(seed, 16),
		SHA256: digest,
	})
}

// post uploads a chip file and returns the response.
func (w *world) post(path string, body []byte) (int, []byte, error) {
	resp, err := w.ts.Client().Post(w.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("POST %s: reading response: %w", path, err)
	}
	return resp.StatusCode, out, nil
}

func (w *world) execVerify(v *VerifyStep) (json.RawMessage, error) {
	c, err := w.chip(v.Chip)
	if err != nil {
		return nil, err
	}
	body, err := c.chipBytes()
	if err != nil {
		return nil, err
	}
	status, respBody, err := w.post("/v1/verify", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("verify %q: HTTP %d: %s", v.Chip, status, strings.TrimSpace(string(respBody)))
	}
	var rep service.ChipReport
	if err := json.Unmarshal(respBody, &rep); err != nil {
		return nil, fmt.Errorf("verify %q: decoding report: %w", v.Chip, err)
	}
	if x := v.Expect; x != nil {
		if x.Verdict != "" && rep.Verdict != x.Verdict {
			return nil, fmt.Errorf("verify %q: verdict %s, want %s", v.Chip, rep.Verdict, x.Verdict)
		}
		if x.Accepted != nil && rep.Accepted != *x.Accepted {
			return nil, fmt.Errorf("verify %q: accepted=%v, want %v", v.Chip, rep.Accepted, *x.Accepted)
		}
		if x.Escalated != nil && (rep.Provenance != "") != *x.Escalated {
			return nil, fmt.Errorf("verify %q: escalated=%v (provenance %q), want %v",
				v.Chip, rep.Provenance != "", rep.Provenance, *x.Escalated)
		}
		if x.Fault != nil && (rep.Fault != "") != *x.Fault {
			return nil, fmt.Errorf("verify %q: fault=%v (%q), want %v",
				v.Chip, rep.Fault != "", rep.Fault, *x.Fault)
		}
	}
	raw, err := compactJSON(respBody)
	if err != nil {
		return nil, err
	}
	return marshalResult(httpResult{Chip: v.Chip, Status: status, Report: raw})
}

func (w *world) execEnroll(e *EnrollStep) (json.RawMessage, error) {
	c, err := w.chip(e.Chip)
	if err != nil {
		return nil, err
	}
	body, err := c.chipBytes()
	if err != nil {
		return nil, err
	}
	status, respBody, err := w.post("/v1/enroll", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("enroll %q: HTTP %d: %s", e.Chip, status, strings.TrimSpace(string(respBody)))
	}
	var rep service.EnrollReport
	if err := json.Unmarshal(respBody, &rep); err != nil {
		return nil, fmt.Errorf("enroll %q: decoding report: %w", e.Chip, err)
	}
	if x := e.Expect; x != nil {
		if x.Verdict != "" && rep.Verdict != x.Verdict {
			return nil, fmt.Errorf("enroll %q: verdict %s, want %s", e.Chip, rep.Verdict, x.Verdict)
		}
		if x.Duplicate != nil && rep.Duplicate != *x.Duplicate {
			return nil, fmt.Errorf("enroll %q: duplicate=%v, want %v", e.Chip, rep.Duplicate, *x.Duplicate)
		}
		if x.Conflict != nil && rep.Conflict != *x.Conflict {
			return nil, fmt.Errorf("enroll %q: conflict=%v, want %v", e.Chip, rep.Conflict, *x.Conflict)
		}
		if x.Count != nil && rep.Count != *x.Count {
			return nil, fmt.Errorf("enroll %q: count=%d, want %d", e.Chip, rep.Count, *x.Count)
		}
	}
	raw, err := compactJSON(respBody)
	if err != nil {
		return nil, err
	}
	return marshalResult(httpResult{Chip: e.Chip, Status: status, Report: raw})
}

func (w *world) execChallenge(ch *ChallengeStep) (json.RawMessage, error) {
	c, err := w.chip(ch.Chip)
	if err != nil {
		return nil, err
	}
	body, err := c.chipBytes()
	if err != nil {
		return nil, err
	}
	status, respBody, err := w.post("/v1/challenge", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("challenge %q: HTTP %d: %s", ch.Chip, status, strings.TrimSpace(string(respBody)))
	}
	var rep service.ChallengeReport
	if err := json.Unmarshal(respBody, &rep); err != nil {
		return nil, fmt.Errorf("challenge %q: decoding report: %w", ch.Chip, err)
	}
	if x := ch.Expect; x != nil {
		if x.Verdict != "" && rep.Verdict != x.Verdict {
			return nil, fmt.Errorf("challenge %q: verdict %s, want %s", ch.Chip, rep.Verdict, x.Verdict)
		}
		if x.Enrolled != nil && rep.Enrolled != *x.Enrolled {
			return nil, fmt.Errorf("challenge %q: enrolled=%v, want %v", ch.Chip, rep.Enrolled, *x.Enrolled)
		}
		if x.Match != nil && rep.Match != *x.Match {
			return nil, fmt.Errorf("challenge %q: match=%v, want %v", ch.Chip, rep.Match, *x.Match)
		}
	}
	raw, err := compactJSON(respBody)
	if err != nil {
		return nil, err
	}
	return marshalResult(httpResult{Chip: ch.Chip, Status: status, Report: raw})
}

func (w *world) execRestart() (json.RawMessage, error) {
	if w.plane == nil {
		return nil, fmt.Errorf("restart-registry without a registry")
	}
	if err := w.plane.restart(); err != nil {
		return nil, err
	}
	st := w.plane.store().Stats()
	return marshalResult(expectResult{Registry: &registrySnap{
		Keys:        st.Keys,
		Enrollments: st.Enrollments,
		Conflicts:   st.Conflicts,
	}})
}

func (w *world) execExpect(e *ExpectStep) (json.RawMessage, error) {
	res := expectResult{}
	if len(e.Metrics) > 0 {
		actual, err := w.scrapeMetrics()
		if err != nil {
			return nil, err
		}
		res.Metrics = make(map[string]int64, len(e.Metrics))
		for name, want := range e.Metrics {
			got, ok := actual[name]
			if !ok {
				return nil, fmt.Errorf("expect: /metrics has no series %q", name)
			}
			if got != want {
				return nil, fmt.Errorf("expect: metric %s = %d, want %d", name, got, want)
			}
			res.Metrics[name] = got
		}
	}
	if x := e.Registry; x != nil {
		st := w.plane.store().Stats()
		check := func(what string, got int64, want *int64) error {
			if want != nil && got != *want {
				return fmt.Errorf("expect: registry %s = %d, want %d", what, got, *want)
			}
			return nil
		}
		if err := check("keys", st.Keys, x.Keys); err != nil {
			return nil, err
		}
		if err := check("conflicts", st.Conflicts, x.Conflicts); err != nil {
			return nil, err
		}
		if err := check("enrollments", st.Enrollments, x.Enrollments); err != nil {
			return nil, err
		}
		res.Registry = &registrySnap{
			Keys:        st.Keys,
			Enrollments: st.Enrollments,
			Conflicts:   st.Conflicts,
		}
	}
	return marshalResult(res)
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition
// into integer-valued series (counters and gauges; histogram series
// parse too, keyed by their full line prefix).
func (w *world) scrapeMetrics() (map[string]int64, error) {
	resp, err := w.ts.Client().Get(w.ts.URL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			continue
		}
		name, val := line[:idx], line[idx+1:]
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue // float series (histogram sums) are not assertable
		}
		out[name] = n
	}
	return out, nil
}

// classByName resolves a counterfeit.ChipClass from its canonical
// string form.
func classByName(name string) (counterfeit.ChipClass, error) {
	classes := []counterfeit.ChipClass{
		counterfeit.ClassGenuineAccept, counterfeit.ClassGenuineReject,
		counterfeit.ClassRecycled, counterfeit.ClassMetadataForgery,
		counterfeit.ClassDigitalClone, counterfeit.ClassTopUpTamper,
		counterfeit.ClassUnmarked, counterfeit.ClassReplayImprint,
	}
	for _, c := range classes {
		if c.String() == name {
			return c, nil
		}
	}
	valid := make([]string, len(classes))
	for i, c := range classes {
		valid[i] = c.String()
	}
	return 0, fmt.Errorf("unknown chip class %q (have %s)", name, strings.Join(valid, ", "))
}
