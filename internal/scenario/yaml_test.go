package scenario

import (
	"strings"
	"testing"
)

// TestYAMLShapes drives parseYAML directly over the structural corners
// the scenario documents themselves don't reach: dangling sequence
// items, quoted keys, flow sequences, and the indentation errors.
func TestYAMLShapes(t *testing.T) {
	t.Run("item body on following lines", func(t *testing.T) {
		root, err := parseYAML([]byte("steps:\n  -\n    at: 0s\n    name: a\n"))
		if err != nil {
			t.Fatal(err)
		}
		seq := root.fields["steps"]
		if seq.kind != kindSequence || len(seq.items) != 1 {
			t.Fatalf("got %s with %d items", seq.kind, len(seq.items))
		}
		if seq.items[0].fields["name"].scalar != "a" {
			t.Fatalf("item decoded wrong: %+v", seq.items[0])
		}
	})
	t.Run("flow sequence scalars", func(t *testing.T) {
		root, err := parseYAML([]byte("xs: [1, two, \"three four\"]\n"))
		if err != nil {
			t.Fatal(err)
		}
		xs := root.fields["xs"]
		if len(xs.items) != 3 || xs.items[2].scalar != "three four" || !xs.items[2].quoted {
			t.Fatalf("flow sequence decoded wrong: %+v", xs)
		}
	})
	t.Run("quoted keys block and flow", func(t *testing.T) {
		root, err := parseYAML([]byte("\"a b\": 1\nm: {\"c d\": 2}\n"))
		if err != nil {
			t.Fatal(err)
		}
		if root.fields["a b"] == nil || root.fields["m"].fields["c d"] == nil {
			t.Fatalf("quoted keys lost: %+v", root.keys)
		}
	})
	t.Run("empty flow collections", func(t *testing.T) {
		root, err := parseYAML([]byte("m: {}\ns: []\n"))
		if err != nil {
			t.Fatal(err)
		}
		if root.fields["m"].kind != kindMapping || root.fields["s"].kind != kindSequence {
			t.Fatal("empty flow collections decoded wrong")
		}
	})

	rejects := map[string]struct{ doc, want string }{
		"empty trailing item": {"xs:\n  -\n", "empty sequence item"},
		"item inside mapping": {"a: 1\n- b\n", "sequence item inside a mapping"},
		"no colon":            {"just words\n", "key: value"},
		"empty key":           {": v\n", "empty mapping key"},
		"over-indent":         {"a: 1\n    b: 2\n", "indentation"},
		"unterminated quote":  {"a: \"open\n", "unterminated"},
		"flow trailing junk":  {"a: {b: 1} extra\n", "trailing"},
		"unclosed flow":       {"a: {b: 1\n", ""},
		"long line":           {"a: " + strings.Repeat("x", maxLineBytes+1) + "\n", "line"},
		"value anchor":        {"a: &x\n", "anchor"},
		"value alias":         {"a: *x\n", "anchor"},
	}
	for label, tc := range rejects {
		t.Run(label, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %q", tc.doc)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("rejected for the wrong reason: %v (want %q)", err, tc.want)
			}
		})
	}
}

// TestNodeKindString pins the kind names used in decode error messages.
func TestNodeKindString(t *testing.T) {
	if kindScalar.String() != "scalar" || kindMapping.String() != "mapping" ||
		kindSequence.String() != "sequence" || nodeKind(9).String() != "invalid" {
		t.Fatal("nodeKind names drifted")
	}
}
