package scenario

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/registry"
)

// provPlane is the provenance backing a scenario's daemon: a restartable
// single-node store or an in-process sharded cluster. Both faces hand
// the engine a registry.Store to wire into service.Config.Provenance.
type provPlane interface {
	store() registry.Store
	// restart closes and reopens the underlying durable state — the
	// registry-restart window. Only the durable plane supports it.
	restart() error
	close() error
}

// durablePlane is a registry.Durable behind a swap lock, so the
// restart-registry verb can close the store and recover it from disk
// while the daemon keeps holding the same registry.Store value (and the
// /metrics gauges registered against it stay live).
type durablePlane struct {
	dir  string
	opts registry.Options
	mu   sync.RWMutex
	cur  *registry.Durable
}

func openDurablePlane(dir string, opts registry.Options) (*durablePlane, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d, err := registry.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("scenario: opening registry %s: %w", dir, err)
	}
	return &durablePlane{dir: dir, opts: opts, cur: d}, nil
}

func (p *durablePlane) store() registry.Store { return p }

func (p *durablePlane) restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.cur.Close(); err != nil {
		return fmt.Errorf("scenario: closing registry for restart: %w", err)
	}
	d, err := registry.Open(p.dir, p.opts)
	if err != nil {
		return fmt.Errorf("scenario: reopening registry: %w", err)
	}
	p.cur = d
	return nil
}

func (p *durablePlane) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur.Close()
}

// registry.Store delegation under the swap lock.

func (p *durablePlane) Enroll(e registry.Enrollment) (registry.EnrollResult, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.Enroll(e)
}

func (p *durablePlane) Lookup(k registry.Key) (registry.LookupResult, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.Lookup(k)
}

func (p *durablePlane) SeenBefore(k registry.Key) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.SeenBefore(k)
}

func (p *durablePlane) Stats() registry.Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.Stats()
}

// clusterPlane is an in-process fmregistryd plane: N solo-primary shard
// nodes on loopback listeners, fronted by the same cluster.Client the
// fmverifyd -cluster flag builds. Node-internal deadlines run on the
// host clock (they guard sockets, not scenario semantics); everything
// the transcript records stays a pure function of the scenario.
type clusterPlane struct {
	nodes  []*cluster.Node
	stores []*registry.Durable
	client *cluster.Client
	served sync.WaitGroup
}

func openClusterPlane(dir string, shards int, opts registry.Options) (*clusterPlane, error) {
	p := &clusterPlane{}
	var spec []cluster.ShardSpec
	for i := 0; i < shards; i++ {
		shardDir := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			p.close()
			return nil, err
		}
		store, err := registry.Open(shardDir, opts)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("scenario: opening shard %d: %w", i, err)
		}
		p.stores = append(p.stores, store)
		node, err := cluster.NewNode(cluster.NodeConfig{Store: store, Role: cluster.RolePrimary})
		if err != nil {
			p.close()
			return nil, fmt.Errorf("scenario: shard %d node: %w", i, err)
		}
		p.nodes = append(p.nodes, node)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			p.close()
			return nil, fmt.Errorf("scenario: shard %d listener: %w", i, err)
		}
		spec = append(spec, cluster.ShardSpec{Primary: ln.Addr().String()})
		p.served.Add(1)
		go func(n *cluster.Node, ln net.Listener) {
			defer p.served.Done()
			_ = n.Serve(ln)
		}(node, ln)
	}
	client, err := cluster.NewClient(spec, cluster.ClientOptions{})
	if err != nil {
		p.close()
		return nil, err
	}
	p.client = client
	return p, nil
}

func (p *clusterPlane) store() registry.Store { return p.client }

func (p *clusterPlane) restart() error {
	return fmt.Errorf("scenario: restart-registry is not supported on the cluster plane")
}

func (p *clusterPlane) close() error {
	var firstErr error
	if p.client != nil {
		firstErr = p.client.Close()
	}
	for _, n := range p.nodes {
		if err := n.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.served.Wait()
	for _, s := range p.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
