package scenario

import (
	"fmt"
	"regexp"
	"sort"
	"time"
)

// Spec-level limits. MaxSteps bounds hostile inputs (the fuzz target);
// MaxAt keeps every `at:` offset far from the time.Duration overflow
// horizon (~292 years) so timeline arithmetic can never wrap.
const (
	// MaxSteps caps the step count of one scenario.
	MaxSteps = 512
	// MaxChips caps distinct chips one scenario may define.
	MaxChips = 64
	// MaxAt is the latest step offset a scenario may use: 100 years.
	MaxAt = 100 * 365 * 24 * time.Hour
)

// RegistryMode selects the provenance plane a scenario runs against.
type RegistryMode string

// Registry modes.
const (
	// RegistryNone runs fmverifyd without a fleet registry: /v1/enroll
	// and DUPLICATE-ID escalation are unavailable.
	RegistryNone RegistryMode = "none"
	// RegistryDurable runs a single-node crash-safe registry.Durable in
	// the scenario work directory; restart-registry closes and reopens
	// it mid-scenario.
	RegistryDurable RegistryMode = "durable"
	// RegistryCluster runs a sharded in-process fmregistryd plane
	// (solo-primary nodes) behind cluster.Client, the -cluster path.
	RegistryCluster RegistryMode = "cluster"
)

// Verb names one scenario step kind.
type Verb string

// Step verbs.
const (
	VerbFabricate       Verb = "fabricate"
	VerbImprint         Verb = "imprint"
	VerbAge             Verb = "age"
	VerbStress          Verb = "stress"
	VerbClone           Verb = "clone"
	VerbEnroll          Verb = "enroll"
	VerbVerify          Verb = "verify"
	VerbChallenge       Verb = "challenge"
	VerbRestartRegistry Verb = "restart-registry"
	VerbExpect          Verb = "expect"
)

// Scenario is one parsed, validated scenario document.
type Scenario struct {
	// Name identifies the scenario; transcripts and golden files carry it.
	Name string
	// Seed is the scenario master seed: every derived chip seed and
	// fault stream splits from it, so a scenario is a pure function of
	// its document.
	Seed uint64
	// Registry selects the provenance plane (default none).
	Registry RegistryMode
	// Shards is the cluster shard count (cluster mode only; default 2).
	Shards int
	// Config tunes the world the steps run in.
	Config WorldConfig
	// Steps execute in order; At offsets are non-decreasing.
	Steps []Step
}

// WorldConfig shapes the fabrication factory and the in-process
// verification daemon.
type WorldConfig struct {
	// Backend selects the substrate: "nor" (default), "nand" or "reram".
	Backend string
	// Part is the catalog NOR part (default FM-SIM16; NOR backend only).
	Part string
	// Key is the watermark HMAC key (default "scenario-key").
	Key string
	// Manufacturer is the imprinted manufacturer string (default "TC").
	Manufacturer string
	// NPE is the imprint stress count (0 selects the factory default).
	NPE int
	// RecyclingScreen enables the data-segment wear screen (default true).
	RecyclingScreen bool
	// Challenge enables the daemon's challenge-response plane (the
	// /v1/challenge endpoint and enroll-time response fingerprinting).
	// Requires a registry. The challenge nonce derives from the scenario
	// seed, so interrogations are pure functions of the document.
	Challenge bool
	// OracleFingerprint controls whether enrollment records the
	// simulator's oracle device fingerprint (default true). Setting it
	// false models the honest-hardware regime where no such oracle
	// exists — then only the challenge axis separates a replay clone
	// from its victim.
	OracleFingerprint bool
	// Fault, when set, wraps every device the daemon loads in a seeded
	// fault injector — the misbehaving-silicon lane.
	Fault *FaultSpec
}

// FaultSpec is the scenario-level device fault injection policy,
// mirroring device.FaultConfig.
type FaultSpec struct {
	Seed         uint64
	EraseTimeout float64
	ReadBitFlip  float64
	ProgramError float64
}

// Step is one timed action.
type Step struct {
	// At is the step's offset on the scenario timeline. The engine
	// advances the virtual clock to exactly this instant before
	// executing the step.
	At time.Duration
	// Name uniquely identifies the step within the scenario.
	Name string
	// Verb says which of the payload fields below is set.
	Verb Verb

	Fabricate       *FabricateStep
	Imprint         *ImprintStep
	Age             *AgeStep
	Stress          *StressStep
	Clone           *CloneStep
	Enroll          *EnrollStep
	Verify          *VerifyStep
	Challenge       *ChallengeStep
	RestartRegistry *RestartStep
	Expect          *ExpectStep
}

// FabricateStep manufactures a chip of a ground-truth class.
type FabricateStep struct {
	// Chip names the new chip.
	Chip string
	// Class is the counterfeit.ChipClass name (genuine-accept, recycled,
	// replay-imprint, ...).
	Class string
	// Die is the die id carried by genuine watermarks.
	Die uint64
	// Seed, when non-nil, pins the device seed; otherwise it derives
	// from the scenario seed and the chip name.
	Seed *uint64
}

// ImprintStep runs the manufacturer die-sort imprint on an existing chip.
type ImprintStep struct {
	Chip string
	Die  uint64
	// Status is "accept" or "reject".
	Status string
}

// AgeStep advances a chip's unpowered storage age (retention drift).
type AgeStep struct {
	Chip string
	// Years is the chip's new total storage age (monotone).
	Years float64
}

// StressStep applies first-life field wear to a chip's data segments.
type StressStep struct {
	Chip string
	// Cycles is the P/E count per worn segment (0 selects the factory
	// default).
	Cycles int
	// Segments is how many data segments wear out (0 selects the
	// factory default).
	Segments int
}

// CloneStep fabricates a replay-imprint clone of an existing chip: a
// fresh die carrying a bit-exact copy of the victim's watermark.
type CloneStep struct {
	// Chip names the new clone.
	Chip string
	// Of names the victim whose die id the clone carries.
	Of string
	// Seed optionally pins the clone's device seed.
	Seed *uint64
}

// EnrollStep POSTs the chip to /v1/enroll on the live daemon.
type EnrollStep struct {
	Chip   string
	Expect *EnrollExpect
}

// EnrollExpect asserts on the enroll report.
type EnrollExpect struct {
	Verdict   string
	Duplicate *bool
	Conflict  *bool
	Count     *int
}

// VerifyStep POSTs the chip to /v1/verify on the live daemon.
type VerifyStep struct {
	Chip   string
	Expect *VerifyExpect
}

// VerifyExpect asserts on the verify report.
type VerifyExpect struct {
	// Verdict is the expected verdict string ("GENUINE", "DUPLICATE-ID", ...).
	Verdict string
	// Accepted asserts the accept/refuse decision.
	Accepted *bool
	// Escalated asserts whether the fleet registry escalated the
	// physics verdict (the report carries a provenance reason).
	Escalated *bool
	// Fault asserts whether the report carries a device fault.
	Fault *bool
}

// ChallengeStep POSTs the chip to /v1/challenge on the live daemon.
type ChallengeStep struct {
	Chip   string
	Expect *ChallengeExpect
}

// ChallengeExpect asserts on the challenge report.
type ChallengeExpect struct {
	// Verdict is the expected verdict string ("GENUINE", "DUPLICATE-ID").
	Verdict string
	// Enrolled asserts whether a response fingerprint was on record.
	Enrolled *bool
	// Match asserts whether the chip reproduced the enrolled response.
	Match *bool
}

// RestartStep closes the durable registry and reopens it from disk —
// the registry-restart window, without SIGSTOP theatrics.
type RestartStep struct{}

// ExpectStep asserts on daemon /metrics counters and registry stats.
type ExpectStep struct {
	// Metrics maps /metrics series names to required exact values.
	Metrics map[string]int64
	// Registry asserts on the provenance store's Stats.
	Registry *RegistryExpect
}

// RegistryExpect asserts on registry.Stats fields.
type RegistryExpect struct {
	Keys        *int64
	Conflicts   *int64
	Enrollments *int64
}

var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// Parse decodes and validates one scenario document.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := decodeScenario(root)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return sc, nil
}

func decodeScenario(root *node) (*Scenario, error) {
	if err := root.checkKeys("scenario", "name", "seed", "registry", "shards", "config", "steps"); err != nil {
		return nil, err
	}
	sc := &Scenario{
		Registry: RegistryNone,
		Shards:   2,
		Config: WorldConfig{
			Backend:           "nor",
			Part:              "FM-SIM16",
			Key:               "scenario-key",
			Manufacturer:      "TC",
			RecyclingScreen:   true,
			OracleFingerprint: true,
		},
	}
	n := root.get("name")
	if n == nil {
		return nil, errAt(root.line, "scenario needs a name")
	}
	var err error
	if sc.Name, err = n.asString("name"); err != nil {
		return nil, err
	}
	if n := root.get("seed"); n != nil {
		if sc.Seed, err = n.asUint64("seed"); err != nil {
			return nil, err
		}
	}
	if n := root.get("registry"); n != nil {
		s, err := n.asString("registry")
		if err != nil {
			return nil, err
		}
		sc.Registry = RegistryMode(s)
	}
	if n := root.get("shards"); n != nil {
		if sc.Shards, err = n.asInt("shards"); err != nil {
			return nil, err
		}
	}
	if n := root.get("config"); n != nil {
		if err := decodeConfig(n, &sc.Config); err != nil {
			return nil, err
		}
	}
	stepsNode := root.get("steps")
	if stepsNode == nil {
		return nil, errAt(root.line, "scenario needs steps")
	}
	if err := stepsNode.expect(kindSequence, "steps"); err != nil {
		return nil, err
	}
	if len(stepsNode.items) > MaxSteps {
		return nil, errAt(stepsNode.line, "scenario has %d steps (cap %d)", len(stepsNode.items), MaxSteps)
	}
	for _, item := range stepsNode.items {
		step, err := decodeStep(item)
		if err != nil {
			return nil, err
		}
		sc.Steps = append(sc.Steps, step)
	}
	return sc, nil
}

func decodeConfig(n *node, cfg *WorldConfig) error {
	if err := n.expect(kindMapping, "config"); err != nil {
		return err
	}
	if err := n.checkKeys("config", "backend", "part", "key", "manufacturer",
		"npe", "recycling-screen", "challenge", "oracle-fingerprint", "fault"); err != nil {
		return err
	}
	var err error
	if c := n.get("backend"); c != nil {
		if cfg.Backend, err = c.asString("backend"); err != nil {
			return err
		}
	}
	if c := n.get("part"); c != nil {
		if cfg.Part, err = c.asString("part"); err != nil {
			return err
		}
	}
	if c := n.get("key"); c != nil {
		if cfg.Key, err = c.asString("key"); err != nil {
			return err
		}
	}
	if c := n.get("manufacturer"); c != nil {
		if cfg.Manufacturer, err = c.asString("manufacturer"); err != nil {
			return err
		}
	}
	if c := n.get("npe"); c != nil {
		if cfg.NPE, err = c.asInt("npe"); err != nil {
			return err
		}
	}
	if c := n.get("recycling-screen"); c != nil {
		if cfg.RecyclingScreen, err = c.asBool("recycling-screen"); err != nil {
			return err
		}
	}
	if c := n.get("challenge"); c != nil {
		if cfg.Challenge, err = c.asBool("challenge"); err != nil {
			return err
		}
	}
	if c := n.get("oracle-fingerprint"); c != nil {
		if cfg.OracleFingerprint, err = c.asBool("oracle-fingerprint"); err != nil {
			return err
		}
	}
	if c := n.get("fault"); c != nil {
		if err := c.expect(kindMapping, "fault"); err != nil {
			return err
		}
		if err := c.checkKeys("fault", "seed", "erase-timeout", "read-bit-flip", "program-error"); err != nil {
			return err
		}
		f := &FaultSpec{}
		if v := c.get("seed"); v != nil {
			if f.Seed, err = v.asUint64("fault.seed"); err != nil {
				return err
			}
		}
		if v := c.get("erase-timeout"); v != nil {
			if f.EraseTimeout, err = v.asFloat("fault.erase-timeout"); err != nil {
				return err
			}
		}
		if v := c.get("read-bit-flip"); v != nil {
			if f.ReadBitFlip, err = v.asFloat("fault.read-bit-flip"); err != nil {
				return err
			}
		}
		if v := c.get("program-error"); v != nil {
			if f.ProgramError, err = v.asFloat("fault.program-error"); err != nil {
				return err
			}
		}
		cfg.Fault = f
	}
	return nil
}

// verbKeys are the step keys that carry a verb payload.
var verbKeys = []string{
	string(VerbFabricate), string(VerbImprint), string(VerbAge),
	string(VerbStress), string(VerbClone), string(VerbEnroll),
	string(VerbVerify), string(VerbChallenge), string(VerbRestartRegistry),
	string(VerbExpect),
}

func decodeStep(n *node) (Step, error) {
	var st Step
	if err := n.expect(kindMapping, "step"); err != nil {
		return st, err
	}
	allowed := append([]string{"at", "name"}, verbKeys...)
	if err := n.checkKeys("step", allowed...); err != nil {
		return st, err
	}
	atNode := n.get("at")
	if atNode == nil {
		return st, errAt(n.line, "step needs an at: offset")
	}
	atStr, err := atNode.asString("at")
	if err != nil {
		return st, err
	}
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return st, errAt(atNode.line, "bad at: offset %q: %v", atStr, err)
	}
	st.At = at
	nameNode := n.get("name")
	if nameNode == nil {
		return st, errAt(n.line, "step needs a name")
	}
	if st.Name, err = nameNode.asString("name"); err != nil {
		return st, err
	}
	var verbs []string
	for _, k := range n.keys {
		for _, v := range verbKeys {
			if k == v {
				verbs = append(verbs, k)
			}
		}
	}
	if len(verbs) != 1 {
		return st, errAt(n.line, "step %q must carry exactly one verb, has %d", st.Name, len(verbs))
	}
	st.Verb = Verb(verbs[0])
	body := n.get(verbs[0])
	if err := body.expect(kindMapping, string(st.Verb)); err != nil {
		return st, err
	}
	switch st.Verb {
	case VerbFabricate:
		st.Fabricate, err = decodeFabricate(body)
	case VerbImprint:
		st.Imprint, err = decodeImprint(body)
	case VerbAge:
		st.Age, err = decodeAge(body)
	case VerbStress:
		st.Stress, err = decodeStress(body)
	case VerbClone:
		st.Clone, err = decodeClone(body)
	case VerbEnroll:
		st.Enroll, err = decodeEnroll(body)
	case VerbVerify:
		st.Verify, err = decodeVerify(body)
	case VerbChallenge:
		st.Challenge, err = decodeChallenge(body)
	case VerbRestartRegistry:
		if kerr := body.checkKeys("restart-registry"); kerr != nil {
			return st, kerr
		}
		st.RestartRegistry = &RestartStep{}
	case VerbExpect:
		st.Expect, err = decodeExpect(body)
	}
	return st, err
}

func chipRef(n *node, what string) (string, error) {
	c := n.get("chip")
	if c == nil {
		return "", errAt(n.line, "%s needs a chip", what)
	}
	return c.asString(what + ".chip")
}

func decodeFabricate(n *node) (*FabricateStep, error) {
	if err := n.checkKeys("fabricate", "chip", "class", "die", "seed"); err != nil {
		return nil, err
	}
	f := &FabricateStep{}
	var err error
	if f.Chip, err = chipRef(n, "fabricate"); err != nil {
		return nil, err
	}
	cl := n.get("class")
	if cl == nil {
		return nil, errAt(n.line, "fabricate needs a class")
	}
	if f.Class, err = cl.asString("fabricate.class"); err != nil {
		return nil, err
	}
	if d := n.get("die"); d != nil {
		if f.Die, err = d.asUint64("fabricate.die"); err != nil {
			return nil, err
		}
	}
	if s := n.get("seed"); s != nil {
		v, err := s.asUint64("fabricate.seed")
		if err != nil {
			return nil, err
		}
		f.Seed = &v
	}
	return f, nil
}

func decodeImprint(n *node) (*ImprintStep, error) {
	if err := n.checkKeys("imprint", "chip", "die", "status"); err != nil {
		return nil, err
	}
	im := &ImprintStep{Status: "accept"}
	var err error
	if im.Chip, err = chipRef(n, "imprint"); err != nil {
		return nil, err
	}
	if d := n.get("die"); d != nil {
		if im.Die, err = d.asUint64("imprint.die"); err != nil {
			return nil, err
		}
	}
	if s := n.get("status"); s != nil {
		if im.Status, err = s.asString("imprint.status"); err != nil {
			return nil, err
		}
	}
	return im, nil
}

func decodeAge(n *node) (*AgeStep, error) {
	if err := n.checkKeys("age", "chip", "years"); err != nil {
		return nil, err
	}
	a := &AgeStep{}
	var err error
	if a.Chip, err = chipRef(n, "age"); err != nil {
		return nil, err
	}
	y := n.get("years")
	if y == nil {
		return nil, errAt(n.line, "age needs years")
	}
	if a.Years, err = y.asFloat("age.years"); err != nil {
		return nil, err
	}
	return a, nil
}

func decodeStress(n *node) (*StressStep, error) {
	if err := n.checkKeys("stress", "chip", "cycles", "segments"); err != nil {
		return nil, err
	}
	s := &StressStep{}
	var err error
	if s.Chip, err = chipRef(n, "stress"); err != nil {
		return nil, err
	}
	if c := n.get("cycles"); c != nil {
		if s.Cycles, err = c.asInt("stress.cycles"); err != nil {
			return nil, err
		}
	}
	if c := n.get("segments"); c != nil {
		if s.Segments, err = c.asInt("stress.segments"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func decodeClone(n *node) (*CloneStep, error) {
	if err := n.checkKeys("clone", "chip", "of", "seed"); err != nil {
		return nil, err
	}
	c := &CloneStep{}
	var err error
	if c.Chip, err = chipRef(n, "clone"); err != nil {
		return nil, err
	}
	of := n.get("of")
	if of == nil {
		return nil, errAt(n.line, "clone needs of: the victim chip")
	}
	if c.Of, err = of.asString("clone.of"); err != nil {
		return nil, err
	}
	if s := n.get("seed"); s != nil {
		v, err := s.asUint64("clone.seed")
		if err != nil {
			return nil, err
		}
		c.Seed = &v
	}
	return c, nil
}

func decodeEnroll(n *node) (*EnrollStep, error) {
	if err := n.checkKeys("enroll", "chip", "expect"); err != nil {
		return nil, err
	}
	e := &EnrollStep{}
	var err error
	if e.Chip, err = chipRef(n, "enroll"); err != nil {
		return nil, err
	}
	if x := n.get("expect"); x != nil {
		if err := x.expect(kindMapping, "enroll.expect"); err != nil {
			return nil, err
		}
		if err := x.checkKeys("enroll.expect", "verdict", "duplicate", "conflict", "count"); err != nil {
			return nil, err
		}
		ex := &EnrollExpect{}
		if v := x.get("verdict"); v != nil {
			if ex.Verdict, err = v.asString("enroll.expect.verdict"); err != nil {
				return nil, err
			}
		}
		if v := x.get("duplicate"); v != nil {
			b, err := v.asBool("enroll.expect.duplicate")
			if err != nil {
				return nil, err
			}
			ex.Duplicate = &b
		}
		if v := x.get("conflict"); v != nil {
			b, err := v.asBool("enroll.expect.conflict")
			if err != nil {
				return nil, err
			}
			ex.Conflict = &b
		}
		if v := x.get("count"); v != nil {
			c, err := v.asInt("enroll.expect.count")
			if err != nil {
				return nil, err
			}
			ex.Count = &c
		}
		e.Expect = ex
	}
	return e, nil
}

func decodeVerify(n *node) (*VerifyStep, error) {
	if err := n.checkKeys("verify", "chip", "expect"); err != nil {
		return nil, err
	}
	v := &VerifyStep{}
	var err error
	if v.Chip, err = chipRef(n, "verify"); err != nil {
		return nil, err
	}
	if x := n.get("expect"); x != nil {
		if err := x.expect(kindMapping, "verify.expect"); err != nil {
			return nil, err
		}
		if err := x.checkKeys("verify.expect", "verdict", "accepted", "escalated", "fault"); err != nil {
			return nil, err
		}
		ex := &VerifyExpect{}
		if c := x.get("verdict"); c != nil {
			if ex.Verdict, err = c.asString("verify.expect.verdict"); err != nil {
				return nil, err
			}
		}
		if c := x.get("accepted"); c != nil {
			b, err := c.asBool("verify.expect.accepted")
			if err != nil {
				return nil, err
			}
			ex.Accepted = &b
		}
		if c := x.get("escalated"); c != nil {
			b, err := c.asBool("verify.expect.escalated")
			if err != nil {
				return nil, err
			}
			ex.Escalated = &b
		}
		if c := x.get("fault"); c != nil {
			b, err := c.asBool("verify.expect.fault")
			if err != nil {
				return nil, err
			}
			ex.Fault = &b
		}
		v.Expect = ex
	}
	return v, nil
}

func decodeChallenge(n *node) (*ChallengeStep, error) {
	if err := n.checkKeys("challenge", "chip", "expect"); err != nil {
		return nil, err
	}
	c := &ChallengeStep{}
	var err error
	if c.Chip, err = chipRef(n, "challenge"); err != nil {
		return nil, err
	}
	if x := n.get("expect"); x != nil {
		if err := x.expect(kindMapping, "challenge.expect"); err != nil {
			return nil, err
		}
		if err := x.checkKeys("challenge.expect", "verdict", "enrolled", "match"); err != nil {
			return nil, err
		}
		ex := &ChallengeExpect{}
		if v := x.get("verdict"); v != nil {
			if ex.Verdict, err = v.asString("challenge.expect.verdict"); err != nil {
				return nil, err
			}
		}
		if v := x.get("enrolled"); v != nil {
			b, err := v.asBool("challenge.expect.enrolled")
			if err != nil {
				return nil, err
			}
			ex.Enrolled = &b
		}
		if v := x.get("match"); v != nil {
			b, err := v.asBool("challenge.expect.match")
			if err != nil {
				return nil, err
			}
			ex.Match = &b
		}
		c.Expect = ex
	}
	return c, nil
}

func decodeExpect(n *node) (*ExpectStep, error) {
	if err := n.checkKeys("expect", "metrics", "registry"); err != nil {
		return nil, err
	}
	e := &ExpectStep{}
	if m := n.get("metrics"); m != nil {
		if err := m.expect(kindMapping, "expect.metrics"); err != nil {
			return nil, err
		}
		e.Metrics = make(map[string]int64, len(m.keys))
		for _, k := range m.keys {
			v, err := m.fields[k].asInt64("expect.metrics." + k)
			if err != nil {
				return nil, err
			}
			e.Metrics[k] = v
		}
	}
	if r := n.get("registry"); r != nil {
		if err := r.expect(kindMapping, "expect.registry"); err != nil {
			return nil, err
		}
		if err := r.checkKeys("expect.registry", "keys", "conflicts", "enrollments"); err != nil {
			return nil, err
		}
		re := &RegistryExpect{}
		for _, f := range []struct {
			key string
			dst **int64
		}{{"keys", &re.Keys}, {"conflicts", &re.Conflicts}, {"enrollments", &re.Enrollments}} {
			if v := r.get(f.key); v != nil {
				x, err := v.asInt64("expect.registry." + f.key)
				if err != nil {
					return nil, err
				}
				*f.dst = &x
			}
		}
		e.Registry = re
	}
	if e.Metrics == nil && e.Registry == nil {
		return nil, errAt(n.line, "expect step asserts nothing")
	}
	return e, nil
}

// validate enforces the structural rules the engine relies on:
// identifier discipline, forward-only time, chip dataflow, and mode
// compatibility — everything checkable without running the world.
func (sc *Scenario) validate() error {
	if !nameRe.MatchString(sc.Name) {
		return fmt.Errorf("invalid scenario name %q", sc.Name)
	}
	switch sc.Registry {
	case RegistryNone, RegistryDurable, RegistryCluster:
	default:
		return fmt.Errorf("unknown registry mode %q (have none, durable, cluster)", sc.Registry)
	}
	if sc.Shards < 1 || sc.Shards > 8 {
		return fmt.Errorf("shards must be in [1,8], got %d", sc.Shards)
	}
	switch sc.Config.Backend {
	case "nor", "nand", "reram":
	default:
		return fmt.Errorf("unknown backend %q (have nor, nand, reram)", sc.Config.Backend)
	}
	if sc.Config.Challenge && sc.Registry == RegistryNone {
		return fmt.Errorf("config.challenge requires a registry (set registry: durable or cluster)")
	}
	if sc.Config.NPE < 0 {
		return fmt.Errorf("npe must be non-negative")
	}
	if f := sc.Config.Fault; f != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{{"erase-timeout", f.EraseTimeout}, {"read-bit-flip", f.ReadBitFlip}, {"program-error", f.ProgramError}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("fault.%s probability %v outside [0,1]", p.name, p.v)
			}
		}
	}
	if len(sc.Steps) == 0 {
		return fmt.Errorf("scenario has no steps")
	}
	if !sort.SliceIsSorted(sc.Steps, func(i, j int) bool { return sc.Steps[i].At < sc.Steps[j].At }) {
		return fmt.Errorf("step at: offsets must be non-decreasing (virtual time is forward-only)")
	}
	names := make(map[string]bool, len(sc.Steps))
	chips := make(map[string]bool)
	for i := range sc.Steps {
		st := &sc.Steps[i]
		if !nameRe.MatchString(st.Name) {
			return fmt.Errorf("step %d: invalid name %q", i, st.Name)
		}
		if names[st.Name] {
			return fmt.Errorf("duplicate step name %q", st.Name)
		}
		names[st.Name] = true
		if st.At < 0 {
			return fmt.Errorf("step %q: negative at: offset %v", st.Name, st.At)
		}
		if st.At > MaxAt {
			return fmt.Errorf("step %q: at: offset %v exceeds the %v horizon", st.Name, st.At, MaxAt)
		}
		if err := sc.validateStep(st, chips); err != nil {
			return fmt.Errorf("step %q: %w", st.Name, err)
		}
	}
	return nil
}

func (sc *Scenario) validateStep(st *Step, chips map[string]bool) error {
	defined := func(chip string) error {
		if !nameRe.MatchString(chip) {
			return fmt.Errorf("invalid chip name %q", chip)
		}
		if !chips[chip] {
			return fmt.Errorf("chip %q not fabricated yet", chip)
		}
		return nil
	}
	fresh := func(chip string) error {
		if !nameRe.MatchString(chip) {
			return fmt.Errorf("invalid chip name %q", chip)
		}
		if chips[chip] {
			return fmt.Errorf("chip %q already exists", chip)
		}
		if len(chips) >= MaxChips {
			return fmt.Errorf("scenario defines more than %d chips", MaxChips)
		}
		chips[chip] = true
		return nil
	}
	needRegistry := func(what string) error {
		if sc.Registry == RegistryNone {
			return fmt.Errorf("%s requires a registry (set registry: durable or cluster)", what)
		}
		return nil
	}
	switch st.Verb {
	case VerbFabricate:
		if _, err := classByName(st.Fabricate.Class); err != nil {
			return err
		}
		return fresh(st.Fabricate.Chip)
	case VerbImprint:
		if st.Imprint.Status != "accept" && st.Imprint.Status != "reject" {
			return fmt.Errorf("imprint status %q (want accept or reject)", st.Imprint.Status)
		}
		return defined(st.Imprint.Chip)
	case VerbAge:
		if st.Age.Years <= 0 {
			return fmt.Errorf("age years must be positive, got %v", st.Age.Years)
		}
		return defined(st.Age.Chip)
	case VerbStress:
		if st.Stress.Cycles < 0 || st.Stress.Segments < 0 {
			return fmt.Errorf("stress cycles/segments must be non-negative")
		}
		return defined(st.Stress.Chip)
	case VerbClone:
		if err := defined(st.Clone.Of); err != nil {
			return err
		}
		return fresh(st.Clone.Chip)
	case VerbEnroll:
		if err := needRegistry("enroll"); err != nil {
			return err
		}
		return defined(st.Enroll.Chip)
	case VerbVerify:
		return defined(st.Verify.Chip)
	case VerbChallenge:
		if !sc.Config.Challenge {
			return fmt.Errorf("challenge requires config.challenge: true")
		}
		return defined(st.Challenge.Chip)
	case VerbRestartRegistry:
		if sc.Registry != RegistryDurable {
			return fmt.Errorf("restart-registry requires registry: durable")
		}
		return nil
	case VerbExpect:
		if st.Expect.Registry != nil {
			return needRegistry("expect.registry")
		}
		return nil
	}
	return fmt.Errorf("unknown verb %q", st.Verb)
}
