package scenario

import (
	"strings"
	"testing"
	"time"
)

// FuzzScenarioParse throws arbitrary bytes at the scenario parser. The
// contract under fuzzing: Parse never panics, never accepts a scenario
// that violates the validated invariants, and rejects hostile shapes
// (oversized documents, deep nesting, step floods) with an error. The
// committed seeds in testdata/fuzz/FuzzScenarioParse pin the known
// hostile shapes; go's fuzzer mutates from there.
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte("name: ok\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n"))
	f.Add([]byte("name: out-of-order\nsteps:\n  - at: 2h\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 1h\n    name: b\n    verify: {chip: c}\n"))
	f.Add([]byte("name: negative\nsteps:\n  - at: -1s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n"))
	f.Add([]byte("name: unknown-verb\nsteps:\n  - at: 0s\n    name: a\n    teleport: {chip: c}\n"))
	f.Add([]byte("name: two-verbs\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n    verify: {chip: c}\n"))
	f.Add([]byte("name: dup\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 0s\n    name: a\n    verify: {chip: c}\n"))
	f.Add([]byte("name: \"quoted \\\" name\"\nsteps: []\n"))
	f.Add([]byte("a: &anchor b\n"))
	f.Add([]byte("---\nname: multi\n---\n"))
	f.Add([]byte("name: x\nsteps:\n\t- at: 0s\n"))
	f.Add([]byte(strings.Repeat("k:\n  ", 40) + "v: 1\n"))
	f.Add([]byte("name: flow\nsteps:\n  - {at: 0s, name: a, fabricate: {chip: c, class: unmarked, die: 0xFFFFFFFFFFFFFFFF}}\n"))
	f.Add([]byte("name: horizon\nsteps:\n  - at: 876001h\n    name: a\n    fabricate: {chip: c, class: unmarked}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted scenarios must satisfy every invariant the engine
		// relies on without re-checking.
		if sc.Name == "" {
			t.Fatal("accepted scenario with empty name")
		}
		if len(sc.Steps) == 0 || len(sc.Steps) > MaxSteps {
			t.Fatalf("accepted scenario with %d steps", len(sc.Steps))
		}
		var prev time.Duration
		for i := range sc.Steps {
			st := &sc.Steps[i]
			if st.At < prev {
				t.Fatalf("accepted out-of-order at: %v after %v", st.At, prev)
			}
			prev = st.At
			if st.At < 0 || st.At > MaxAt {
				t.Fatalf("accepted at: %v outside [0, %v]", st.At, MaxAt)
			}
			if st.Verb == "" {
				t.Fatalf("accepted step %q with no verb", st.Name)
			}
		}
	})
}

// TestParseRejectsStepFlood synthesizes a document over the step cap —
// too big to sit in the seed corpus, cheap to build here.
func TestParseRejectsStepFlood(t *testing.T) {
	var b strings.Builder
	b.WriteString("name: flood\nsteps:\n")
	for i := 0; i <= MaxSteps; i++ {
		// Same instant, distinct names: only the cap can reject this.
		b.WriteString("  - at: 0s\n")
		b.WriteString("    name: s")
		for _, c := range []byte{byte('a' + i%26), byte('a' + (i/26)%26), byte('a' + (i/676)%26)} {
			b.WriteByte(c)
		}
		b.WriteString("\n    expect:\n      metrics:\n        x: 0\n")
	}
	if _, err := Parse([]byte(b.String())); err == nil {
		t.Fatalf("accepted %d steps (cap %d)", MaxSteps+1, MaxSteps)
	} else if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("flood rejected for the wrong reason: %v", err)
	}
}

// TestParseRejectsOversizedDocument checks the byte cap fires before any
// structural work.
func TestParseRejectsOversizedDocument(t *testing.T) {
	big := []byte("name: big\n" + strings.Repeat("# padding\n", MaxScenarioBytes/10))
	if _, err := Parse(big); err == nil {
		t.Fatal("accepted oversized document")
	}
}

// TestParseAllocationBounded puts a ceiling on parser allocations for a
// dense document: hostile inputs must not be able to amplify a small
// byte count into unbounded work.
func TestParseAllocationBounded(t *testing.T) {
	var b strings.Builder
	b.WriteString("name: dense\nsteps:\n")
	for i := 0; i < 200; i++ {
		b.WriteString("  - at: 0s\n    name: s")
		b.WriteByte(byte('a' + i%26))
		b.WriteByte(byte('a' + (i/26)%26))
		b.WriteString("\n    expect:\n      metrics:\n        a: 1\n        b: 2\n")
	}
	data := []byte(b.String())
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Parse(data); err != nil {
			t.Fatal(err)
		}
	})
	// ~200 steps with nested maps: generous ceiling, but a quadratic
	// blowup or per-byte allocation bug would sail far past it.
	if allocs > 25_000 {
		t.Fatalf("Parse allocated %.0f objects for a %d-byte document", allocs, len(data))
	}
}
