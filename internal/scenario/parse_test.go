package scenario

import (
	"strings"
	"testing"
	"time"
)

const tinyValid = `# a comment
name: tiny
seed: 0xABC
registry: durable
config:
  part: FM-SIM16
  recycling-screen: false
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c1, class: genuine-accept, die: 0x42}
  - at: 1h30m
    name: check
    verify:
      chip: c1
      expect: {verdict: GENUINE, accepted: true}
`

func TestParseValid(t *testing.T) {
	sc, err := Parse([]byte(tinyValid))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "tiny" || sc.Seed != 0xABC || sc.Registry != RegistryDurable {
		t.Errorf("header decoded wrong: %+v", sc)
	}
	if sc.Config.RecyclingScreen {
		t.Error("recycling-screen: false not applied")
	}
	if len(sc.Steps) != 2 {
		t.Fatalf("got %d steps", len(sc.Steps))
	}
	if sc.Steps[0].Verb != VerbFabricate || sc.Steps[0].Fabricate.Die != 0x42 {
		t.Errorf("step 0 decoded wrong: %+v", sc.Steps[0])
	}
	if sc.Steps[1].At != 90*time.Minute {
		t.Errorf("at: 1h30m decoded as %v", sc.Steps[1].At)
	}
	x := sc.Steps[1].Verify.Expect
	if x == nil || x.Verdict != "GENUINE" || x.Accepted == nil || !*x.Accepted {
		t.Errorf("verify expect decoded wrong: %+v", x)
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse([]byte("name: d\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Registry != RegistryNone || sc.Shards != 2 {
		t.Errorf("registry defaults wrong: %s/%d", sc.Registry, sc.Shards)
	}
	cfg := sc.Config
	if cfg.Backend != "nor" || cfg.Part != "FM-SIM16" || cfg.Key != "scenario-key" ||
		cfg.Manufacturer != "TC" || !cfg.RecyclingScreen {
		t.Errorf("config defaults wrong: %+v", cfg)
	}
	if cfg.Challenge || !cfg.OracleFingerprint {
		t.Errorf("challenge defaults wrong: %+v", cfg)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]struct {
		doc     string
		wantErr string
	}{
		"empty":                            {"", "empty"},
		"no name":                          {"steps: []\n", "name"},
		"no steps":                         {"name: x\n", "steps"},
		"empty steps":                      {"name: x\nsteps: []\n", "no steps"},
		"unknown key":                      {"name: x\nbogus: 1\nsteps: []\n", "bogus"},
		"bad registry":                     {"name: x\nregistry: etcd\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "registry"},
		"bad backend":                      {"name: x\nconfig: {backend: dram}\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "backend"},
		"bad class":                        {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: shiny}\n", "class"},
		"out of order":                     {"name: x\nsteps:\n  - at: 1h\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 1s\n    name: b\n    verify: {chip: c}\n", "non-decreasing"},
		"negative at":                      {"name: x\nsteps:\n  - at: -5s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "negative at:"},
		"beyond horizon":                   {"name: x\nsteps:\n  - at: 900000h\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "horizon"},
		"dup step name":                    {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 0s\n    name: a\n    verify: {chip: c}\n", "duplicate"},
		"no verb":                          {"name: x\nsteps:\n  - at: 0s\n    name: a\n", "exactly one verb"},
		"two verbs":                        {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n    verify: {chip: c}\n", "exactly one verb"},
		"unknown verb":                     {"name: x\nsteps:\n  - at: 0s\n    name: a\n    teleport: {chip: c}\n", "teleport"},
		"verify before fab":                {"name: x\nsteps:\n  - at: 0s\n    name: a\n    verify: {chip: ghost}\n", "not fabricated"},
		"clone unknown victim":             {"name: x\nsteps:\n  - at: 0s\n    name: a\n    clone: {chip: c, of: ghost}\n", "not fabricated"},
		"refabricate":                      {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 0s\n    name: b\n    fabricate: {chip: c, class: unmarked}\n", "already exists"},
		"enroll without registry":          {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: genuine-accept}\n  - at: 0s\n    name: b\n    enroll: {chip: c}\n", "requires a registry"},
		"restart without durable":          {"name: x\nsteps:\n  - at: 0s\n    name: a\n    restart-registry: {}\n", "durable"},
		"challenge plane without registry": {"name: x\nconfig: {challenge: true}\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "requires a registry"},
		"challenge verb without plane":     {"name: x\nregistry: durable\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: genuine-accept}\n  - at: 0s\n    name: b\n    challenge: {chip: c}\n", "config.challenge"},
		"bad imprint status":               {"name: x\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n  - at: 0s\n    name: b\n    imprint: {chip: c, status: maybe}\n", "accept or reject"},
		"empty expect":                     {"name: x\nsteps:\n  - at: 0s\n    name: a\n    expect: {}\n", "asserts nothing"},
		"fault prob":                       {"name: x\nconfig: {fault: {erase-timeout: 1.5}}\nsteps:\n  - at: 0s\n    name: a\n    fabricate: {chip: c, class: unmarked}\n", "[0,1]"},
		"tab indent":                       {"name: x\nsteps:\n\t- at: 0s\n", "tab"},
		"anchor":                           {"name: &x y\nsteps: []\n", "anchor"},
		"multi-doc":                        {"---\nname: x\n---\n", "document"},
		"dup yaml key":                     {"name: x\nname: y\nsteps: []\n", "duplicate mapping key"},
	}
	for label, tc := range cases {
		t.Run(label, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("rejected for the wrong reason: %v (want substring %q)", err, tc.wantErr)
			}
		})
	}
}

// TestParseTypeErrors sweeps wrongly-typed values through every
// decoder: each document must be rejected (the reason substring is the
// decoders' business; here only the rejection itself is pinned).
func TestParseTypeErrors(t *testing.T) {
	step := func(body string) string {
		return "name: x\nsteps:\n  - at: 0s\n    name: a\n" + body
	}
	fab := "  - at: 0s\n    name: f\n    fabricate: {chip: c, class: unmarked}\n"
	cases := map[string]string{
		"name not scalar":     "name: [a]\nsteps: []\n",
		"seed not number":     "name: x\nseed: pretty\nsteps: []\n",
		"seed not scalar":     "name: x\nseed: [1]\nsteps: []\n",
		"shards not number":   "name: x\nregistry: cluster\nshards: many\nsteps: []\n",
		"steps not sequence":  "name: x\nsteps: {a: 1}\n",
		"step not mapping":    "name: x\nsteps:\n  - 5\n",
		"config not mapping":  "name: x\nconfig: 5\nsteps: []\n",
		"config key typed":    "name: x\nconfig: {key: [1]}\nsteps: []\n",
		"config npe bad":      "name: x\nconfig: {npe: soft}\nsteps: []\n",
		"recycling not bool":  "name: x\nconfig: {recycling-screen: sure}\nsteps: []\n",
		"fault not mapping":   "name: x\nconfig: {fault: 7}\nsteps: []\n",
		"fault prob string":   "name: x\nconfig: {fault: {erase-timeout: likely}}\nsteps: []\n",
		"at not duration":     "name: x\nsteps:\n  - at: noon\n    name: a\n" + "    fabricate: {chip: c, class: unmarked}\n",
		"at not scalar":       "name: x\nsteps:\n  - at: [0s]\n    name: a\n",
		"fab die bad hex":     step("    fabricate: {chip: c, class: unmarked, die: 0xZZ}\n"),
		"fab seed bad":        step("    fabricate: {chip: c, class: unmarked, seed: lucky}\n"),
		"fab not mapping":     step("    fabricate: 5\n"),
		"fab unknown key":     step("    fabricate: {chip: c, class: unmarked, color: red}\n"),
		"imprint die missing": step(fab + "  - at: 0s\n    name: b\n    imprint: {chip: c}\n"),
		"age years string":    step(fab + "  - at: 0s\n    name: b\n    age: {chip: c, years: old}\n"),
		"age years negative":  step(fab + "  - at: 0s\n    name: b\n    age: {chip: c, years: -1}\n"),
		"stress cycles typed": step(fab + "  - at: 0s\n    name: b\n    stress: {chip: c, cycles: many}\n"),
		"stress negative":     step(fab + "  - at: 0s\n    name: b\n    stress: {chip: c, cycles: -4}\n"),
		"clone seed typed":    step(fab + "  - at: 0s\n    name: b\n    clone: {chip: d, of: c, seed: [1]}\n"),
		"clone self":          step(fab + "  - at: 0s\n    name: b\n    clone: {chip: c, of: c}\n"),
		"verify accepted":     step(fab + "  - at: 0s\n    name: b\n    verify: {chip: c, expect: {accepted: maybe}}\n"),
		"verify expect typed": step(fab + "  - at: 0s\n    name: b\n    verify: {chip: c, expect: 5}\n"),
		"enroll count typed":  "name: x\nregistry: durable\nsteps:\n" + fab + "  - at: 0s\n    name: b\n    enroll: {chip: c, expect: {count: few}}\n",
		"enroll dup typed":    "name: x\nregistry: durable\nsteps:\n" + fab + "  - at: 0s\n    name: b\n    enroll: {chip: c, expect: {duplicate: 3}}\n",
		"metrics not mapping": step("    expect:\n      metrics: [a]\n"),
		"metric value typed":  step("    expect:\n      metrics:\n        m: lots\n"),
		"registry keys typed": step("    expect:\n      registry: {keys: some}\n"),
		"registry not map":    step("    expect:\n      registry: 9\n"),
	}
	for label, doc := range cases {
		t.Run(label, func(t *testing.T) {
			if _, err := Parse([]byte(doc)); err == nil {
				t.Fatalf("accepted %q", doc)
			}
		})
	}
}

func TestParseFlowAndQuoting(t *testing.T) {
	doc := "name: q\nsteps:\n" +
		"  - {at: 0s, name: a, fabricate: {chip: c, class: unmarked, seed: 0xDEAD}}\n" +
		"  - at: 1s\n    name: \"b.with-punct_ok\"\n    verify: {chip: c, expect: {verdict: \"NO-WATERMARK\"}}\n"
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Steps[0].Fabricate.Seed == nil || *sc.Steps[0].Fabricate.Seed != 0xDEAD {
		t.Errorf("pinned seed decoded wrong: %+v", sc.Steps[0].Fabricate)
	}
	if sc.Steps[1].Name != "b.with-punct_ok" {
		t.Errorf("quoted name decoded as %q", sc.Steps[1].Name)
	}
	if sc.Steps[1].Verify.Expect.Verdict != "NO-WATERMARK" {
		t.Errorf("quoted verdict decoded as %q", sc.Steps[1].Verify.Expect.Verdict)
	}
}

func TestParseChipCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("name: many\nsteps:\n")
	for i := 0; i <= MaxChips; i++ {
		b.WriteString("  - at: 0s\n    name: s")
		b.WriteByte(byte('a' + i%26))
		b.WriteByte(byte('a' + (i/26)%26))
		b.WriteString("\n    fabricate: {chip: c")
		b.WriteByte(byte('a' + i%26))
		b.WriteByte(byte('a' + (i/26)%26))
		b.WriteString(", class: unmarked}\n")
	}
	if _, err := Parse([]byte(b.String())); err == nil {
		t.Fatalf("accepted %d chips (cap %d)", MaxChips+1, MaxChips)
	}
}
