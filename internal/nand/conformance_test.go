package nand_test

import (
	"testing"

	"github.com/flashmark/flashmark/internal/device/devicetest"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nand"
)

// The block-granularity adapter honors the same device contract as the
// NOR backend.
func TestDeviceConformance(t *testing.T) {
	devicetest.Run(t, "NAND-SIM", nand.Fab(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams()))
}
