package nand

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

// ImprintOptions controls ImprintBlock.
type ImprintOptions struct {
	// NPE is the stress cycle count.
	NPE int
	// Accelerated exits each erase once the cells have crossed.
	Accelerated bool
}

// ImprintBlock imprints a watermark into a NAND block by repeated
// erase+program cycling (the Fig. 7 procedure at block granularity):
// each cycle erases the block and programs every page with its slice of
// the watermark. The watermark must cover the whole block.
//
// For large NPE the loop is fast-forwarded with the same closed-form
// wear accounting the NOR path uses (the per-cycle physical increments
// are state-independent after the first cycle); equivalence against the
// literal loop is covered by tests.
func ImprintBlock(d *Device, block int, watermark []byte, opts ImprintOptions) error {
	geom := d.Geometry()
	if len(watermark) != geom.BlockBytes() {
		return fmt.Errorf("nand: watermark is %d bytes, block holds %d", len(watermark), geom.BlockBytes())
	}
	if opts.NPE <= 0 {
		return fmt.Errorf("nand: imprint needs positive NPE, got %d", opts.NPE)
	}
	// Literal loop for small NPE keeps the command-level fidelity cheap;
	// fast-forward above a threshold.
	const literalLimit = 64
	if opts.NPE <= literalLimit {
		return imprintLiteral(d, block, watermark, opts)
	}
	return imprintFastForward(d, block, watermark, opts)
}

func imprintLiteral(d *Device, block int, watermark []byte, opts ImprintOptions) error {
	geom := d.Geometry()
	for cycle := 0; cycle < opts.NPE; cycle++ {
		if opts.Accelerated {
			if _, err := d.EraseBlockAdaptive(block); err != nil {
				return err
			}
		} else {
			if err := d.EraseBlock(block); err != nil {
				return err
			}
		}
		for page := 0; page < geom.PagesPerBlock; page++ {
			slice := watermark[page*geom.PageBytes : (page+1)*geom.PageBytes]
			if err := d.ProgramPage(block, page, slice); err != nil {
				return err
			}
		}
	}
	return nil
}

func imprintFastForward(d *Device, block int, watermark []byte, opts ImprintOptions) error {
	geom := d.Geometry()
	n := opts.NPE
	cells := geom.CellsPerBlock()
	base := block * cells
	fullWear := d.model.EraseWear(true)
	eraseOnly := d.model.EraseWear(false)
	progWear := d.model.ProgramWear()
	// Wear in closed form (see flashctl.StressSegmentWords).
	for i := 0; i < cells; i++ {
		cell := base + i
		one := watermark[i/8]&(1<<uint(i%8)) != 0
		add := d.model.EraseWear(d.cells.Programmed(cell))
		if n > 1 {
			if one {
				add += float64(n-1) * eraseOnly
			} else {
				add += float64(n-1) * fullWear
			}
		}
		if !one {
			add += float64(n) * progWear
		}
		d.cells.AddWear(cell, add)
		if one {
			d.cells.SetMargin(cell, float64(nor.MarginErased))
		} else {
			d.cells.SetMargin(cell, float64(nor.MarginProgrammed))
		}
	}
	d.nextPage[block] = geom.PagesPerBlock
	// Time accounting.
	progPerCycle := time.Duration(geom.PagesPerBlock) * d.timing.PageProgram
	d.charge(vclock.OpOverhead, time.Duration(n)*(d.timing.OpSetup*time.Duration(1+geom.PagesPerBlock)))
	d.charge(vclock.OpProgram, time.Duration(n)*progPerCycle)
	if !opts.Accelerated {
		d.charge(vclock.OpErase, time.Duration(n)*d.timing.BlockErase)
		return nil
	}
	// Adaptive pulses: integrate the max-tau growth over the cycles.
	maxTauAt := func(cycles float64) float64 {
		maxTau := 0.0
		for i := 0; i < cells; i++ {
			if watermark[i/8]&(1<<uint(i%8)) != 0 {
				continue
			}
			wear := d.cells.Wear(base+i) - float64(n)*(fullWear+progWear) + cycles*(fullWear+progWear)
			if wear < 0 {
				wear = 0
			}
			tau := d.model.TauAt(block, i, wear)
			if tau > maxTau {
				maxTau = tau
			}
		}
		return maxTau
	}
	const samples = 9
	meanTau := 0.0
	prev := maxTauAt(0)
	for s := 1; s < samples; s++ {
		cur := maxTauAt(float64(s) / float64(samples-1) * float64(n))
		meanTau += (prev + cur) / 2
		prev = cur
	}
	meanTau /= float64(samples - 1)
	pulse := time.Duration(meanTau*float64(time.Microsecond)) + d.timing.AdaptiveEraseSettle
	if pulse > d.timing.BlockErase {
		pulse = d.timing.BlockErase
	}
	d.charge(vclock.OpErase, time.Duration(n)*pulse)
	return nil
}

// ExtractBlock retrieves a watermark from a NAND block (the Fig. 8
// procedure at block granularity): erase, program every page all-zeros,
// partial block erase for tPEW, read all pages.
func ExtractBlock(d *Device, block int, tPEW time.Duration) ([]byte, error) {
	if tPEW <= 0 {
		return nil, fmt.Errorf("nand: non-positive t_PEW %v", tPEW)
	}
	geom := d.Geometry()
	if err := d.EraseBlock(block); err != nil {
		return nil, err
	}
	zeros := make([]byte, geom.PageBytes)
	for page := 0; page < geom.PagesPerBlock; page++ {
		if err := d.ProgramPage(block, page, zeros); err != nil {
			return nil, err
		}
	}
	if err := d.PartialEraseBlock(block, tPEW); err != nil {
		return nil, err
	}
	out := make([]byte, 0, geom.BlockBytes())
	for page := 0; page < geom.PagesPerBlock; page++ {
		data, err := d.ReadPage(block, page)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// BitErrors counts differing bits between two byte slices.
func BitErrors(got, want []byte) int {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	errs := 0
	for i := 0; i < n; i++ {
		d := got[i] ^ want[i]
		for d != 0 {
			errs++
			d &= d - 1
		}
	}
	if len(got) != len(want) {
		longer := len(got)
		if len(want) > longer {
			longer = len(want)
		}
		errs += (longer - n) * 8
	}
	return errs
}
