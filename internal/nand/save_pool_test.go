package nand

// Mirror of mcu's save-pool pinning tests: the pooled buffers must
// never leak one chip's bytes into another's file.

import (
	"bytes"
	"testing"
)

func saveBytes(t *testing.T, a *Adapter) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveDeterministicAcrossPoolReuse(t *testing.T) {
	a := Adapt(newNAND(t, 31))
	b := Adapt(newNAND(t, 32))
	first := saveBytes(t, a)
	for i := 0; i < 4; i++ {
		saveBytes(t, b)
	}
	if again := saveBytes(t, a); !bytes.Equal(first, again) {
		t.Fatal("Save output changed after pool reuse")
	}
	// And the reloaded chip still parses to the same identity.
	got, err := LoadAdapter(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed() != a.Seed() || got.Geometry() != a.Geometry() {
		t.Fatal("identity lost through pooled save")
	}
}
