// Package nand models a NAND flash device and carries Flashmark over to
// it, substantiating the paper's concluding claim (§VI): "the proposed
// method is applicable broadly to NOR and NAND flash memories."
//
// NAND differs from NOR in organization and discipline, not in cell
// physics: cells are erased a *block* at a time and programmed a *page*
// at a time, pages within a block must be programmed in order, and a page
// cannot be reprogrammed without erasing its whole block. The floating-
// gate wear physics (package floatgate) is shared; the imprint stresses a
// reserved block and the extraction uses a partial *block* erase.
package nand

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/vclock"
)

// Geometry describes a NAND array.
type Geometry struct {
	Blocks        int // erase units
	PagesPerBlock int // program/read units per block
	PageBytes     int // bytes per page
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Blocks <= 0 || g.PagesPerBlock <= 0 || g.PageBytes <= 0:
		return fmt.Errorf("nand: geometry fields must be positive: %+v", g)
	case g.PageBytes%2 != 0:
		return fmt.Errorf("nand: page size %d must be even", g.PageBytes)
	}
	// Same cap as nor.Geometry: host state is ~100x the flash size, and
	// serialized geometries arrive from untrusted chip files.
	total := int64(g.Blocks) * int64(g.PagesPerBlock) * int64(g.PageBytes)
	if total > 4<<20 {
		return fmt.Errorf("nand: geometry of %d bytes exceeds the supported maximum", total)
	}
	return nil
}

// BlockBytes returns the bytes per block.
func (g Geometry) BlockBytes() int { return g.PagesPerBlock * g.PageBytes }

// CellsPerBlock returns the bit cells per block.
func (g Geometry) CellsPerBlock() int { return g.BlockBytes() * 8 }

// CellsPerPage returns the bit cells per page.
func (g Geometry) CellsPerPage() int { return g.PageBytes * 8 }

// SmallNAND returns a compact SLC NAND geometry for simulation:
// 8 blocks x 8 pages x 512 B.
func SmallNAND() Geometry {
	return Geometry{Blocks: 8, PagesPerBlock: 8, PageBytes: 512}
}

// Timing holds NAND operation durations (SLC-class part).
type Timing struct {
	BlockErase          time.Duration // nominal block erase (~2 ms)
	PageProgram         time.Duration // page program (~300 µs)
	PageRead            time.Duration // page read to host (~25 µs)
	OpSetup             time.Duration
	AdaptiveEraseSettle time.Duration
}

// SLCTiming returns typical SLC NAND timings.
func SLCTiming() Timing {
	return Timing{
		BlockErase:          2 * time.Millisecond,
		PageProgram:         300 * time.Microsecond,
		PageRead:            25 * time.Microsecond,
		OpSetup:             10 * time.Microsecond,
		AdaptiveEraseSettle: 20 * time.Microsecond,
	}
}

// Validate reports whether all durations are positive.
func (t Timing) Validate() error {
	for _, d := range []time.Duration{t.BlockErase, t.PageProgram, t.PageRead, t.OpSetup, t.AdaptiveEraseSettle} {
		if d <= 0 {
			return fmt.Errorf("nand: all timings must be positive: %+v", t)
		}
	}
	return nil
}

// Device is one simulated NAND chip. Cell state reuses the nor.Array
// store (margins + wear per cell) with one "segment" per NAND block.
type Device struct {
	geom   Geometry
	timing Timing
	params floatgate.Params
	seed   uint64
	model  *floatgate.Model
	cells  *nor.Array
	clock  *vclock.Clock
	ledger *vclock.Ledger
	noise  *rng.Stream
	// nextPage tracks the sequential-programming cursor per block;
	// a value of PagesPerBlock means the block is full.
	nextPage []int

	// Batched physics state (fastphys.go). bases/uorder cache the
	// immutable per-cell parameters per block; the scratch slices keep
	// steady-state batched ops allocation-free. physRef selects the
	// per-cell reference loops instead (device.PhysicsSelector).
	physRef    bool
	bases      [][]floatgate.CellBase
	uorder     [][]int32
	maxScratch floatgate.MaxTauScratch
	gidScratch []int32
	wgScratch  []nandWearGroup
	envScratch []nandWearGroup
}

// norGeomFor maps a NAND geometry onto the nor.Array cell store: one
// "segment" per block, 16-bit words.
func norGeomFor(geom Geometry) nor.Geometry {
	return nor.Geometry{
		Banks:           1,
		SegmentsPerBank: geom.Blocks,
		SegmentBytes:    geom.BlockBytes(),
		WordBytes:       2,
	}
}

// newDevice assembles a Device from already-validated parts. Callers
// own validation and the cell store: NewDevice allocates fresh state,
// while Loader.Load supplies recycled cells and page cursors.
func newDevice(geom Geometry, timing Timing, params floatgate.Params, seed uint64,
	model *floatgate.Model, cells *nor.Array, nextPage []int) *Device {
	return &Device{
		geom:     geom,
		timing:   timing,
		params:   params,
		seed:     seed,
		model:    model,
		cells:    cells,
		clock:    &vclock.Clock{},
		ledger:   &vclock.Ledger{},
		noise:    rng.New(seed ^ 0x4E414E44),
		nextPage: nextPage,
	}
}

// NewDevice fabricates a NAND chip with the given physics and seed.
func NewDevice(geom Geometry, timing Timing, params floatgate.Params, seed uint64) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	model, err := floatgate.NewModel(params, seed)
	if err != nil {
		return nil, err
	}
	// One nor "segment" per block holds the cell state.
	arr, err := nor.NewArray(norGeomFor(geom))
	if err != nil {
		return nil, err
	}
	return newDevice(geom, timing, params, seed, model, arr, make([]int, geom.Blocks)), nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the device's operation timings.
func (d *Device) Timing() Timing { return d.timing }

// Seed returns the chip seed (die identity).
func (d *Device) Seed() uint64 { return d.seed }

// Clock returns the device's virtual clock.
func (d *Device) Clock() *vclock.Clock { return d.clock }

// Ledger returns the device's time ledger.
func (d *Device) Ledger() *vclock.Ledger { return d.ledger }

func (d *Device) charge(class vclock.OpClass, dur time.Duration) {
	d.clock.Advance(d.ledger.Charge(class, dur))
}

func (d *Device) checkBlock(block int) error {
	if block < 0 || block >= d.geom.Blocks {
		return fmt.Errorf("nand: block %d outside device of %d blocks", block, d.geom.Blocks)
	}
	return nil
}

func (d *Device) cellIndex(block, page, bit int) int {
	return block*d.geom.CellsPerBlock() + page*d.geom.CellsPerPage() + bit
}

// EraseBlock erases a whole block (the only erase granularity NAND has).
func (d *Device) EraseBlock(block int) error {
	if err := d.checkBlock(block); err != nil {
		return err
	}
	d.eraseBlockCells(block)
	d.nextPage[block] = 0
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpErase, d.timing.BlockErase)
	return nil
}

func (d *Device) eraseBlockCells(block int) {
	// One pass over the contiguous span; same EraseWear increments and
	// margin stores as the per-cell accessor loop.
	margins, wear := d.cells.CellSpan(block)
	fullWear := d.model.EraseWear(true)
	eraseOnly := d.model.EraseWear(false)
	for i := range margins {
		if margins[i] < 0 {
			wear[i] += fullWear
		} else {
			wear[i] += eraseOnly
		}
		margins[i] = nor.MarginErased
	}
}

// EraseBlockAdaptive erases a block but exits as soon as the slowest
// programmed cell has crossed (the accelerated imprint primitive).
func (d *Device) EraseBlockAdaptive(block int) (time.Duration, error) {
	if err := d.checkBlock(block); err != nil {
		return 0, err
	}
	maxTau := 0.0
	if !d.physRef {
		margins, wear := d.cells.CellSpan(block)
		maxTau, _ = d.maxTauOver(block,
			func(i int) bool { return margins[i] < 0 },
			func(i int) float64 { return wear[i] })
	} else {
		cells := d.geom.CellsPerBlock()
		base := block * cells
		for i := 0; i < cells; i++ {
			if !d.cells.Programmed(base + i) {
				continue
			}
			tau := d.model.TauAt(block, i, d.cells.Wear(base+i))
			if tau > maxTau {
				maxTau = tau
			}
		}
	}
	d.eraseBlockCells(block)
	d.nextPage[block] = 0
	pulse := time.Duration(maxTau*float64(time.Microsecond)) + d.timing.AdaptiveEraseSettle
	if pulse > d.timing.BlockErase {
		pulse = d.timing.BlockErase
	}
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpErase, pulse)
	return pulse, nil
}

// PartialEraseBlock starts a block erase and aborts it after the pulse —
// the extraction primitive, identical in spirit to the NOR partial
// segment erase.
func (d *Device) PartialEraseBlock(block int, pulse time.Duration) error {
	if err := d.checkBlock(block); err != nil {
		return err
	}
	if pulse < 0 {
		return fmt.Errorf("nand: negative pulse %v", pulse)
	}
	if pulse >= d.timing.BlockErase {
		return d.EraseBlock(block)
	}
	pulseUs := float64(pulse) / float64(time.Microsecond)
	if !d.physRef {
		d.partialEraseBlockFast(block, pulseUs)
	} else {
		cells := d.geom.CellsPerBlock()
		base := block * cells
		for i := 0; i < cells; i++ {
			cell := base + i
			margin := d.cells.Margin(cell)
			wasProgrammed := margin < 0
			switch {
			case margin <= float64(nor.MarginProgrammed):
				tau := d.model.TauAt(block, i, d.cells.Wear(cell))
				d.cells.SetMargin(cell, pulseUs-tau)
			case margin >= float64(nor.MarginErased):
				// stays erased
			default:
				d.cells.SetMargin(cell, margin+pulseUs)
			}
			d.cells.AddWear(cell, d.model.EraseWear(wasProgrammed))
		}
	}
	// The aborted erase leaves the block logically dirty; require an
	// erase before further page programming.
	d.nextPage[block] = d.geom.PagesPerBlock
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpPartialErase, pulse)
	return nil
}

// ProgramPage programs one page. NAND discipline is enforced: pages of a
// block must be programmed strictly in order, and a page cannot be
// re-programmed without erasing the block first.
func (d *Device) ProgramPage(block, page int, data []byte) error {
	if err := d.checkBlock(block); err != nil {
		return err
	}
	if page < 0 || page >= d.geom.PagesPerBlock {
		return fmt.Errorf("nand: page %d outside block of %d pages", page, d.geom.PagesPerBlock)
	}
	if len(data) != d.geom.PageBytes {
		return fmt.Errorf("nand: page data is %d bytes, want %d", len(data), d.geom.PageBytes)
	}
	if page != d.nextPage[block] {
		return fmt.Errorf("nand: out-of-order program of page %d (next allowed %d); erase the block to rewind",
			page, d.nextPage[block])
	}
	for byteIdx, b := range data {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<uint(bit)) != 0 {
				continue
			}
			cell := d.cellIndex(block, page, byteIdx*8+bit)
			d.cells.AddWear(cell, d.model.ProgramWear())
			d.cells.SetMargin(cell, float64(nor.MarginProgrammed))
		}
	}
	d.nextPage[block] = page + 1
	d.charge(vclock.OpOverhead, d.timing.OpSetup)
	d.charge(vclock.OpProgram, d.timing.PageProgram)
	return nil
}

// ReadPage reads one page; metastable cells (after a partial erase)
// sample noisily per read.
func (d *Device) ReadPage(block, page int) ([]byte, error) {
	return d.ReadPageInto(block, page, nil)
}

// ReadPageInto reads one page into dst (reusing its capacity) and
// returns the filled slice — the allocation-free form of ReadPage.
// Cell decisions and noise-stream consumption are identical to ReadPage:
// only the output buffer management differs.
func (d *Device) ReadPageInto(block, page int, dst []byte) ([]byte, error) {
	if err := d.checkBlock(block); err != nil {
		return nil, err
	}
	if page < 0 || page >= d.geom.PagesPerBlock {
		return nil, fmt.Errorf("nand: page %d outside block of %d pages", page, d.geom.PagesPerBlock)
	}
	n := d.geom.PageBytes
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	margins, _ := d.cells.CellSpan(block)
	pageBase := page * d.geom.CellsPerPage()
	for byteIdx := range dst {
		var b byte
		for bit := 0; bit < 8; bit++ {
			margin := margins[pageBase+byteIdx*8+bit]
			var one bool
			switch {
			case margin >= nor.MarginErased:
				one = true
			case margin <= nor.MarginProgrammed:
				one = false
			default:
				one = d.model.SampleRead(float64(margin), d.noise)
			}
			if one {
				b |= 1 << uint(bit)
			}
		}
		dst[byteIdx] = b
	}
	d.charge(vclock.OpRead, d.timing.PageRead)
	return dst, nil
}

// BlockWear returns min/mean/max wear across a block.
func (d *Device) BlockWear(block int) (minW, meanW, maxW float64, err error) {
	if err := d.checkBlock(block); err != nil {
		return 0, 0, 0, err
	}
	return d.cells.SegmentWearSummary(block)
}
