package nand

import (
	"bytes"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/floatgate"
)

// wordsOf packs a byte watermark into the adapter's 16-bit word view.
func wordsOf(wm []byte) []uint64 {
	out := make([]uint64, len(wm)/2)
	for i := range out {
		out[i] = uint64(wm[2*i]) | uint64(wm[2*i+1])<<8
	}
	return out
}

// ones counts 1 bits in a page image.
func ones(data []byte) int {
	n := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

func newNAND(t *testing.T, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(SmallNAND(), SLCTiming(), floatgate.DefaultParams(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	if err := SmallNAND().Validate(); err != nil {
		t.Fatalf("SmallNAND invalid: %v", err)
	}
	bad := []Geometry{
		{Blocks: 0, PagesPerBlock: 8, PageBytes: 512},
		{Blocks: 8, PagesPerBlock: 0, PageBytes: 512},
		{Blocks: 8, PagesPerBlock: 8, PageBytes: 0},
		{Blocks: 8, PagesPerBlock: 8, PageBytes: 511},
		{Blocks: 1 << 20, PagesPerBlock: 1 << 10, PageBytes: 1 << 12},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid geometry %+v accepted", g)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := SLCTiming().Validate(); err != nil {
		t.Fatalf("SLC timing invalid: %v", err)
	}
	bad := SLCTiming()
	bad.PageProgram = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PageProgram accepted")
	}
}

func TestNewDeviceRejectsBadInputs(t *testing.T) {
	if _, err := NewDevice(Geometry{}, SLCTiming(), floatgate.DefaultParams(), 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := NewDevice(SmallNAND(), Timing{}, floatgate.DefaultParams(), 1); err == nil {
		t.Error("bad timing accepted")
	}
	p := floatgate.DefaultParams()
	p.ReadNoiseSigmaUs = 0
	if _, err := NewDevice(SmallNAND(), SLCTiming(), p, 1); err == nil {
		t.Error("bad params accepted")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := newNAND(t, 1)
	data := make([]byte, d.Geometry().PageBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := d.ProgramPage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page round trip failed")
	}
	// Other pages untouched: all 0xFF.
	got, err = d.ReadPage(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("untouched page byte = %#x", b)
		}
	}
}

func TestSequentialPageDiscipline(t *testing.T) {
	d := newNAND(t, 2)
	zeros := make([]byte, d.Geometry().PageBytes)
	// Page 1 before page 0: rejected.
	if err := d.ProgramPage(0, 1, zeros); err == nil {
		t.Fatal("out-of-order program accepted")
	}
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatal(err)
	}
	// Re-programming page 0 without erase: rejected.
	if err := d.ProgramPage(0, 0, zeros); err == nil {
		t.Fatal("page rewrite without erase accepted")
	}
	if err := d.ProgramPage(0, 1, zeros); err != nil {
		t.Fatal(err)
	}
	// Erase rewinds the cursor.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestProgramValidation(t *testing.T) {
	d := newNAND(t, 3)
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.ProgramPage(-1, 0, zeros); err == nil {
		t.Error("negative block accepted")
	}
	if err := d.ProgramPage(0, 99, zeros); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := d.ProgramPage(0, 0, zeros[:10]); err == nil {
		t.Error("short page data accepted")
	}
	if _, err := d.ReadPage(99, 0); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := d.EraseBlock(99); err == nil {
		t.Error("out-of-range erase accepted")
	}
	if err := d.PartialEraseBlock(0, -time.Microsecond); err == nil {
		t.Error("negative pulse accepted")
	}
}

func TestPartialEraseBlockSweep(t *testing.T) {
	d := newNAND(t, 4)
	geom := d.Geometry()
	zeros := make([]byte, geom.PageBytes)
	programAll := func() {
		if err := d.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < geom.PagesPerBlock; p++ {
			if err := d.ProgramPage(0, p, zeros); err != nil {
				t.Fatal(err)
			}
		}
	}
	countOnes := func() int {
		total := 0
		for p := 0; p < geom.PagesPerBlock; p++ {
			data, err := d.ReadPage(0, p)
			if err != nil {
				t.Fatal(err)
			}
			total += ones(data)
		}
		return total
	}
	programAll()
	if err := d.PartialEraseBlock(0, 5*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := countOnes(); got != 0 {
		t.Errorf("5µs pulse erased %d cells", got)
	}
	programAll()
	if err := d.PartialEraseBlock(0, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := countOnes(); got != geom.CellsPerBlock() {
		t.Errorf("50µs pulse erased %d of %d cells", got, geom.CellsPerBlock())
	}
}

func TestPartialEraseRequiresEraseBeforeProgram(t *testing.T) {
	d := newNAND(t, 5)
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.PartialEraseBlock(0, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, 0, zeros); err == nil {
		t.Fatal("program into a dirty (aborted-erase) block accepted")
	}
}

func TestImprintExtractRoundTripNAND(t *testing.T) {
	// The §VI claim in action: the very same core procedures that drive
	// NOR segments drive NAND blocks through the adapter.
	a := Adapt(newNAND(t, 6))
	geom := a.Geometry()
	wm := make([]byte, geom.SegmentBytes)
	for i := range wm {
		wm[i] = "NAND FLASHMARK! "[i%16]
	}
	words := wordsOf(wm)
	if err := core.ImprintSegment(a, 0, words, core.ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	got, err := core.ExtractSegment(a, 0, core.ExtractOptions{TPEW: 24 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ber := core.BER(got, words, geom.WordBits())
	if ber > 0.15 {
		t.Fatalf("NAND extraction BER = %.3f", ber)
	}
}

func TestImprintFastForwardMatchesLiteral(t *testing.T) {
	a := Adapt(newNAND(t, 7))
	b := Adapt(newNAND(t, 7))
	geom := a.Geometry()
	wm := make([]byte, geom.SegmentBytes)
	for i := range wm {
		wm[i] = 0x5A
	}
	words := wordsOf(wm)
	const n = 30
	if err := core.ImprintSegment(a, 0, words, core.ImprintOptions{NPE: n, Literal: true}); err != nil {
		t.Fatal(err)
	}
	if err := core.ImprintSegment(b, 0, words, core.ImprintOptions{NPE: n}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if a.d.cells.Wear(i) != b.d.cells.Wear(i) {
			t.Fatalf("wear diverged at cell %d: %v vs %v", i, a.d.cells.Wear(i), b.d.cells.Wear(i))
		}
		if a.d.cells.Programmed(i) != b.d.cells.Programmed(i) {
			t.Fatalf("state diverged at cell %d", i)
		}
	}
	if a.Clock().Now() != b.Clock().Now() {
		t.Errorf("time diverged: literal %v vs fast %v", a.Clock().Now(), b.Clock().Now())
	}
}

func TestImprintValidation(t *testing.T) {
	a := Adapt(newNAND(t, 8))
	if err := core.ImprintSegment(a, 0, []uint64{1, 2}, core.ImprintOptions{NPE: 10}); err == nil {
		t.Error("short watermark accepted")
	}
	wm := make([]uint64, a.Geometry().WordsPerSegment())
	if err := core.ImprintSegment(a, 0, wm, core.ImprintOptions{NPE: -1}); err == nil {
		t.Error("negative NPE accepted")
	}
	if err := core.ImprintSegment(a, 1<<30, wm, core.ImprintOptions{NPE: 10}); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := core.ExtractSegment(a, 0, core.ExtractOptions{}); err == nil {
		t.Error("zero tPEW accepted")
	}
}

func TestWatermarkSurvivesWipeNAND(t *testing.T) {
	a := Adapt(newNAND(t, 9))
	geom := a.Geometry()
	wm := make([]byte, geom.SegmentBytes)
	for i := range wm {
		wm[i] = byte(i)
	}
	words := wordsOf(wm)
	if err := core.ImprintSegment(a, 0, words, core.ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	// Counterfeiter wipes and rewrites.
	if err := a.d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	cover := make([]byte, a.d.Geometry().PageBytes)
	for i := range cover {
		cover[i] = 0xAA
	}
	if err := a.d.ProgramPage(0, 0, cover); err != nil {
		t.Fatal(err)
	}
	got, err := core.ExtractSegment(a, 0, core.ExtractOptions{TPEW: 24 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ber := core.BER(got, words, geom.WordBits())
	if ber > 0.15 {
		t.Fatalf("watermark lost after wipe: BER %.3f", ber)
	}
}

func TestBlockWear(t *testing.T) {
	a := Adapt(newNAND(t, 10))
	geom := a.Geometry()
	wm := make([]uint64, geom.WordsPerSegment()) // all zeros: stress everything
	addr, err := geom.AddrOfSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ImprintSegment(a, addr, wm, core.ImprintOptions{NPE: 1000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	_, mean, _, err := a.d.BlockWear(1)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 999 {
		t.Errorf("mean wear = %v after 1000 cycles", mean)
	}
	minW, _, maxW, err := a.d.BlockWear(0)
	if err != nil || minW != 0 || maxW != 0 {
		t.Errorf("untouched block wear %v..%v, %v", minW, maxW, err)
	}
	if _, _, _, err := a.d.BlockWear(99); err == nil {
		t.Error("bad block accepted")
	}
}

func TestAdapterSaveLoadRoundTrip(t *testing.T) {
	a := Adapt(newNAND(t, 12))
	words := make([]uint64, a.Geometry().WordsPerSegment())
	for i := range words {
		words[i] = uint64(i*37) & 0xFFFF
	}
	if err := core.ImprintSegment(a, 0, words, core.ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAdapter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seed() != a.Seed() || b.Geometry() != a.Geometry() {
		t.Fatal("identity not preserved")
	}
	for i := 0; i < a.Geometry().CellsPerSegment(); i++ {
		if a.d.cells.Wear(i) != b.d.cells.Wear(i) || a.d.cells.Margin(i) != b.d.cells.Margin(i) {
			t.Fatalf("cell %d state not preserved", i)
		}
	}
	// The loaded chip extracts the same watermark (noise streams are
	// device-local, so compare against the original words).
	got, err := core.ExtractSegment(b, 0, core.ExtractOptions{TPEW: 24 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if ber := core.BER(got, words, 16); ber > 0.15 {
		t.Fatalf("reloaded chip BER = %.3f", ber)
	}
}

func TestAdapterProgramDiscipline(t *testing.T) {
	a := Adapt(newNAND(t, 13))
	geom := a.Geometry()
	wordsPerPage := a.d.Geometry().PageBytes / geom.WordBytes
	// A partial-page program is rejected.
	if err := a.ProgramBlock(0, make([]uint64, wordsPerPage-1)); err == nil {
		t.Error("partial-page program accepted")
	}
	// An unaligned whole-page program is rejected.
	if err := a.ProgramBlock(geom.WordBytes, make([]uint64, wordsPerPage)); err == nil {
		t.Error("unaligned program accepted")
	}
	// Whole pages in order work.
	if err := a.ProgramBlock(0, make([]uint64, geom.WordsPerSegment())); err != nil {
		t.Fatal(err)
	}
}

func TestAdapterReadWordSemantics(t *testing.T) {
	a := Adapt(newNAND(t, 14))
	geom := a.Geometry()
	pattern := make([]uint64, geom.WordsPerSegment())
	for i := range pattern {
		pattern[i] = uint64(i*3) & 0xFFFF
	}
	if err := a.ProgramBlock(0, pattern); err != nil {
		t.Fatal(err)
	}
	before := a.Ledger().Total()
	words, err := a.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != pattern[i] {
			t.Fatalf("word %d = %#x, want %#x", i, w, pattern[i])
		}
	}
	// One page fetch per page for the sequential pass.
	gotReads := a.Ledger().Total() - before
	want := time.Duration(a.d.Geometry().PagesPerBlock) * a.d.Timing().PageRead
	if gotReads != want {
		t.Errorf("sequential read charged %v, want %v (one fetch per page)", gotReads, want)
	}
	// Re-reading the same word refetches (independent noise samples).
	before = a.Ledger().Total()
	if _, err := a.ReadWord(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadWord(0); err != nil {
		t.Fatal(err)
	}
	if got := a.Ledger().Total() - before; got != 2*a.d.Timing().PageRead {
		t.Errorf("double read charged %v, want two page fetches", got)
	}
}

func TestNANDTimeAccounting(t *testing.T) {
	d := newNAND(t, 11)
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	want := SLCTiming().BlockErase + SLCTiming().PageProgram + SLCTiming().PageRead + 2*SLCTiming().OpSetup
	if d.Clock().Now() != want {
		t.Errorf("clock = %v, want %v", d.Clock().Now(), want)
	}
}

// TestLoaderMatchesLoadAdapter proves the reusable Loader is equivalent
// to the one-shot LoadAdapter: identical reconstructed state across
// chips loaded back to back through one warm Loader, and the garbage
// LoadAdapter rejects stays rejected.
func TestLoaderMatchesLoadAdapter(t *testing.T) {
	imprinted := Adapt(newNAND(t, 21))
	words := make([]uint64, imprinted.Geometry().WordsPerSegment())
	for i := range words {
		words[i] = uint64(i*37) & 0xFFFF
	}
	if err := core.ImprintSegment(imprinted, 0, words, core.ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	partial := Adapt(newNAND(t, 22))
	if err := partial.ProgramBlock(0, make([]uint64, partial.d.Geometry().PageBytes/2)); err != nil {
		t.Fatal(err)
	}
	var l Loader
	for i, a := range []*Adapter{imprinted, partial, Adapt(newNAND(t, 23))} {
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		got, err := l.Load(buf.Bytes())
		if err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		want, err := LoadAdapter(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		if got.Seed() != want.Seed() || got.Geometry() != want.Geometry() {
			t.Fatalf("chip %d: identity diverges", i)
		}
		for c := 0; c < got.Geometry().TotalCells(); c++ {
			if got.d.cells.Margin(c) != want.d.cells.Margin(c) || got.d.cells.Wear(c) != want.d.cells.Wear(c) {
				t.Fatalf("chip %d: cell %d state diverges", i, c)
			}
		}
		for b := range got.d.nextPage {
			if got.d.nextPage[b] != want.d.nextPage[b] {
				t.Fatalf("chip %d: page cursor of block %d diverges: %d vs %d",
					i, b, got.d.nextPage[b], want.d.nextPage[b])
			}
		}
	}
	for i, c := range []string{
		"",
		"not json",
		`{"format":"other","version":1}`,
		`{"format":"flashmark-nand-chip","version":99}`,
		`{"format":"flashmark-nand-chip","version":1,"geometry":{"Blocks":-1}}`,
		`{"format":"flashmark-nand-chip","version":1}`,
	} {
		if _, err := l.Load([]byte(c)); err == nil {
			t.Errorf("garbage case %d accepted by warm Loader", i)
		}
	}
	// The loader must still work after rejecting garbage.
	var buf bytes.Buffer
	if err := imprinted.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(buf.Bytes()); err != nil {
		t.Fatalf("Loader broken after rejections: %v", err)
	}
}
