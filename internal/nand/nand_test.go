package nand

import (
	"bytes"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/floatgate"
)

func newNAND(t *testing.T, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(SmallNAND(), SLCTiming(), floatgate.DefaultParams(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	if err := SmallNAND().Validate(); err != nil {
		t.Fatalf("SmallNAND invalid: %v", err)
	}
	bad := []Geometry{
		{Blocks: 0, PagesPerBlock: 8, PageBytes: 512},
		{Blocks: 8, PagesPerBlock: 0, PageBytes: 512},
		{Blocks: 8, PagesPerBlock: 8, PageBytes: 0},
		{Blocks: 8, PagesPerBlock: 8, PageBytes: 511},
		{Blocks: 1 << 20, PagesPerBlock: 1 << 10, PageBytes: 1 << 12},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid geometry %+v accepted", g)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := SLCTiming().Validate(); err != nil {
		t.Fatalf("SLC timing invalid: %v", err)
	}
	bad := SLCTiming()
	bad.PageProgram = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PageProgram accepted")
	}
}

func TestNewDeviceRejectsBadInputs(t *testing.T) {
	if _, err := NewDevice(Geometry{}, SLCTiming(), floatgate.DefaultParams(), 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := NewDevice(SmallNAND(), Timing{}, floatgate.DefaultParams(), 1); err == nil {
		t.Error("bad timing accepted")
	}
	p := floatgate.DefaultParams()
	p.ReadNoiseSigmaUs = 0
	if _, err := NewDevice(SmallNAND(), SLCTiming(), p, 1); err == nil {
		t.Error("bad params accepted")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := newNAND(t, 1)
	data := make([]byte, d.Geometry().PageBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := d.ProgramPage(0, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page round trip failed")
	}
	// Other pages untouched: all 0xFF.
	got, err = d.ReadPage(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("untouched page byte = %#x", b)
		}
	}
}

func TestSequentialPageDiscipline(t *testing.T) {
	d := newNAND(t, 2)
	zeros := make([]byte, d.Geometry().PageBytes)
	// Page 1 before page 0: rejected.
	if err := d.ProgramPage(0, 1, zeros); err == nil {
		t.Fatal("out-of-order program accepted")
	}
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatal(err)
	}
	// Re-programming page 0 without erase: rejected.
	if err := d.ProgramPage(0, 0, zeros); err == nil {
		t.Fatal("page rewrite without erase accepted")
	}
	if err := d.ProgramPage(0, 1, zeros); err != nil {
		t.Fatal(err)
	}
	// Erase rewinds the cursor.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestProgramValidation(t *testing.T) {
	d := newNAND(t, 3)
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.ProgramPage(-1, 0, zeros); err == nil {
		t.Error("negative block accepted")
	}
	if err := d.ProgramPage(0, 99, zeros); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := d.ProgramPage(0, 0, zeros[:10]); err == nil {
		t.Error("short page data accepted")
	}
	if _, err := d.ReadPage(99, 0); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := d.EraseBlock(99); err == nil {
		t.Error("out-of-range erase accepted")
	}
	if err := d.PartialEraseBlock(0, -time.Microsecond); err == nil {
		t.Error("negative pulse accepted")
	}
}

func TestPartialEraseBlockSweep(t *testing.T) {
	d := newNAND(t, 4)
	geom := d.Geometry()
	zeros := make([]byte, geom.PageBytes)
	programAll := func() {
		if err := d.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < geom.PagesPerBlock; p++ {
			if err := d.ProgramPage(0, p, zeros); err != nil {
				t.Fatal(err)
			}
		}
	}
	countOnes := func() int {
		ones := 0
		for p := 0; p < geom.PagesPerBlock; p++ {
			data, err := d.ReadPage(0, p)
			if err != nil {
				t.Fatal(err)
			}
			ones += BitErrors(data, zeros) // vs zeros, every 1 counts
		}
		return ones
	}
	programAll()
	if err := d.PartialEraseBlock(0, 5*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := countOnes(); got != 0 {
		t.Errorf("5µs pulse erased %d cells", got)
	}
	programAll()
	if err := d.PartialEraseBlock(0, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := countOnes(); got != geom.CellsPerBlock() {
		t.Errorf("50µs pulse erased %d of %d cells", got, geom.CellsPerBlock())
	}
}

func TestPartialEraseRequiresEraseBeforeProgram(t *testing.T) {
	d := newNAND(t, 5)
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.PartialEraseBlock(0, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, 0, zeros); err == nil {
		t.Fatal("program into a dirty (aborted-erase) block accepted")
	}
}

func TestImprintExtractRoundTripNAND(t *testing.T) {
	// The §VI claim in action: the NOR procedure carries to NAND.
	d := newNAND(t, 6)
	geom := d.Geometry()
	wm := make([]byte, geom.BlockBytes())
	for i := range wm {
		wm[i] = "NAND FLASHMARK! "[i%16]
	}
	if err := ImprintBlock(d, 0, wm, ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractBlock(d, 0, 24*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	ber := float64(BitErrors(got, wm)) / float64(geom.CellsPerBlock())
	if ber > 0.15 {
		t.Fatalf("NAND extraction BER = %.3f", ber)
	}
}

func TestImprintFastForwardMatchesLiteral(t *testing.T) {
	a := newNAND(t, 7)
	b := newNAND(t, 7)
	geom := a.Geometry()
	wm := make([]byte, geom.BlockBytes())
	for i := range wm {
		wm[i] = 0x5A
	}
	const n = 30 // literal path
	if err := ImprintBlock(a, 0, wm, ImprintOptions{NPE: n}); err != nil {
		t.Fatal(err)
	}
	// Force the fast-forward path via the internal function.
	if err := imprintFastForward(b, 0, wm, ImprintOptions{NPE: n}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < geom.CellsPerBlock(); i++ {
		if a.cells.Wear(i) != b.cells.Wear(i) {
			t.Fatalf("wear diverged at cell %d: %v vs %v", i, a.cells.Wear(i), b.cells.Wear(i))
		}
		if a.cells.Programmed(i) != b.cells.Programmed(i) {
			t.Fatalf("state diverged at cell %d", i)
		}
	}
	if a.Clock().Now() != b.Clock().Now() {
		t.Errorf("time diverged: literal %v vs fast %v", a.Clock().Now(), b.Clock().Now())
	}
}

func TestImprintValidation(t *testing.T) {
	d := newNAND(t, 8)
	if err := ImprintBlock(d, 0, []byte{1, 2}, ImprintOptions{NPE: 10}); err == nil {
		t.Error("short watermark accepted")
	}
	wm := make([]byte, d.Geometry().BlockBytes())
	if err := ImprintBlock(d, 0, wm, ImprintOptions{NPE: 0}); err == nil {
		t.Error("zero NPE accepted")
	}
	if err := ImprintBlock(d, 99, wm, ImprintOptions{NPE: 10}); err == nil {
		t.Error("bad block accepted")
	}
	if _, err := ExtractBlock(d, 0, 0); err == nil {
		t.Error("zero tPEW accepted")
	}
}

func TestWatermarkSurvivesWipeNAND(t *testing.T) {
	d := newNAND(t, 9)
	geom := d.Geometry()
	wm := make([]byte, geom.BlockBytes())
	for i := range wm {
		wm[i] = byte(i)
	}
	if err := ImprintBlock(d, 0, wm, ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	// Counterfeiter wipes and rewrites.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	cover := make([]byte, geom.PageBytes)
	for i := range cover {
		cover[i] = 0xAA
	}
	if err := d.ProgramPage(0, 0, cover); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractBlock(d, 0, 24*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	ber := float64(BitErrors(got, wm)) / float64(geom.CellsPerBlock())
	if ber > 0.15 {
		t.Fatalf("watermark lost after wipe: BER %.3f", ber)
	}
}

func TestBlockWear(t *testing.T) {
	d := newNAND(t, 10)
	wm := make([]byte, d.Geometry().BlockBytes()) // all zeros: stress everything
	if err := ImprintBlock(d, 1, wm, ImprintOptions{NPE: 1000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	_, mean, _, err := d.BlockWear(1)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 999 {
		t.Errorf("mean wear = %v after 1000 cycles", mean)
	}
	minW, _, maxW, err := d.BlockWear(0)
	if err != nil || minW != 0 || maxW != 0 {
		t.Errorf("untouched block wear %v..%v, %v", minW, maxW, err)
	}
	if _, _, _, err := d.BlockWear(99); err == nil {
		t.Error("bad block accepted")
	}
}

func TestBitErrorsHelper(t *testing.T) {
	if n := BitErrors([]byte{0xFF}, []byte{0x0F}); n != 4 {
		t.Errorf("BitErrors = %d, want 4", n)
	}
	if n := BitErrors([]byte{0xFF, 0xFF}, []byte{0xFF}); n != 8 {
		t.Errorf("length mismatch = %d, want 8", n)
	}
	if n := BitErrors(nil, nil); n != 0 {
		t.Errorf("empty = %d", n)
	}
}

func TestNANDTimeAccounting(t *testing.T) {
	d := newNAND(t, 11)
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, d.Geometry().PageBytes)
	if err := d.ProgramPage(0, 0, zeros); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	want := SLCTiming().BlockErase + SLCTiming().PageProgram + SLCTiming().PageRead + 2*SLCTiming().OpSetup
	if d.Clock().Now() != want {
		t.Errorf("clock = %v, want %v", d.Clock().Now(), want)
	}
}
