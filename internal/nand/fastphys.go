package nand

import (
	"fmt"
	"math"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
)

// The NAND batched physics path. NAND shares the floating-gate physics
// with NOR but applies no retention/temperature transform, so the fast
// path here is simpler than the NOR controller's: per-block CellBase
// caches kill the dominant per-cell Base recomputation (the reference
// TauAt re-derives the die RNG per call), wear-grouped TauEnv hoisting
// shares the transcendental work of one erase across every cell at the
// same wear, and the adaptive-erase max rides the pruned
// floatgate.MaxTauGroup kernel. All of it is a reorganization of the
// reference arithmetic — results are bit-identical, pinned by the
// equivalence tests — and the reference per-cell loops remain selectable
// through device.PhysicsSelector.

// PhysicsPath reports which physics implementation the device runs.
func (d *Device) PhysicsPath() device.PhysicsPath {
	if d.physRef {
		return device.PhysicsReference
	}
	return device.PhysicsFast
}

// SetPhysicsPath selects the physics implementation. Both paths are
// bit-identical; the reference path exists as the equivalence oracle.
func (d *Device) SetPhysicsPath(p device.PhysicsPath) error {
	switch p {
	case device.PhysicsFast:
		d.physRef = false
	case device.PhysicsReference:
		d.physRef = true
	default:
		return fmt.Errorf("nand: unknown physics path %q", p)
	}
	return nil
}

// blockPhys returns the lazily-built immutable cell parameters of one
// block: the CellBase cache and the U-ascending index order MaxTauGroup
// requires. Bases depend only on the die seed and the cell address —
// never on wear or margins — so the cache is never invalidated.
func (d *Device) blockPhys(block int) ([]floatgate.CellBase, []int32) {
	if d.bases == nil {
		d.bases = make([][]floatgate.CellBase, d.geom.Blocks)
		d.uorder = make([][]int32, d.geom.Blocks)
	}
	if d.bases[block] == nil {
		cells := d.geom.CellsPerBlock()
		bases := d.model.BasesInto(block, cells, nil)
		idx := make([]int32, cells)
		for i := range idx {
			idx[i] = int32(i)
		}
		floatgate.SortIndexByU(bases, idx)
		d.bases[block], d.uorder[block] = bases, idx
	}
	return d.bases[block], d.uorder[block]
}

// nandWearGroup collects the cells of one op that share a wear value, so
// the wear-dependent tau terms are hoisted once per group.
type nandWearGroup struct {
	key     uint64 // math.Float64bits of the wear
	env     floatgate.TauEnv
	members []int32 // ascending U (uorder walk)
}

// appendWearGroup grows groups by one entry for (key, env), recycling a
// spare slot's member slice when capacity allows.
func appendWearGroup(groups []nandWearGroup, key uint64, env floatgate.TauEnv) []nandWearGroup {
	if len(groups) < cap(groups) {
		groups = groups[:len(groups)+1]
		g := &groups[len(groups)-1]
		g.key, g.env, g.members = key, env, g.members[:0]
		return groups
	}
	return append(groups, nandWearGroup{key: key, env: env})
}

// envFor returns the hoisted tau environment for wear w, reusing this
// op's already-built group when the wear value repeats (the common case:
// a stress leaves two wear classes, one per watermark polarity).
func (d *Device) envFor(w float64) *floatgate.TauEnv {
	key := math.Float64bits(w)
	for j := range d.envScratch {
		if d.envScratch[j].key == key {
			return &d.envScratch[j].env
		}
	}
	d.envScratch = appendWearGroup(d.envScratch, key, d.model.TauEnvAt(w))
	return &d.envScratch[len(d.envScratch)-1].env
}

// maxTauOver computes max TauAt(block, i, wearOf(i)) over the included
// cells in one batched pass: cells are grouped by exact wear value, each
// group's max rides the pruned MaxTauGroup kernel, and the group maxima
// combine with the same > comparison the reference scan uses — the
// result is bit-identical to the sequential loop. Declines (ok=false)
// when the reference physics path is selected.
func (d *Device) maxTauOver(block int, include func(i int) bool, wearOf func(i int) float64) (float64, bool) {
	if d.physRef {
		return 0, false
	}
	bases, uorder := d.blockPhys(block)
	cells := len(bases)
	if cap(d.gidScratch) < cells {
		d.gidScratch = make([]int32, cells)
	}
	gid := d.gidScratch[:cells]

	groups := d.wgScratch[:0]
	lastKey, lastGid := uint64(0), int32(-1)
	for i := 0; i < cells; i++ {
		if !include(i) {
			gid[i] = -1
			continue
		}
		key := math.Float64bits(wearOf(i))
		if lastGid >= 0 && key == lastKey {
			gid[i] = lastGid
			continue
		}
		g := int32(-1)
		for j := range groups {
			if groups[j].key == key {
				g = int32(j)
				break
			}
		}
		if g < 0 {
			groups = appendWearGroup(groups, key, d.model.TauEnvAt(wearOf(i)))
			g = int32(len(groups) - 1)
		}
		gid[i], lastKey, lastGid = g, key, g
	}
	// Walking the immutable U-order keeps every group's member list
	// ascending in U, which MaxTauGroup requires.
	for _, i := range uorder {
		if g := gid[i]; g >= 0 {
			groups[g].members = append(groups[g].members, i)
		}
	}
	best := 0.0
	for j := range groups {
		if tau, ok := floatgate.MaxTauGroup(&groups[j].env, bases, groups[j].members, &d.maxScratch); ok && tau > best {
			best = tau
		}
	}
	d.wgScratch = groups
	return best, true
}

// partialEraseBlockFast is the batched body of PartialEraseBlock: one
// pass over the block's contiguous cell span, with the wear-dependent
// tau terms hoisted per wear group. Margin stores go through
// nor.ClampMargin (the exact SetMargin semantics) and wear updates add
// the same EraseWear increments in the same order as the reference loop.
func (d *Device) partialEraseBlockFast(block int, pulseUs float64) {
	d.blockPhys(block)
	bases := d.bases[block]
	margins, wear := d.cells.CellSpan(block)
	fullWear := d.model.EraseWear(true)
	eraseOnly := d.model.EraseWear(false)
	d.envScratch = d.envScratch[:0]
	for i := range margins {
		m := margins[i]
		switch {
		case m <= nor.MarginProgrammed:
			tau := d.envFor(wear[i]).Tau(bases[i])
			margins[i] = nor.ClampMargin(pulseUs - tau)
			wear[i] += fullWear
		case m >= nor.MarginErased:
			wear[i] += eraseOnly
		default:
			wasProgrammed := m < 0
			margins[i] = nor.ClampMargin(float64(m) + pulseUs)
			if wasProgrammed {
				wear[i] += fullWear
			} else {
				wear[i] += eraseOnly
			}
		}
	}
}

// Interface conformance: the device itself is physics-selectable.
var _ device.PhysicsSelector = (*Device)(nil)
