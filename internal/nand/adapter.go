package nand

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

// Adapter presents a NAND chip behind the substrate-neutral
// device.Device interface, mapping one geometry "segment" onto one NAND
// block: erases become block erases, block programs become in-order
// page programs, and word reads are served from whole-page fetches.
// With this adapter the Flashmark procedures in package core run
// unchanged against NAND — the paper's §VI claim — and the former
// NAND-only imprint/extract twins are gone.
//
// Word-read semantics: NAND reads at page granularity, so ReadWord
// fetches the word's page and caches it. Each cached word is served at
// most once per fetch — a sequential single-read pass over a block (the
// extraction access pattern) costs exactly one page read per page,
// while re-reading a word fetches the page again so repeated reads of a
// metastable cell remain independent samples.
type Adapter struct {
	d    *Device
	baud int

	cacheBlock int
	cachePage  int
	cache      []byte
	served     []bool
}

// AdapterName is the part name the adapter reports.
const AdapterName = "NAND-SIM"

// DefaultAdapterBaud is the SPI-class host link speed used for
// host-readout accounting when no other speed is configured.
const DefaultAdapterBaud = 2_000_000

// Adapt wraps an existing NAND device.
func Adapt(d *Device) *Adapter {
	return &Adapter{d: d, baud: DefaultAdapterBaud, cacheBlock: -1, cachePage: -1}
}

// Open fabricates a NAND chip and returns it behind the
// substrate-neutral device interface.
func Open(geom Geometry, timing Timing, params floatgate.Params, seed uint64) (device.Device, error) {
	d, err := NewDevice(geom, timing, params, seed)
	if err != nil {
		return nil, err
	}
	return Adapt(d), nil
}

// Fab returns a device fabricator for the NAND geometry and timing.
func Fab(geom Geometry, timing Timing, params floatgate.Params) device.Fab {
	return func(seed uint64) (device.Device, error) { return Open(geom, timing, params, seed) }
}

// Device returns the adapted NAND chip.
func (a *Adapter) Device() *Device { return a.d }

// PartName identifies the adapter.
func (a *Adapter) PartName() string { return AdapterName }

// Seed returns the chip seed (die identity).
func (a *Adapter) Seed() uint64 { return a.d.seed }

// Geometry returns the word-granular view of the NAND array: one
// segment per block, 16-bit words.
func (a *Adapter) Geometry() nor.Geometry { return a.d.cells.Geometry() }

// Unlock is a no-op: NAND command sets have no FCTL-style lock.
func (a *Adapter) Unlock() error { return nil }

// Lock is a no-op (see Unlock).
func (a *Adapter) Lock() {}

func (a *Adapter) invalidate() {
	a.cacheBlock, a.cachePage = -1, -1
}

func (a *Adapter) blockOf(addr int) (int, error) {
	return a.Geometry().SegmentOfAddr(addr)
}

// EraseSegment erases the block containing addr.
func (a *Adapter) EraseSegment(addr int) error {
	block, err := a.blockOf(addr)
	if err != nil {
		return err
	}
	a.invalidate()
	return a.d.EraseBlock(block)
}

// EraseSegmentAdaptive erases the block containing addr, exiting as
// soon as every cell has crossed.
func (a *Adapter) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	block, err := a.blockOf(addr)
	if err != nil {
		return 0, err
	}
	a.invalidate()
	return a.d.EraseBlockAdaptive(block)
}

// MassEraseBank erases every block of the device (NAND has no mass
// erase command; the adapter issues per-block erases).
func (a *Adapter) MassEraseBank(addr int) error {
	if _, err := a.blockOf(addr); err != nil {
		return err
	}
	a.invalidate()
	for block := 0; block < a.d.geom.Blocks; block++ {
		if err := a.d.EraseBlock(block); err != nil {
			return err
		}
	}
	return nil
}

// PartialEraseSegment starts a block erase and aborts it after pulse.
func (a *Adapter) PartialEraseSegment(addr int, pulse time.Duration) error {
	block, err := a.blockOf(addr)
	if err != nil {
		return err
	}
	a.invalidate()
	return a.d.PartialEraseBlock(block, pulse)
}

// ProgramBlock programs consecutive words starting at addr through the
// page-program discipline: the write must start on a page boundary and
// cover whole pages, programmed in order.
func (a *Adapter) ProgramBlock(addr int, values []uint64) error {
	if len(values) == 0 {
		return nil
	}
	geom := a.Geometry()
	block, err := a.blockOf(addr)
	if err != nil {
		return err
	}
	if addr%geom.WordBytes != 0 {
		return fmt.Errorf("nand: unaligned word address %#x", addr)
	}
	word := (addr - block*geom.SegmentBytes) / geom.WordBytes
	if word+len(values) > geom.WordsPerSegment() {
		return fmt.Errorf("nand: program of %d words at %#x crosses the block boundary", len(values), addr)
	}
	wordsPerPage := a.d.geom.PageBytes / geom.WordBytes
	if word%wordsPerPage != 0 || len(values)%wordsPerPage != 0 {
		return fmt.Errorf("nand: block program must cover whole pages (%d words each)", wordsPerPage)
	}
	a.invalidate()
	firstPage := word / wordsPerPage
	bp := pageScratch.Get().(*[]byte)
	data := *bp
	if cap(data) < a.d.geom.PageBytes {
		data = make([]byte, a.d.geom.PageBytes)
	}
	data = data[:a.d.geom.PageBytes]
	defer func() { *bp = data; pageScratch.Put(bp) }()
	for p := 0; p < len(values)/wordsPerPage; p++ {
		slice := values[p*wordsPerPage : (p+1)*wordsPerPage]
		for i, v := range slice {
			data[2*i] = byte(v)
			data[2*i+1] = byte(v >> 8)
		}
		if err := a.d.ProgramPage(block, firstPage+p, data); err != nil {
			return err
		}
	}
	return nil
}

// pageScratch recycles the page-sized staging buffer ProgramBlock packs
// words into before each page program.
var pageScratch = sync.Pool{New: func() any { b := []byte(nil); return &b }}

// ReadWord reads one 16-bit word, fetching its page on a cache miss
// (see the type comment for the served-once cache semantics).
func (a *Adapter) ReadWord(addr int) (uint64, error) {
	geom := a.Geometry()
	if addr%geom.WordBytes != 0 {
		return 0, fmt.Errorf("nand: unaligned word address %#x", addr)
	}
	block, err := a.blockOf(addr)
	if err != nil {
		return 0, err
	}
	word := (addr - block*geom.SegmentBytes) / geom.WordBytes
	wordsPerPage := a.d.geom.PageBytes / geom.WordBytes
	page := word / wordsPerPage
	inPage := word % wordsPerPage
	if a.cacheBlock != block || a.cachePage != page || a.served[inPage] {
		// Refill the cache buffer in place: a steady-state read pass over
		// a block allocates nothing.
		data, err := a.d.ReadPageInto(block, page, a.cache[:0])
		if err != nil {
			a.invalidate()
			return 0, err
		}
		a.cacheBlock, a.cachePage, a.cache = block, page, data
		if len(a.served) != wordsPerPage {
			a.served = make([]bool, wordsPerPage)
		} else {
			for i := range a.served {
				a.served[i] = false
			}
		}
	}
	a.served[inPage] = true
	return uint64(a.cache[2*inPage]) | uint64(a.cache[2*inPage+1])<<8, nil
}

// ReadSegment reads every word of the block containing addr, in order
// (one page fetch per page).
func (a *Adapter) ReadSegment(addr int) ([]uint64, error) {
	geom := a.Geometry()
	block, err := a.blockOf(addr)
	if err != nil {
		return nil, err
	}
	base := block * geom.SegmentBytes
	out := make([]uint64, geom.WordsPerSegment())
	for w := range out {
		v, err := a.ReadWord(base + w*geom.WordBytes)
		if err != nil {
			return nil, err
		}
		out[w] = v
	}
	return out, nil
}

// StressSegmentWords fast-forwards n imprint cycles (block erase + page
// programs of the watermark) over the block containing addr, riding the
// shared closed-form stress kernel. Time is charged exactly as n
// literal cycles would be: per cycle one erase setup plus one program
// setup per page, the page program times, and the (nominal or
// integrated adaptive) erase pulse.
func (a *Adapter) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	if n < 0 {
		return fmt.Errorf("nand: negative cycle count %d", n)
	}
	if n == 0 {
		return nil
	}
	geom := a.Geometry()
	block, err := a.blockOf(addr)
	if err != nil {
		return err
	}
	if len(values) != geom.WordsPerSegment() {
		return fmt.Errorf("nand: values must cover the whole block")
	}
	a.invalidate()
	d := a.d
	sub := blockCells{d: d, block: block, base: block * geom.CellsPerSegment(), cells: geom.CellsPerSegment()}
	one := func(i int) bool {
		return values[i/geom.WordBits()]&(1<<uint(i%geom.WordBits())) != 0
	}
	wear := device.StressWear{
		FullWear:  d.model.EraseWear(true),
		EraseOnly: d.model.EraseWear(false),
		Program:   d.model.ProgramWear(),
	}
	device.ApplyStress(sub, one, n, wear)
	d.nextPage[block] = d.geom.PagesPerBlock

	// Time accounting.
	progPerCycle := time.Duration(d.geom.PagesPerBlock) * d.timing.PageProgram
	d.charge(vclock.OpOverhead, time.Duration(n)*(d.timing.OpSetup*time.Duration(1+d.geom.PagesPerBlock)))
	d.charge(vclock.OpProgram, time.Duration(n)*progPerCycle)
	if !adaptive {
		d.charge(vclock.OpErase, time.Duration(n)*d.timing.BlockErase)
		return nil
	}
	meanTau := device.MeanAdaptiveTauUs(sub, one, n, wear)
	pulse := time.Duration(meanTau*float64(time.Microsecond)) + d.timing.AdaptiveEraseSettle
	if pulse > d.timing.BlockErase {
		pulse = d.timing.BlockErase
	}
	d.charge(vclock.OpErase, time.Duration(n)*pulse)
	return nil
}

// NominalEraseTime returns the datasheet block erase duration.
func (a *Adapter) NominalEraseTime() time.Duration { return a.d.timing.BlockErase }

// Clock returns the device's virtual clock.
func (a *Adapter) Clock() *vclock.Clock { return a.d.clock }

// Ledger returns the device's time ledger.
func (a *Adapter) Ledger() *vclock.Ledger { return a.d.ledger }

// ChargeHostTransfer accounts for moving n bytes over the SPI-class
// host link (10 bit times per byte).
func (a *Adapter) ChargeHostTransfer(n int) {
	if n <= 0 {
		return
	}
	bits := 10 * n
	dur := time.Duration(float64(bits) / float64(a.baud) * float64(time.Second))
	a.d.clock.Advance(a.d.ledger.Charge(device.OpHost, dur))
}

// PhysicsPath reports the adapted device's physics implementation.
func (a *Adapter) PhysicsPath() device.PhysicsPath { return a.d.PhysicsPath() }

// SetPhysicsPath selects the adapted device's physics implementation.
func (a *Adapter) SetPhysicsPath(p device.PhysicsPath) error { return a.d.SetPhysicsPath(p) }

// SegmentWearSummary returns min/mean/max wear across block seg.
func (a *Adapter) SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error) {
	return a.d.cells.SegmentWearSummary(seg)
}

// WornCellCount counts cells of the block containing addr beyond the
// datasheet endurance.
func (a *Adapter) WornCellCount(addr int) (int, error) {
	block, err := a.blockOf(addr)
	if err != nil {
		return 0, err
	}
	cells := a.Geometry().CellsPerSegment()
	base := block * cells
	worn := 0
	for i := 0; i < cells; i++ {
		if a.d.model.Worn(a.d.cells.Wear(base + i)) {
			worn++
		}
	}
	return worn, nil
}

// EnduranceCycles returns the datasheet endurance.
func (a *Adapter) EnduranceCycles() float64 { return a.d.params.EnduranceCycles }

// blockCells adapts one NAND block to the shared stress kernel.
type blockCells struct {
	d     *Device
	block int
	base  int
	cells int
}

func (b blockCells) Cells() int               { return b.cells }
func (b blockCells) Programmed(i int) bool    { return b.d.cells.Programmed(b.base + i) }
func (b blockCells) Wear(i int) float64       { return b.d.cells.Wear(b.base + i) }
func (b blockCells) AddWear(i int, w float64) { b.d.cells.AddWear(b.base+i, w) }
func (b blockCells) SetErased(i int)          { b.d.cells.SetMargin(b.base+i, float64(nor.MarginErased)) }
func (b blockCells) SetProgrammed(i int) {
	b.d.cells.SetMargin(b.base+i, float64(nor.MarginProgrammed))
}
func (b blockCells) TauAt(i int, wear float64) float64 { return b.d.model.TauAt(b.block, i, wear) }

// MaxTauOver rides the device's batched pruned max (device.AdaptiveMaxer);
// it declines when the reference physics path is selected, which sends
// MeanAdaptiveTauUs back to the sequential TauAt scan.
func (b blockCells) MaxTauOver(include func(i int) bool, wearOf func(i int) float64) (float64, bool) {
	return b.d.maxTauOver(b.block, include, wearOf)
}

// nandChipFile is the on-disk JSON envelope for a NAND chip. Array is
// kept as raw JSON (the quoted base64 text) rather than a string: like
// mcu's chipFile, RawMessage's append-into-self decode lets a reloading
// Loader recycle the payload buffer, and base64 text never needs
// unescaping.
type nandChipFile struct {
	Format   string           `json:"format"`
	Version  int              `json:"version"`
	Geometry Geometry         `json:"geometry"`
	Timing   Timing           `json:"timing"`
	Params   floatgate.Params `json:"params"`
	Seed     uint64           `json:"seed"`
	NextPage []int            `json:"nextPage"`
	Array    json.RawMessage  `json:"array"` // quoted base64 of nor binary encoding
}

const (
	nandChipFormat  = "flashmark-nand-chip"
	nandChipVersion = 1
)

// saveState recycles every per-Save transient — the binary array
// encoding, the quoted-base64 token, and the JSON envelope buffer with
// its pinned encoder — mirroring the mcu chip-file save pool.
type saveState struct {
	raw []byte
	b64 []byte
	buf bytes.Buffer
	enc *json.Encoder
}

var savePool = sync.Pool{New: func() any {
	s := &saveState{raw: make([]byte, 0, 4096)}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// Save writes the chip state (geometry, timing, physics, seed, cell
// margins and wear) to w.
func (a *Adapter) Save(w io.Writer) error {
	s := savePool.Get().(*saveState)
	defer savePool.Put(s)
	raw, err := a.d.cells.AppendBinary(s.raw[:0])
	s.raw = raw[:0]
	if err != nil {
		return fmt.Errorf("nand: serializing array: %w", err)
	}
	cf := nandChipFile{
		Format:   nandChipFormat,
		Version:  nandChipVersion,
		Geometry: a.d.geom,
		Timing:   a.d.timing,
		Params:   a.d.params,
		Seed:     a.d.seed,
		// Marshaled synchronously below, so the live cursor slice can be
		// referenced without a defensive copy.
		NextPage: a.d.nextPage,
		Array:    s.quotedBase64(raw),
	}
	s.buf.Reset()
	if err := s.enc.Encode(cf); err != nil {
		return err
	}
	_, err = w.Write(s.buf.Bytes())
	return err
}

// quotedBase64 renders raw as the JSON string token the chip file
// embeds: base64 text needs no escaping, so the quotes can be placed
// directly (mirrors the mcu chip-file helper), reusing the state's
// token buffer.
func (s *saveState) quotedBase64(raw []byte) json.RawMessage {
	n := base64.StdEncoding.EncodedLen(len(raw))
	if cap(s.b64) < n+2 {
		s.b64 = make([]byte, n+2)
	}
	out := s.b64[:n+2]
	out[0], out[n+1] = '"', '"'
	base64.StdEncoding.Encode(out[1:n+1], raw)
	return json.RawMessage(out)
}

// chipArrayBytes extracts the base64 text from the raw array payload.
// The fast path peels the quotes off an escape-free string token in
// place; anything else (escapes, or a non-string value whose error
// surface must match a string unmarshal) goes through encoding/json.
func chipArrayBytes(raw json.RawMessage) ([]byte, error) {
	if len(raw) >= 2 && raw[0] == '"' && raw[len(raw)-1] == '"' && bytes.IndexByte(raw, '\\') < 0 {
		return raw[1 : len(raw)-1], nil
	}
	if len(raw) == 0 {
		return nil, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// decodeChipArray base64-decodes the array payload into dst's capacity,
// allocating only when dst is too small.
func decodeChipArray(b64 []byte, dst []byte) ([]byte, error) {
	n := base64.StdEncoding.DecodedLen(len(b64))
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	m, err := base64.StdEncoding.Decode(dst, b64)
	if err != nil {
		return nil, err
	}
	return dst[:m], nil
}

// LoadAdapter reconstructs a NAND chip from Save output.
func LoadAdapter(r io.Reader) (*Adapter, error) {
	var cf nandChipFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("nand: decoding chip file: %w", err)
	}
	if cf.Format != nandChipFormat {
		return nil, fmt.Errorf("nand: not a NAND chip file (format %q)", cf.Format)
	}
	if cf.Version != nandChipVersion {
		return nil, fmt.Errorf("nand: unsupported chip file version %d", cf.Version)
	}
	d, err := NewDevice(cf.Geometry, cf.Timing, cf.Params, cf.Seed)
	if err != nil {
		return nil, err
	}
	b64, err := chipArrayBytes(cf.Array)
	if err != nil {
		return nil, fmt.Errorf("nand: decoding chip file: %w", err)
	}
	raw, err := decodeChipArray(b64, nil)
	if err != nil {
		return nil, fmt.Errorf("nand: decoding array payload: %w", err)
	}
	// As in mcu.Load: reject a mismatched array header before the
	// per-cell allocation, since chip files are untrusted input.
	headGeom, err := nor.ArrayGeometry(raw)
	if err != nil {
		return nil, err
	}
	if headGeom != d.cells.Geometry() {
		return nil, fmt.Errorf("nand: chip file array geometry %+v does not match %+v", headGeom, d.cells.Geometry())
	}
	arr, err := nor.UnmarshalArray(raw)
	if err != nil {
		return nil, err
	}
	d.cells = arr
	if len(cf.NextPage) != cf.Geometry.Blocks {
		return nil, fmt.Errorf("nand: chip file has %d page cursors for %d blocks", len(cf.NextPage), cf.Geometry.Blocks)
	}
	for block, p := range cf.NextPage {
		if p < 0 || p > cf.Geometry.PagesPerBlock {
			return nil, fmt.Errorf("nand: chip file page cursor %d of block %d out of range", p, block)
		}
	}
	copy(d.nextPage, cf.NextPage)
	return Adapt(d), nil
}

// Loader reconstructs NAND chips from Save output, recycling the JSON
// envelope, the binary array form, the cell array, and the page-cursor
// slice across loads — the NAND counterpart of mcu.Loader. The zero
// value is ready. A Loader is not safe for concurrent use, and the
// adapter it returns aliases the loader's storage: the next Load
// invalidates every previously returned adapter.
type Loader struct {
	cf       nandChipFile
	bin      []byte
	arr      *nor.Array
	nextPage []int
}

// Load reconstructs a NAND chip from the serialized chip file. It
// performs the same validation as LoadAdapter, in the same order,
// but decodes strictly from the byte slice and reuses the loader's
// buffers instead of allocating a fresh cell array per call.
func (l *Loader) Load(data []byte) (*Adapter, error) {
	// Reset the envelope but keep the Array and NextPage capacity:
	// RawMessage and slice decoding both append into the existing
	// backing store.
	l.cf = nandChipFile{Array: l.cf.Array[:0], NextPage: l.cf.NextPage[:0]}
	if err := json.Unmarshal(data, &l.cf); err != nil {
		return nil, fmt.Errorf("nand: decoding chip file: %w", err)
	}
	cf := &l.cf
	if cf.Format != nandChipFormat {
		return nil, fmt.Errorf("nand: not a NAND chip file (format %q)", cf.Format)
	}
	if cf.Version != nandChipVersion {
		return nil, fmt.Errorf("nand: unsupported chip file version %d", cf.Version)
	}
	if err := cf.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cf.Timing.Validate(); err != nil {
		return nil, err
	}
	model, err := floatgate.NewModel(cf.Params, cf.Seed)
	if err != nil {
		return nil, err
	}
	b64, err := chipArrayBytes(cf.Array)
	if err != nil {
		return nil, fmt.Errorf("nand: decoding chip file: %w", err)
	}
	bin, err := decodeChipArray(b64, l.bin)
	if err != nil {
		return nil, fmt.Errorf("nand: decoding array payload: %w", err)
	}
	l.bin = bin[:0]
	headGeom, err := nor.ArrayGeometry(bin)
	if err != nil {
		return nil, err
	}
	if want := norGeomFor(cf.Geometry); headGeom != want {
		return nil, fmt.Errorf("nand: chip file array geometry %+v does not match %+v", headGeom, want)
	}
	arr, err := nor.UnmarshalArrayInto(l.arr, bin)
	if err != nil {
		return nil, err
	}
	l.arr = arr
	if len(cf.NextPage) != cf.Geometry.Blocks {
		return nil, fmt.Errorf("nand: chip file has %d page cursors for %d blocks", len(cf.NextPage), cf.Geometry.Blocks)
	}
	for block, p := range cf.NextPage {
		if p < 0 || p > cf.Geometry.PagesPerBlock {
			return nil, fmt.Errorf("nand: chip file page cursor %d of block %d out of range", p, block)
		}
	}
	if cap(l.nextPage) < cf.Geometry.Blocks {
		l.nextPage = make([]int, cf.Geometry.Blocks)
	}
	next := l.nextPage[:cf.Geometry.Blocks]
	copy(next, cf.NextPage)
	return Adapt(newDevice(cf.Geometry, cf.Timing, cf.Params, cf.Seed, model, arr, next)), nil
}

// Interface conformance (device.Device plus the wear capability; NAND
// models neither aging, temperature, traces, nor partial programs yet).
var (
	_ device.Device          = (*Adapter)(nil)
	_ device.WearInspector   = (*Adapter)(nil)
	_ device.PhysicsSelector = (*Adapter)(nil)
	_ device.AdaptiveMaxer   = blockCells{}
)
