package nand

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
)

// Differential fuzz of the NAND batched physics (per-block base cache,
// wear-grouped TauEnv, pruned adaptive max) against the per-cell
// reference loops: twin devices run one seeded-random op sequence and
// every observable — adaptive pulses, page reads, final margins and
// wear to the bit, virtual time — must match.

func twinNANDs(t *testing.T, seed uint64) (fast, ref *Device) {
	t.Helper()
	build := func() *Device {
		d, err := NewDevice(SmallNAND(), SLCTiming(), floatgate.DefaultParams(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fast, ref = build(), build()
	if fast.PhysicsPath() != device.PhysicsFast {
		t.Fatalf("fast path is not the default: %v", fast.PhysicsPath())
	}
	if err := ref.SetPhysicsPath(device.PhysicsReference); err != nil {
		t.Fatal(err)
	}
	return fast, ref
}

func TestNANDFastPathMatchesReference(t *testing.T) {
	for _, seed := range []uint64{0x4E1, 0x4E2, 0x4E3} {
		fast, ref := twinNANDs(t, seed)
		geom := fast.Geometry()
		rnd := rand.New(rand.NewSource(int64(seed)))

		page := make([]byte, geom.PageBytes)
		const ops = 250
		for op := 0; op < ops; op++ {
			block := rnd.Intn(geom.Blocks)
			switch rnd.Intn(6) {
			case 0:
				if e1, e2 := fast.EraseBlock(block), ref.EraseBlock(block); e1 != nil || e2 != nil {
					t.Fatal(e1, e2)
				}
			case 1:
				d1, e1 := fast.EraseBlockAdaptive(block)
				d2, e2 := ref.EraseBlockAdaptive(block)
				if e1 != nil || e2 != nil {
					t.Fatal(e1, e2)
				}
				if d1 != d2 {
					t.Fatalf("op %d: adaptive pulse fast=%v ref=%v", op, d1, d2)
				}
			case 2, 3:
				pulse := time.Duration(5+rnd.Float64()*35) * time.Microsecond
				if e1, e2 := fast.PartialEraseBlock(block, pulse), ref.PartialEraseBlock(block, pulse); e1 != nil || e2 != nil {
					t.Fatal(e1, e2)
				}
			case 4:
				// Fill in-order pages after a fresh erase (NAND discipline).
				if e1, e2 := fast.EraseBlock(block), ref.EraseBlock(block); e1 != nil || e2 != nil {
					t.Fatal(e1, e2)
				}
				pages := 1 + rnd.Intn(geom.PagesPerBlock)
				for p := 0; p < pages; p++ {
					for i := range page {
						page[i] = byte(rnd.Intn(256))
					}
					if e1, e2 := fast.ProgramPage(block, p, page), ref.ProgramPage(block, p, page); e1 != nil || e2 != nil {
						t.Fatal(e1, e2)
					}
				}
			case 5:
				p := rnd.Intn(geom.PagesPerBlock)
				d1, e1 := fast.ReadPage(block, p)
				d2, e2 := ref.ReadPage(block, p)
				if e1 != nil || e2 != nil {
					t.Fatal(e1, e2)
				}
				for i := range d1 {
					if d1[i] != d2[i] {
						t.Fatalf("op %d: page byte %d fast=%#x ref=%#x", op, i, d1[i], d2[i])
					}
				}
			}
		}
		// Final state to the bit.
		cells := geom.Blocks * geom.CellsPerBlock()
		for i := 0; i < cells; i++ {
			fm, rm := fast.cells.Margin(i), ref.cells.Margin(i)
			if math.Float64bits(fm) != math.Float64bits(rm) {
				t.Fatalf("cell %d margin fast=%v ref=%v", i, fm, rm)
			}
			fw, rw := fast.cells.Wear(i), ref.cells.Wear(i)
			if math.Float64bits(fw) != math.Float64bits(rw) {
				t.Fatalf("cell %d wear fast=%v ref=%v", i, fw, rw)
			}
		}
		if fast.Clock().Now() != ref.Clock().Now() {
			t.Fatalf("virtual time diverged: fast=%v ref=%v", fast.Clock().Now(), ref.Clock().Now())
		}
	}
}
