package core

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/mcu"
)

func TestReferenceWatermarkShape(t *testing.T) {
	wm := ReferenceWatermark(256)
	if len(wm) != 256 {
		t.Fatalf("len = %d", len(wm))
	}
	zeros := 0
	for _, w := range wm {
		if w > 0xFFFF {
			t.Fatalf("word %#x exceeds 16 bits", w)
		}
		for b := 0; b < 16; b++ {
			if w&(1<<uint(b)) == 0 {
				zeros++
			}
		}
	}
	// Upper-case ASCII text runs ~60-65% zero bits ('T' = 0x54 has three
	// ones); the imprinted watermark must have plenty of both classes.
	frac := float64(zeros) / float64(256*16)
	if frac < 0.45 || frac > 0.75 {
		t.Errorf("zero-bit fraction = %.2f, want ASCII-like mix", frac)
	}
}

func TestCalibrateValidation(t *testing.T) {
	part := mcu.Fab(mcu.PartSmallSim())
	if _, err := Calibrate(part, nil, 1000, CalibrateOptions{}); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := Calibrate(part, []uint64{1}, 0, CalibrateOptions{}); err == nil {
		t.Error("zero NPE accepted")
	}
	if _, err := Calibrate(part, []uint64{1}, 1000, CalibrateOptions{SweepLo: 10 * time.Microsecond, SweepHi: 5 * time.Microsecond, SweepStep: time.Microsecond}); err == nil {
		t.Error("inverted sweep accepted")
	}
	if _, err := Calibrate(part, []uint64{1}, 1000, CalibrateOptions{WindowFactor: 0.5}); err == nil {
		t.Error("window factor < 1 accepted")
	}
	if _, err := Calibrate(part, []uint64{1}, 1000, CalibrateOptions{Pattern: []uint64{1}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestCalibrateFindsWindow(t *testing.T) {
	part := mcu.Fab(mcu.PartSmallSim())
	cal, err := Calibrate(part, []uint64{101, 102}, 60_000, CalibrateOptions{
		SweepLo:   20 * time.Microsecond,
		SweepHi:   32 * time.Microsecond,
		SweepStep: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cal.NPE != 60_000 {
		t.Errorf("NPE = %d", cal.NPE)
	}
	if len(cal.Points) != 13 {
		t.Errorf("points = %d, want 13", len(cal.Points))
	}
	if cal.Best < 20*time.Microsecond || cal.Best > 32*time.Microsecond {
		t.Errorf("best t_PEW = %v outside sweep", cal.Best)
	}
	if cal.BestBER < 0 || cal.BestBER > 0.2 {
		t.Errorf("best BER = %v, want a usable operating point at 60K", cal.BestBER)
	}
	if cal.WindowLo == 0 || cal.WindowHi < cal.WindowLo {
		t.Errorf("window [%v, %v] malformed", cal.WindowLo, cal.WindowHi)
	}
	if cal.Best < cal.WindowLo || cal.Best > cal.WindowHi {
		t.Errorf("best %v outside window [%v, %v]", cal.Best, cal.WindowLo, cal.WindowHi)
	}
	// Edge BERs should exceed the minimum: the curve is U-shaped.
	if cal.Points[0].BER <= cal.BestBER || cal.Points[len(cal.Points)-1].BER < cal.BestBER {
		t.Errorf("BER curve not U-shaped: edges %.3f / %.3f vs min %.3f",
			cal.Points[0].BER, cal.Points[len(cal.Points)-1].BER, cal.BestBER)
	}
}

func TestCalibrateWindowShiftsRightWithNPE(t *testing.T) {
	// Paper: "This time window slightly shifts to the right as we
	// increase the number of stresses."
	part := mcu.Fab(mcu.PartSmallSim())
	opts := CalibrateOptions{
		SweepLo:   19 * time.Microsecond,
		SweepHi:   34 * time.Microsecond,
		SweepStep: time.Microsecond,
	}
	low, err := Calibrate(part, []uint64{7}, 20_000, opts)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Calibrate(part, []uint64{7}, 80_000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if high.Best < low.Best {
		t.Errorf("optimal t_PEW moved left with stress: 20K=%v 80K=%v", low.Best, high.Best)
	}
	if high.BestBER >= low.BestBER {
		t.Errorf("BER should fall with stress: 20K=%.3f 80K=%.3f", low.BestBER, high.BestBER)
	}
}
