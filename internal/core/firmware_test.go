package core

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
)

// regDev fabricates a die and asserts the register capability.
func regDev(t *testing.T, seed uint64) RegisterDevice {
	t.Helper()
	d := newDev(t, seed)
	r, ok := device.As[RegisterDevice](d)
	if !ok {
		t.Fatal("mcu backend lost its FCTL register file")
	}
	return r
}

func TestRegisterImprintMatchesMethodImprint(t *testing.T) {
	viaMethod := regDev(t, 60)
	viaRegs := regDev(t, 60)
	wm := tcWatermark(segWords(viaMethod))
	const npe = 20
	// The method path must use single-word programming too for the time
	// ledgers to agree; use the literal loop with ProgramBlock replaced —
	// physical state is what we compare, so block vs word programming is
	// fine for wear, and we compare wear only.
	if err := ImprintSegment(viaMethod, 0, wm, ImprintOptions{NPE: npe, Literal: true}); err != nil {
		t.Fatal(err)
	}
	if err := ImprintSegmentViaRegisters(viaRegs, 0, wm, npe); err != nil {
		t.Fatal(err)
	}
	geom := viaMethod.Geometry()
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if wearOf(t, viaMethod).Wear(i) != wearOf(t, viaRegs).Wear(i) {
			t.Fatalf("wear diverged at cell %d", i)
		}
		if wearOf(t, viaMethod).Programmed(i) != wearOf(t, viaRegs).Programmed(i) {
			t.Fatalf("state diverged at cell %d", i)
		}
	}
	if !ctlOf(t, viaRegs).Locked() {
		t.Error("register imprint left the controller unlocked")
	}
}

func TestRegisterExtractRecoversWatermark(t *testing.T) {
	dev := regDev(t, 61)
	wm := ReferenceWatermark(segWords(dev))
	if err := ImprintSegment(dev, 0, wm, ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractSegmentViaRegisters(dev, 0, 25*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BER(got, wm, 16); ber > 0.12 {
		t.Fatalf("register extraction BER = %.3f", ber)
	}
	if !ctlOf(t, dev).Locked() {
		t.Error("register extract left the controller unlocked")
	}
}

func TestRegisterProcedureValidation(t *testing.T) {
	dev := regDev(t, 62)
	wm := tcWatermark(segWords(dev))
	if err := ImprintSegmentViaRegisters(dev, 0, wm[:4], 5); err == nil {
		t.Error("short watermark accepted")
	}
	if err := ImprintSegmentViaRegisters(dev, 0, wm, 0); err == nil {
		t.Error("zero NPE accepted")
	}
	if err := ImprintSegmentViaRegisters(dev, 1<<30, wm, 5); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := ExtractSegmentViaRegisters(dev, 0, 0); err == nil {
		t.Error("zero tPEW accepted")
	}
	if _, err := ExtractSegmentViaRegisters(dev, 1<<30, time.Microsecond); err == nil {
		t.Error("bad address accepted")
	}
}
