package core

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/device"
)

// CalibrationPoint is one swept extraction operating point.
type CalibrationPoint struct {
	TPEW time.Duration
	BER  float64
}

// Calibration is the outcome of the manufacturer-side search for the
// partial erase time window (paper §IV: "this time, or rather a time
// window, is determined by the manufacturer ... and can be publicly
// communicated to system integrators").
type Calibration struct {
	NPE      int
	Best     time.Duration
	BestBER  float64
	WindowLo time.Duration // lowest t_PEW with near-minimum BER
	WindowHi time.Duration // highest t_PEW with near-minimum BER
	Points   []CalibrationPoint
}

// CalibrateOptions controls Calibrate.
type CalibrateOptions struct {
	// Pattern is the payload imprinted on the reference dice; nil selects
	// a representative ASCII pattern covering the segment.
	Pattern []uint64
	// Sweep range and step; zero values select 18–45 µs in 0.5 µs steps.
	SweepLo, SweepHi, SweepStep time.Duration
	// Reads per extraction (odd); zero selects 1.
	Reads int
	// WindowFactor bounds the published window: points with
	// BER <= WindowFactor*BestBER + 0.002 are inside. Zero selects 1.5.
	WindowFactor float64
}

// ReferenceWatermark returns a representative watermark: the repeating
// upper-case ASCII text the paper uses, filling segWords words. Roughly
// half the bits are zeros, matching the paper's workload.
func ReferenceWatermark(segWords int) []uint64 {
	const text = "TRUSTED CHIPMAKER DIE-SORT ACCEPT GRADE A "
	out := make([]uint64, segWords)
	for i := range out {
		hi := text[(2*i)%len(text)]
		lo := text[(2*i+1)%len(text)]
		out[i] = uint64(hi)<<8 | uint64(lo)
	}
	return out
}

// Calibrate determines the extraction window for a device family at a
// given imprint cycle count by imprinting reference dice (one fabricated
// per seed) and sweeping the extraction partial erase time. The returned
// Points trace the Fig. 9 BER-vs-t_PE curve averaged over the dice. The
// fabricator abstracts the family: pass mcu.Fab(part) for a NOR family
// or nand.Fab(...) for a NAND one.
func Calibrate(fab device.Fab, seeds []uint64, npe int, opts CalibrateOptions) (Calibration, error) {
	if len(seeds) == 0 {
		return Calibration{}, fmt.Errorf("core: calibration needs at least one reference die")
	}
	if npe <= 0 {
		return Calibration{}, fmt.Errorf("core: calibration needs positive N_PE, got %d", npe)
	}
	lo, hi, step := opts.SweepLo, opts.SweepHi, opts.SweepStep
	if lo == 0 {
		lo = 18 * time.Microsecond
	}
	if hi == 0 {
		hi = 45 * time.Microsecond
	}
	if step == 0 {
		step = 500 * time.Nanosecond
	}
	if lo <= 0 || hi <= lo || step <= 0 {
		return Calibration{}, fmt.Errorf("core: bad sweep [%v, %v] step %v", lo, hi, step)
	}
	factor := opts.WindowFactor
	if factor == 0 {
		factor = 1.5
	}
	if factor < 1 {
		return Calibration{}, fmt.Errorf("core: window factor %v < 1", factor)
	}

	var grid []time.Duration
	for t := lo; t <= hi; t += step {
		grid = append(grid, t)
	}
	sums := make([]float64, len(grid))

	wordBits := 0
	for _, seed := range seeds {
		dev, err := fab(seed)
		if err != nil {
			return Calibration{}, err
		}
		geom := dev.Geometry()
		wordBits = geom.WordBits()
		pattern := opts.Pattern
		if pattern == nil {
			pattern = ReferenceWatermark(geom.WordsPerSegment())
		}
		if len(pattern) != geom.WordsPerSegment() {
			return Calibration{}, fmt.Errorf("core: calibration pattern has %d words, segment holds %d",
				len(pattern), geom.WordsPerSegment())
		}
		if err := ImprintSegment(dev, 0, pattern, ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return Calibration{}, err
		}
		for i, t := range grid {
			got, err := ExtractSegment(dev, 0, ExtractOptions{TPEW: t, Reads: opts.Reads})
			if err != nil {
				return Calibration{}, err
			}
			sums[i] += BER(got, pattern, wordBits)
		}
	}

	cal := Calibration{NPE: npe, Points: make([]CalibrationPoint, len(grid)), BestBER: 2}
	for i, t := range grid {
		ber := sums[i] / float64(len(seeds))
		cal.Points[i] = CalibrationPoint{TPEW: t, BER: ber}
		if ber < cal.BestBER {
			cal.BestBER = ber
			cal.Best = t
		}
	}
	limit := cal.BestBER*factor + 0.002
	for _, p := range cal.Points {
		if p.BER <= limit {
			if cal.WindowLo == 0 {
				cal.WindowLo = p.TPEW
			}
			cal.WindowHi = p.TPEW
		}
	}
	return cal, nil
}
