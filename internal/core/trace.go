package core

import (
	"fmt"

	"github.com/flashmark/flashmark/internal/device"
)

// TraceStep is one half-cycle of an imprint viewed at a single word:
// the digital state after an erase (all ones) or after a program
// (the watermark), together with the per-bit wear accumulated so far.
// It regenerates the paper's Fig. 6 illustration.
type TraceStep struct {
	Cycle int    // 1-based imprint cycle
	Op    string // "E" or "P"
	Value uint64 // digital word state after the operation
}

// ImprintWordTrace performs a literal imprint of `cycles` erase+program
// cycles on the segment containing addr, recording the digital state of
// the word at addr after every operation. The final row of Fig. 6 — which
// cells became "B"ad and which stayed "G"ood — is determined by the
// watermark's zero bits; GoodBadString renders it.
func ImprintWordTrace(dev device.Device, addr int, watermark []uint64, cycles int) ([]TraceStep, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("core: trace needs positive cycles, got %d", cycles)
	}
	geom := dev.Geometry()
	if len(watermark) != geom.WordsPerSegment() {
		return nil, fmt.Errorf("core: watermark has %d words, segment holds %d", len(watermark), geom.WordsPerSegment())
	}
	seg, err := geom.SegmentOfAddr(addr)
	if err != nil {
		return nil, err
	}
	segAddr := seg * geom.SegmentBytes
	if err := dev.Unlock(); err != nil {
		return nil, err
	}
	defer dev.Lock()

	var steps []TraceStep
	for c := 1; c <= cycles; c++ {
		if err := dev.EraseSegment(segAddr); err != nil {
			return nil, err
		}
		v, err := dev.ReadWord(addr)
		if err != nil {
			return nil, err
		}
		steps = append(steps, TraceStep{Cycle: c, Op: "E", Value: v})
		if err := dev.ProgramBlock(segAddr, watermark); err != nil {
			return nil, err
		}
		v, err = dev.ReadWord(addr)
		if err != nil {
			return nil, err
		}
		steps = append(steps, TraceStep{Cycle: c, Op: "P", Value: v})
	}
	return steps, nil
}

// GoodBadString renders a word's physical outcome as the paper's Fig. 6
// bottom row: 'B' for stressed ("bad") cells at watermark-0 positions,
// 'G' for untouched ("good") cells, most significant bit first.
func GoodBadString(watermarkWord uint64, bits int) string {
	buf := make([]byte, bits)
	for b := 0; b < bits; b++ {
		if watermarkWord&(1<<uint(bits-1-b)) != 0 {
			buf[b] = 'G'
		} else {
			buf[b] = 'B'
		}
	}
	return string(buf)
}
