// Package core implements Flashmark itself — the paper's contribution:
// imprinting watermarks into NOR flash segments by repeated program/erase
// stress (Fig. 7), extracting them through partial erase operations
// (Fig. 8), characterizing cell wear through the digital interface
// (Fig. 3), replication with majority voting, and the t_PEW calibration
// the manufacturer publishes for each device family.
//
// All procedures drive any backend satisfying the substrate-neutral
// device interface (package device) using only operations real firmware
// has: erase, program, read, and the emergency-exit command that aborts
// an erase. The same code path covers the NOR microcontroller backend
// (package mcu) and the NAND adapter (package nand).
package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/flashmark/flashmark/internal/device"
)

// Scratch pools for the extraction hot loop: repeated extractions (ROC
// sweeps run thousands) reuse the all-zeros program image and the
// per-word vote counters instead of reallocating them. Only the voted
// words — the caller-owned result — are freshly allocated.
var (
	zeroWordsScratch = sync.Pool{New: func() any { w := []uint64(nil); return &w }}
	votesScratch     = sync.Pool{New: func() any { v := []int(nil); return &v }}
)

// DefaultNPE is the imprint cycle count used when options leave it zero.
// The paper explores 20 K–100 K; 40 K is the paper's main design point
// balancing imprint time against extraction error rate.
const DefaultNPE = 40_000

// ImprintOptions controls ImprintSegment.
type ImprintOptions struct {
	// NPE is the number of program/erase stress cycles (paper's N_PE).
	// Zero selects DefaultNPE.
	NPE int
	// Accelerated terminates each erase early once the cells have
	// physically erased (the paper's §V accelerated procedure, ~3.5x
	// faster with identical physical outcome).
	Accelerated bool
	// Literal forces the cycle-by-cycle command loop instead of the
	// simulator's closed-form fast-forward. The physical outcome is
	// identical (covered by tests); the literal loop exists for fidelity
	// demonstrations and is O(NPE) slower to simulate.
	Literal bool
}

// ImprintSegment imprints the watermark into the segment containing
// segAddr by N_PE repeated erase+program cycles (paper Fig. 7). The
// watermark must cover the whole segment, one value per word; bits at
// logic 0 become permanently stressed ("bad") cells, bits at logic 1
// remain "good". The segment is left programmed with the watermark, as
// the current practice would leave it; the information survives any
// subsequent erase because it lives in the cells' physical wear.
func ImprintSegment(dev device.Device, segAddr int, watermark []uint64, opts ImprintOptions) error {
	geom := dev.Geometry()
	if len(watermark) != geom.WordsPerSegment() {
		return fmt.Errorf("core: watermark has %d words, segment holds %d", len(watermark), geom.WordsPerSegment())
	}
	npe := opts.NPE
	if npe == 0 {
		npe = DefaultNPE
	}
	if npe < 0 {
		return fmt.Errorf("core: negative N_PE %d", npe)
	}
	if err := dev.Unlock(); err != nil {
		return err
	}
	defer dev.Lock()

	if !opts.Literal {
		return dev.StressSegmentWords(segAddr, watermark, npe, opts.Accelerated)
	}
	for cycle := 0; cycle < npe; cycle++ {
		if opts.Accelerated {
			if _, err := dev.EraseSegmentAdaptive(segAddr); err != nil {
				return err
			}
		} else {
			if err := dev.EraseSegment(segAddr); err != nil {
				return err
			}
		}
		if err := dev.ProgramBlock(segAddr, watermark); err != nil {
			return err
		}
	}
	return nil
}

// ExtractOptions controls ExtractSegment.
type ExtractOptions struct {
	// TPEW is the partial erase time that separates good from bad cells.
	// The manufacturer determines it per device family (see Calibrate).
	TPEW time.Duration
	// Reads is the number of reads per word; the per-bit value is the
	// majority. Zero selects 1 (the paper's single-read extraction).
	// Must be odd.
	Reads int
	// HostReadout charges the host serial link for transferring the read
	// data to the verifier (included in the paper's 170 ms extract time).
	HostReadout bool
}

// ExtractSegment retrieves the watermark imprinted in the segment
// containing segAddr (paper Fig. 8): the segment is erased, fully
// programmed, a partial erase of duration t_PEW is applied, and the cells
// are read. Good (unstressed) cells erase within t_PEW and read 1; bad
// (stressed) cells resist and read 0 — the read words are the watermark,
// subject to the bit error rates the paper characterizes.
//
// Extraction destroys any data stored in the segment but not the
// watermark, which is physical; extraction may be repeated.
func ExtractSegment(dev device.Device, segAddr int, opts ExtractOptions) ([]uint64, error) {
	geom := dev.Geometry()
	reads := opts.Reads
	if reads == 0 {
		reads = 1
	}
	if reads < 0 || reads%2 == 0 {
		return nil, fmt.Errorf("core: reads must be odd and positive, got %d", reads)
	}
	if opts.TPEW <= 0 {
		return nil, fmt.Errorf("core: non-positive t_PEW %v", opts.TPEW)
	}
	if err := dev.Unlock(); err != nil {
		return nil, err
	}
	defer dev.Lock()

	if err := dev.EraseSegment(segAddr); err != nil {
		return nil, err
	}
	zp := zeroWordsScratch.Get().(*[]uint64)
	allZeros := *zp
	if cap(allZeros) < geom.WordsPerSegment() {
		allZeros = make([]uint64, geom.WordsPerSegment())
	}
	allZeros = allZeros[:geom.WordsPerSegment()]
	for i := range allZeros {
		allZeros[i] = 0
	}
	err := dev.ProgramBlock(segAddr, allZeros)
	*zp = allZeros
	zeroWordsScratch.Put(zp)
	if err != nil {
		return nil, err
	}
	if err := dev.PartialEraseSegment(segAddr, opts.TPEW); err != nil {
		return nil, err
	}
	words, _, _, err := AnalyzeSegment(dev, segAddr, reads)
	if err != nil {
		return nil, err
	}
	if opts.HostReadout {
		dev.ChargeHostTransfer(reads * geom.SegmentBytes)
	}
	return words, nil
}

// AnalyzeSegment reads every word of the segment `reads` times (odd) and
// majority-votes each bit (paper Fig. 3, AnalyzeSegment). It returns the
// voted words and the counts of cells reading 1 (erased) and 0
// (programmed).
func AnalyzeSegment(dev device.Device, segAddr int, reads int) (words []uint64, cells1, cells0 int, err error) {
	if reads <= 0 || reads%2 == 0 {
		return nil, 0, 0, fmt.Errorf("core: reads must be odd and positive, got %d", reads)
	}
	geom := dev.Geometry()
	seg, err := geom.SegmentOfAddr(segAddr)
	if err != nil {
		return nil, 0, 0, err
	}
	base := seg * geom.SegmentBytes
	bits := geom.WordBits()
	words = make([]uint64, geom.WordsPerSegment())
	vp := votesScratch.Get().(*[]int)
	defer votesScratch.Put(vp)
	votes := *vp
	if cap(votes) < bits {
		votes = make([]int, bits)
		*vp = votes
	}
	votes = votes[:bits]
	for w := range words {
		for i := range votes {
			votes[i] = 0
		}
		for r := 0; r < reads; r++ {
			v, rerr := dev.ReadWord(base + w*geom.WordBytes)
			if rerr != nil {
				return nil, 0, 0, rerr
			}
			for b := 0; b < bits; b++ {
				if v&(1<<uint(b)) != 0 {
					votes[b]++
				}
			}
		}
		var voted uint64
		for b := 0; b < bits; b++ {
			if votes[b] > reads/2 {
				voted |= 1 << uint(b)
				cells1++
			} else {
				cells0++
			}
		}
		words[w] = voted
	}
	return words, cells1, cells0, nil
}

// BitErrors counts differing bits between got and want over `bits` bits
// per word.
func BitErrors(got, want []uint64, bits int) int {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	mask := uint64(1)<<uint(bits) - 1
	errs := 0
	for i := 0; i < n; i++ {
		diff := (got[i] ^ want[i]) & mask
		for diff != 0 {
			errs++
			diff &= diff - 1
		}
	}
	// Length mismatch counts every missing word as fully wrong.
	if len(got) != len(want) {
		longer := len(got)
		if len(want) > longer {
			longer = len(want)
		}
		errs += (longer - n) * bits
	}
	return errs
}

// BER returns the bit error rate (fraction in [0,1]) between got and want.
func BER(got, want []uint64, bits int) float64 {
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	if n == 0 {
		return 0
	}
	return float64(BitErrors(got, want, bits)) / float64(n*bits)
}
