package core

import "fmt"

// FillWord is the value imprinted into segment words not covered by
// watermark replicas: all ones, so the padding cells stay "good" and
// accumulate only erase-only wear.
const FillWord = uint64(0xFFFF_FFFF_FFFF_FFFF)

// Replicate lays out `copies` consecutive replicas of the payload words
// across a segment of segWords words, padding the remainder with
// FillWord. Majority voting over the replicas at extraction drives the
// bit error rate down (paper §V, Figs. 10–11). copies must be odd so the
// vote cannot tie.
func Replicate(payload []uint64, copies, segWords int) ([]uint64, error) {
	if copies <= 0 || copies%2 == 0 {
		return nil, fmt.Errorf("core: replica count must be odd and positive, got %d", copies)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	if len(payload)*copies > segWords {
		return nil, fmt.Errorf("core: %d replicas of %d words exceed segment of %d words",
			copies, len(payload), segWords)
	}
	out := make([]uint64, segWords)
	pos := 0
	for c := 0; c < copies; c++ {
		pos += copy(out[pos:], payload)
	}
	for ; pos < segWords; pos++ {
		out[pos] = FillWord
	}
	return out, nil
}

// MajorityDecode recovers the payload from an extracted segment image by
// majority-voting each bit across the `copies` replicas laid out by
// Replicate. bits is the word width in bits.
func MajorityDecode(extracted []uint64, payloadWords, copies, bits int) ([]uint64, error) {
	if copies <= 0 || copies%2 == 0 {
		return nil, fmt.Errorf("core: replica count must be odd and positive, got %d", copies)
	}
	if payloadWords <= 0 {
		return nil, fmt.Errorf("core: non-positive payload length %d", payloadWords)
	}
	if payloadWords*copies > len(extracted) {
		return nil, fmt.Errorf("core: extracted image of %d words cannot hold %d replicas of %d words",
			len(extracted), copies, payloadWords)
	}
	if bits <= 0 || bits > 64 {
		return nil, fmt.Errorf("core: word width %d out of range", bits)
	}
	out := make([]uint64, payloadWords)
	for w := 0; w < payloadWords; w++ {
		for b := 0; b < bits; b++ {
			votes := 0
			for c := 0; c < copies; c++ {
				if extracted[c*payloadWords+w]&(1<<uint(b)) != 0 {
					votes++
				}
			}
			if votes > copies/2 {
				out[w] |= 1 << uint(b)
			}
		}
	}
	return out, nil
}

// ReplicaViews returns the individual replica images from an extracted
// segment (for per-replica error analysis, paper Fig. 10).
func ReplicaViews(extracted []uint64, payloadWords, copies int) ([][]uint64, error) {
	if payloadWords <= 0 || copies <= 0 {
		return nil, fmt.Errorf("core: invalid replica layout %d x %d", payloadWords, copies)
	}
	if payloadWords*copies > len(extracted) {
		return nil, fmt.Errorf("core: extracted image too short for %d x %d", payloadWords, copies)
	}
	views := make([][]uint64, copies)
	for c := 0; c < copies; c++ {
		views[c] = extracted[c*payloadWords : (c+1)*payloadWords]
	}
	return views, nil
}
