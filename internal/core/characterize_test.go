package core

import (
	"testing"
	"time"
)

func TestCharacterizeFreshSegment(t *testing.T) {
	d := newDev(t, 20)
	points, err := CharacterizeSegment(d, 0, CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("sweep produced only %d points", len(points))
	}
	cells := d.Geometry().CellsPerSegment()
	// t_PE = 0: all programmed.
	if points[0].Cells0 != cells || points[0].Cells1 != 0 {
		t.Errorf("at t=0: cells0=%d cells1=%d", points[0].Cells0, points[0].Cells1)
	}
	// Sweep auto-stops when all erased.
	last := points[len(points)-1]
	if last.Cells0 != 0 {
		t.Errorf("sweep ended with %d programmed cells", last.Cells0)
	}
	// Fresh transition completes by ~40 µs (paper: 35 µs).
	at, ok := AllErasedTime(points)
	if !ok {
		t.Fatal("never fully erased")
	}
	if at > 40*time.Microsecond {
		t.Errorf("fresh all-erased at %v, want <= 40µs", at)
	}
	// Counts are conserved at every point.
	for _, p := range points {
		if p.Cells0+p.Cells1 != cells {
			t.Errorf("at %v: %d+%d != %d", p.TPE, p.Cells0, p.Cells1, cells)
		}
	}
}

func TestCharacterizeStressedSlower(t *testing.T) {
	fresh := newDev(t, 21)
	worn := newDev(t, 21)
	wmZeros := make([]uint64, segWords(worn)) // stress every cell
	if err := ImprintSegment(worn, 0, wmZeros, ImprintOptions{NPE: 20_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	fp, err := CharacterizeSegment(fresh, 0, CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := CharacterizeSegment(worn, 0, CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := AllErasedTime(fp)
	wt, ok := AllErasedTime(wp)
	if !ok {
		t.Fatal("stressed segment never fully erased within nominal time")
	}
	if wt < 2*ft {
		t.Errorf("20K segment all-erased %v, want >> fresh %v (paper: 115µs vs 35µs)", wt, ft)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	d := newDev(t, 22)
	if _, err := CharacterizeSegment(d, 0, CharacterizeOptions{Reads: 2}); err == nil {
		t.Error("even reads accepted")
	}
	if _, err := CharacterizeSegment(d, 0, CharacterizeOptions{Step: -time.Microsecond}); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := CharacterizeSegment(d, -5, CharacterizeOptions{}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestCharacterizeMaxCap(t *testing.T) {
	d := newDev(t, 23)
	points, err := CharacterizeSegment(d, 0, CharacterizeOptions{
		Step: 5 * time.Microsecond,
		Max:  15 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 0, 5, 10, 15
		t.Fatalf("got %d points, want 4", len(points))
	}
	if _, ok := AllErasedTime(points); ok {
		t.Error("15µs cap should not reach all-erased on any segment")
	}
}

func TestDetectStressSeparatesFreshFromWorn(t *testing.T) {
	// The Fig. 5 scenario: one partial-erase round at t_PEW cleanly
	// separates a 50K-cycled segment from a fresh one.
	fresh := newDev(t, 24)
	worn := newDev(t, 24)
	wmZeros := make([]uint64, segWords(worn))
	if err := ImprintSegment(worn, 0, wmZeros, ImprintOptions{NPE: 50_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	const tPEW = 24 * time.Microsecond
	freshCount, err := DetectStress(fresh, 0, tPEW, 3)
	if err != nil {
		t.Fatal(err)
	}
	wornCount, err := DetectStress(worn, 0, tPEW, 3)
	if err != nil {
		t.Fatal(err)
	}
	cells := fresh.Geometry().CellsPerSegment()
	if freshCount > cells/4 {
		t.Errorf("fresh segment: %d/%d still programmed at %v", freshCount, cells, tPEW)
	}
	if wornCount < 3*cells/4 {
		t.Errorf("50K segment: only %d/%d still programmed at %v", wornCount, cells, tPEW)
	}
	distinguishable := (cells - freshCount) * wornCount / cells
	t.Logf("distinguishable bits ~%d / %d (paper: 3833/4096)", distinguishable, cells)
}

func TestDetectStressValidation(t *testing.T) {
	d := newDev(t, 25)
	if _, err := DetectStress(d, 0, 0, 1); err == nil {
		t.Error("zero tPEW accepted")
	}
	if _, err := DetectStress(d, 1<<30, time.Microsecond, 1); err == nil {
		t.Error("bad address accepted")
	}
}

func TestAllErasedTimeEmpty(t *testing.T) {
	if _, ok := AllErasedTime(nil); ok {
		t.Error("empty sweep should not report all-erased")
	}
}
