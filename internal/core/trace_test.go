package core

import "testing"

func TestImprintWordTrace(t *testing.T) {
	d := newDev(t, 40)
	wm := tcWatermark(segWords(d))
	steps, err := ImprintWordTrace(d, 0, wm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("steps = %d, want 6 (E,P per cycle)", len(steps))
	}
	for i, s := range steps {
		wantOp := "E"
		wantVal := uint64(0xFFFF)
		if i%2 == 1 {
			wantOp = "P"
			wantVal = 0x5443
		}
		if s.Op != wantOp || s.Value != wantVal {
			t.Errorf("step %d = {%s %#x}, want {%s %#x}", i, s.Op, s.Value, wantOp, wantVal)
		}
		if s.Cycle != i/2+1 {
			t.Errorf("step %d cycle = %d", i, s.Cycle)
		}
	}
}

func TestImprintWordTraceValidation(t *testing.T) {
	d := newDev(t, 41)
	wm := tcWatermark(segWords(d))
	if _, err := ImprintWordTrace(d, 0, wm, 0); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := ImprintWordTrace(d, 0, wm[:3], 2); err == nil {
		t.Error("short watermark accepted")
	}
	if _, err := ImprintWordTrace(d, 1<<30, wm, 2); err == nil {
		t.Error("bad address accepted")
	}
}

func TestGoodBadString(t *testing.T) {
	// Paper Fig. 6: "TC" = 0x5443 = 0101010001000011b.
	got := GoodBadString(0x5443, 16)
	want := "BGBGBGBBBGBBBBGG"
	if got != want {
		t.Errorf("GoodBadString(0x5443) = %s, want %s", got, want)
	}
	if got := GoodBadString(0xF, 4); got != "GGGG" {
		t.Errorf("all-ones = %s", got)
	}
	if got := GoodBadString(0, 4); got != "BBBB" {
		t.Errorf("all-zeros = %s", got)
	}
}
