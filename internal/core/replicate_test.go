package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestReplicateLayout(t *testing.T) {
	payload := []uint64{0xAAAA, 0x5555}
	out, err := Replicate(payload, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0xAAAA, 0x5555, 0xAAAA, 0x5555, 0xAAAA, 0x5555, FillWord, FillWord, FillWord, FillWord}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("out[%d] = %#x, want %#x", i, out[i], v)
		}
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate([]uint64{1}, 2, 10); err == nil {
		t.Error("even copies accepted")
	}
	if _, err := Replicate([]uint64{1}, 0, 10); err == nil {
		t.Error("zero copies accepted")
	}
	if _, err := Replicate(nil, 3, 10); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := Replicate([]uint64{1, 2, 3, 4}, 3, 10); err == nil {
		t.Error("overflow accepted")
	}
}

func TestMajorityDecodeRecoversErrors(t *testing.T) {
	payload := []uint64{0x5443}
	img, err := Replicate(payload, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one replica completely: majority still wins.
	img[1] = 0x0000
	got, err := MajorityDecode(img, 1, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5443 {
		t.Fatalf("decoded %#x, want 0x5443", got[0])
	}
	// Corrupt two replicas at the same bit: majority flips.
	img2, _ := Replicate(payload, 3, 8)
	img2[0] ^= 1
	img2[1] ^= 1
	got, err = MajorityDecode(img2, 1, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5443^1 {
		t.Fatalf("decoded %#x, want flipped bit", got[0])
	}
}

func TestMajorityDecodeValidation(t *testing.T) {
	img := make([]uint64, 10)
	if _, err := MajorityDecode(img, 1, 2, 16); err == nil {
		t.Error("even copies accepted")
	}
	if _, err := MajorityDecode(img, 0, 3, 16); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := MajorityDecode(img, 4, 3, 16); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := MajorityDecode(img, 1, 3, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := MajorityDecode(img, 1, 3, 65); err == nil {
		t.Error("65 bits accepted")
	}
}

func TestReplicaViews(t *testing.T) {
	img, _ := Replicate([]uint64{1, 2}, 3, 8)
	views, err := ReplicaViews(img, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("views = %d", len(views))
	}
	for _, v := range views {
		if v[0] != 1 || v[1] != 2 {
			t.Fatalf("replica = %v", v)
		}
	}
	if _, err := ReplicaViews(img, 5, 3); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := ReplicaViews(img, 0, 3); err == nil {
		t.Error("zero payload accepted")
	}
}

// Property: without corruption, replicate -> decode is the identity.
func TestQuickReplicateDecodeRoundTrip(t *testing.T) {
	f := func(words []uint16, copiesRaw uint8) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 20 {
			words = words[:20]
		}
		copies := []int{1, 3, 5, 7}[copiesRaw%4]
		payload := make([]uint64, len(words))
		for i, w := range words {
			payload[i] = uint64(w)
		}
		segW := len(payload)*copies + 5
		img, err := Replicate(payload, copies, segW)
		if err != nil {
			return false
		}
		got, err := MajorityDecode(img, len(payload), copies, 16)
		if err != nil {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: majority decode is resilient to corrupting any minority
// subset of replicas at a single bit position.
func TestQuickMajorityResilience(t *testing.T) {
	f := func(corruptMask uint8, bit uint8) bool {
		const copies = 5
		payload := []uint64{0x1234}
		img, err := Replicate(payload, copies, copies)
		if err != nil {
			return false
		}
		b := uint(bit % 16)
		corrupted := 0
		for c := 0; c < copies; c++ {
			if corruptMask&(1<<uint(c)) != 0 {
				img[c] ^= 1 << b
				corrupted++
			}
		}
		got, err := MajorityDecode(img, 1, copies, 16)
		if err != nil {
			return false
		}
		if corrupted <= copies/2 {
			return got[0] == 0x1234
		}
		return got[0] == 0x1234^(1<<b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedExtractionEndToEnd(t *testing.T) {
	// Fig. 10 in miniature: a small payload replicated 7 times at 50K
	// cycles is recovered exactly by majority voting.
	d := newDev(t, 30)
	payload := []uint64{0x5443, 0x4D4B, 0x2041, 0x4343} // "TC MK AC C"
	img, err := Replicate(payload, 7, segWords(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := ImprintSegment(d, 0, img, ImprintOptions{NPE: 50_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	extracted, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 26 * time.Microsecond, Reads: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MajorityDecode(extracted, len(payload), 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	errs := BitErrors(got, payload, 16)
	views, _ := ReplicaViews(extracted, len(payload), 7)
	worst, sum := 0, 0
	for i, v := range views {
		e := BitErrors(v, payload, 16)
		t.Logf("replica %d: %d bit errors", i+1, e)
		sum += e
		if e > worst {
			worst = e
		}
	}
	// The vote must beat the typical replica decisively and leave the
	// payload essentially intact (the paper's Fig. 10 reaches exactly 0;
	// our calibrated substrate occasionally leaves a stray bit).
	mean := float64(sum) / 7
	if float64(errs) >= mean/2 && errs > 1 {
		t.Fatalf("majority decode left %d errors vs mean replica %.1f", errs, mean)
	}
	if errs > 2 {
		t.Fatalf("majority-decoded payload has %d bit errors, want <= 2", errs)
	}
}
