package core

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/flashctl"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nor"
)

func newDev(t *testing.T, seed uint64) device.Device {
	t.Helper()
	d, err := mcu.Open(mcu.PartSmallSim(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func segWords(d device.Device) int { return d.Geometry().WordsPerSegment() }

// ctlOf unwraps the backend's flash controller — white-box access the
// physics-pinning tests below need.
func ctlOf(t *testing.T, d device.Device) *flashctl.Controller {
	t.Helper()
	c, ok := device.As[interface {
		Controller() *flashctl.Controller
	}](d)
	if !ok {
		t.Fatal("backend does not expose a flash controller")
	}
	return c.Controller()
}

// wearOf reads per-cell wear through the backend's controller.
func wearOf(t *testing.T, d device.Device) *nor.Array {
	t.Helper()
	return ctlOf(t, d).Array()
}

// paramsOf fetches the floating-gate model constants of an mcu-backed die.
func paramsOf(t *testing.T, d device.Device) floatgate.Params {
	t.Helper()
	c, ok := device.As[interface{ Part() mcu.Part }](d)
	if !ok {
		t.Fatal("backend has no part descriptor")
	}
	return c.Part().Params
}

// tcWatermark fills a segment with the paper's "TC" = 0x5443 example.
func tcWatermark(n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = 0x5443
	}
	return w
}

func TestImprintValidation(t *testing.T) {
	d := newDev(t, 1)
	if err := ImprintSegment(d, 0, []uint64{1, 2}, ImprintOptions{NPE: 10}); err == nil {
		t.Error("short watermark accepted")
	}
	if err := ImprintSegment(d, 0, tcWatermark(segWords(d)), ImprintOptions{NPE: -1}); err == nil {
		t.Error("negative NPE accepted")
	}
}

func TestImprintLeavesControllerLocked(t *testing.T) {
	d := newDev(t, 1)
	if err := ImprintSegment(d, 0, tcWatermark(segWords(d)), ImprintOptions{NPE: 10}); err != nil {
		t.Fatal(err)
	}
	if !ctlOf(t, d).Locked() {
		t.Error("imprint left controller unlocked")
	}
}

func TestImprintLeavesWatermarkReadable(t *testing.T) {
	d := newDev(t, 1)
	wm := tcWatermark(segWords(d))
	if err := ImprintSegment(d, 0, wm, ImprintOptions{NPE: 100}); err != nil {
		t.Fatal(err)
	}
	v, err := ctlOf(t, d).ReadWord(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5443 {
		t.Errorf("word after imprint = %#x, want 0x5443", v)
	}
}

func TestImprintWearsZeroBitsOnly(t *testing.T) {
	d := newDev(t, 2)
	wm := tcWatermark(segWords(d))
	const npe = 1000
	if err := ImprintSegment(d, 0, wm, ImprintOptions{NPE: npe}); err != nil {
		t.Fatal(err)
	}
	geom := d.Geometry()
	arr := wearOf(t, d)
	p := paramsOf(t, d)
	// 0x5443 = 0101 0100 0100 0011: bit0 and bit1 are 1 (good).
	goodWear := arr.Wear(geom.CellIndex(0, 0, 0))
	badWear := arr.Wear(geom.CellIndex(0, 0, 2)) // bit2 of 0x...43 is 0
	if goodWear >= badWear {
		t.Fatalf("good wear %v should be far below bad wear %v", goodWear, badWear)
	}
	// The first erase sees the fresh (erased) segment, so a zero bit
	// accrues one erase-only exposure plus npe-1 full P/E cycles.
	wantBad := (npe-1)*p.EraseFromProgrammedWear + p.EraseOnlyWear
	if badWear != wantBad {
		t.Errorf("bad wear = %v, want %v", badWear, wantBad)
	}
	if goodWear != npe*p.EraseOnlyWear {
		t.Errorf("good wear = %v, want %v", goodWear, float64(npe)*p.EraseOnlyWear)
	}
}

func TestExtractValidation(t *testing.T) {
	d := newDev(t, 1)
	if _, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 0}); err == nil {
		t.Error("zero TPEW accepted")
	}
	if _, err := ExtractSegment(d, 0, ExtractOptions{TPEW: time.Microsecond, Reads: 2}); err == nil {
		t.Error("even read count accepted")
	}
	if _, err := ExtractSegment(d, 0, ExtractOptions{TPEW: time.Microsecond, Reads: -3}); err == nil {
		t.Error("negative read count accepted")
	}
}

func TestImprintExtractRoundTrip(t *testing.T) {
	// The paper's headline flow: a heavily imprinted watermark survives
	// extraction with a low bit error rate at a sensible t_PEW.
	d := newDev(t, 3)
	wm := ReferenceWatermark(segWords(d))
	if err := ImprintSegment(d, 0, wm, ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 24 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ber := BER(got, wm, 16)
	if ber > 0.15 {
		t.Fatalf("60K imprint BER = %.3f, want < 0.15", ber)
	}
	if ber == 0 {
		t.Log("note: zero BER single-read extraction (possible but unusual)")
	}
}

func TestExtractionSurvivesErase(t *testing.T) {
	// The core security property: wiping the segment does not remove the
	// watermark, because it is imprinted in physical wear.
	d := newDev(t, 4)
	wm := ReferenceWatermark(segWords(d))
	if err := ImprintSegment(d, 0, wm, ImprintOptions{NPE: 60_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	ctl := ctlOf(t, d)
	if err := ctl.Unlock(0xA5); err != nil {
		t.Fatal(err)
	}
	// The counterfeiter erases the segment and writes innocuous data.
	if err := ctl.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	cover := make([]uint64, segWords(d))
	for i := range cover {
		cover[i] = 0xBEEF
	}
	if err := ctl.ProgramBlock(0, cover); err != nil {
		t.Fatal(err)
	}
	ctl.Lock()
	got, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 24 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if ber := BER(got, wm, 16); ber > 0.15 {
		t.Fatalf("watermark lost after erase+rewrite: BER = %.3f", ber)
	}
}

func TestExtractFreshSegmentReadsWatermarkless(t *testing.T) {
	// Fresh segment, small t_PEW: everything still programmed (reads 0);
	// large t_PEW: everything erased (reads 1). Matches the 0K line of
	// Fig. 9.
	d := newDev(t, 5)
	got, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 5 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w != 0 {
			t.Fatalf("fresh segment at 5µs read %#x, want 0", w)
		}
	}
	got, err = ExtractSegment(d, 0, ExtractOptions{TPEW: 60 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w != 0xFFFF {
			t.Fatalf("fresh segment at 60µs read %#x, want 0xFFFF", w)
		}
	}
}

func TestMajorityReadsReduceNoise(t *testing.T) {
	// With the same imprint, 5-read extraction should not be worse than
	// single-read on average (noise flips are filtered).
	wmBER := func(reads int) float64 {
		total := 0.0
		for seed := uint64(10); seed < 14; seed++ {
			d := newDev(t, seed)
			wm := ReferenceWatermark(segWords(d))
			if err := ImprintSegment(d, 0, wm, ImprintOptions{NPE: 40_000, Accelerated: true}); err != nil {
				t.Fatal(err)
			}
			got, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 24 * time.Microsecond, Reads: reads})
			if err != nil {
				t.Fatal(err)
			}
			total += BER(got, wm, 16)
		}
		return total / 4
	}
	single := wmBER(1)
	voted := wmBER(5)
	if voted > single*1.1+0.005 {
		t.Errorf("5-read BER %.4f should not exceed single-read %.4f", voted, single)
	}
}

func TestExtractHostReadoutCharged(t *testing.T) {
	d := newDev(t, 6)
	before := d.Ledger().Of(mcu.OpHost)
	if _, err := ExtractSegment(d, 0, ExtractOptions{TPEW: 20 * time.Microsecond, Reads: 3, HostReadout: true}); err != nil {
		t.Fatal(err)
	}
	if d.Ledger().Of(mcu.OpHost) <= before {
		t.Error("host readout not charged")
	}
}

func TestAnalyzeSegmentCounts(t *testing.T) {
	d := newDev(t, 7)
	ctl := ctlOf(t, d)
	if err := ctl.Unlock(0xA5); err != nil {
		t.Fatal(err)
	}
	if err := ctl.ProgramWord(0, 0x00FF); err != nil { // 8 zeros, 8 ones
		t.Fatal(err)
	}
	ctl.Lock()
	words, c1, c0, err := AnalyzeSegment(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	geom := d.Geometry()
	wantCells := geom.CellsPerSegment()
	if c1+c0 != wantCells {
		t.Fatalf("c1+c0 = %d, want %d", c1+c0, wantCells)
	}
	if c0 != 8 {
		t.Errorf("cells0 = %d, want 8", c0)
	}
	if words[0] != 0x00FF {
		t.Errorf("word 0 = %#x", words[0])
	}
	if _, _, _, err := AnalyzeSegment(d, 0, 2); err == nil {
		t.Error("even reads accepted")
	}
	if _, _, _, err := AnalyzeSegment(d, -1, 3); err == nil {
		t.Error("bad address accepted")
	}
}

func TestBitErrorsAndBER(t *testing.T) {
	if n := BitErrors([]uint64{0xFF}, []uint64{0xFF}, 8); n != 0 {
		t.Errorf("identical words: %d errors", n)
	}
	if n := BitErrors([]uint64{0xF0}, []uint64{0x0F}, 8); n != 8 {
		t.Errorf("complementary nibbles: %d errors, want 8", n)
	}
	if n := BitErrors([]uint64{0xF0, 0x01}, []uint64{0xF0}, 8); n != 8 {
		t.Errorf("length mismatch: %d errors, want 8", n)
	}
	// Mask: only low 4 bits counted.
	if n := BitErrors([]uint64{0xF0}, []uint64{0x00}, 4); n != 0 {
		t.Errorf("masked errors = %d, want 0", n)
	}
	if got := BER([]uint64{0x0F}, []uint64{0x00}, 8); got != 0.5 {
		t.Errorf("BER = %v, want 0.5", got)
	}
	if got := BER(nil, nil, 8); got != 0 {
		t.Errorf("empty BER = %v", got)
	}
}

func TestImprintLiteralMatchesFastForward(t *testing.T) {
	a := newDev(t, 8)
	b := newDev(t, 8)
	wm := tcWatermark(segWords(a))
	if err := ImprintSegment(a, 0, wm, ImprintOptions{NPE: 20, Literal: true}); err != nil {
		t.Fatal(err)
	}
	if err := ImprintSegment(b, 0, wm, ImprintOptions{NPE: 20}); err != nil {
		t.Fatal(err)
	}
	geomA := a.Geometry()
	for i := 0; i < geomA.CellsPerSegment(); i++ {
		if wearOf(t, a).Wear(i) != wearOf(t, b).Wear(i) {
			t.Fatalf("wear diverged at cell %d", i)
		}
	}
	if a.Clock().Now() != b.Clock().Now() {
		t.Errorf("time diverged: literal %v vs fast %v", a.Clock().Now(), b.Clock().Now())
	}
}

func TestAcceleratedImprintFasterSameOutcome(t *testing.T) {
	slow := newDev(t, 9)
	fast := newDev(t, 9)
	wm := ReferenceWatermark(segWords(slow))
	if err := ImprintSegment(slow, 0, wm, ImprintOptions{NPE: 5000}); err != nil {
		t.Fatal(err)
	}
	if err := ImprintSegment(fast, 0, wm, ImprintOptions{NPE: 5000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(slow.Clock().Now()) / float64(fast.Clock().Now())
	if ratio < 2.5 {
		t.Errorf("accelerated speedup %.2fx, want > 2.5x (paper ~3.5x)", ratio)
	}
	for i := 0; i < slow.Geometry().CellsPerSegment(); i++ {
		if wearOf(t, slow).Wear(i) != wearOf(t, fast).Wear(i) {
			t.Fatalf("wear diverged at cell %d", i)
		}
	}
}

func TestDefaultNPEApplied(t *testing.T) {
	d := newDev(t, 10)
	wm := tcWatermark(segWords(d))
	if err := ImprintSegment(d, 0, wm, ImprintOptions{Accelerated: true}); err != nil {
		t.Fatal(err)
	}
	geom := d.Geometry()
	badWear := wearOf(t, d).Wear(geom.CellIndex(0, 0, 2))
	p := paramsOf(t, d)
	want := (DefaultNPE-1)*p.EraseFromProgrammedWear + p.EraseOnlyWear
	if badWear != want {
		t.Errorf("default NPE wear = %v, want %v", badWear, want)
	}
}
