package core

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/device"
)

// CharacterizePoint is one row of a characterization sweep: the state of
// a segment after a partial erase of duration TPE.
type CharacterizePoint struct {
	TPE    time.Duration
	Cells0 int // cells reading programmed
	Cells1 int // cells reading erased
}

// CharacterizeOptions controls CharacterizeSegment.
type CharacterizeOptions struct {
	// Step is the partial erase time increment Δt. Zero selects 2 µs.
	Step time.Duration
	// Max caps the sweep; zero sweeps until every cell reads erased
	// (or the nominal erase time is reached, whichever is first).
	Max time.Duration
	// Reads is the majority read count N (odd). Zero selects 3,
	// the paper's example.
	Reads int
}

// CharacterizeSegment runs the paper's Fig. 3 procedure on the segment
// containing segAddr: for each partial erase time t_PE it erases the
// segment, programs every cell, applies a partial erase of t_PE, and
// majority-reads the result. The returned curve is the paper's Fig. 4 for
// this segment's wear state.
//
// Note that characterization itself wears the segment by roughly one P/E
// cycle per point — on real silicon as in this simulation — which is
// negligible against the 10^4-cycle stress levels being measured.
func CharacterizeSegment(dev device.Device, segAddr int, opts CharacterizeOptions) ([]CharacterizePoint, error) {
	step := opts.Step
	if step == 0 {
		step = 2 * time.Microsecond
	}
	if step < 0 {
		return nil, fmt.Errorf("core: negative characterization step %v", step)
	}
	reads := opts.Reads
	if reads == 0 {
		reads = 3
	}
	if reads < 0 || reads%2 == 0 {
		return nil, fmt.Errorf("core: reads must be odd and positive, got %d", reads)
	}
	geom := dev.Geometry()
	maxT := opts.Max
	if maxT == 0 || maxT > dev.NominalEraseTime() {
		maxT = dev.NominalEraseTime()
	}
	if err := dev.Unlock(); err != nil {
		return nil, err
	}
	defer dev.Lock()

	allZeros := make([]uint64, geom.WordsPerSegment())
	var points []CharacterizePoint
	for tpe := time.Duration(0); tpe <= maxT; tpe += step {
		if err := dev.EraseSegment(segAddr); err != nil {
			return nil, err
		}
		if err := dev.ProgramBlock(segAddr, allZeros); err != nil {
			return nil, err
		}
		if err := dev.PartialEraseSegment(segAddr, tpe); err != nil {
			return nil, err
		}
		_, c1, c0, err := AnalyzeSegment(dev, segAddr, reads)
		if err != nil {
			return nil, err
		}
		points = append(points, CharacterizePoint{TPE: tpe, Cells0: c0, Cells1: c1})
		if opts.Max == 0 && c0 == 0 && tpe > 0 {
			break
		}
	}
	return points, nil
}

// AllErasedTime returns the smallest swept t_PE at which every cell read
// erased, or ok=false if the sweep never got there. This is the per-wear
// "minimum t_PE when all cells read as erased" statistic of Fig. 4.
func AllErasedTime(points []CharacterizePoint) (time.Duration, bool) {
	for _, p := range points {
		if p.Cells0 == 0 && p.TPE > 0 {
			return p.TPE, true
		}
	}
	return 0, false
}

// DetectStress runs one partial-erase round (paper Fig. 5) on the segment
// containing segAddr and reports how many cells still read programmed at
// t_PEW. Fresh segments erase almost completely (small count); segments
// that lived through heavy P/E cycling resist (large count). The segment
// content is destroyed.
func DetectStress(dev device.Device, segAddr int, tPEW time.Duration, reads int) (programmed int, err error) {
	if reads == 0 {
		reads = 1
	}
	geom := dev.Geometry()
	if tPEW <= 0 {
		return 0, fmt.Errorf("core: non-positive t_PEW %v", tPEW)
	}
	if err := dev.Unlock(); err != nil {
		return 0, err
	}
	defer dev.Lock()
	if err := dev.EraseSegment(segAddr); err != nil {
		return 0, err
	}
	allZeros := make([]uint64, geom.WordsPerSegment())
	if err := dev.ProgramBlock(segAddr, allZeros); err != nil {
		return 0, err
	}
	if err := dev.PartialEraseSegment(segAddr, tPEW); err != nil {
		return 0, err
	}
	_, _, c0, err := AnalyzeSegment(dev, segAddr, reads)
	if err != nil {
		return 0, err
	}
	return c0, nil
}
