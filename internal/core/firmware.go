package core

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/flashctl"
)

// This file expresses the Flashmark procedures as FCTL register
// sequences — exactly what the paper's firmware does on the MSP430
// ("writing and reading watermarks can be done from the flash controller
// with standard system commands", §I). The method-level procedures
// (ImprintSegment, ExtractSegment) remain the primary API; these
// register-level twins exist to demonstrate that no operation beyond the
// documented register protocol is needed, and tests pin them to the
// method-level results.

// RegisterDevice is a backend that additionally exposes the FCTL
// register protocol. Only register-capable backends (the mcu NOR
// device) satisfy it; NAND parts have no FCTL and stay method-level.
type RegisterDevice interface {
	device.Device
	Registers() *flashctl.RegisterFile
}

// ImprintSegmentViaRegisters performs the Fig. 7 imprint by driving the
// FCTL register protocol for every cycle: unlock, select ERASE, dummy
// write, select WRT, program each word, re-lock. It is O(NPE) in
// simulation and intended for modest cycle counts; production simulations
// use ImprintSegment.
func ImprintSegmentViaRegisters(dev RegisterDevice, segAddr int, watermark []uint64, npe int) error {
	geom := dev.Geometry()
	if len(watermark) != geom.WordsPerSegment() {
		return fmt.Errorf("core: watermark has %d words, segment holds %d", len(watermark), geom.WordsPerSegment())
	}
	if npe <= 0 {
		return fmt.Errorf("core: register imprint needs positive N_PE, got %d", npe)
	}
	seg, err := geom.SegmentOfAddr(segAddr)
	if err != nil {
		return err
	}
	base := seg * geom.SegmentBytes
	r := dev.Registers()
	if err := r.Write(flashctl.FCTL3, flashctl.FCTLPassword); err != nil {
		return err
	}
	defer func() { _ = r.Write(flashctl.FCTL3, flashctl.FCTLPassword|flashctl.BitLOCK) }()
	for cycle := 0; cycle < npe; cycle++ {
		if err := r.Write(flashctl.FCTL1, flashctl.FCTLPassword|flashctl.BitERASE); err != nil {
			return err
		}
		if err := r.DummyWrite(base, 0); err != nil {
			return err
		}
		if err := r.Write(flashctl.FCTL1, flashctl.FCTLPassword|flashctl.BitWRT); err != nil {
			return err
		}
		for w, value := range watermark {
			if err := r.DummyWrite(base+w*geom.WordBytes, value); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExtractSegmentViaRegisters performs the Fig. 8 extraction through the
// register protocol: erase, program all zeros, arm the emergency exit
// for t_PEW, start the erase, then read every word.
func ExtractSegmentViaRegisters(dev RegisterDevice, segAddr int, tPEW time.Duration) ([]uint64, error) {
	if tPEW <= 0 {
		return nil, fmt.Errorf("core: non-positive t_PEW %v", tPEW)
	}
	geom := dev.Geometry()
	seg, err := geom.SegmentOfAddr(segAddr)
	if err != nil {
		return nil, err
	}
	base := seg * geom.SegmentBytes
	r := dev.Registers()
	if err := r.Write(flashctl.FCTL3, flashctl.FCTLPassword); err != nil {
		return nil, err
	}
	defer func() { _ = r.Write(flashctl.FCTL3, flashctl.FCTLPassword|flashctl.BitLOCK) }()

	// Erase the segment.
	if err := r.Write(flashctl.FCTL1, flashctl.FCTLPassword|flashctl.BitERASE); err != nil {
		return nil, err
	}
	if err := r.DummyWrite(base, 0); err != nil {
		return nil, err
	}
	// Program every word to zero.
	if err := r.Write(flashctl.FCTL1, flashctl.FCTLPassword|flashctl.BitWRT); err != nil {
		return nil, err
	}
	for w := 0; w < geom.WordsPerSegment(); w++ {
		if err := r.DummyWrite(base+w*geom.WordBytes, 0); err != nil {
			return nil, err
		}
	}
	// Partial erase: arm EMEX, start the erase.
	if err := r.Write(flashctl.FCTL1, flashctl.FCTLPassword|flashctl.BitERASE); err != nil {
		return nil, err
	}
	if err := r.ArmEmergencyExit(tPEW); err != nil {
		return nil, err
	}
	if err := r.DummyWrite(base, 0); err != nil {
		return nil, err
	}
	// Read the segment.
	out := make([]uint64, geom.WordsPerSegment())
	for w := range out {
		v, err := r.ReadWord(base + w*geom.WordBytes)
		if err != nil {
			return nil, err
		}
		out[w] = v
	}
	return out, nil
}
