package report

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAddRowStringerBranch(t *testing.T) {
	tbl := Table{Columns: []string{"d"}}
	tbl.AddRow(25 * time.Microsecond) // time.Duration implements fmt.Stringer
	if tbl.Rows[0][0] != "25µs" {
		t.Fatalf("Stringer cell rendered %q", tbl.Rows[0][0])
	}
}

func TestFormatFloatNaN(t *testing.T) {
	tbl := Table{Columns: []string{"v"}}
	tbl.AddRow(math.NaN())
	if tbl.Rows[0][0] != "NaN" {
		t.Fatalf("NaN rendered %q", tbl.Rows[0][0])
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatalf("NaN cell must still render a table: %v", err)
	}
	if !strings.Contains(b.String(), "NaN") {
		t.Fatalf("table output lost the NaN cell:\n%s", b.String())
	}
}
