package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tbl := Table{Title: "Demo", Columns: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.0)
	tbl.AddRow("beta-longer", 123.456)
	tbl.AddNote("measured on %d chips", 3)
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## Demo", "name", "value", "alpha", "beta-longer", "123.5", "note: measured on 3 chips"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Alignment: header and separator lines have the same width prefix.
	lines := strings.Split(out, "\n")
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if len(sep) < len("name") || !strings.HasPrefix(sep, "-") {
		t.Errorf("separator malformed: %q after %q", sep, header)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := Table{Columns: []string{"v"}}
	tbl.AddRow(2.0)
	tbl.AddRow(0.1234567)
	tbl.AddRow(1234.5678)
	tbl.AddRow(12.345)
	if tbl.Rows[0][0] != "2" {
		t.Errorf("integral float = %q", tbl.Rows[0][0])
	}
	if tbl.Rows[1][0] != "0.1235" {
		t.Errorf("small float = %q", tbl.Rows[1][0])
	}
	if tbl.Rows[2][0] != "1234.6" {
		t.Errorf("large float = %q", tbl.Rows[2][0])
	}
	if tbl.Rows[3][0] != "12.35" {
		t.Errorf("mid float = %q", tbl.Rows[3][0])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `with"quote`)
	tbl.AddRow("comma,inside", "x")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("CSV header missing: %q", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
	if !strings.Contains(out, `"comma,inside"`) {
		t.Errorf("CSV comma quoting wrong: %q", out)
	}
}

func TestPlotRendersSeries(t *testing.T) {
	p := Plot{
		Title:  "curve",
		XLabel: "t",
		YLabel: "n",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
		Width:  20,
		Height: 10,
	}
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## curve", "*", "o", "up", "down", "x: t   y: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Errorf("empty plot output: %q", b.String())
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := Plot{Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}

func TestAddRowStringer(t *testing.T) {
	tbl := Table{Columns: []string{"d"}}
	tbl.AddRow(strings.NewReplacer()) // not a Stringer: falls to fmt.Sprint
	if len(tbl.Rows) != 1 {
		t.Fatal("row not added")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := Table{Title: "MD", Columns: []string{"a", "b"}}
	tbl.AddRow("x|y", 2.0)
	tbl.AddNote("a note")
	var b strings.Builder
	if err := tbl.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## MD", "| a | b |", "| --- | --- |", `x\|y`, "| 2 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
