// Package report renders experiment results as aligned text tables, CSV,
// and terminal-friendly ASCII curve plots — the output layer of the
// evaluation harness (cmd/fmexperiments).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quoting cells containing commas).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Series is one named curve of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot renders one or more series as an ASCII chart (y down-sampled into
// a fixed character grid), good enough to eyeball the curve shapes the
// paper's figures show.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // grid width in characters (0 selects 72)
	Height int // grid height in characters (0 selects 20)
}

// WriteText renders the plot.
func (p *Plot) WriteText(w io.Writer) error {
	width := p.Width
	if width <= 0 {
		width = 72
	}
	height := p.Height
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", p.Title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no data)\n\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range p.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			cy := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mark
			}
		}
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.4g%*s\n", "", minX, width-10, fmt.Sprintf("%.4g", maxX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table,
// convenient for pasting measured results into EXPERIMENTS.md.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
