package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachContextNeverCanceled pins the satellite contract: with a
// background context the context-aware entry points behave exactly like
// the originals, including lowest-index error selection (and the serial
// path's early exit on first error).
func TestForEachContextNeverCanceled(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var ran atomic.Int64
		err := ForEachContext(context.Background(), Pool{Workers: workers}, 20, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 11 {
				return errors.New("boom")
			}
			return nil
		})
		if err == nil || err.Error() != "boom" {
			t.Fatalf("workers=%d: want lowest-index boom error, got %v", workers, err)
		}
		if workers == 1 {
			if got := ran.Load(); got != 4 {
				t.Fatalf("serial path stops at first error, ran %d", got)
			}
		} else if got := ran.Load(); got != 20 {
			t.Fatalf("workers=%d: all items must be attempted, ran %d", workers, got)
		}
	}
}

// TestForEachContextStopsScheduling cancels mid-run and checks that no
// new items start afterwards while in-flight items complete.
func TestForEachContextStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1000
		err := ForEachContext(ctx, Pool{Workers: workers}, n, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// In-flight items finish, so up to `workers` extra items may have
		// started before every worker observed the cancellation.
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: cancellation did not stop scheduling (%d of %d ran)", workers, got, n)
		}
		cancel()
	}
}

// TestForEachContextItemErrorBeatsCancel keeps the error contract under
// cancellation: a real item failure outranks the context error.
func TestForEachContextItemErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("item failed")
	err := ForEachContext(ctx, Pool{Workers: 1}, 10, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want item error to win over cancellation, got %v", err)
	}
}

// TestMapContextCanceledBeforeStart never schedules anything when the
// context is already dead.
func TestMapContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapContext(ctx, Pool{Workers: 4}, 50, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("dead context must schedule nothing, ran %d", ran.Load())
	}
}

// TestMapContextDeterministicResults pins byte-identical output across
// worker counts on the context path.
func TestMapContextDeterministicResults(t *testing.T) {
	want, err := MapContext(context.Background(), Pool{Workers: 1}, 32, func(i int) (uint64, error) {
		return SubSeed(0xBEEF, uint64(i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := MapContext(context.Background(), Pool{Workers: workers}, 32, func(i int) (uint64, error) {
			return SubSeed(0xBEEF, uint64(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
	}
}
