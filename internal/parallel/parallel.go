// Package parallel is the repo's deterministic fan-out engine: a bounded
// worker pool that runs independent, index-addressed work items and
// collects their results by index, so output is byte-identical for any
// worker count (including 1). Experiments and population runs are
// embarrassingly parallel — every item owns its own deterministically
// seeded device.Device — which is exactly the contract this package
// enforces: items must not share mutable state, and per-item sub-seeds
// derive from the same golden-ratio convention the experiment layer has
// always used (see SubSeed).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// seedMix is the 64-bit golden-ratio constant used throughout the repo
// to split a base seed into per-item sub-seeds (splitmix64's increment).
const seedMix = 0x9E3779B97F4A7C15

// SubSeed derives the deterministic sub-seed of item `sub` from a base
// seed, matching the experiment layer's historical convention
// (seed ^ sub*seedMix); two items with distinct sub values get
// decorrelated device identities.
func SubSeed(seed, sub uint64) uint64 {
	return seed ^ sub*seedMix
}

// Pool bounds the fan-out of Map and ForEach.
type Pool struct {
	// Workers is the maximum number of items in flight; zero or negative
	// selects GOMAXPROCS. Workers == 1 runs items inline on the calling
	// goroutine in index order (the exact serial execution).
	Workers int
}

// workers resolves the effective worker count.
func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic that escaped a work item so it propagates as
// an ordinary error with the item index attached.
type PanicError struct {
	Index int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n) on up to p.Workers
// goroutines. All items are attempted regardless of failures (they are
// independent, and deterministic output requires never racing a
// cancellation); the returned error is the lowest-index failure, so the
// error, like the results, is independent of the worker count. A panic
// inside fn surfaces as a *PanicError rather than killing the process.
func ForEach(p Pool, n int, fn func(i int) error) error {
	return ForEachContext(context.Background(), p, n, fn)
}

// ForEachContext is ForEach with cooperative cancellation: once ctx is
// done, no new items are scheduled; items already in flight run to
// completion (work items are never interrupted mid-flight, so a
// canceled run leaves no half-mutated state behind). When ctx is never
// canceled the behavior — including which error is returned — is
// byte-identical to ForEach. On cancellation the lowest-index item
// failure still wins; if every attempted item succeeded, ctx.Err() is
// returned because the iteration is incomplete.
func ForEachContext(ctx context.Context, p Pool, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := p.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runItem(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runItem(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// runItem invokes fn(i) converting a panic into a *PanicError.
func runItem(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r}
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on up to p.Workers goroutines and
// returns the results indexed by item, so the output order never depends
// on scheduling. Error and panic semantics match ForEach; on error the
// partial results are discarded.
func Map[T any](p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), p, n, fn)
}

// MapContext is Map with cooperative cancellation (see ForEachContext):
// once ctx is done no new items are scheduled, in-flight items finish,
// and the partial results are discarded with the cancellation error.
func MapContext[T any](ctx context.Context, p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachContext(ctx, p, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
