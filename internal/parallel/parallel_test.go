package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSubSeedConvention(t *testing.T) {
	// The derivation must match the experiment layer's historical
	// convention exactly: seed ^ sub*0x9E3779B97F4A7C15.
	const seed = 0xF1A5_0001
	for _, sub := range []uint64{0, 1, 4, 55, 100_000} {
		want := uint64(seed) ^ sub*0x9E3779B97F4A7C15
		if got := SubSeed(seed, sub); got != want {
			t.Errorf("SubSeed(%#x, %d) = %#x, want %#x", uint64(seed), sub, got, want)
		}
	}
}

func TestSubSeedDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for sub := uint64(0); sub < 10_000; sub++ {
		s := SubSeed(0xF1A5_0001, sub)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision: subs %d and %d both map to %#x", prev, sub, s)
		}
		seen[s] = sub
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) (uint64, error) { return SubSeed(42, uint64(i)), nil }
	want, err := Map(Pool{Workers: 1}, 257, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7, runtime.GOMAXPROCS(0), 64} {
		got, err := Map(Pool{Workers: w}, 257, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %#x, want %#x", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachEmptyAndDefaults(t *testing.T) {
	if err := ForEach(Pool{}, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	if err := ForEach(Pool{Workers: -3}, 100, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 items", n.Load())
	}
}

func TestFirstErrorIsLowestIndex(t *testing.T) {
	// Whatever the scheduling, the reported error must be item 3's (the
	// lowest failing index), so errors are as deterministic as results.
	for _, w := range []int{1, 2, 8} {
		err := ForEach(Pool{Workers: w}, 64, func(i int) error {
			if i >= 3 && i%5 == 3 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Errorf("workers=%d: err = %v, want item 3 failed", w, err)
		}
	}
}

func TestAllItemsRunDespiteFailures(t *testing.T) {
	var n atomic.Int64
	err := ForEach(Pool{Workers: 4}, 50, func(i int) error {
		n.Add(1)
		if i%2 == 0 {
			return errors.New("even item")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d of 50 items; failures must not cancel siblings", n.Load())
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(Pool{Workers: w}, 10, func(i int) error {
			if i == 6 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", w, err)
		}
		if pe.Index != 6 {
			t.Errorf("workers=%d: panic index = %d, want 6", w, pe.Index)
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	got, err := Map(Pool{Workers: 4}, 10, func(i int) (int, error) {
		if i == 9 {
			return 0, errors.New("late failure")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", got, err)
	}
}

// TestMapRaceHammer drives the pool hard with a mix of succeeding,
// failing and panicking items; run under -race it checks the engine
// itself is data-race free while every slot is written concurrently.
func TestMapRaceHammer(t *testing.T) {
	for round := 0; round < 50; round++ {
		const n = 200
		got, err := Map(Pool{Workers: 16}, n, func(i int) (uint64, error) {
			switch {
			case i%17 == 13:
				return 0, fmt.Errorf("fail %d", i)
			case i%31 == 29:
				panic(i)
			}
			return SubSeed(uint64(round), uint64(i)), nil
		})
		if err == nil || got != nil {
			t.Fatalf("round %d: got (%v, %v), want failure", round, got, err)
		}
		// Lowest failing index overall: min(13, 29) = 13.
		if err.Error() != "fail 13" {
			t.Fatalf("round %d: err = %q, want fail 13", round, err)
		}
	}
}

func TestForEachSingleItemInline(t *testing.T) {
	// n == 1 must run inline regardless of the worker knob (no goroutine
	// churn for the serial experiments that ride the engine).
	var ran bool
	if err := ForEach(Pool{Workers: 8}, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("item did not run")
	}
}
