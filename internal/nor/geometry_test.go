package nor

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{MSP430F5438(), MSP430F5529(), Small(), {1, 1, 2, 2}}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", g, err)
		}
	}
	bad := []Geometry{
		{0, 1, 512, 2},
		{1, 0, 512, 2},
		{1, 1, 0, 2},
		{1, 1, 512, 0},
		{1, 1, 512, 9},
		{1, 1, 511, 2}, // segment not multiple of word
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid geometry", g)
		}
	}
}

func TestGeometryDerivedSizes(t *testing.T) {
	g := MSP430F5438()
	if got := g.TotalSegments(); got != 512 {
		t.Errorf("TotalSegments = %d, want 512", got)
	}
	if got := g.TotalBytes(); got != 256*1024 {
		t.Errorf("TotalBytes = %d, want 256K", got)
	}
	if got := g.CellsPerSegment(); got != 4096 {
		t.Errorf("CellsPerSegment = %d, want 4096", got)
	}
	if got := g.WordsPerSegment(); got != 256 {
		t.Errorf("WordsPerSegment = %d, want 256", got)
	}
	if got := g.WordBits(); got != 16 {
		t.Errorf("WordBits = %d, want 16", got)
	}
	if got := g.TotalCells(); got != 256*1024*8 {
		t.Errorf("TotalCells = %d", got)
	}
}

func TestSegmentOfAddr(t *testing.T) {
	g := Small()
	cases := []struct {
		addr, seg int
	}{
		{0, 0}, {511, 0}, {512, 1}, {1024, 2}, {g.TotalBytes() - 1, g.TotalSegments() - 1},
	}
	for _, c := range cases {
		seg, err := g.SegmentOfAddr(c.addr)
		if err != nil || seg != c.seg {
			t.Errorf("SegmentOfAddr(%d) = %d, %v; want %d", c.addr, seg, err, c.seg)
		}
	}
	for _, addr := range []int{-1, g.TotalBytes()} {
		if _, err := g.SegmentOfAddr(addr); err == nil {
			t.Errorf("SegmentOfAddr(%d) should fail", addr)
		}
	}
}

func TestBankOfSegment(t *testing.T) {
	g := MSP430F5529() // 4 banks x 64 segments
	if b, err := g.BankOfSegment(0); err != nil || b != 0 {
		t.Errorf("BankOfSegment(0) = %d, %v", b, err)
	}
	if b, err := g.BankOfSegment(64); err != nil || b != 1 {
		t.Errorf("BankOfSegment(64) = %d, %v", b, err)
	}
	if b, err := g.BankOfSegment(255); err != nil || b != 3 {
		t.Errorf("BankOfSegment(255) = %d, %v", b, err)
	}
	if _, err := g.BankOfSegment(256); err == nil {
		t.Error("BankOfSegment(256) should fail")
	}
	if _, err := g.BankOfSegment(-1); err == nil {
		t.Error("BankOfSegment(-1) should fail")
	}
}

func TestAddrOfSegmentRoundTrip(t *testing.T) {
	g := Small()
	for seg := 0; seg < g.TotalSegments(); seg++ {
		addr, err := g.AddrOfSegment(seg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.SegmentOfAddr(addr)
		if err != nil || back != seg {
			t.Fatalf("round trip seg %d -> addr %d -> seg %d", seg, addr, back)
		}
	}
	if _, err := g.AddrOfSegment(g.TotalSegments()); err == nil {
		t.Error("AddrOfSegment out of range should fail")
	}
}

func TestCellIndexLayout(t *testing.T) {
	g := Small()
	if got := g.CellIndex(0, 0, 0); got != 0 {
		t.Errorf("first cell index = %d", got)
	}
	if got := g.CellIndex(0, 0, 15); got != 15 {
		t.Errorf("last bit of first word = %d", got)
	}
	if got := g.CellIndex(0, 1, 0); got != 16 {
		t.Errorf("first bit of second word = %d", got)
	}
	if got := g.CellIndex(1, 0, 0); got != g.CellsPerSegment() {
		t.Errorf("first cell of second segment = %d", got)
	}
	last := g.CellIndex(g.TotalSegments()-1, g.WordsPerSegment()-1, g.WordBits()-1)
	if last != g.TotalCells()-1 {
		t.Errorf("last cell index = %d, want %d", last, g.TotalCells()-1)
	}
}

// Property: cell indices are unique and dense across the whole array.
func TestQuickCellIndexBijective(t *testing.T) {
	g := Geometry{Banks: 2, SegmentsPerBank: 3, SegmentBytes: 8, WordBytes: 2}
	seen := map[int]bool{}
	for seg := 0; seg < g.TotalSegments(); seg++ {
		for w := 0; w < g.WordsPerSegment(); w++ {
			for b := 0; b < g.WordBits(); b++ {
				idx := g.CellIndex(seg, w, b)
				if idx < 0 || idx >= g.TotalCells() || seen[idx] {
					t.Fatalf("CellIndex(%d,%d,%d) = %d invalid or duplicate", seg, w, b, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != g.TotalCells() {
		t.Fatalf("indices not dense: %d of %d", len(seen), g.TotalCells())
	}
}

// Property: SegmentOfAddr agrees with AddrOfSegment for arbitrary addresses.
func TestQuickSegmentAddrConsistent(t *testing.T) {
	g := MSP430F5438()
	f := func(raw uint32) bool {
		addr := int(raw) % g.TotalBytes()
		seg, err := g.SegmentOfAddr(addr)
		if err != nil {
			return false
		}
		base, err := g.AddrOfSegment(seg)
		if err != nil {
			return false
		}
		return addr >= base && addr < base+g.SegmentBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOversizedGeometry(t *testing.T) {
	huge := []Geometry{
		{Banks: 1 << 20, SegmentsPerBank: 1 << 20, SegmentBytes: 512, WordBytes: 2},
		{Banks: 1, SegmentsPerBank: 1, SegmentBytes: 1 << 30, WordBytes: 2},
		{Banks: 1 << 30, SegmentsPerBank: 1 << 30, SegmentBytes: 1 << 30, WordBytes: 2}, // would overflow int
	}
	for _, g := range huge {
		if err := g.Validate(); err == nil {
			t.Errorf("oversized geometry %+v accepted", g)
		}
	}
	// The largest catalog part must still pass.
	if err := MSP430F5438().Validate(); err != nil {
		t.Errorf("catalog part rejected: %v", err)
	}
}
