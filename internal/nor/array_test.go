package nor

import (
	"testing"
	"testing/quick"
)

func newSmallArray(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(Small())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayFresh(t *testing.T) {
	a := newSmallArray(t)
	for _, cell := range []int{0, 1, 4095, a.Geometry().TotalCells() - 1} {
		if a.Programmed(cell) {
			t.Errorf("fresh cell %d should be erased", cell)
		}
		if a.Margin(cell) != float64(MarginErased) {
			t.Errorf("fresh cell %d margin = %v", cell, a.Margin(cell))
		}
		if a.Wear(cell) != 0 {
			t.Errorf("fresh cell %d wear = %v", cell, a.Wear(cell))
		}
	}
}

func TestNewArrayRejectsBadGeometry(t *testing.T) {
	if _, err := NewArray(Geometry{}); err == nil {
		t.Fatal("NewArray accepted zero geometry")
	}
}

func TestSetMarginClamps(t *testing.T) {
	a := newSmallArray(t)
	a.SetMargin(0, 1e38*10) // beyond float32
	if a.Margin(0) != float64(MarginErased) {
		t.Errorf("huge margin should clamp to erased sentinel, got %v", a.Margin(0))
	}
	a.SetMargin(0, -1e39)
	if a.Margin(0) != float64(MarginProgrammed) {
		t.Errorf("huge negative margin should clamp, got %v", a.Margin(0))
	}
	a.SetMargin(0, 1.25)
	if a.Margin(0) != 1.25 {
		t.Errorf("finite margin = %v, want 1.25", a.Margin(0))
	}
}

func TestProgrammedSign(t *testing.T) {
	a := newSmallArray(t)
	a.SetMargin(7, -0.5)
	if !a.Programmed(7) {
		t.Error("negative margin should be programmed")
	}
	a.SetMargin(7, 0.5)
	if a.Programmed(7) {
		t.Error("positive margin should be erased")
	}
}

func TestAddWear(t *testing.T) {
	a := newSmallArray(t)
	a.AddWear(3, 1)
	a.AddWear(3, 0.05)
	if got := a.Wear(3); got != 1.05 {
		t.Errorf("wear = %v, want 1.05", got)
	}
}

func TestAddWearRejectsNegative(t *testing.T) {
	a := newSmallArray(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative wear did not panic")
		}
	}()
	a.AddWear(0, -0.1)
}

func TestCellBoundsPanic(t *testing.T) {
	a := newSmallArray(t)
	for _, cell := range []int{-1, a.Geometry().TotalCells()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cell %d access did not panic", cell)
				}
			}()
			a.Margin(cell)
		}()
	}
}

func TestSegmentWearSummary(t *testing.T) {
	a := newSmallArray(t)
	cells := a.Geometry().CellsPerSegment()
	// Wear segment 1 unevenly.
	for i := 0; i < cells; i++ {
		a.AddWear(cells+i, float64(i%3)) // 0,1,2 repeating
	}
	minW, meanW, maxW, err := a.SegmentWearSummary(1)
	if err != nil {
		t.Fatal(err)
	}
	if minW != 0 || maxW != 2 {
		t.Errorf("min/max = %v/%v, want 0/2", minW, maxW)
	}
	if meanW < 0.99 || meanW > 1.01 {
		t.Errorf("mean = %v, want ~1", meanW)
	}
	// Untouched segment stays zero.
	minW, meanW, maxW, err = a.SegmentWearSummary(0)
	if err != nil || minW != 0 || meanW != 0 || maxW != 0 {
		t.Errorf("fresh segment summary = %v/%v/%v, %v", minW, meanW, maxW, err)
	}
	if _, _, _, err := a.SegmentWearSummary(-1); err == nil {
		t.Error("negative segment should fail")
	}
	if _, _, _, err := a.SegmentWearSummary(a.Geometry().TotalSegments()); err == nil {
		t.Error("out-of-range segment should fail")
	}
}

func TestMarshalRoundTripFresh(t *testing.T) {
	a := newSmallArray(t)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh array: sparse encoding should be tiny.
	if len(data) > 64 {
		t.Errorf("fresh array serialized to %d bytes, expected compact", len(data))
	}
	b, err := UnmarshalArray(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Geometry() != a.Geometry() {
		t.Errorf("geometry mismatch: %+v vs %+v", b.Geometry(), a.Geometry())
	}
	if b.Programmed(0) || b.Wear(0) != 0 {
		t.Error("fresh cell state not restored")
	}
}

func TestMarshalRoundTripModified(t *testing.T) {
	a := newSmallArray(t)
	a.SetMargin(5, -1e39) // programmed
	a.SetMargin(9, 2.5)   // partial
	a.AddWear(5, 40000)
	a.AddWear(100, 0.05)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalArray(data)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Programmed(5) || b.Wear(5) != 40000 {
		t.Errorf("cell 5 not restored: margin %v wear %v", b.Margin(5), b.Wear(5))
	}
	if b.Margin(9) != 2.5 {
		t.Errorf("cell 9 margin = %v, want 2.5", b.Margin(9))
	}
	if b.Wear(100) != 0.05 {
		t.Errorf("cell 100 wear = %v, want 0.05", b.Wear(100))
	}
	if b.Programmed(4) || b.Wear(4) != 0 {
		t.Error("untouched cell not default after round trip")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("NORA"),                 // truncated after magic
		[]byte("NORA\x02\x00"),         // bad version
		[]byte("NORA\x01\x00\x01\x00"), // truncated geometry
		append([]byte("NORA\x01\x00"), make([]byte, 16)...), // zero geometry
	}
	for i, data := range cases {
		if _, err := UnmarshalArray(data); err == nil {
			t.Errorf("case %d: UnmarshalArray accepted garbage", i)
		}
	}
}

func TestUnmarshalRejectsCorruptCellRecords(t *testing.T) {
	a := newSmallArray(t)
	a.AddWear(3, 5)
	data, _ := a.MarshalBinary()
	// Truncate mid-record.
	if _, err := UnmarshalArray(data[:len(data)-4]); err == nil {
		t.Error("truncated record accepted")
	}
	// Corrupt the cell index to be out of range.
	bad := append([]byte(nil), data...)
	// count is at offset 4+2+16 = 22; first record index at 30.
	for i := 30; i < 38; i++ {
		bad[i] = 0xFF
	}
	if _, err := UnmarshalArray(bad); err == nil {
		t.Error("out-of-range cell index accepted")
	}
}

// Property: margin set/get round-trips for finite values within float32 range.
func TestQuickMarginRoundTrip(t *testing.T) {
	a := newSmallArray(t)
	f := func(raw int16, cellRaw uint16) bool {
		cell := int(cellRaw) % a.Geometry().TotalCells()
		v := float64(raw) / 16.0
		a.SetMargin(cell, v)
		return a.Margin(cell) == float64(float32(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary sparse modifications.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(mods []struct {
		Cell uint16
		M    int8
		W    uint8
	}) bool {
		a, err := NewArray(Small())
		if err != nil {
			return false
		}
		for _, m := range mods {
			cell := int(m.Cell) % a.Geometry().TotalCells()
			a.SetMargin(cell, float64(m.M))
			a.AddWear(cell, float64(m.W))
		}
		data, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		b, err := UnmarshalArray(data)
		if err != nil {
			return false
		}
		for _, m := range mods {
			cell := int(m.Cell) % a.Geometry().TotalCells()
			if b.Margin(cell) != a.Margin(cell) || b.Wear(cell) != a.Wear(cell) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalWornSegment(b *testing.B) {
	a, _ := NewArray(Small())
	for i := 0; i < 4096; i++ {
		a.AddWear(i, 40000)
		a.SetMargin(i, -1e39)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnmarshalArrayIntoReuses pins the reuse contract: a matching-
// geometry destination is recycled in place (same backing storage, no
// allocation) and decodes to exactly the state a fresh UnmarshalArray
// produces, even when the destination carries arbitrary prior state.
func TestUnmarshalArrayIntoReuses(t *testing.T) {
	a := newSmallArray(t)
	a.SetMargin(5, -1e39)
	a.SetMargin(9, 2.5)
	a.AddWear(5, 40000)
	a.AddWear(100, 0.05)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := UnmarshalArray(data)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty destination with prior state everywhere the payload does not
	// touch: reuse must reset it, not merge.
	dst := newSmallArray(t)
	dst.SetMargin(7, -3)
	dst.AddWear(7, 123)
	got, err := UnmarshalArrayInto(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	if got != dst {
		t.Fatal("matching geometry did not reuse the destination array")
	}
	for i := 0; i < want.Geometry().TotalCells(); i++ {
		if got.Margin(i) != want.Margin(i) || got.Wear(i) != want.Wear(i) {
			t.Fatalf("cell %d: reused decode (%v, %v) != fresh decode (%v, %v)",
				i, got.Margin(i), got.Wear(i), want.Margin(i), want.Wear(i))
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := UnmarshalArrayInto(dst, data); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm UnmarshalArrayInto allocates %v times per run, want 0", n)
	}
	// Mismatched geometry must fall back to a fresh allocation.
	other, err := NewArray(Geometry{Banks: 1, SegmentsPerBank: 2, SegmentBytes: 64, WordBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := UnmarshalArrayInto(other, data)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == other {
		t.Fatal("mismatched geometry reused the destination array")
	}
	if fresh.Geometry() != want.Geometry() {
		t.Fatalf("fallback geometry %+v, want %+v", fresh.Geometry(), want.Geometry())
	}
}

// TestArrayReset pins Reset against NewArray.
func TestArrayReset(t *testing.T) {
	a := newSmallArray(t)
	a.SetMargin(3, -1)
	a.AddWear(3, 9)
	a.Reset()
	fresh := newSmallArray(t)
	for i := 0; i < a.Geometry().TotalCells(); i++ {
		if a.Margin(i) != fresh.Margin(i) || a.Wear(i) != fresh.Wear(i) {
			t.Fatalf("cell %d after Reset: (%v, %v), want fresh (%v, %v)",
				i, a.Margin(i), a.Wear(i), fresh.Margin(i), fresh.Wear(i))
		}
	}
}
