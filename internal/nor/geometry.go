// Package nor models the organization and state of a NOR flash memory
// array: banks divided into segments, segments into words, words into
// bit cells (paper §II). The package is deliberately physics-free — it
// stores per-cell state (analog margin and accumulated wear) and resolves
// addresses; the flash controller (package flashctl) applies operation
// semantics using the floatgate physics model.
package nor

import "fmt"

// Geometry describes the shape of a NOR flash array.
type Geometry struct {
	Banks           int // number of independently erasable banks
	SegmentsPerBank int // segments per bank
	SegmentBytes    int // bytes per segment (512 on the MSP430F5438)
	WordBytes       int // bytes per word (2 on the MSP430)
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return fmt.Errorf("nor: geometry needs at least one bank, got %d", g.Banks)
	case g.SegmentsPerBank <= 0:
		return fmt.Errorf("nor: geometry needs at least one segment per bank, got %d", g.SegmentsPerBank)
	case g.SegmentBytes <= 0:
		return fmt.Errorf("nor: geometry needs positive segment size, got %d", g.SegmentBytes)
	case g.WordBytes <= 0 || g.WordBytes > 8:
		return fmt.Errorf("nor: word size must be 1..8 bytes, got %d", g.WordBytes)
	case g.SegmentBytes%g.WordBytes != 0:
		return fmt.Errorf("nor: segment size %d not a multiple of word size %d", g.SegmentBytes, g.WordBytes)
	}
	// Bound the total size with overflow-safe arithmetic: untrusted
	// serialized geometries must not be able to trigger huge or
	// wrapped-negative allocations.
	total := int64(g.Banks) * int64(g.SegmentsPerBank) * int64(g.SegmentBytes)
	if int64(g.Banks)*int64(g.SegmentsPerBank) > 1<<24 || total > maxArrayBytes {
		return fmt.Errorf("nor: geometry of %d bytes exceeds the supported maximum", total)
	}
	return nil
}

// maxArrayBytes caps a single array at 4 MB of flash (32 Mbit), 16x the
// largest catalog part. The cap must stay small because the simulation
// holds 12 bytes of host state per flash bit (~100x amplification): an
// untrusted serialized geometry of 64 MB would command a ~6 GB host
// allocation before any content is read.
const maxArrayBytes = 4 << 20

// TotalSegments returns the number of segments in the array.
func (g Geometry) TotalSegments() int { return g.Banks * g.SegmentsPerBank }

// TotalBytes returns the array capacity in bytes.
func (g Geometry) TotalBytes() int { return g.TotalSegments() * g.SegmentBytes }

// TotalCells returns the number of bit cells in the array.
func (g Geometry) TotalCells() int { return g.TotalBytes() * 8 }

// CellsPerSegment returns the number of bit cells per segment
// (4096 for a 512-byte segment).
func (g Geometry) CellsPerSegment() int { return g.SegmentBytes * 8 }

// WordsPerSegment returns the number of words per segment.
func (g Geometry) WordsPerSegment() int { return g.SegmentBytes / g.WordBytes }

// WordBits returns the number of bit cells per word.
func (g Geometry) WordBits() int { return g.WordBytes * 8 }

// SegmentOfAddr maps a byte address to its segment index.
func (g Geometry) SegmentOfAddr(addr int) (int, error) {
	if addr < 0 || addr >= g.TotalBytes() {
		return 0, fmt.Errorf("nor: address %#x outside array of %d bytes", addr, g.TotalBytes())
	}
	return addr / g.SegmentBytes, nil
}

// BankOfSegment maps a segment index to its bank.
func (g Geometry) BankOfSegment(seg int) (int, error) {
	if seg < 0 || seg >= g.TotalSegments() {
		return 0, fmt.Errorf("nor: segment %d outside array of %d segments", seg, g.TotalSegments())
	}
	return seg / g.SegmentsPerBank, nil
}

// AddrOfSegment returns the first byte address of a segment.
func (g Geometry) AddrOfSegment(seg int) (int, error) {
	if seg < 0 || seg >= g.TotalSegments() {
		return 0, fmt.Errorf("nor: segment %d outside array of %d segments", seg, g.TotalSegments())
	}
	return seg * g.SegmentBytes, nil
}

// CellIndex returns the array-global cell index of bit `bit` of word
// `word` in segment `seg`. Bit 0 is the least significant bit of the word.
func (g Geometry) CellIndex(seg, word, bit int) int {
	return seg*g.CellsPerSegment() + word*g.WordBits() + bit
}

// MSP430F5438 returns the geometry of the 256 KB flash of the larger
// microcontroller used in the paper: 4 banks × 128 segments × 512 B.
func MSP430F5438() Geometry {
	return Geometry{Banks: 4, SegmentsPerBank: 128, SegmentBytes: 512, WordBytes: 2}
}

// MSP430F5529 returns the geometry of the 128 KB flash of the smaller
// microcontroller used in the paper: 4 banks × 64 segments × 512 B.
func MSP430F5529() Geometry {
	return Geometry{Banks: 4, SegmentsPerBank: 64, SegmentBytes: 512, WordBytes: 2}
}

// Small returns a compact geometry convenient for tests and examples:
// 1 bank × 16 segments × 512 B.
func Small() Geometry {
	return Geometry{Banks: 1, SegmentsPerBank: 16, SegmentBytes: 512, WordBytes: 2}
}
