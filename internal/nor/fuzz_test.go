package nor

import "testing"

// FuzzUnmarshalArray feeds arbitrary bytes to the array deserializer: it
// must never panic, and anything it accepts must re-serialize and reload
// to equal state.
func FuzzUnmarshalArray(f *testing.F) {
	a, err := NewArray(Small())
	if err != nil {
		f.Fatal(err)
	}
	a.SetMargin(3, -1e39)
	a.AddWear(3, 1000)
	good, err := a.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("NORA"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		arr, err := UnmarshalArray(data)
		if err != nil {
			return
		}
		re, err := arr.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted array failed to re-marshal: %v", err)
		}
		back, err := UnmarshalArray(re)
		if err != nil {
			t.Fatalf("re-marshaled array failed to load: %v", err)
		}
		if back.Geometry() != arr.Geometry() {
			t.Fatal("geometry drifted through round trip")
		}
	})
}
