package nor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Analog margin sentinels. A cell's margin is the analog distance (in µs
// of applied erase time) between the cell's state and the read threshold:
// deeply erased cells sit at MarginErased, deeply programmed cells at
// MarginProgrammed, and cells interrupted mid-erase carry a finite margin
// that makes their reads noisy.
const (
	MarginErased     = float32(math.MaxFloat32)
	MarginProgrammed = float32(-math.MaxFloat32)
)

// Array is the mutable state of a NOR flash array: one analog margin and
// one accumulated-wear value per bit cell. It enforces geometry bounds but
// attaches no operation semantics; the flash controller does that.
type Array struct {
	geom   Geometry
	margin []float32 // analog read margin, µs
	wear   []float64 // effective P/E cycles experienced
}

// NewArray allocates a fresh (fully erased, zero-wear) array.
func NewArray(geom Geometry) (*Array, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geom:   geom,
		margin: make([]float32, geom.TotalCells()),
		wear:   make([]float64, geom.TotalCells()),
	}
	for i := range a.margin {
		a.margin[i] = MarginErased
	}
	return a, nil
}

// Geometry returns the array's shape.
func (a *Array) Geometry() Geometry { return a.geom }

func (a *Array) checkCell(cell int) {
	if cell < 0 || cell >= len(a.margin) {
		panic(fmt.Sprintf("nor: cell index %d outside array of %d cells", cell, len(a.margin)))
	}
}

// Margin returns the analog margin of a cell.
func (a *Array) Margin(cell int) float64 {
	a.checkCell(cell)
	return float64(a.margin[cell])
}

// ClampMargin converts an analog margin to its stored float32 form,
// saturating at the sentinels — the exact store semantics of SetMargin,
// exposed so batched writers through CellSpan stay bit-identical to
// per-cell SetMargin calls. The mapping is monotone non-decreasing,
// which is what lets the controller's fast path carry margin *bounds*
// through it.
func ClampMargin(v float64) float32 {
	switch {
	case v >= float64(MarginErased):
		return MarginErased
	case v <= float64(MarginProgrammed):
		return MarginProgrammed
	}
	return float32(v)
}

// SetMargin sets the analog margin of a cell.
func (a *Array) SetMargin(cell int, v float64) {
	a.checkCell(cell)
	a.margin[cell] = ClampMargin(v)
}

// Programmed reports whether the cell's stable digital state is '0'
// (negative margin). Cells with small |margin| are metastable and read
// noisily through the controller; this accessor reports the sign only.
func (a *Array) Programmed(cell int) bool {
	a.checkCell(cell)
	return a.margin[cell] < 0
}

// Wear returns the accumulated effective wear of a cell.
func (a *Array) Wear(cell int) float64 {
	a.checkCell(cell)
	return a.wear[cell]
}

// AddWear adds d effective cycles to a cell. Negative d panics: oxide
// damage is irreversible (the property Flashmark rests on).
func (a *Array) AddWear(cell int, d float64) {
	a.checkCell(cell)
	if d < 0 {
		panic("nor: wear cannot decrease")
	}
	a.wear[cell] += d
}

// CellSpan returns the raw margin and wear storage of one segment as
// contiguous full-capacity slices — the batched physics path iterates a
// whole segment without per-cell bounds checks. Writers must store
// margins through ClampMargin and must never decrease wear; the slices
// alias the array, so per-cell accessors observe writes immediately.
// An out-of-range segment panics (programmer error, like checkCell).
func (a *Array) CellSpan(seg int) (margins []float32, wear []float64) {
	if seg < 0 || seg >= a.geom.TotalSegments() {
		panic(fmt.Sprintf("nor: segment %d outside array of %d segments", seg, a.geom.TotalSegments()))
	}
	cells := a.geom.CellsPerSegment()
	base := seg * cells
	return a.margin[base : base+cells : base+cells], a.wear[base : base+cells : base+cells]
}

// SegmentWearSummary returns the min, mean and max wear across a segment.
func (a *Array) SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error) {
	if seg < 0 || seg >= a.geom.TotalSegments() {
		return 0, 0, 0, fmt.Errorf("nor: segment %d outside array", seg)
	}
	cells := a.geom.CellsPerSegment()
	base := seg * cells
	minW = math.Inf(1)
	for i := 0; i < cells; i++ {
		w := a.wear[base+i]
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
		meanW += w
	}
	meanW /= float64(cells)
	return minW, meanW, maxW, nil
}

// Binary serialization format: a sparse encoding. Fresh cells (margin
// erased, zero wear) dominate real chips, so only non-default cells are
// stored. Layout (little endian):
//
//	magic "NORA", version u16, geometry (4×u32), cell count u64,
//	then per stored cell: index u64, margin f32, wear f64.
const (
	arrayMagic   = "NORA"
	arrayVersion = uint16(1)
)

// AppendBinary serializes the array state into dst (reusing its
// capacity) and returns the extended slice. The encoding is the exact
// MarshalBinary layout; callers that serialize in a loop pass a recycled
// buffer so the steady state allocates nothing.
func (a *Array) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, arrayMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, arrayVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.Banks))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.SegmentsPerBank))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.SegmentBytes))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.WordBytes))
	count := uint64(0)
	for i := range a.margin {
		if a.margin[i] != MarginErased || a.wear[i] != 0 {
			count++
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, count)
	for i := range a.margin {
		if a.margin[i] != MarginErased || a.wear[i] != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(i))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(a.margin[i]))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.wear[i]))
		}
	}
	return dst, nil
}

// marshalScratch recycles the variable-size encode buffer across
// MarshalBinary calls; only the exact-size result is freshly allocated.
var marshalScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// MarshalBinary serializes the array state.
func (a *Array) MarshalBinary() ([]byte, error) {
	sp := marshalScratch.Get().(*[]byte)
	scratch, err := a.AppendBinary((*sp)[:0])
	*sp = scratch[:0]
	if err != nil {
		marshalScratch.Put(sp)
		return nil, err
	}
	out := make([]byte, len(scratch))
	copy(out, scratch)
	marshalScratch.Put(sp)
	return out, nil
}

// needBytes checks that n more bytes are available at off, reporting
// the io.ReadFull error contract the former binary.Read decoder had on
// a bytes.Reader — io.EOF on exhausted input, ErrUnexpectedEOF on a
// partial field — so wrapped error messages stay stable.
func needBytes(data []byte, off, n int) error {
	switch {
	case len(data)-off >= n:
		return nil
	case len(data)-off == 0:
		return io.EOF
	}
	return io.ErrUnexpectedEOF
}

// decodeArrayHeader parses the magic, version and geometry prefix of a
// serialized array, returning the geometry and the header length.
func decodeArrayHeader(data []byte) (Geometry, int, error) {
	if len(data) < 4 || string(data[:4]) != arrayMagic {
		return Geometry{}, 0, fmt.Errorf("nor: bad array magic")
	}
	off := 4
	if err := needBytes(data, off, 2); err != nil {
		return Geometry{}, 0, fmt.Errorf("nor: truncated header: %w", err)
	}
	version := binary.LittleEndian.Uint16(data[off:])
	off += 2
	if version != arrayVersion {
		return Geometry{}, 0, fmt.Errorf("nor: unsupported array version %d", version)
	}
	var fields [4]uint32
	for i := range fields {
		if err := needBytes(data, off, 4); err != nil {
			return Geometry{}, 0, fmt.Errorf("nor: truncated geometry: %w", err)
		}
		fields[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	return Geometry{
		Banks: int(fields[0]), SegmentsPerBank: int(fields[1]),
		SegmentBytes: int(fields[2]), WordBytes: int(fields[3]),
	}, off, nil
}

// ArrayGeometry reads just the serialized array's geometry header without
// building the array. Loaders that know the geometry they expect (e.g. a
// chip file naming a catalog part) use it to reject mismatched or
// oversized arrays before UnmarshalArray commits the full per-cell
// allocation — untrusted input must not command allocations the header
// alone can rule out.
func ArrayGeometry(data []byte) (Geometry, error) {
	geom, _, err := decodeArrayHeader(data)
	if err != nil {
		return Geometry{}, err
	}
	if err := geom.Validate(); err != nil {
		return Geometry{}, err
	}
	return geom, nil
}

// Reset returns every cell to the pristine fresh-chip state (margin
// erased, zero wear) in place, preserving the allocated storage — the
// in-place counterpart of NewArray for device arenas and reloading
// loaders.
func (a *Array) Reset() {
	for i := range a.margin {
		a.margin[i] = MarginErased
	}
	clear(a.wear)
}

// UnmarshalArray reconstructs an array from MarshalBinary output.
func UnmarshalArray(data []byte) (*Array, error) {
	return UnmarshalArrayInto(nil, data)
}

// UnmarshalArrayInto reconstructs an array from MarshalBinary output,
// reusing dst's cell storage when dst's geometry matches the serialized
// geometry (dst's previous contents are discarded); otherwise — and
// when dst is nil — a fresh array is allocated. On error a reused dst
// is left partially filled; callers must not read it before the next
// successful load. The decode walks the bytes directly (no reflective
// binary.Read), which is what makes a warm reload allocation-free.
func UnmarshalArrayInto(dst *Array, data []byte) (*Array, error) {
	geom, off, err := decodeArrayHeader(data)
	if err != nil {
		return nil, err
	}
	var a *Array
	if dst != nil && dst.geom == geom {
		dst.Reset()
		a = dst
	} else {
		a, err = NewArray(geom)
		if err != nil {
			return nil, err
		}
	}
	if err := needBytes(data, off, 8); err != nil {
		return nil, fmt.Errorf("nor: truncated cell count: %w", err)
	}
	count := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if count > uint64(geom.TotalCells()) {
		return nil, fmt.Errorf("nor: cell count %d exceeds array size %d", count, geom.TotalCells())
	}
	for n := uint64(0); n < count; n++ {
		if err := needBytes(data, off, 8); err != nil {
			return nil, fmt.Errorf("nor: truncated cell record: %w", err)
		}
		idx := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if idx >= uint64(geom.TotalCells()) {
			return nil, fmt.Errorf("nor: cell index %d outside array", idx)
		}
		if err := needBytes(data, off, 4); err != nil {
			return nil, fmt.Errorf("nor: truncated margin: %w", err)
		}
		m := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if err := needBytes(data, off, 8); err != nil {
			return nil, fmt.Errorf("nor: truncated wear: %w", err)
		}
		w := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if w < 0 {
			return nil, fmt.Errorf("nor: negative wear %v in serialized cell %d", w, idx)
		}
		a.margin[idx] = m
		a.wear[idx] = w
	}
	return a, nil
}
