package nor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Analog margin sentinels. A cell's margin is the analog distance (in µs
// of applied erase time) between the cell's state and the read threshold:
// deeply erased cells sit at MarginErased, deeply programmed cells at
// MarginProgrammed, and cells interrupted mid-erase carry a finite margin
// that makes their reads noisy.
const (
	MarginErased     = float32(math.MaxFloat32)
	MarginProgrammed = float32(-math.MaxFloat32)
)

// Array is the mutable state of a NOR flash array: one analog margin and
// one accumulated-wear value per bit cell. It enforces geometry bounds but
// attaches no operation semantics; the flash controller does that.
type Array struct {
	geom   Geometry
	margin []float32 // analog read margin, µs
	wear   []float64 // effective P/E cycles experienced
}

// NewArray allocates a fresh (fully erased, zero-wear) array.
func NewArray(geom Geometry) (*Array, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geom:   geom,
		margin: make([]float32, geom.TotalCells()),
		wear:   make([]float64, geom.TotalCells()),
	}
	for i := range a.margin {
		a.margin[i] = MarginErased
	}
	return a, nil
}

// Geometry returns the array's shape.
func (a *Array) Geometry() Geometry { return a.geom }

func (a *Array) checkCell(cell int) {
	if cell < 0 || cell >= len(a.margin) {
		panic(fmt.Sprintf("nor: cell index %d outside array of %d cells", cell, len(a.margin)))
	}
}

// Margin returns the analog margin of a cell.
func (a *Array) Margin(cell int) float64 {
	a.checkCell(cell)
	return float64(a.margin[cell])
}

// ClampMargin converts an analog margin to its stored float32 form,
// saturating at the sentinels — the exact store semantics of SetMargin,
// exposed so batched writers through CellSpan stay bit-identical to
// per-cell SetMargin calls. The mapping is monotone non-decreasing,
// which is what lets the controller's fast path carry margin *bounds*
// through it.
func ClampMargin(v float64) float32 {
	switch {
	case v >= float64(MarginErased):
		return MarginErased
	case v <= float64(MarginProgrammed):
		return MarginProgrammed
	}
	return float32(v)
}

// SetMargin sets the analog margin of a cell.
func (a *Array) SetMargin(cell int, v float64) {
	a.checkCell(cell)
	a.margin[cell] = ClampMargin(v)
}

// Programmed reports whether the cell's stable digital state is '0'
// (negative margin). Cells with small |margin| are metastable and read
// noisily through the controller; this accessor reports the sign only.
func (a *Array) Programmed(cell int) bool {
	a.checkCell(cell)
	return a.margin[cell] < 0
}

// Wear returns the accumulated effective wear of a cell.
func (a *Array) Wear(cell int) float64 {
	a.checkCell(cell)
	return a.wear[cell]
}

// AddWear adds d effective cycles to a cell. Negative d panics: oxide
// damage is irreversible (the property Flashmark rests on).
func (a *Array) AddWear(cell int, d float64) {
	a.checkCell(cell)
	if d < 0 {
		panic("nor: wear cannot decrease")
	}
	a.wear[cell] += d
}

// CellSpan returns the raw margin and wear storage of one segment as
// contiguous full-capacity slices — the batched physics path iterates a
// whole segment without per-cell bounds checks. Writers must store
// margins through ClampMargin and must never decrease wear; the slices
// alias the array, so per-cell accessors observe writes immediately.
// An out-of-range segment panics (programmer error, like checkCell).
func (a *Array) CellSpan(seg int) (margins []float32, wear []float64) {
	if seg < 0 || seg >= a.geom.TotalSegments() {
		panic(fmt.Sprintf("nor: segment %d outside array of %d segments", seg, a.geom.TotalSegments()))
	}
	cells := a.geom.CellsPerSegment()
	base := seg * cells
	return a.margin[base : base+cells : base+cells], a.wear[base : base+cells : base+cells]
}

// SegmentWearSummary returns the min, mean and max wear across a segment.
func (a *Array) SegmentWearSummary(seg int) (minW, meanW, maxW float64, err error) {
	if seg < 0 || seg >= a.geom.TotalSegments() {
		return 0, 0, 0, fmt.Errorf("nor: segment %d outside array", seg)
	}
	cells := a.geom.CellsPerSegment()
	base := seg * cells
	minW = math.Inf(1)
	for i := 0; i < cells; i++ {
		w := a.wear[base+i]
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
		meanW += w
	}
	meanW /= float64(cells)
	return minW, meanW, maxW, nil
}

// Binary serialization format: a sparse encoding. Fresh cells (margin
// erased, zero wear) dominate real chips, so only non-default cells are
// stored. Layout (little endian):
//
//	magic "NORA", version u16, geometry (4×u32), cell count u64,
//	then per stored cell: index u64, margin f32, wear f64.
const (
	arrayMagic   = "NORA"
	arrayVersion = uint16(1)
)

// AppendBinary serializes the array state into dst (reusing its
// capacity) and returns the extended slice. The encoding is the exact
// MarshalBinary layout; callers that serialize in a loop pass a recycled
// buffer so the steady state allocates nothing.
func (a *Array) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, arrayMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, arrayVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.Banks))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.SegmentsPerBank))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.SegmentBytes))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.geom.WordBytes))
	count := uint64(0)
	for i := range a.margin {
		if a.margin[i] != MarginErased || a.wear[i] != 0 {
			count++
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, count)
	for i := range a.margin {
		if a.margin[i] != MarginErased || a.wear[i] != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(i))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(a.margin[i]))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.wear[i]))
		}
	}
	return dst, nil
}

// marshalScratch recycles the variable-size encode buffer across
// MarshalBinary calls; only the exact-size result is freshly allocated.
var marshalScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// MarshalBinary serializes the array state.
func (a *Array) MarshalBinary() ([]byte, error) {
	sp := marshalScratch.Get().(*[]byte)
	scratch, err := a.AppendBinary((*sp)[:0])
	*sp = scratch[:0]
	if err != nil {
		marshalScratch.Put(sp)
		return nil, err
	}
	out := make([]byte, len(scratch))
	copy(out, scratch)
	marshalScratch.Put(sp)
	return out, nil
}

// readArrayHeader consumes the magic, version and geometry fields from r.
func readArrayHeader(r *bytes.Reader) (Geometry, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != arrayMagic {
		return Geometry{}, fmt.Errorf("nor: bad array magic")
	}
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var version uint16
	if err := read(&version); err != nil {
		return Geometry{}, fmt.Errorf("nor: truncated header: %w", err)
	}
	if version != arrayVersion {
		return Geometry{}, fmt.Errorf("nor: unsupported array version %d", version)
	}
	var banks, segs, segBytes, wordBytes uint32
	for _, v := range []*uint32{&banks, &segs, &segBytes, &wordBytes} {
		if err := read(v); err != nil {
			return Geometry{}, fmt.Errorf("nor: truncated geometry: %w", err)
		}
	}
	return Geometry{
		Banks: int(banks), SegmentsPerBank: int(segs),
		SegmentBytes: int(segBytes), WordBytes: int(wordBytes),
	}, nil
}

// ArrayGeometry reads just the serialized array's geometry header without
// building the array. Loaders that know the geometry they expect (e.g. a
// chip file naming a catalog part) use it to reject mismatched or
// oversized arrays before UnmarshalArray commits the full per-cell
// allocation — untrusted input must not command allocations the header
// alone can rule out.
func ArrayGeometry(data []byte) (Geometry, error) {
	geom, err := readArrayHeader(bytes.NewReader(data))
	if err != nil {
		return Geometry{}, err
	}
	if err := geom.Validate(); err != nil {
		return Geometry{}, err
	}
	return geom, nil
}

// UnmarshalArray reconstructs an array from MarshalBinary output.
func UnmarshalArray(data []byte) (*Array, error) {
	r := bytes.NewReader(data)
	geom, err := readArrayHeader(r)
	if err != nil {
		return nil, err
	}
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	a, err := NewArray(geom)
	if err != nil {
		return nil, err
	}
	var count uint64
	if err := read(&count); err != nil {
		return nil, fmt.Errorf("nor: truncated cell count: %w", err)
	}
	if count > uint64(geom.TotalCells()) {
		return nil, fmt.Errorf("nor: cell count %d exceeds array size %d", count, geom.TotalCells())
	}
	for n := uint64(0); n < count; n++ {
		var idx uint64
		var m float32
		var w float64
		if err := read(&idx); err != nil {
			return nil, fmt.Errorf("nor: truncated cell record: %w", err)
		}
		if idx >= uint64(geom.TotalCells()) {
			return nil, fmt.Errorf("nor: cell index %d outside array", idx)
		}
		if err := read(&m); err != nil {
			return nil, fmt.Errorf("nor: truncated margin: %w", err)
		}
		if err := read(&w); err != nil {
			return nil, fmt.Errorf("nor: truncated wear: %w", err)
		}
		if w < 0 {
			return nil, fmt.Errorf("nor: negative wear %v in serialized cell %d", w, idx)
		}
		a.margin[idx] = m
		a.wear[idx] = w
	}
	return a, nil
}
