package mathx

import (
	"math"
	"testing"
)

// Edge-case coverage of the hoisted Gamma core (GammaDist) and the
// function boundaries the physics model can reach.

func TestNewGammaDistRejectsBadShape(t *testing.T) {
	for _, shape := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if _, err := NewGammaDist(shape); err == nil {
			t.Errorf("shape %v accepted", shape)
		}
	}
	if _, err := NewGammaDist(0.5); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}

func TestGammaDistShapeAccessor(t *testing.T) {
	g, err := NewGammaDist(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shape() != 0.75 {
		t.Errorf("Shape = %v", g.Shape())
	}
}

// TestGammaDistRegPMatchesReference: the hoisted-lgamma RegP is
// bit-identical to GammaRegP across both evaluation regimes (series for
// x < a+1, continued fraction above) and the x=0 / invalid edges.
func TestGammaDistRegPMatchesReference(t *testing.T) {
	for _, shape := range []float64{0.3, 0.5, 1, 2.7, 15} {
		g, err := NewGammaDist(shape)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0.0; x <= 4*shape+8; x += 0.173 {
			want, werr := GammaRegP(shape, x)
			got, gerr := g.RegP(x)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("shape %v x %v: error mismatch %v vs %v", shape, x, werr, gerr)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("shape %v x %v: RegP %v != GammaRegP %v", shape, x, got, want)
			}
		}
		for _, x := range []float64{-1, math.NaN()} {
			if _, err := g.RegP(x); err == nil {
				t.Errorf("shape %v: RegP(%v) accepted", shape, x)
			}
		}
	}
}

func TestQuantileScaledEdges(t *testing.T) {
	g, err := NewGammaDist(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if q, err := g.QuantileScaled(0, 1); err != nil || q != 0 {
		t.Errorf("p=0 quantile = %v, %v; want 0, nil", q, err)
	}
	for _, p := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := g.QuantileScaled(p, 1); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	for _, scale := range []float64{0, -2} {
		if _, err := g.QuantileScaled(0.5, scale); err == nil {
			t.Errorf("scale=%v accepted", scale)
		}
	}
	// The same edges through the package-level reference function.
	if q, err := GammaQuantile(0, 0.8, 1.25); err != nil || q != 0 {
		t.Errorf("GammaQuantile(0) = %v, %v; want 0, nil", q, err)
	}
	if _, err := GammaQuantile(0.5, -1, 1); err == nil {
		t.Error("negative shape accepted by GammaQuantile")
	}
}

// TestQuantileScaledExtremeTails: quantiles stay finite, positive and
// monotone deep into both tails for the shapes the wear model produces
// (k in [0.5, 1]) over the p range a 53-bit uniform can reach. (Below
// ~1e-16 the Newton/bisection iteration bottoms out; such p values are
// unreachable from Float64Open-driven cell parameters.)
func TestQuantileScaledExtremeTails(t *testing.T) {
	for _, shape := range []float64{0.5, 0.75, 1.0} {
		g, err := NewGammaDist(shape)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, p := range []float64{1e-16, 1e-12, 1e-6, 0.5, 1 - 1e-6, 1 - 1e-12} {
			q, err := g.QuantileScaled(p, 1/shape)
			if err != nil {
				t.Fatalf("shape %v p %v: %v", shape, p, err)
			}
			if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
				t.Fatalf("shape %v p %v: quantile %v", shape, p, q)
			}
			if q < prev {
				t.Fatalf("shape %v: quantile not monotone at p=%v (%v < %v)", shape, p, q, prev)
			}
			prev = q
		}
	}
}

func TestClampEdges(t *testing.T) {
	if got := Clamp(5, 1, 3); got != 3 {
		t.Errorf("Clamp above = %v", got)
	}
	if got := Clamp(-5, 1, 3); got != 1 {
		t.Errorf("Clamp below = %v", got)
	}
	if got := Clamp(2, 1, 3); got != 2 {
		t.Errorf("Clamp inside = %v", got)
	}
}
