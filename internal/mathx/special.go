// Package mathx supplies the numerical routines the physics model and the
// evaluation harness need beyond the standard library: normal and gamma
// distribution functions (CDFs, quantiles), the regularized incomplete
// gamma function, and small statistics helpers (summaries, quantiles,
// histograms). Everything is pure Go on top of package math.
package mathx

import (
	"errors"
	"math"
)

// NormalCDF returns Φ((x-mu)/sigma), the CDF of Normal(mu, sigma²) at x.
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns Φ(z).
func StdNormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// StdNormalQuantile returns Φ⁻¹(p) for p in (0,1) using the
// Beasley-Springer-Moro / Acklam rational approximation refined by one
// Halley step, accurate to ~1e-15 over the full open interval.
func StdNormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's coefficients.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the true CDF.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ErrNoConverge reports that an iterative special-function evaluation
// failed to converge; it indicates arguments far outside the supported
// range rather than a recoverable condition.
var ErrNoConverge = errors.New("mathx: iteration did not converge")

// GammaRegP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func GammaRegP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errors.New("mathx: GammaRegP requires a > 0")
	case x < 0:
		return math.NaN(), errors.New("mathx: GammaRegP requires x >= 0")
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return p, err
	}
	q, err := gammaQContinuedFraction(a, x)
	return 1 - q, err
}

// GammaRegQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) (float64, error) {
	p, err := GammaRegP(a, x)
	return 1 - p, err
}

// gammaPSeries evaluates P(a,x) by its power series, best for x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	return gammaPSeriesLg(a, x, math.Log(x), lg)
}

// gammaPSeriesLg is gammaPSeries with lgamma(a) and log(x) hoisted by the
// caller; both are pure functions of their inputs, so the result is
// bit-identical to gammaPSeries.
func gammaPSeriesLg(a, x, lx, lg float64) (float64, error) {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			return sum * math.Exp(-x+a*lx-lg), nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's continued fraction,
// best for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	return gammaQContinuedFractionLg(a, x, math.Log(x), lg)
}

// gammaQContinuedFractionLg is gammaQContinuedFraction with lgamma(a) and
// log(x) hoisted by the caller (bit-identical results).
func gammaQContinuedFractionLg(a, x, lx, lg float64) (float64, error) {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			return math.Exp(-x+a*lx-lg) * h, nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// GammaQuantile returns the x such that P(shape, x/scale) = p: the
// quantile function of a Gamma(shape, scale) distribution. p must lie in
// [0, 1); shape and scale must be positive.
func GammaQuantile(p, shape, scale float64) (float64, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) {
		return math.NaN(), errors.New("mathx: GammaQuantile requires positive shape and scale")
	}
	g, err := NewGammaDist(shape)
	if err != nil {
		return math.NaN(), err
	}
	return g.QuantileScaled(p, scale)
}

// GammaDist is a Gamma distribution of fixed shape with the
// shape-dependent transcendental constants (lgamma) hoisted, so repeated
// evaluations at the same shape — the inner loop of every batched tau
// sweep, where all cells of a wear group share one shape — skip the
// per-call Lgamma. Results are bit-identical to the package-level
// functions: the hoisted values are pure functions of the shape, and
// every expression is evaluated in the same operation order.
type GammaDist struct {
	shape float64
	lg    float64 // lgamma(shape)
}

// NewGammaDist builds a fixed-shape evaluator; shape must be positive.
func NewGammaDist(shape float64) (GammaDist, error) {
	if shape <= 0 || math.IsNaN(shape) {
		return GammaDist{}, errors.New("mathx: NewGammaDist requires shape > 0")
	}
	lg, _ := math.Lgamma(shape)
	return GammaDist{shape: shape, lg: lg}, nil
}

// Shape returns the distribution's shape parameter.
func (g GammaDist) Shape() float64 { return g.shape }

// RegP returns P(shape, x), bit-identical to GammaRegP(shape, x).
func (g GammaDist) RegP(x float64) (float64, error) {
	switch {
	case math.IsNaN(x):
		return math.NaN(), errors.New("mathx: GammaRegP requires x >= 0")
	case x < 0:
		return math.NaN(), errors.New("mathx: GammaRegP requires x >= 0")
	case x == 0:
		return 0, nil
	}
	lx := math.Log(x)
	if x < g.shape+1 {
		return gammaPSeriesLg(g.shape, x, lx, g.lg)
	}
	q, err := gammaQContinuedFractionLg(g.shape, x, lx, g.lg)
	return 1 - q, err
}

// QuantileScaled returns the p-quantile of Gamma(shape, scale),
// bit-identical to GammaQuantile(p, shape, scale).
func (g GammaDist) QuantileScaled(p, scale float64) (float64, error) {
	switch {
	case scale <= 0:
		return math.NaN(), errors.New("mathx: GammaQuantile requires positive shape and scale")
	case p < 0 || p >= 1 || math.IsNaN(p):
		return math.NaN(), errors.New("mathx: GammaQuantile requires p in [0,1)")
	case p == 0:
		return 0, nil
	}
	// Wilson-Hilferty starting point: if X~Gamma(a,1) then (X/a)^(1/3)
	// is approximately normal.
	z := StdNormalQuantile(p)
	a := g.shape
	wh := a * math.Pow(1-1/(9*a)+z/(3*math.Sqrt(a)), 3)
	x := wh
	if x <= 0 || math.IsNaN(x) {
		x = a * math.Exp((math.Log(p)+lgammaPlus1(a))/a)
		if x <= 0 || math.IsNaN(x) {
			x = 1e-8
		}
	}
	lg := g.lg
	// Newton iterations on P(a,x) - p = 0; the derivative is the pdf.
	// log(x) is shared between the incomplete-gamma evaluation and the
	// pdf of each iteration (it is the same value the unhoisted code
	// computed twice), so the iterates are bit-identical.
	for i := 0; i < 60; i++ {
		lx := math.Log(x)
		var cur float64
		var err error
		if x < a+1 {
			cur, err = gammaPSeriesLg(a, x, lx, lg)
		} else {
			var q float64
			q, err = gammaQContinuedFractionLg(a, x, lx, lg)
			cur = 1 - q
		}
		if err != nil {
			return math.NaN(), err
		}
		pdf := math.Exp(-x + (a-1)*lx - lg)
		if pdf <= 0 || math.IsInf(pdf, 0) {
			break
		}
		step := (cur - p) / pdf
		nx := x - step
		if nx <= 0 {
			nx = x / 2
		}
		if math.Abs(nx-x) < 1e-13*math.Max(1, x) {
			x = nx
			break
		}
		x = nx
	}
	return x * scale, nil
}

func lgammaPlus1(a float64) float64 {
	lg, _ := math.Lgamma(a + 1)
	return lg
}

// Logistic returns the standard logistic sigmoid 1/(1+e^{-x}).
func Logistic(x float64) float64 {
	if x >= 0 {
		e := math.Exp(-x)
		return 1 / (1 + e)
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
