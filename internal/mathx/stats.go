package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order and moment statistics of a sample.
type Summary struct {
	N        int
	Min      float64
	Max      float64
	Mean     float64
	StdDev   float64 // sample standard deviation (n-1 denominator)
	Median   float64
	P05, P95 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := 0.0
	if len(sorted) > 1 {
		variance = (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Median: QuantileSorted(sorted, 0.5),
		P05:    QuantileSorted(sorted, 0.05),
		P95:    QuantileSorted(sorted, 0.95),
	}
}

// QuantileSorted returns the q-quantile (0<=q<=1) of an ascending-sorted
// sample using linear interpolation between order statistics.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile sorts a copy of xs and returns its q-quantile.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("mathx: histogram needs positive bin count, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("mathx: histogram needs hi > lo, got [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
		if idx == len(h.Counts) { // guard against rounding at the edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// CDFAt returns the empirical fraction of in-range observations <= v.
func (h *Histogram) CDFAt(v float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	cum := h.Under
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		upper := h.Lo + w*float64(i+1)
		if upper > v {
			break
		}
		cum += c
	}
	return float64(cum) / float64(h.total)
}
