package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	almost(t, s.Mean, 5, 1e-12, "mean")
	almost(t, s.Min, 2, 0, "min")
	almost(t, s.Max, 9, 0, "max")
	// Sample stddev of this classic set: sqrt(32/7).
	almost(t, s.StdDev, math.Sqrt(32.0/7.0), 1e-12, "stddev")
	almost(t, s.Median, 4.5, 1e-12, "median")
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.StdDev != 0 || s.Median != 3.5 {
		t.Errorf("single summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	almost(t, QuantileSorted(xs, 0), 10, 0, "q0")
	almost(t, QuantileSorted(xs, 1), 50, 0, "q1")
	almost(t, QuantileSorted(xs, 0.5), 30, 0, "q0.5")
	almost(t, QuantileSorted(xs, 0.25), 20, 1e-12, "q0.25")
	almost(t, QuantileSorted(xs, 0.125), 15, 1e-12, "interpolated")
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileUnsorted(t *testing.T) {
	almost(t, Quantile([]float64{50, 10, 40, 20, 30}, 0.5), 30, 0, "median of shuffled")
}

func TestMean(t *testing.T) {
	almost(t, Mean([]float64{1, 2, 3}), 2, 1e-15, "mean")
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa := QuantileSorted(clean, a)
		qb := QuantileSorted(clean, b)
		return qa <= qb && qa >= clean[0] && qb <= clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (10 is excluded from [0,10))", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi should error")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	almost(t, h.BinCenter(0), 1, 1e-12, "center 0")
	almost(t, h.BinCenter(4), 9, 1e-12, "center 4")
}

func TestHistogramCDF(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	almost(t, h.CDFAt(5), 0.5, 1e-12, "CDF midpoint")
	almost(t, h.CDFAt(10), 1, 1e-12, "CDF end")
}

// Property: histogram never loses observations.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h, err := NewHistogram(-100, 100, 7)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		inBins := h.Under + h.Over
		for _, c := range h.Counts {
			inBins += c
		}
		return inBins == n && h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
