package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestStdNormalCDFKnown(t *testing.T) {
	almost(t, StdNormalCDF(0), 0.5, 1e-15, "Phi(0)")
	almost(t, StdNormalCDF(1), 0.8413447460685429, 1e-12, "Phi(1)")
	almost(t, StdNormalCDF(-1), 0.15865525393145705, 1e-12, "Phi(-1)")
	almost(t, StdNormalCDF(1.959963984540054), 0.975, 1e-12, "Phi(1.96)")
	almost(t, StdNormalCDF(-3), 0.0013498980316300933, 1e-14, "Phi(-3)")
}

func TestNormalCDFScaling(t *testing.T) {
	almost(t, NormalCDF(10, 10, 3), 0.5, 1e-15, "NormalCDF at mean")
	almost(t, NormalCDF(13, 10, 3), StdNormalCDF(1), 1e-14, "NormalCDF 1 sigma")
}

func TestStdNormalQuantileKnown(t *testing.T) {
	almost(t, StdNormalQuantile(0.5), 0, 1e-12, "Phi^-1(0.5)")
	almost(t, StdNormalQuantile(0.975), 1.959963984540054, 1e-9, "Phi^-1(0.975)")
	almost(t, StdNormalQuantile(0.8413447460685429), 1, 1e-9, "Phi^-1(Phi(1))")
	almost(t, StdNormalQuantile(1e-10), -6.361340902404056, 1e-6, "deep tail")
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.5)) {
		t.Error("out-of-range p should give NaN")
	}
}

// Property: quantile inverts the CDF across the usable range.
func TestQuickNormalRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		p := 1e-8 + (1-2e-8)*float64(raw)/float64(math.MaxUint32)
		z := StdNormalQuantile(p)
		return math.Abs(StdNormalCDF(z)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaRegPKnown(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := GammaRegP(1, x)
		if err != nil {
			t.Fatalf("GammaRegP(1,%v): %v", x, err)
		}
		almost(t, got, 1-math.Exp(-x), 1e-12, "P(1,x)")
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		got, err := GammaRegP(0.5, x)
		if err != nil {
			t.Fatalf("GammaRegP(0.5,%v): %v", x, err)
		}
		almost(t, got, math.Erf(math.Sqrt(x)), 1e-12, "P(0.5,x)")
	}
	// Median of Gamma(2): P(2, 1.6783469900166605) = 0.5.
	got, err := GammaRegP(2, 1.6783469900166605)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 0.5, 1e-10, "P(2, median)")
}

func TestGammaRegPEdges(t *testing.T) {
	if p, err := GammaRegP(3, 0); err != nil || p != 0 {
		t.Errorf("P(3,0) = %v, %v; want 0, nil", p, err)
	}
	if _, err := GammaRegP(0, 1); err == nil {
		t.Error("P(0,1) should error")
	}
	if _, err := GammaRegP(1, -1); err == nil {
		t.Error("P(1,-1) should error")
	}
}

func TestGammaRegQComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10} {
		for _, x := range []float64{0.1, 1, 3, 20} {
			p, err1 := GammaRegP(a, x)
			q, err2 := GammaRegQ(a, x)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v %v", err1, err2)
			}
			almost(t, p+q, 1, 1e-12, "P+Q")
		}
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	for _, a := range []float64{0.5, 1, 1.8, 2, 5} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x, err := GammaQuantile(p, a, 1)
			if err != nil {
				t.Fatalf("GammaQuantile(%v,%v): %v", p, a, err)
			}
			back, err := GammaRegP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			almost(t, back, p, 1e-8, "P(a, Q(p))")
		}
	}
}

func TestGammaQuantileScale(t *testing.T) {
	x1, err := GammaQuantile(0.7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x3, err := GammaQuantile(0.7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, x3, 3*x1, 1e-9, "scale linearity")
}

func TestGammaQuantileExponentialCase(t *testing.T) {
	// Gamma(1, 1) is Exp(1): quantile is -ln(1-p).
	for _, p := range []float64{0.1, 0.5, 0.95} {
		x, err := GammaQuantile(p, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, x, -math.Log(1-p), 1e-9, "exp quantile")
	}
}

func TestGammaQuantileEdges(t *testing.T) {
	if x, err := GammaQuantile(0, 2, 1); err != nil || x != 0 {
		t.Errorf("Q(0) = %v, %v; want 0", x, err)
	}
	if _, err := GammaQuantile(1, 2, 1); err == nil {
		t.Error("Q(1) should error")
	}
	if _, err := GammaQuantile(0.5, -1, 1); err == nil {
		t.Error("negative shape should error")
	}
	if _, err := GammaQuantile(0.5, 1, 0); err == nil {
		t.Error("zero scale should error")
	}
}

// Property: gamma quantile is monotone in p.
func TestQuickGammaQuantileMonotone(t *testing.T) {
	f := func(r1, r2 uint16) bool {
		p1 := 0.001 + 0.998*float64(r1)/65535
		p2 := 0.001 + 0.998*float64(r2)/65535
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		x1, err1 := GammaQuantile(p1, 1.7, 1)
		x2, err2 := GammaQuantile(p2, 1.7, 1)
		return err1 == nil && err2 == nil && x1 <= x2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogistic(t *testing.T) {
	almost(t, Logistic(0), 0.5, 1e-15, "logistic(0)")
	almost(t, Logistic(1000), 1, 1e-15, "logistic(+inf)")
	almost(t, Logistic(-1000), 0, 1e-15, "logistic(-inf)")
	almost(t, Logistic(2)+Logistic(-2), 1, 1e-14, "symmetry")
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
