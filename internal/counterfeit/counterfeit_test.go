package counterfeit

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/wmcode"
)

var testKey = []byte("trusted-chipmaker-key")

func testConfig() FactoryConfig {
	return FactoryConfig{
		Fab:          mcu.Fab(mcu.PartSmallSim()),
		Codec:        wmcode.Codec{Key: testKey},
		Manufacturer: "TC",
		SegAddr:      0,
		NPE:          80_000,
		Replicas:     7,
	}
}

func testVerifier() *Verifier {
	return &Verifier{
		Codec:        wmcode.Codec{Key: testKey},
		Manufacturer: "TC",
		SegAddr:      0,
		TPEW:         25 * time.Microsecond,
		Replicas:     7,
		Reads:        3,
	}
}

func fabricateAndVerify(t *testing.T, class ChipClass, seed uint64, v *Verifier) Result {
	t.Helper()
	dev, err := Fabricate(class, testConfig(), seed, 42)
	if err != nil {
		t.Fatalf("fabricate %s: %v", class, err)
	}
	res, err := v.Verify(dev)
	if err != nil {
		t.Fatalf("verify %s: %v", class, err)
	}
	return res
}

func TestGenuineAcceptVerifies(t *testing.T) {
	res := fabricateAndVerify(t, ClassGenuineAccept, 1, testVerifier())
	if res.Verdict != VerdictGenuine {
		t.Fatalf("verdict = %s (decodeErr=%v report=%+v)", res.Verdict, res.DecodeErr, res.Report)
	}
	if res.Payload.Manufacturer != "TC" || res.Payload.Status != wmcode.StatusAccept {
		t.Errorf("payload = %+v", res.Payload)
	}
	if res.Payload.DieID != 42 {
		t.Errorf("die ID = %d", res.Payload.DieID)
	}
}

func TestGenuineRejectFlagged(t *testing.T) {
	res := fabricateAndVerify(t, ClassGenuineReject, 2, testVerifier())
	if res.Verdict != VerdictRejectDie {
		t.Fatalf("verdict = %s, want REJECT-DIE", res.Verdict)
	}
}

func TestMetadataForgeryRefused(t *testing.T) {
	// The headline claim: plain digital metadata cannot pass for a
	// physical watermark.
	res := fabricateAndVerify(t, ClassMetadataForgery, 3, testVerifier())
	if res.Verdict != VerdictNoWatermark {
		t.Fatalf("verdict = %s, want NO-WATERMARK", res.Verdict)
	}
}

func TestDigitalCloneRefused(t *testing.T) {
	res := fabricateAndVerify(t, ClassDigitalClone, 4, testVerifier())
	if res.Verdict != VerdictNoWatermark {
		t.Fatalf("verdict = %s, want NO-WATERMARK", res.Verdict)
	}
}

func TestUnmarkedRefused(t *testing.T) {
	res := fabricateAndVerify(t, ClassUnmarked, 5, testVerifier())
	if res.Verdict != VerdictNoWatermark {
		t.Fatalf("verdict = %s, want NO-WATERMARK", res.Verdict)
	}
}

func TestTopUpTamperDetected(t *testing.T) {
	res := fabricateAndVerify(t, ClassTopUpTamper, 6, testVerifier())
	if res.Verdict != VerdictTampered {
		t.Fatalf("verdict = %s, want TAMPERED", res.Verdict)
	}
}

func TestRecycledDetectedWithScreen(t *testing.T) {
	v := testVerifier()
	v.CheckRecycling = true
	res := fabricateAndVerify(t, ClassRecycled, 7, v)
	if res.Verdict != VerdictRecycled {
		t.Fatalf("verdict = %s, want RECYCLED (worn %d/%d)", res.Verdict, res.WornDataSegments, res.SampledDataSegments)
	}
	if res.WornDataSegments == 0 {
		t.Error("no worn segments found on recycled chip")
	}
}

func TestRecycledPassesWithoutScreen(t *testing.T) {
	// Without the recycling screen, a recycled genuine chip passes —
	// exactly the gap [6],[7] address and the paper acknowledges.
	res := fabricateAndVerify(t, ClassRecycled, 7, testVerifier())
	if res.Verdict != VerdictGenuine {
		t.Fatalf("verdict = %s, want GENUINE (watermark is authentic)", res.Verdict)
	}
}

func TestGenuinePassesRecyclingScreen(t *testing.T) {
	v := testVerifier()
	v.CheckRecycling = true
	res := fabricateAndVerify(t, ClassGenuineAccept, 8, v)
	if res.Verdict != VerdictGenuine {
		t.Fatalf("verdict = %s: fresh genuine chip tripped the wear screen (worn %d/%d)",
			res.Verdict, res.WornDataSegments, res.SampledDataSegments)
	}
	if res.SampledDataSegments == 0 {
		t.Error("screen sampled no segments")
	}
}

func TestReplayImprintResidualRisk(t *testing.T) {
	// Honest negative result: a full physical re-imprint of a copied
	// watermark is indistinguishable by physics alone.
	res := fabricateAndVerify(t, ClassReplayImprint, 9, testVerifier())
	if res.Verdict != VerdictGenuine {
		t.Fatalf("verdict = %s; the replay imprint should pass physics checks (documented residual risk)", res.Verdict)
	}
}

func TestWrongManufacturerFlagged(t *testing.T) {
	cfg := testConfig()
	cfg.Manufacturer = "EVILCORP"
	dev, err := Fabricate(ClassGenuineAccept, cfg, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testVerifier().Verify(dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictWrongIdentity {
		t.Fatalf("verdict = %s, want WRONG-IDENTITY", res.Verdict)
	}
}

func TestForgedSignatureDetected(t *testing.T) {
	// A counterfeiter with the right format but the wrong key.
	cfg := testConfig()
	cfg.Codec = wmcode.Codec{Key: []byte("stolen-wrong-key")}
	dev, err := Fabricate(ClassGenuineAccept, cfg, 11, 78)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testVerifier().Verify(dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictTampered {
		t.Fatalf("verdict = %s, want TAMPERED (bad signature)", res.Verdict)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := VerdictGenuine; v <= VerdictDuplicateID; v++ {
		if v.String() == "INVALID" {
			t.Errorf("verdict %d has no string", v)
		}
	}
	if Verdict(99).String() != "INVALID" {
		t.Error("unknown verdict should be INVALID")
	}
	if !VerdictGenuine.Accepted() || VerdictTampered.Accepted() {
		t.Error("Accepted wrong")
	}
}

func TestChipClassStrings(t *testing.T) {
	for c := ClassGenuineAccept; c <= ClassReplayImprint; c++ {
		if c.String() == "invalid" {
			t.Errorf("class %d has no string", c)
		}
	}
	if ChipClass(99).String() != "invalid" {
		t.Error("unknown class should be invalid")
	}
	if !ClassGenuineAccept.ShouldAccept() || ClassRecycled.ShouldAccept() {
		t.Error("ShouldAccept wrong")
	}
}

func TestFabricateUnknownClass(t *testing.T) {
	if _, err := Fabricate(ChipClass(99), testConfig(), 1, 1); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	var m ConfusionMatrix
	m.Add(ClassGenuineAccept, VerdictGenuine)
	m.Add(ClassGenuineAccept, VerdictGenuine)
	m.Add(ClassGenuineAccept, VerdictTampered) // false reject
	m.Add(ClassUnmarked, VerdictNoWatermark)
	m.Add(ClassUnmarked, VerdictGenuine) // false accept
	if m.Total != 5 {
		t.Errorf("Total = %d", m.Total)
	}
	if got := m.FalseAccepts(); got != 1 {
		t.Errorf("FalseAccepts = %d", got)
	}
	if got := m.FalseRejects(); got != 1 {
		t.Errorf("FalseRejects = %d", got)
	}
	if got := m.CorrectAcceptRate(); got != 0.6 {
		t.Errorf("CorrectAcceptRate = %v", got)
	}
	s := m.String()
	if s == "" {
		t.Error("empty matrix string")
	}
}

func TestRunPopulationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("population run is slow")
	}
	spec := PopulationSpec{
		ClassGenuineAccept:   2,
		ClassGenuineReject:   1,
		ClassMetadataForgery: 1,
		ClassDigitalClone:    1,
		ClassUnmarked:        1,
		ClassTopUpTamper:     1,
	}
	matrix, outcomes, err := RunPopulation(spec, testConfig(), testVerifier(), 0xBA5E)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 7 || matrix.Total != 7 {
		t.Fatalf("population size = %d / %d", len(outcomes), matrix.Total)
	}
	if fa := matrix.FalseAccepts(); fa != 0 {
		t.Errorf("false accepts = %d\n%s", fa, matrix)
	}
	if fr := matrix.FalseRejects(); fr != 0 {
		t.Errorf("false rejects = %d\n%s", fr, matrix)
	}
	if rate := matrix.CorrectAcceptRate(); rate != 1 {
		t.Errorf("correct rate = %v\n%s", rate, matrix)
	}
}

func TestAuditorBasics(t *testing.T) {
	a := NewAuditor()
	if dup := a.Record("TC", 42); dup {
		t.Fatal("first record flagged duplicate")
	}
	if dup := a.Record("TC", 42); !dup {
		t.Fatal("second record not flagged")
	}
	if dup := a.Record("OTHER", 42); dup {
		t.Fatal("same die ID from another manufacturer flagged")
	}
	if got := a.Count("TC", 42); got != 2 {
		t.Errorf("Count = %d", got)
	}
	if got := a.Duplicates(); len(got) != 1 || got[0] != 42 {
		t.Errorf("Duplicates = %v", got)
	}
	if a.Total() != 3 {
		t.Errorf("Total = %d", a.Total())
	}
}

func TestAuditCatchesReplayImprint(t *testing.T) {
	// A replay-imprinted clone carries a copied die ID: physics passes
	// it, the batch audit does not.
	cfg := testConfig()
	const victimDie = 4242
	genuine, err := Fabricate(ClassGenuineAccept, cfg, 0xA11D, victimDie)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := Fabricate(ClassReplayImprint, cfg, 0xA11E, victimDie)
	if err != nil {
		t.Fatal(err)
	}
	v := testVerifier()
	v.Audit = NewAuditor()
	res, err := v.Verify(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictGenuine {
		t.Fatalf("genuine verdict = %s", res.Verdict)
	}
	res, err = v.Verify(clone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictDuplicateID {
		t.Fatalf("clone verdict = %s, want DUPLICATE-ID", res.Verdict)
	}
	if dups := v.Audit.Duplicates(); len(dups) != 1 || dups[0] != victimDie {
		t.Fatalf("duplicates = %v", dups)
	}
}

func TestRunPopulationParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("population run is slow")
	}
	spec := PopulationSpec{
		ClassGenuineAccept:   2,
		ClassMetadataForgery: 1,
		ClassUnmarked:        1,
	}
	serialM, serialO, err := RunPopulation(spec, testConfig(), testVerifier(), 0x9A11)
	if err != nil {
		t.Fatal(err)
	}
	parallelM, parallelO, err := RunPopulationParallel(spec, testConfig(), testVerifier(), 0x9A11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialO) != len(parallelO) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serialO), len(parallelO))
	}
	for i := range serialO {
		if serialO[i].Class != parallelO[i].Class || serialO[i].Verdict != parallelO[i].Verdict {
			t.Errorf("outcome %d differs: %v/%v vs %v/%v", i,
				serialO[i].Class, serialO[i].Verdict, parallelO[i].Class, parallelO[i].Verdict)
		}
	}
	if serialM.CorrectAcceptRate() != parallelM.CorrectAcceptRate() {
		t.Error("matrices differ")
	}
}

func TestRunPopulationParallelRejectsAuditor(t *testing.T) {
	v := testVerifier()
	v.Audit = NewAuditor()
	_, _, err := RunPopulationParallel(PopulationSpec{ClassUnmarked: 1}, testConfig(), v, 1, 4)
	if err == nil {
		t.Fatal("auditor accepted in parallel run")
	}
}

func TestRunPopulationParallelSingleWorkerDelegates(t *testing.T) {
	if testing.Short() {
		t.Skip("population run is slow")
	}
	_, o, err := RunPopulationParallel(PopulationSpec{ClassUnmarked: 1}, testConfig(), testVerifier(), 1, 1)
	if err != nil || len(o) != 1 {
		t.Fatalf("single-worker delegate failed: %v, %d outcomes", err, len(o))
	}
}
