package counterfeit

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/flashmark/flashmark/internal/parallel"
)

// PopulationSpec says how many chips of each class flow through the
// verifier in a supply-chain experiment.
type PopulationSpec map[ChipClass]int

// Outcome is one chip's ground truth and classification.
type Outcome struct {
	Class   ChipClass
	Verdict Verdict
	Result  Result
}

// ConfusionMatrix tallies verdicts per ground-truth class.
type ConfusionMatrix struct {
	Counts map[ChipClass]map[Verdict]int
	Total  int
}

// Add records one outcome.
func (m *ConfusionMatrix) Add(class ChipClass, verdict Verdict) {
	if m.Counts == nil {
		m.Counts = make(map[ChipClass]map[Verdict]int)
	}
	row := m.Counts[class]
	if row == nil {
		row = make(map[Verdict]int)
		m.Counts[class] = row
	}
	row[verdict]++
	m.Total++
}

// CorrectAcceptRate returns the fraction of chips whose accept/refuse
// decision matched the ground truth (the headline supply-chain metric:
// counterfeits refused, genuine chips accepted).
func (m *ConfusionMatrix) CorrectAcceptRate() float64 {
	if m.Total == 0 {
		return 0
	}
	correct := 0
	for class, row := range m.Counts {
		for verdict, n := range row {
			if verdict.Accepted() == class.ShouldAccept() {
				correct += n
			}
		}
	}
	return float64(correct) / float64(m.Total)
}

// FalseAccepts counts counterfeit chips the verifier accepted.
func (m *ConfusionMatrix) FalseAccepts() int {
	n := 0
	for class, row := range m.Counts {
		if class.ShouldAccept() {
			continue
		}
		for verdict, c := range row {
			if verdict.Accepted() {
				n += c
			}
		}
	}
	return n
}

// FalseRejects counts genuine chips the verifier refused.
func (m *ConfusionMatrix) FalseRejects() int {
	n := 0
	for class, row := range m.Counts {
		if !class.ShouldAccept() {
			continue
		}
		for verdict, c := range row {
			if !verdict.Accepted() {
				n += c
			}
		}
	}
	return n
}

// String renders the matrix as an aligned table.
func (m *ConfusionMatrix) String() string {
	var classes []ChipClass
	for c := range m.Counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var b strings.Builder
	for _, c := range classes {
		row := m.Counts[c]
		var verdicts []Verdict
		for v := range row {
			verdicts = append(verdicts, v)
		}
		sort.Slice(verdicts, func(i, j int) bool { return verdicts[i] < verdicts[j] })
		fmt.Fprintf(&b, "%-18s", c)
		for _, v := range verdicts {
			fmt.Fprintf(&b, " %s=%d", v, row[v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// populationJob is one chip's deterministic identity within a
// population run: its class, derived seed and die number.
type populationJob struct {
	class ChipClass
	seed  uint64
	die   uint64
}

// populationJobs expands the spec into the flat, deterministically
// ordered job list shared by the serial and parallel runners: classes
// sort ascending, dies number sequentially from 1001, and chip seeds
// derive from seedBase via the class tag and parallel.SubSeed.
func populationJobs(spec PopulationSpec, seedBase uint64) []populationJob {
	var classes []ChipClass
	for c := range spec {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var jobs []populationJob
	die := uint64(1000)
	for _, class := range classes {
		for i := 0; i < spec[class]; i++ {
			die++
			jobs = append(jobs, populationJob{
				class: class,
				seed:  parallel.SubSeed(seedBase^(uint64(class)<<32), uint64(i)),
				die:   die,
			})
		}
	}
	return jobs
}

// RunPopulation fabricates the specified population and verifies every
// chip, returning the confusion matrix and per-chip outcomes. Chip seeds
// derive deterministically from seedBase, so runs are reproducible.
func RunPopulation(spec PopulationSpec, cfg FactoryConfig, verifier *Verifier, seedBase uint64) (*ConfusionMatrix, []Outcome, error) {
	return RunPopulationParallel(spec, cfg, verifier, seedBase, 1)
}

// RunPopulationParallel fabricates and verifies the population with up to
// `workers` chips in flight (0 selects GOMAXPROCS) on the parallel
// engine. Chips are independent, deterministically seeded simulations
// and outcomes are collected by job index, so the matrix and outcome
// list are identical for every worker count — only wall-clock time
// improves. The verifier must not carry an Auditor when workers != 1:
// duplicate detection is order-dependent and belongs in a serial pass.
func RunPopulationParallel(spec PopulationSpec, cfg FactoryConfig, verifier *Verifier, seedBase uint64, workers int) (*ConfusionMatrix, []Outcome, error) {
	return RunPopulationContext(context.Background(), spec, cfg, verifier, seedBase, workers)
}

// RunPopulationContext is RunPopulationParallel with cooperative
// cancellation: once ctx is done no further chips are fabricated or
// verified, in-flight chips finish, and the run returns the
// cancellation error. When ctx is never canceled the matrix and
// outcomes are byte-identical to RunPopulationParallel.
func RunPopulationContext(ctx context.Context, spec PopulationSpec, cfg FactoryConfig, verifier *Verifier, seedBase uint64, workers int) (*ConfusionMatrix, []Outcome, error) {
	if verifier.Audit != nil && workers != 1 {
		return nil, nil, fmt.Errorf("counterfeit: parallel population runs cannot use a die-ID auditor (order-dependent); run the audit pass serially")
	}
	jobs := populationJobs(spec, seedBase)
	// Recycle device instances across jobs: Refabricate-capable backends
	// reset in place instead of reconstructing, and a Result carries only
	// value data, so a verified chip's device is free for the next job.
	arenaCfg := cfg
	var arena *deviceArena
	if cfg.Fab != nil {
		arena = newDeviceArena(cfg.Fab)
		arenaCfg.Fab = arena.Fab
	}
	outcomes, err := parallel.MapContext(ctx, parallel.Pool{Workers: workers}, len(jobs), func(i int) (Outcome, error) {
		j := jobs[i]
		dev, err := Fabricate(j.class, arenaCfg, j.seed, j.die)
		if err != nil {
			return Outcome{}, fmt.Errorf("counterfeit: fabricating %s chip (die %d): %w", j.class, j.die, err)
		}
		res, err := verifier.VerifyContext(ctx, dev)
		if err != nil {
			return Outcome{}, fmt.Errorf("counterfeit: verifying %s chip (die %d): %w", j.class, j.die, err)
		}
		arena.Recycle(dev)
		return Outcome{Class: j.class, Verdict: res.Verdict, Result: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var matrix ConfusionMatrix
	for _, o := range outcomes {
		matrix.Add(o.Class, o.Verdict)
	}
	return &matrix, outcomes, nil
}
