package counterfeit

import (
	"reflect"
	"testing"

	"github.com/flashmark/flashmark/internal/device"
)

// TestRunPopulationIdenticalAcrossPhysicsPaths pins the whole
// counterfeit pipeline — fabrication (imprint, field wear, tampering),
// verification (extraction, decode, wear screen) and the batch audit —
// to identical outcomes under the batched fast physics and the per-cell
// reference physics: same confusion matrix, same per-chip verdicts and
// reports, chip for chip.
func TestRunPopulationIdenticalAcrossPhysicsPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("fabricates the population twice")
	}
	spec := PopulationSpec{
		ClassGenuineAccept:   2,
		ClassGenuineReject:   1,
		ClassRecycled:        2,
		ClassMetadataForgery: 1,
		ClassDigitalClone:    1,
		ClassTopUpTamper:     1,
		ClassUnmarked:        1,
		ClassReplayImprint:   1,
	}
	run := func(p device.PhysicsPath) (*ConfusionMatrix, []Outcome) {
		t.Helper()
		cfg := testConfig()
		cfg.Fab = device.WithPhysicsPath(cfg.Fab, p)
		v := testVerifier()
		v.Audit = NewAuditor()
		matrix, outcomes, err := RunPopulation(spec, cfg, v, 0xB10C)
		if err != nil {
			t.Fatalf("physics=%s: %v", p, err)
		}
		return matrix, outcomes
	}
	refMatrix, refOutcomes := run(device.PhysicsReference)
	fastMatrix, fastOutcomes := run(device.PhysicsFast)
	if !reflect.DeepEqual(refMatrix, fastMatrix) {
		t.Errorf("confusion matrices diverged:\nreference:\n%s\nfast:\n%s", refMatrix, fastMatrix)
	}
	if len(refOutcomes) != len(fastOutcomes) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(refOutcomes), len(fastOutcomes))
	}
	for i := range refOutcomes {
		if !reflect.DeepEqual(refOutcomes[i], fastOutcomes[i]) {
			t.Errorf("chip %d diverged:\nreference: %+v\nfast:      %+v", i, refOutcomes[i], fastOutcomes[i])
		}
	}
}
