package counterfeit

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// Verifier is the system integrator's incoming-inspection policy. It holds
// the publicly communicated extraction parameters (t_PEW window, replica
// layout) and, optionally, the manufacturer verification key.
type Verifier struct {
	Codec        wmcode.Codec
	Manufacturer string // expected manufacturer string
	SegAddr      int    // watermark segment address
	TPEW         time.Duration
	Replicas     int // replica count used at imprint (odd)
	Reads        int // majority reads per extraction word (odd)

	// CheckRecycling enables the usage-wear screen on data segments
	// (the [7]-style partial-erase timing check integrated into the
	// verification flow).
	CheckRecycling bool
	// RecycledSegments is how many data segments to sample (default 2).
	RecycledSegments int
	// RecycledThreshold is the programmed-cell fraction at t_PEW above
	// which a data segment counts as worn (default 0.10).
	RecycledThreshold float64

	// Audit, when set, records every verified die identity and flags
	// duplicates across the procurement batch — the bookkeeping defense
	// against replay-imprinted clones.
	Audit *Auditor
}

// Result is the verifier's full report for one chip.
type Result struct {
	Verdict Verdict
	// Payload is the decoded watermark (valid when DecodeErr is nil).
	Payload wmcode.Payload
	// Report carries the codec's integrity findings.
	Report wmcode.Report
	// DecodeErr is the structural decode failure, if any.
	DecodeErr error
	// ReplicaDisagreement is the fraction of payload bits on which the
	// replicas did not vote unanimously — a quality signal.
	ReplicaDisagreement float64
	// WornDataSegments counts sampled data segments over the recycling
	// threshold (when CheckRecycling).
	WornDataSegments int
	// SampledDataSegments is how many data segments were screened.
	SampledDataSegments int
	// FaultErr is set with VerdictInconclusive: the device fault that
	// prevented the inspection from completing.
	FaultErr error
}

func (v *Verifier) withDefaults() Verifier {
	out := *v
	if out.TPEW == 0 {
		out.TPEW = 25 * time.Microsecond
	}
	if out.Replicas == 0 {
		out.Replicas = 7
	}
	if out.Reads == 0 {
		out.Reads = 3
	}
	if out.RecycledSegments == 0 {
		out.RecycledSegments = 2
	}
	if out.RecycledThreshold == 0 {
		// Fresh segments leave well under 2% of cells programmed at
		// t_PEW; a first product life of ~10K P/E cycles leaves >8%.
		out.RecycledThreshold = 0.04
	}
	if out.Manufacturer == "" {
		out.Manufacturer = "TC"
	}
	return out
}

// Verify runs the full incoming-inspection flow on a chip: watermark
// extraction (destructive to the segment's digital content, not to the
// watermark), replica majority decode, integrity checks, and optionally
// the recycling screen on data segments.
func (v *Verifier) Verify(dev device.Device) (Result, error) {
	return v.VerifyContext(context.Background(), dev)
}

// VerifyContext is Verify with a deadline/cancellation hook: the context
// is consulted between inspection stages (before extraction, before the
// recycling screen, and between sampled data segments), never inside a
// simulated flash operation, so a canceled verification stops promptly
// without leaving an operation half-accounted. When ctx is never
// canceled the flow — and therefore every artifact — is byte-identical
// to Verify. A cancellation surfaces as a hard error wrapping ctx.Err(),
// not as a verdict: the chip was not classified.
func (v *Verifier) VerifyContext(ctx context.Context, dev device.Device) (Result, error) {
	cfg := v.withDefaults()
	var res Result

	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("counterfeit: verification aborted: %w", err)
	}
	extracted, err := core.ExtractSegment(dev, cfg.SegAddr, core.ExtractOptions{
		TPEW:        cfg.TPEW,
		Reads:       cfg.Reads,
		HostReadout: true,
	})
	if err != nil {
		if errors.Is(err, device.ErrInjected) {
			res.Verdict = VerdictInconclusive
			res.FaultErr = err
			return res, nil
		}
		return res, fmt.Errorf("counterfeit: extraction failed: %w", err)
	}
	payloadWords := cfg.Codec.PayloadWords()
	bits := dev.Geometry().WordBits()
	views, err := core.ReplicaViews(extracted, payloadWords, cfg.Replicas)
	if err != nil {
		return res, fmt.Errorf("counterfeit: replica decode failed: %w", err)
	}
	res.ReplicaDisagreement = replicaDisagreement(extracted, payloadWords, cfg.Replicas, bits)

	res.Payload, res.Report, res.DecodeErr = cfg.Codec.DecodeReplicas(views)
	switch {
	case res.DecodeErr != nil:
		res.Verdict = VerdictNoWatermark
		return res, nil
	case res.Report.Tampered():
		res.Verdict = VerdictTampered
		return res, nil
	case res.Payload.Manufacturer != cfg.Manufacturer:
		res.Verdict = VerdictWrongIdentity
		return res, nil
	case res.Payload.Status == wmcode.StatusReject:
		res.Verdict = VerdictRejectDie
		return res, nil
	case res.Payload.Status != wmcode.StatusAccept:
		res.Verdict = VerdictTampered
		return res, nil
	}

	if cfg.CheckRecycling {
		worn, sampled, err := v.recycledScreen(ctx, dev, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return res, fmt.Errorf("counterfeit: verification aborted: %w", err)
			}
			if errors.Is(err, device.ErrInjected) {
				res.Verdict = VerdictInconclusive
				res.FaultErr = err
				return res, nil
			}
			return res, err
		}
		res.WornDataSegments = worn
		res.SampledDataSegments = sampled
		if worn > 0 {
			res.Verdict = VerdictRecycled
			return res, nil
		}
	}
	if v.Audit != nil {
		if v.Audit.Record(res.Payload.Manufacturer, res.Payload.DieID) {
			res.Verdict = VerdictDuplicateID
			return res, nil
		}
	}
	res.Verdict = VerdictGenuine
	return res, nil
}

// recycledScreen samples data segments with the one-round partial-erase
// stress detector.
func (v *Verifier) recycledScreen(ctx context.Context, dev device.Device, cfg Verifier) (worn, sampled int, err error) {
	geom := dev.Geometry()
	wmSeg, err := geom.SegmentOfAddr(cfg.SegAddr)
	if err != nil {
		return 0, 0, err
	}
	cells := geom.CellsPerSegment()
	for seg := 0; seg < geom.TotalSegments() && sampled < cfg.RecycledSegments; seg++ {
		if cerr := ctx.Err(); cerr != nil {
			return 0, 0, cerr
		}
		if seg == wmSeg {
			continue
		}
		addr, aerr := geom.AddrOfSegment(seg)
		if aerr != nil {
			return 0, 0, aerr
		}
		programmed, derr := core.DetectStress(dev, addr, cfg.TPEW, cfg.Reads)
		if derr != nil {
			return 0, 0, derr
		}
		if float64(programmed)/float64(cells) > cfg.RecycledThreshold {
			worn++
		}
		sampled++
	}
	return worn, sampled, nil
}

// replicaDisagreement measures the fraction of payload bit positions where
// at least one replica dissents from the majority.
func replicaDisagreement(extracted []uint64, payloadWords, copies, bits int) float64 {
	views, err := core.ReplicaViews(extracted, payloadWords, copies)
	if err != nil || payloadWords == 0 {
		return 0
	}
	disagree := 0
	for w := 0; w < payloadWords; w++ {
		for b := 0; b < bits; b++ {
			ones := 0
			for _, view := range views {
				if view[w]&(1<<uint(b)) != 0 {
					ones++
				}
			}
			if ones != 0 && ones != copies {
				disagree++
			}
		}
	}
	return float64(disagree) / float64(payloadWords*bits)
}
