package counterfeit

import (
	"fmt"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// FactoryConfig describes how the trusted manufacturer watermarks its
// dice, and how attackers derive their counterfeits.
type FactoryConfig struct {
	// Fab fabricates fresh dice of the product family (any backend:
	// mcu.Fab for NOR parts, nand.Fab for NAND).
	Fab          device.Fab
	Codec        wmcode.Codec
	Manufacturer string
	// SegAddr is the byte address of the reserved watermark segment.
	SegAddr int
	// NPE is the imprint stress count (zero selects core.DefaultNPE).
	NPE int
	// Replicas is the watermark replica count (zero selects 7).
	Replicas int
	// FieldWearCycles is the P/E wear a recycled chip accumulated per
	// data segment during its first life (zero selects 10 000).
	FieldWearCycles int
	// FieldWearSegments is how many data segments the first life used
	// (zero selects 3, starting after the watermark segment).
	FieldWearSegments int
}

func (c FactoryConfig) withDefaults() FactoryConfig {
	if c.NPE == 0 {
		// The production operating point: high enough stress that fused
		// replica voting recovers the payload error-free (see the
		// calibration experiments).
		c.NPE = 80_000
	}
	if c.Replicas == 0 {
		c.Replicas = 7
	}
	if c.FieldWearCycles == 0 {
		c.FieldWearCycles = 10_000
	}
	if c.FieldWearSegments == 0 {
		c.FieldWearSegments = 3
	}
	if c.Manufacturer == "" {
		c.Manufacturer = "TC"
	}
	return c
}

// payloadFor builds the die-specific payload.
func (c FactoryConfig) payloadFor(dieID uint64, status wmcode.Status) wmcode.Payload {
	return wmcode.Payload{
		Manufacturer: c.Manufacturer,
		DieID:        dieID,
		SpeedGrade:   2,
		Status:       status,
		YearWeek:     2610,
	}
}

// imprintWatermark performs the manufacturer-side die-sort imprint.
func (c FactoryConfig) imprintWatermark(dev device.Device, dieID uint64, status wmcode.Status) ([]uint64, error) {
	payload, err := c.Codec.Encode(c.payloadFor(dieID, status))
	if err != nil {
		return nil, err
	}
	img, err := core.Replicate(payload, c.Replicas, dev.Geometry().WordsPerSegment())
	if err != nil {
		return nil, err
	}
	err = core.ImprintSegment(dev, c.SegAddr, img, core.ImprintOptions{NPE: c.NPE, Accelerated: true})
	if err != nil {
		return nil, err
	}
	return img, nil
}

// applyFieldUse simulates a first product life: heavy P/E cycling on the
// chip's data segments (logging, firmware updates, ...).
func (c FactoryConfig) applyFieldUse(dev device.Device, seed uint64) error {
	geom := dev.Geometry()
	r := rng.New(seed)
	wmSeg, err := geom.SegmentOfAddr(c.SegAddr)
	if err != nil {
		return err
	}
	used := 0
	mask := uint64(1)<<uint(geom.WordBits()) - 1
	data := make([]uint64, geom.WordsPerSegment())
	for seg := 0; seg < geom.TotalSegments() && used < c.FieldWearSegments; seg++ {
		if seg == wmSeg {
			continue
		}
		addr, err := geom.AddrOfSegment(seg)
		if err != nil {
			return err
		}
		// A fixed random pattern per segment: roughly half the cells
		// live through the full P/E count, the rest see erase-only
		// stress — the nonuniform wear profile of real firmware/log
		// storage, and the profile the wear screen must catch. The
		// buffer is refilled (every word overwritten) each iteration,
		// so hoisting it does not change the draw sequence.
		for i := range data {
			data[i] = r.Uint64() & mask
		}
		if err := dev.Unlock(); err != nil {
			return err
		}
		err = dev.StressSegmentWords(addr, data, c.FieldWearCycles, true)
		dev.Lock()
		if err != nil {
			return err
		}
		used++
	}
	return nil
}

// Imprint performs the manufacturer-side die-sort imprint on an existing
// device: the scenario-engine seam for watermarking a chip fabricated
// earlier (Fabricate bundles fabrication and imprint in one call).
func (c FactoryConfig) Imprint(dev device.Device, dieID uint64, status wmcode.Status) error {
	_, err := c.withDefaults().imprintWatermark(dev, dieID, status)
	return err
}

// ApplyFieldUse simulates a first product life on an existing device:
// heavy P/E cycling on the chip's data segments. It is the wear half of
// ClassRecycled, exposed so temporal scenarios can stress a chip at a
// chosen instant of its history.
func (c FactoryConfig) ApplyFieldUse(dev device.Device, seed uint64) error {
	return c.withDefaults().applyFieldUse(dev, seed)
}

// Fabricate manufactures one chip of the given ground-truth class. The
// seed determines the die's physical identity; dieID goes into genuine
// watermarks.
func Fabricate(class ChipClass, cfg FactoryConfig, seed, dieID uint64) (device.Device, error) {
	cfg = cfg.withDefaults()
	if cfg.Fab == nil {
		return nil, fmt.Errorf("counterfeit: FactoryConfig.Fab is nil")
	}
	dev, err := cfg.Fab(seed)
	if err != nil {
		return nil, err
	}
	switch class {
	case ClassUnmarked:
		return dev, nil

	case ClassGenuineAccept:
		_, err = cfg.imprintWatermark(dev, dieID, wmcode.StatusAccept)
		return dev, err

	case ClassGenuineReject:
		_, err = cfg.imprintWatermark(dev, dieID, wmcode.StatusReject)
		return dev, err

	case ClassRecycled:
		if _, err = cfg.imprintWatermark(dev, dieID, wmcode.StatusAccept); err != nil {
			return nil, err
		}
		if err := cfg.applyFieldUse(dev, seed^0xFEED); err != nil {
			return nil, err
		}
		// The recycler wipes the chip to look new.
		geom := dev.Geometry()
		if err := dev.Unlock(); err != nil {
			return nil, err
		}
		defer dev.Lock()
		for bank := 0; bank < geom.Banks; bank++ {
			addr := bank * geom.SegmentsPerBank * geom.SegmentBytes
			if err := dev.MassEraseBank(addr); err != nil {
				return nil, err
			}
		}
		return dev, nil

	case ClassMetadataForgery:
		return dev, MetadataForgery(dev, cfg)

	case ClassDigitalClone:
		return dev, DigitalCloneAttack(dev, cfg, dieID)

	case ClassTopUpTamper:
		if _, err = cfg.imprintWatermark(dev, dieID, wmcode.StatusReject); err != nil {
			return nil, err
		}
		return dev, TopUpTamperAttack(dev, cfg)

	case ClassReplayImprint:
		return dev, ReplayImprintAttack(dev, cfg, dieID)
	}
	return nil, fmt.Errorf("counterfeit: unknown chip class %d", class)
}

// MetadataForgery is the current-practice attack the paper motivates
// against: the counterfeiter simply programs plausible manufacturing
// metadata into the reserved segment. No cells are stressed, so the
// "watermark" is digital only.
func MetadataForgery(dev device.Device, cfg FactoryConfig) error {
	cfg = cfg.withDefaults()
	payload, err := cfg.Codec.Encode(cfg.payloadFor(0x7E57ED, wmcode.StatusAccept))
	if err != nil {
		return err
	}
	img, err := core.Replicate(payload, cfg.Replicas, dev.Geometry().WordsPerSegment())
	if err != nil {
		return err
	}
	if err := dev.Unlock(); err != nil {
		return err
	}
	defer dev.Lock()
	if err := dev.EraseSegment(cfg.SegAddr); err != nil {
		return err
	}
	return dev.ProgramBlock(cfg.SegAddr, img)
}

// DigitalCloneAttack copies a genuine chip's watermark segment content
// bit-for-bit onto the target with ordinary program operations. The
// digital image is perfect — and physically absent, because extraction
// erases and reprograms the segment before sensing wear.
func DigitalCloneAttack(dev device.Device, cfg FactoryConfig, clonedDieID uint64) error {
	cfg = cfg.withDefaults()
	// The attacker reads a genuine chip; reconstruct that image.
	payload, err := cfg.Codec.Encode(cfg.payloadFor(clonedDieID, wmcode.StatusAccept))
	if err != nil {
		return err
	}
	img, err := core.Replicate(payload, cfg.Replicas, dev.Geometry().WordsPerSegment())
	if err != nil {
		return err
	}
	if err := dev.Unlock(); err != nil {
		return err
	}
	defer dev.Lock()
	if err := dev.EraseSegment(cfg.SegAddr); err != nil {
		return err
	}
	return dev.ProgramBlock(cfg.SegAddr, img)
}

// TopUpTamperAttack models the §V tampering discussion: the counterfeiter
// holds a REJECT-marked die and stresses additional cells, hoping to
// morph the watermark into something acceptable. Stressing can only turn
// "good" cells "bad" (1 -> 0 at extraction); here the attacker stresses
// every cell that differs from a forged ACCEPT watermark in the hopeful
// direction. The balanced code makes the result detectably illegitimate.
func TopUpTamperAttack(dev device.Device, cfg FactoryConfig) error {
	cfg = cfg.withDefaults()
	forged, err := cfg.Codec.Encode(cfg.payloadFor(0xFA4E, wmcode.StatusAccept))
	if err != nil {
		return err
	}
	img, err := core.Replicate(forged, cfg.Replicas, dev.Geometry().WordsPerSegment())
	if err != nil {
		return err
	}
	// Stress-imprint the forged pattern on top: cells that are 0 in the
	// forged image accumulate wear; already-bad cells stay bad. The
	// attacker cannot heal any cell.
	return core.ImprintSegment(dev, cfg.SegAddr, img, core.ImprintOptions{NPE: cfg.NPE, Accelerated: true})
}

// ReplayImprintAttack is the determined counterfeiter who runs the full
// die-sort imprint procedure on a fresh inferior chip using a bit-exact
// copy of a genuine ACCEPT watermark. Flashmark's physics cannot
// distinguish this from a genuine imprint — the paper's implicit residual
// risk. It is bounded economically (hundreds of seconds of tester time
// per chip) and operationally (duplicated die IDs are detectable
// downstream); the population experiment reports it honestly.
func ReplayImprintAttack(dev device.Device, cfg FactoryConfig, copiedDieID uint64) error {
	cfg = cfg.withDefaults()
	payload, err := cfg.Codec.Encode(cfg.payloadFor(copiedDieID, wmcode.StatusAccept))
	if err != nil {
		return err
	}
	img, err := core.Replicate(payload, cfg.Replicas, dev.Geometry().WordsPerSegment())
	if err != nil {
		return err
	}
	return core.ImprintSegment(dev, cfg.SegAddr, img, core.ImprintOptions{NPE: cfg.NPE, Accelerated: true})
}
