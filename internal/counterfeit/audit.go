package counterfeit

import (
	"sort"

	"github.com/flashmark/flashmark/internal/registry"
)

// Auditor is the integrator-side die-identity ledger that closes the
// replay-imprint gap: a counterfeiter who re-runs the full imprint with a
// copied watermark necessarily duplicates the victim's die ID, because
// the signature binds the payload and the attacker cannot mint new valid
// IDs without the signing key. Physics cannot catch the replay
// (see ClassReplayImprint), but bookkeeping across a procurement batch
// can: the second appearance of any (manufacturer, die ID) pair is
// flagged, and the flag retroactively taints the first.
//
// Note this is batch-local bookkeeping by the verifier — not the
// manufacturer-maintained global database the paper's PUF comparison
// criticizes. The integrator needs no external contact.
//
// The ledger itself is registry.Memory scoped to one batch: the same
// dedup kernel that backs the fleet-scale durable registry (see package
// registry), so batch-local and fleet-scope duplicate detection agree
// on semantics by construction.
type Auditor struct {
	store *registry.Memory
}

// NewAuditor returns an empty ledger.
func NewAuditor() *Auditor {
	return &Auditor{store: registry.NewMemory(0)}
}

// Record notes one verified chip identity and reports whether this
// identity was already seen in the batch (a duplicate).
func (a *Auditor) Record(manufacturer string, dieID uint64) (duplicate bool) {
	res, _ := a.store.Enroll(registry.Enrollment{
		Key: registry.Key{Manufacturer: manufacturer, DieID: dieID},
	})
	return res.Duplicate
}

// Count returns how many times an identity has been recorded.
func (a *Auditor) Count(manufacturer string, dieID uint64) int {
	r, ok := a.store.Lookup(registry.Key{Manufacturer: manufacturer, DieID: dieID})
	if !ok {
		return 0
	}
	return r.Count
}

// Duplicates returns every die ID recorded more than once, sorted. All
// chips bearing these IDs — including the first-seen, which may be the
// genuine victim — need manual disposition.
func (a *Auditor) Duplicates() []uint64 {
	keys := a.store.Duplicates()
	out := make([]uint64, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.DieID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the number of identities recorded (including duplicates).
func (a *Auditor) Total() int {
	return int(a.store.Stats().Enrollments)
}
