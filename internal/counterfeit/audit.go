package counterfeit

import (
	"sort"
	"sync"
)

// Auditor is the integrator-side die-identity ledger that closes the
// replay-imprint gap: a counterfeiter who re-runs the full imprint with a
// copied watermark necessarily duplicates the victim's die ID, because
// the signature binds the payload and the attacker cannot mint new valid
// IDs without the signing key. Physics cannot catch the replay
// (see ClassReplayImprint), but bookkeeping across a procurement batch
// can: the second appearance of any (manufacturer, die ID) pair is
// flagged, and the flag retroactively taints the first.
//
// Note this is batch-local bookkeeping by the verifier — not the
// manufacturer-maintained global database the paper's PUF comparison
// criticizes. The integrator needs no external contact.
type Auditor struct {
	mu   sync.Mutex
	seen map[auditKey]int
}

type auditKey struct {
	manufacturer string
	dieID        uint64
}

// NewAuditor returns an empty ledger.
func NewAuditor() *Auditor {
	return &Auditor{seen: make(map[auditKey]int)}
}

// Record notes one verified chip identity and reports whether this
// identity was already seen in the batch (a duplicate).
func (a *Auditor) Record(manufacturer string, dieID uint64) (duplicate bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := auditKey{manufacturer, dieID}
	a.seen[k]++
	return a.seen[k] > 1
}

// Count returns how many times an identity has been recorded.
func (a *Auditor) Count(manufacturer string, dieID uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen[auditKey{manufacturer, dieID}]
}

// Duplicates returns every die ID recorded more than once, sorted. All
// chips bearing these IDs — including the first-seen, which may be the
// genuine victim — need manual disposition.
func (a *Auditor) Duplicates() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []uint64
	for k, n := range a.seen {
		if n > 1 {
			out = append(out, k.dieID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the number of identities recorded (including duplicates).
func (a *Auditor) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.seen {
		n += c
	}
	return n
}
