package counterfeit

import (
	"sync"

	"github.com/flashmark/flashmark/internal/device"
)

// deviceArena recycles device instances across a population run. A
// population fabricates thousands of chips of the same product family,
// and constructing each one from scratch (cell array, physics model,
// controller scratch) dominates the allocation profile. Backends that
// implement device.Refabricator can instead be reset in place to the
// exact state a fresh fabrication with the new seed would produce, so
// the arena hands verified devices back to the next job.
//
// The arena is correct by the Refabricator contract: Refabricate(seed)
// must be indistinguishable from fab(seed) apart from the selected
// physics path, and it is only ever asserted on the outermost value —
// decorated devices (fault injectors, tracers) simply are not pooled.
type deviceArena struct {
	fab  device.Fab
	pool sync.Pool
}

func newDeviceArena(fab device.Fab) *deviceArena {
	return &deviceArena{fab: fab}
}

// Fab is a device.Fab that prefers resetting a recycled instance over
// constructing a new one.
func (a *deviceArena) Fab(seed uint64) (device.Device, error) {
	if v := a.pool.Get(); v != nil {
		dev := v.(device.Device)
		if rf, ok := dev.(device.Refabricator); ok {
			if err := rf.Refabricate(seed); err == nil {
				return dev, nil
			}
			// A failed reset leaves the instance in an unknown state:
			// drop it and fall through to a fresh fabrication.
		}
	}
	return a.fab(seed)
}

// Recycle returns a device whose chip is fully verified. Only outermost
// values implementing device.Refabricator are pooled; everything else
// is left to the garbage collector.
func (a *deviceArena) Recycle(dev device.Device) {
	if a == nil {
		return
	}
	if _, ok := dev.(device.Refabricator); ok {
		a.pool.Put(dev)
	}
}
