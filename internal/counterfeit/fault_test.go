package counterfeit

import (
	"errors"
	"testing"

	"github.com/flashmark/flashmark/internal/device"
)

// These tests pin the verifier's behavior on misbehaving silicon: device
// faults must surface as explicit degraded verdicts, never as panics and
// never as silent accepts.

func faultyGenuine(t *testing.T, seed uint64, cfg device.FaultConfig) device.Device {
	t.Helper()
	dev, err := Fabricate(ClassGenuineAccept, testConfig(), seed, 42)
	if err != nil {
		t.Fatal(err)
	}
	return device.InjectFaults(dev, cfg)
}

func TestVerifyEraseTimeoutIsInconclusive(t *testing.T) {
	dev := faultyGenuine(t, 300, device.FaultConfig{Seed: 300, EraseTimeoutProb: 1})
	res, err := testVerifier().Verify(dev)
	if err != nil {
		t.Fatalf("a device fault must not be a verifier error: %v", err)
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %s, want INCONCLUSIVE", res.Verdict)
	}
	if !errors.Is(res.FaultErr, device.ErrInjected) {
		t.Errorf("FaultErr = %v, want ErrInjected", res.FaultErr)
	}
	if res.Verdict.Accepted() {
		t.Error("an inconclusive inspection must not accept the chip")
	}
}

func TestVerifyRecycledScreenTimeoutIsInconclusive(t *testing.T) {
	// Let the extraction succeed, then fail an erase during the recycling
	// screen: still an explicit inconclusive, not a hard error. The fault
	// seed is fixed so the deterministic fault stream spares the
	// extraction's erases and fires in the screen.
	dev := faultyGenuine(t, 301, device.FaultConfig{Seed: 1, EraseTimeoutProb: 0.12})
	v := testVerifier()
	v.CheckRecycling = true
	res, err := v.Verify(dev)
	if err != nil {
		t.Fatalf("a device fault must not be a verifier error: %v", err)
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %s, want INCONCLUSIVE (FaultErr=%v)", res.Verdict, res.FaultErr)
	}
	if !errors.Is(res.FaultErr, device.ErrInjected) {
		t.Errorf("FaultErr = %v, want ErrInjected", res.FaultErr)
	}
	if res.Payload.Manufacturer != "TC" {
		t.Errorf("fault fired before the screen: payload %+v", res.Payload)
	}
}

func TestVerifySurvivesReadBitFlips(t *testing.T) {
	// Transient sense-amp bit flips on ~2% of reads: the replica majority
	// plus per-word read voting must still classify the chip, and the
	// flow must never panic. With heavier corruption any explicit verdict
	// is acceptable — the invariant is no panic and no error.
	for _, prob := range []float64{0.02, 0.5} {
		dev := faultyGenuine(t, 302, device.FaultConfig{Seed: 302, ReadBitFlipProb: prob})
		res, err := testVerifier().Verify(dev)
		if err != nil {
			t.Fatalf("p=%v: verify errored: %v", prob, err)
		}
		if prob <= 0.02 && res.Verdict != VerdictGenuine {
			t.Errorf("p=%v: verdict = %s, want GENUINE (disagreement %.3f)", prob, res.Verdict, res.ReplicaDisagreement)
		}
	}
}

func TestVerifyProgramErrorIsInconclusive(t *testing.T) {
	dev := faultyGenuine(t, 303, device.FaultConfig{Seed: 303, ProgramErrorProb: 1})
	res, err := testVerifier().Verify(dev)
	if err != nil {
		t.Fatalf("a device fault must not be a verifier error: %v", err)
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %s, want INCONCLUSIVE", res.Verdict)
	}
}

func TestPopulationToleratesFaultyChips(t *testing.T) {
	// A population study over a fault-injecting fab completes and reports
	// inconclusive chips separately instead of crashing or miscounting.
	base := testConfig()
	faultyFab := func(seed uint64) (device.Device, error) {
		d, err := base.Fab(seed)
		if err != nil {
			return nil, err
		}
		return device.InjectFaults(d, device.FaultConfig{Seed: seed, EraseTimeoutProb: 0.3}), nil
	}
	cfg := base
	cfg.Fab = faultyFab
	inconclusive, genuine := 0, 0
	for i := 0; i < 12; i++ {
		dev, err := Fabricate(ClassGenuineAccept, cfg, uint64(412+i), uint64(1412+i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := testVerifier().Verify(dev)
		if err != nil {
			t.Fatalf("chip %d: %v", i, err)
		}
		switch res.Verdict {
		case VerdictInconclusive:
			inconclusive++
		case VerdictGenuine:
			genuine++
		default:
			t.Errorf("chip %d: unexpected verdict %s", i, res.Verdict)
		}
	}
	if inconclusive == 0 {
		t.Error("p=0.3 erase timeouts never produced an inconclusive chip")
	}
	if genuine == 0 {
		t.Error("every chip came back inconclusive; retry path untested")
	}
}
