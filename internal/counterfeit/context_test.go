package counterfeit

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func testFactory() FactoryConfig {
	return FactoryConfig{
		Fab:   mcu.Fab(mcu.PartSmallSim()),
		Codec: wmcode.Codec{Key: []byte("ctx-test-key")},
	}
}

// TestVerifyContextCanceled aborts a verification before it starts and
// checks the chip is not classified.
func TestVerifyContextCanceled(t *testing.T) {
	dev, err := Fabricate(ClassGenuineAccept, testFactory(), 0x51, 2001)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := &Verifier{Codec: wmcode.Codec{Key: []byte("ctx-test-key")}}
	_, err = v.VerifyContext(ctx, dev)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestVerifyContextMatchesVerify pins the satellite requirement: a
// never-canceled context changes nothing about the result.
func TestVerifyContextMatchesVerify(t *testing.T) {
	cfg := testFactory()
	mk := func() *Verifier {
		return &Verifier{Codec: wmcode.Codec{Key: []byte("ctx-test-key")}, CheckRecycling: true}
	}
	for _, class := range []ChipClass{ClassGenuineAccept, ClassRecycled, ClassUnmarked} {
		devA, err := Fabricate(class, cfg, 0x77, 3001)
		if err != nil {
			t.Fatal(err)
		}
		devB, err := Fabricate(class, cfg, 0x77, 3001)
		if err != nil {
			t.Fatal(err)
		}
		resA, err := mk().Verify(devA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := mk().VerifyContext(context.Background(), devB)
		if err != nil {
			t.Fatal(err)
		}
		if resA.Verdict != resB.Verdict ||
			resA.ReplicaDisagreement != resB.ReplicaDisagreement ||
			resA.WornDataSegments != resB.WornDataSegments {
			t.Fatalf("%s: VerifyContext diverged from Verify: %+v vs %+v", class, resA, resB)
		}
	}
}

// TestVerifyContextDeadlineMidScreen drives a verification into the
// per-segment recycling screen with an already-expired deadline budget
// and checks the abort error wraps DeadlineExceeded.
func TestVerifyContextDeadlineMidScreen(t *testing.T) {
	dev, err := Fabricate(ClassGenuineAccept, testFactory(), 0x91, 4001)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	v := &Verifier{Codec: wmcode.Codec{Key: []byte("ctx-test-key")}, CheckRecycling: true}
	_, err = v.VerifyContext(ctx, dev)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestRunPopulationContextMatchesParallel pins byte-identical outcomes
// between the context and plain parallel population runners.
func TestRunPopulationContextMatchesParallel(t *testing.T) {
	spec := PopulationSpec{ClassGenuineAccept: 2, ClassUnmarked: 1}
	cfg := testFactory()
	mk := func() *Verifier { return &Verifier{Codec: wmcode.Codec{Key: []byte("ctx-test-key")}} }
	mA, oA, err := RunPopulationParallel(spec, cfg, mk(), 0xBA5E, 2)
	if err != nil {
		t.Fatal(err)
	}
	mB, oB, err := RunPopulationContext(context.Background(), spec, cfg, mk(), 0xBA5E, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mA.Total != mB.Total || len(oA) != len(oB) {
		t.Fatalf("population shape diverged: %d/%d vs %d/%d", mA.Total, len(oA), mB.Total, len(oB))
	}
	for i := range oA {
		if oA[i].Verdict != oB[i].Verdict || oA[i].Class != oB[i].Class {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, oA[i], oB[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunPopulationContext(ctx, spec, cfg, mk(), 0xBA5E, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestVerdictTextRoundTrip checks every verdict serializes to its
// canonical string and parses back, and that JSON uses the text form.
func TestVerdictTextRoundTrip(t *testing.T) {
	for v := VerdictGenuine; v <= VerdictInconclusive; v++ {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		want := `"` + v.String() + `"`
		if string(raw) != want {
			t.Fatalf("verdict %d marshaled to %s, want %s", int(v), raw, want)
		}
		var back Verdict
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("verdict %s did not round-trip (got %s)", v, back)
		}
	}
	if _, err := Verdict(99).MarshalText(); err == nil {
		t.Fatal("invalid verdict must not marshal")
	}
	var v Verdict
	if err := v.UnmarshalText([]byte("NOT-A-VERDICT")); err == nil {
		t.Fatal("unknown verdict text must not parse")
	}
}
