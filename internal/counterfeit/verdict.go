// Package counterfeit implements the supply-chain side of Flashmark: the
// system integrator's verifier, the counterfeiter threat models the paper
// discusses (§I, §IV), and population experiments that measure how each
// chip class is classified at incoming inspection.
package counterfeit

import "fmt"

// Verdict is the verifier's classification of a chip.
type Verdict int

// Verifier outcomes.
const (
	// VerdictGenuine: a valid, signed ACCEPT watermark from the expected
	// manufacturer, with no signs of recycling.
	VerdictGenuine Verdict = iota
	// VerdictNoWatermark: no physical watermark found — the chip was
	// never die-sorted by the claimed manufacturer (rebranded inferior
	// part, unmarked gray-market part, or a digital-copy clone whose
	// data does not survive extraction).
	VerdictNoWatermark
	// VerdictRejectDie: the watermark decodes but records die-sort
	// REJECT — a fall-out die that re-entered the supply chain.
	VerdictRejectDie
	// VerdictTampered: the watermark carries physical tampering evidence
	// (balanced-code violations or a bad signature).
	VerdictTampered
	// VerdictWrongIdentity: a structurally valid watermark from a
	// different manufacturer than expected.
	VerdictWrongIdentity
	// VerdictRecycled: the watermark is genuine but the chip's data
	// segments carry heavy P/E wear — a used part sold as new.
	VerdictRecycled
	// VerdictDuplicateID: the watermark is physically genuine but its die
	// identity already appeared in this procurement batch — the signature
	// of a replay-imprinted clone (or its victim).
	VerdictDuplicateID
	// VerdictInconclusive: a device fault (erase timeout, program
	// failure) interrupted the inspection before any classification could
	// be made. Not an accept — the chip goes back for a retry on
	// different equipment.
	VerdictInconclusive
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictGenuine:
		return "GENUINE"
	case VerdictNoWatermark:
		return "NO-WATERMARK"
	case VerdictRejectDie:
		return "REJECT-DIE"
	case VerdictTampered:
		return "TAMPERED"
	case VerdictWrongIdentity:
		return "WRONG-IDENTITY"
	case VerdictRecycled:
		return "RECYCLED"
	case VerdictDuplicateID:
		return "DUPLICATE-ID"
	case VerdictInconclusive:
		return "INCONCLUSIVE"
	default:
		return "INVALID"
	}
}

// Accepted reports whether an integrator should accept the chip.
func (v Verdict) Accepted() bool { return v == VerdictGenuine }

// verdictNames enumerates every valid verdict for text round-tripping.
var verdictNames = []Verdict{
	VerdictGenuine, VerdictNoWatermark, VerdictRejectDie, VerdictTampered,
	VerdictWrongIdentity, VerdictRecycled, VerdictDuplicateID, VerdictInconclusive,
}

// MarshalText renders the verdict as its canonical string (the String
// form), so verdicts serialize stably in JSON wire formats instead of as
// bare enum integers that would silently renumber.
func (v Verdict) MarshalText() ([]byte, error) {
	if v < VerdictGenuine || v > VerdictInconclusive {
		return nil, fmt.Errorf("counterfeit: cannot marshal invalid verdict %d", int(v))
	}
	return []byte(v.String()), nil
}

// UnmarshalText parses the canonical verdict string.
func (v *Verdict) UnmarshalText(text []byte) error {
	s := string(text)
	for _, cand := range verdictNames {
		if cand.String() == s {
			*v = cand
			return nil
		}
	}
	return fmt.Errorf("counterfeit: unknown verdict %q", s)
}

// ChipClass is the ground-truth provenance of a fabricated chip in a
// population experiment.
type ChipClass int

// Chip provenance classes, mirroring the counterfeiting pathways of §I.
const (
	// ClassGenuineAccept: die-sorted ACCEPT by the trusted manufacturer.
	ClassGenuineAccept ChipClass = iota
	// ClassGenuineReject: fall-out die watermarked REJECT at die sort,
	// leaked into the supply chain by a packaging-site counterfeiter.
	ClassGenuineReject
	// ClassRecycled: a genuine ACCEPT chip recovered from end-of-life
	// equipment after heavy field use and resold as new.
	ClassRecycled
	// ClassMetadataForgery: an unmarked chip on which the counterfeiter
	// programmed fake manufacturing metadata the current-practice way
	// (plain flash writes, no stress).
	ClassMetadataForgery
	// ClassDigitalClone: an unmarked chip on which the counterfeiter
	// digitally copied a genuine chip's watermark segment content.
	ClassDigitalClone
	// ClassTopUpTamper: a genuine REJECT die whose watermark the
	// counterfeiter tried to doctor by stressing additional cells
	// (the only physical direction available).
	ClassTopUpTamper
	// ClassUnmarked: an inferior third-party chip rebranded with the
	// trusted manufacturer's markings, flash untouched.
	ClassUnmarked
	// ClassReplayImprint: a fresh inferior chip on which a determined
	// counterfeiter re-ran the full imprint procedure with a bit-exact
	// copy of a genuine ACCEPT watermark (the paper's residual risk;
	// see the package documentation on limitations).
	ClassReplayImprint
)

// String renders the chip class.
func (c ChipClass) String() string {
	switch c {
	case ClassGenuineAccept:
		return "genuine-accept"
	case ClassGenuineReject:
		return "genuine-reject"
	case ClassRecycled:
		return "recycled"
	case ClassMetadataForgery:
		return "metadata-forgery"
	case ClassDigitalClone:
		return "digital-clone"
	case ClassTopUpTamper:
		return "topup-tamper"
	case ClassUnmarked:
		return "unmarked"
	case ClassReplayImprint:
		return "replay-imprint"
	default:
		return "invalid"
	}
}

// ShouldAccept reports whether an ideal verifier would accept this class.
func (c ChipClass) ShouldAccept() bool { return c == ClassGenuineAccept }
