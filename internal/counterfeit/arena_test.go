package counterfeit

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
)

func TestArenaRecyclesRefabricators(t *testing.T) {
	fabs := 0
	base := mcu.Fab(mcu.PartSmallSim())
	a := newDeviceArena(func(seed uint64) (device.Device, error) {
		fabs++
		return base(seed)
	})
	d1, err := a.Fab(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Recycle(d1)
	d2, err := a.Fab(2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d1 {
		t.Error("refabricable device was not recycled")
	}
	if fabs != 1 {
		t.Errorf("fab ran %d times, want 1", fabs)
	}
	// The recycled instance must equal a fresh fabrication with the new
	// seed.
	fresh, err := base(2)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := d2.(*mcu.Device).Save(&got); err != nil {
		t.Fatal(err)
	}
	if err := fresh.(*mcu.Device).Save(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("recycled device diverges from fresh fabrication")
	}
}

func TestArenaSkipsDecoratedDevices(t *testing.T) {
	fabs := 0
	base := mcu.Fab(mcu.PartSmallSim())
	a := newDeviceArena(func(seed uint64) (device.Device, error) {
		fabs++
		d, err := base(seed)
		if err != nil {
			return nil, err
		}
		// A decorator hides the Refabricator capability of the inner
		// value, as any wrapper with per-instance state would.
		return device.InjectFaults(d, device.FaultConfig{}), nil
	})
	d1, err := a.Fab(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Recycle(d1)
	d2, err := a.Fab(2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == d1 {
		t.Error("decorated device was pooled")
	}
	if fabs != 2 {
		t.Errorf("fab ran %d times, want 2", fabs)
	}
}

func TestNilArenaRecycleIsNoop(t *testing.T) {
	var a *deviceArena
	dev, err := mcu.Fab(mcu.PartSmallSim())(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Recycle(dev) // must not panic
}

// TestRunPopulationMatchesUnpooledFabrication pins the arena's
// correctness end to end: a population run (which recycles devices
// across jobs, including wear-heavy recycled chips) must produce
// outcomes identical to fabricating every chip from scratch.
func TestRunPopulationMatchesUnpooledFabrication(t *testing.T) {
	if testing.Short() {
		t.Skip("population run is slow")
	}
	spec := PopulationSpec{
		ClassGenuineAccept:   2,
		ClassRecycled:        1,
		ClassMetadataForgery: 1,
		ClassUnmarked:        1,
	}
	cfg := testConfig()
	mkVerifier := func() *Verifier {
		v := testVerifier()
		v.CheckRecycling = true
		return v
	}
	const seedBase = 0xA4E7A
	_, pooled, err := RunPopulationParallel(spec, cfg, mkVerifier(), seedBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := populationJobs(spec, seedBase)
	if len(pooled) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(pooled), len(jobs))
	}
	v := mkVerifier()
	for i, j := range jobs {
		dev, err := Fabricate(j.class, cfg, j.seed, j.die)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Verify(dev)
		if err != nil {
			t.Fatal(err)
		}
		want := Outcome{Class: j.class, Verdict: res.Verdict, Result: res}
		got := pooled[i]
		if got.Class != want.Class || got.Verdict != want.Verdict {
			t.Errorf("job %d (%s): verdict %s, want %s", i, j.class, got.Verdict, want.Verdict)
		}
		if fmt.Sprint(got.Result.DecodeErr) != fmt.Sprint(want.Result.DecodeErr) ||
			fmt.Sprint(got.Result.FaultErr) != fmt.Sprint(want.Result.FaultErr) {
			t.Errorf("job %d (%s): errors diverge: %v/%v vs %v/%v", i, j.class,
				got.Result.DecodeErr, got.Result.FaultErr, want.Result.DecodeErr, want.Result.FaultErr)
		}
		got.Result.DecodeErr, want.Result.DecodeErr = nil, nil
		got.Result.FaultErr, want.Result.FaultErr = nil, nil
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Errorf("job %d (%s): results diverge:\n got %+v\nwant %+v", i, j.class, got.Result, want.Result)
		}
	}
}
