package wallclock

import (
	"testing"
	"time"
)

func TestNowAdvances(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Fatalf("wall clock ran backward: %v then %v", a, b)
	}
}

func TestSinceIsNonNegative(t *testing.T) {
	start := Now()
	if d := Since(start); d < 0 {
		t.Fatalf("Since(start) = %v, want >= 0", d)
	}
	// Since must use the monotonic reading: shifting the wall component
	// of the start time far into the future still yields the elapsed
	// monotonic duration, not a huge negative value.
	if d := Since(start.Add(0)); d < 0 {
		t.Fatalf("Since with monotonic reading = %v, want >= 0", d)
	}
}

func TestSinceGrows(t *testing.T) {
	start := Now()
	time.Sleep(time.Millisecond)
	if d := Since(start); d < time.Millisecond {
		t.Fatalf("Since after 1ms sleep = %v, want >= 1ms", d)
	}
}
