// Package wallclock is the single place under internal/ that is allowed
// to read the host's real-time clock. Everything else takes a Now
// function (defaulting to wallclock.Now) through its config, so service
// deadlines, latency accounting, and enrollment timestamps are
// fixture-testable the same way device time already is through
// internal/vclock.
//
// The split matters because the repo runs two kinds of time: virtual
// device time (vclock), which experiments advance deterministically, and
// host wall time, which only the serving layer should observe. A direct
// time.Now() call in internal/ blurs that line and makes the caller
// untestable without sleeping; scripts/check_clock.sh fails CI on any
// such call outside this package and _test.go files.
package wallclock

import "time"

// Now returns the current host wall-clock time. Production configs
// default their Now field to this function; tests substitute a fake.
func Now() time.Time { return time.Now() }

// Since returns the wall time elapsed since t, measured with Now's
// monotonic reading.
func Since(t time.Time) time.Duration { return time.Since(t) }
