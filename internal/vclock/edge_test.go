package vclock

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestClockZeroAdvance(t *testing.T) {
	var c Clock
	c.Advance(0)
	if c.Now() != 0 {
		t.Fatalf("zero advance moved the clock to %v", c.Now())
	}
	c.Advance(time.Hour)
	c.Advance(0)
	if c.Now() != time.Hour {
		t.Fatalf("zero advance moved the clock to %v", c.Now())
	}
}

func TestClockAdvanceToHorizon(t *testing.T) {
	var c Clock
	// The full int64 range in one step is legal...
	c.Advance(time.Duration(math.MaxInt64))
	if c.Now() != time.Duration(math.MaxInt64) {
		t.Fatalf("clock at %v, want the horizon", c.Now())
	}
	// ...and so is holding position there.
	c.Advance(0)
	if c.Now() != time.Duration(math.MaxInt64) {
		t.Fatalf("zero advance at the horizon moved the clock to %v", c.Now())
	}
}

func TestClockOverflowPanics(t *testing.T) {
	cases := []struct {
		name  string
		start time.Duration
		step  time.Duration
	}{
		{"one past the horizon", math.MaxInt64, 1},
		{"large on large", math.MaxInt64 / 2, math.MaxInt64/2 + 2},
		{"max on one", 1, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Clock
			c.Advance(tc.start)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("overflowing advance did not panic (clock now %v)", c.Now())
				}
				if !strings.Contains(r.(string), "overflow") {
					t.Fatalf("panic for the wrong reason: %v", r)
				}
			}()
			c.Advance(tc.step)
		})
	}
}

// TestClockOverflowAdjacentSum checks the guard rejects exactly the
// first overflowing sum and accepts exactly the last legal one.
func TestClockOverflowAdjacentSum(t *testing.T) {
	var c Clock
	c.Advance(time.Duration(math.MaxInt64) - time.Nanosecond)
	c.Advance(time.Nanosecond) // lands exactly on MaxInt64: legal
	if c.Now() != time.Duration(math.MaxInt64) {
		t.Fatalf("clock at %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("advance past the horizon did not panic")
		}
	}()
	c.Advance(time.Nanosecond)
}

// TestTraceZeroDurationAtSharedInstant pins the VCD export of
// zero-duration events: the pulse is widened to 1 ns so the signal
// still blips, and two events at the same instant keep a single
// timestamp record.
func TestTraceZeroDurationAtSharedInstant(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(OpRead, 0x10, 5*time.Nanosecond, 0)
	tr.Record(OpProgram, 0x20, 5*time.Nanosecond, 0)
	var b strings.Builder
	if err := tr.WriteVCD(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "#5\n") != 1 {
		t.Errorf("shared instant emitted more than one #5 record:\n%s", out)
	}
	if !strings.Contains(out, "#6") {
		t.Errorf("zero-duration pulses were not widened to 1ns:\n%s", out)
	}
}

// TestTraceTextZeroAndHugeOffsets checks the text renderer handles a
// zero-duration event at t=0 and an event near the duration horizon.
func TestTraceTextZeroAndHugeOffsets(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(OpOverhead, -1, 0, 0)
	huge := time.Duration(math.MaxInt64) - time.Hour
	tr.Record(OpErase, 0, huge, time.Minute)
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0s") || !strings.Contains(out, huge.String()) {
		t.Errorf("unexpected text trace:\n%s", out)
	}
}
