package vclock

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceEvent is one recorded controller operation: what ran, where, when
// (virtual time), and for how long.
type TraceEvent struct {
	Class Class
	Addr  int // byte address or -1
	Start time.Duration
	Dur   time.Duration
}

// Class aliases OpClass for trace readability.
type Class = OpClass

// Trace records operation events in virtual-time order. The zero value
// is ready to use. Controllers call Record; analysis and waveform export
// read Events.
type Trace struct {
	events []TraceEvent
	limit  int
}

// NewTrace returns a trace that keeps at most limit events (0 = unlimited).
func NewTrace(limit int) *Trace { return &Trace{limit: limit} }

// Record appends one event; when the limit is reached, further events
// are dropped (Truncated reports it).
func (t *Trace) Record(class Class, addr int, start, dur time.Duration) {
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, TraceEvent{Class: class, Addr: addr, Start: start, Dur: dur})
}

// Events returns the recorded events.
func (t *Trace) Events() []TraceEvent { return t.events }

// Truncated reports whether events were dropped at the limit.
func (t *Trace) Truncated() bool { return t.limit > 0 && len(t.events) >= t.limit }

// WriteText renders the trace as a tab-like op log.
func (t *Trace) WriteText(w io.Writer) error {
	for _, e := range t.events {
		addr := "-"
		if e.Addr >= 0 {
			addr = fmt.Sprintf("%#06x", e.Addr)
		}
		if _, err := fmt.Fprintf(w, "%12v  %-14s %-8s %v\n", e.Start, e.Class, addr, e.Dur); err != nil {
			return err
		}
	}
	if t.Truncated() {
		_, err := fmt.Fprintln(w, "... trace truncated at limit")
		return err
	}
	return nil
}

// WriteVCD exports the trace as a Value Change Dump: one 1-bit signal
// per operation class, asserted for the operation's duration — loadable
// in GTKWave and friends to inspect the controller's activity timeline.
// Timescale is 1 ns.
func (t *Trace) WriteVCD(w io.Writer, module string) error {
	if module == "" {
		module = "flashctl"
	}
	// Stable class order and VCD identifier codes.
	classSet := map[Class]bool{}
	for _, e := range t.events {
		classSet[e.Class] = true
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	ids := map[string]byte{}
	for i, c := range classes {
		ids[c] = byte('!' + i)
	}

	var b strings.Builder
	b.WriteString("$timescale 1ns $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	for _, c := range classes {
		fmt.Fprintf(&b, "$var wire 1 %c %s $end\n", ids[c], sanitizeVCDName(c))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Edge list: rising at Start, falling at Start+Dur.
	type edge struct {
		at    time.Duration
		id    byte
		value byte
	}
	var edges []edge
	for _, e := range t.events {
		id := ids[string(e.Class)]
		edges = append(edges, edge{e.Start, id, '1'})
		end := e.Start + e.Dur
		if e.Dur == 0 {
			end = e.Start + time.Nanosecond
		}
		edges = append(edges, edge{end, id, '0'})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	b.WriteString("#0\n")
	for _, c := range classes {
		fmt.Fprintf(&b, "0%c\n", ids[c])
	}
	last := time.Duration(-1)
	for _, e := range edges {
		if e.at != last {
			fmt.Fprintf(&b, "#%d\n", e.at.Nanoseconds())
			last = e.at
		}
		fmt.Fprintf(&b, "%c%c\n", e.value, e.id)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeVCDName replaces characters VCD identifiers dislike.
func sanitizeVCDName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
