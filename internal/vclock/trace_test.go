package vclock

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRecordAndText(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(OpErase, 0x200, 0, 25*time.Millisecond)
	tr.Record(OpProgram, 0x200, 25*time.Millisecond, 70*time.Microsecond)
	tr.Record(OpPartialErase, -1, 26*time.Millisecond, 23*time.Microsecond)
	if len(tr.Events()) != 3 {
		t.Fatalf("events = %d", len(tr.Events()))
	}
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"erase", "program", "partial-erase", "0x000200", "25ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("text trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceLimit(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Record(OpRead, i, time.Duration(i), time.Microsecond)
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d, want limit 2", len(tr.Events()))
	}
	if !tr.Truncated() {
		t.Error("Truncated should report drop")
	}
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "truncated") {
		t.Error("text should mention truncation")
	}
}

func TestTraceVCD(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(OpErase, 0, 0, 2*time.Microsecond)
	tr.Record(OpProgram, 0, 3*time.Microsecond, time.Microsecond)
	var b strings.Builder
	if err := tr.WriteVCD(&b, "flash"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module flash $end",
		"$var wire 1 ! erase $end",
		"$enddefinitions $end",
		"#0",
		"1!",
		"#2000",
		"0!",
		"#3000",
		"#4000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestTraceVCDZeroDuration(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(OpRead, 0, time.Microsecond, 0)
	var b strings.Builder
	if err := tr.WriteVCD(&b, ""); err != nil {
		t.Fatal(err)
	}
	// Zero-duration events still produce a visible 1ns pulse.
	if !strings.Contains(b.String(), "#1001") {
		t.Errorf("zero-duration pulse missing:\n%s", b.String())
	}
}

func TestSanitizeVCDName(t *testing.T) {
	if got := sanitizeVCDName("partial-erase"); got != "partial_erase" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeVCDName("host-io"); got != "host_io" {
		t.Errorf("sanitize = %q", got)
	}
}
