// Package vclock implements the simulated time substrate.
//
// The paper's §V reports imprint and extract times measured on real
// hardware (segment erase ≈ 23–35 ms, word program ≈ 64–85 µs, a 40 K-cycle
// imprint ≈ 1380 s baseline). In the simulator those numbers are integrals
// of controller operation timings rather than wall-clock measurements, so
// time is virtual: the flash controller advances a Clock, and a Ledger
// attributes the elapsed virtual time to operation classes (erase, program,
// read, overhead) so the timing experiments can report the same breakdowns
// the paper does.
package vclock

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Clock is simulated time. The zero value is a clock at t=0, ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves virtual time forward by d. Negative advances are a
// programming error and panic: simulated hardware time never runs backward.
// Advances that would overflow the int64 nanosecond counter panic too —
// silent wraparound would send time backward, the same invariant violation.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	if c.now > math.MaxInt64-d {
		panic(fmt.Sprintf("vclock: advance %v overflows clock at %v", d, c.now))
	}
	c.now += d
}

// Reset rewinds the clock to zero (for reusing a device across experiments).
func (c *Clock) Reset() { c.now = 0 }

// OpClass labels the kind of flash operation consuming time, so timing
// reports can be broken down the way the paper's §V discussion is.
type OpClass string

// Operation classes used by the flash controller.
const (
	OpErase        OpClass = "erase"         // full segment/mass erase
	OpPartialErase OpClass = "partial-erase" // erase aborted by emergency exit
	OpProgram      OpClass = "program"       // word/byte program
	OpRead         OpClass = "read"          // array reads
	OpOverhead     OpClass = "overhead"      // controller setup/teardown
)

// Ledger accumulates virtual time per operation class. The zero value is
// an empty ledger ready to use.
type Ledger struct {
	byClass map[OpClass]time.Duration
	byCount map[OpClass]int
}

// Charge attributes duration d to class c and returns d so callers can
// charge and advance in one expression.
func (l *Ledger) Charge(c OpClass, d time.Duration) time.Duration {
	if l.byClass == nil {
		l.byClass = make(map[OpClass]time.Duration)
		l.byCount = make(map[OpClass]int)
	}
	l.byClass[c] += d
	l.byCount[c]++
	return d
}

// Of returns the accumulated time of class c.
func (l *Ledger) Of(c OpClass) time.Duration { return l.byClass[c] }

// CountOf returns how many operations of class c were charged.
func (l *Ledger) CountOf(c OpClass) int { return l.byCount[c] }

// Total returns the sum across all classes.
func (l *Ledger) Total() time.Duration {
	var t time.Duration
	for _, d := range l.byClass {
		t += d
	}
	return t
}

// Reset clears all accumulated charges.
func (l *Ledger) Reset() {
	l.byClass = nil
	l.byCount = nil
}

// Snapshot returns a copy of the ledger's per-class totals.
func (l *Ledger) Snapshot() map[OpClass]time.Duration {
	out := make(map[OpClass]time.Duration, len(l.byClass))
	for c, d := range l.byClass {
		out[c] = d
	}
	return out
}

// Sub returns a ledger-like map holding the difference between the current
// state and an earlier snapshot: the time spent since the snapshot.
func (l *Ledger) Sub(earlier map[OpClass]time.Duration) map[OpClass]time.Duration {
	out := make(map[OpClass]time.Duration)
	for c, d := range l.byClass {
		if diff := d - earlier[c]; diff != 0 {
			out[c] = diff
		}
	}
	return out
}

// String renders the ledger as "class=duration" pairs in stable order.
func (l *Ledger) String() string {
	classes := make([]string, 0, len(l.byClass))
	for c := range l.byClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%v(n=%d)", c, l.byClass[OpClass(c)], l.byCount[OpClass(c)]))
	}
	return strings.Join(parts, " ")
}
