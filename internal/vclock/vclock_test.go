package vclock

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should start at 0")
	}
	c.Advance(25 * time.Millisecond)
	c.Advance(64 * time.Microsecond)
	want := 25*time.Millisecond + 64*time.Microsecond
	if c.Now() != want {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Nanosecond)
}

func TestLedgerChargeAndTotals(t *testing.T) {
	var l Ledger
	l.Charge(OpErase, 25*time.Millisecond)
	l.Charge(OpErase, 25*time.Millisecond)
	l.Charge(OpProgram, 70*time.Microsecond)
	if got := l.Of(OpErase); got != 50*time.Millisecond {
		t.Errorf("erase total = %v", got)
	}
	if got := l.CountOf(OpErase); got != 2 {
		t.Errorf("erase count = %d", got)
	}
	if got := l.Of(OpProgram); got != 70*time.Microsecond {
		t.Errorf("program total = %v", got)
	}
	if got := l.Total(); got != 50*time.Millisecond+70*time.Microsecond {
		t.Errorf("Total = %v", got)
	}
	if got := l.Of(OpRead); got != 0 {
		t.Errorf("uncharged class should be 0, got %v", got)
	}
}

func TestLedgerChargeReturnsDuration(t *testing.T) {
	var l Ledger
	if d := l.Charge(OpRead, 5*time.Microsecond); d != 5*time.Microsecond {
		t.Fatalf("Charge returned %v", d)
	}
}

func TestLedgerReset(t *testing.T) {
	var l Ledger
	l.Charge(OpRead, time.Second)
	l.Reset()
	if l.Total() != 0 || l.CountOf(OpRead) != 0 {
		t.Fatal("Reset did not clear ledger")
	}
}

func TestLedgerSnapshotSub(t *testing.T) {
	var l Ledger
	l.Charge(OpErase, 10*time.Millisecond)
	snap := l.Snapshot()
	l.Charge(OpErase, 5*time.Millisecond)
	l.Charge(OpProgram, 1*time.Millisecond)
	diff := l.Sub(snap)
	if diff[OpErase] != 5*time.Millisecond {
		t.Errorf("erase diff = %v", diff[OpErase])
	}
	if diff[OpProgram] != 1*time.Millisecond {
		t.Errorf("program diff = %v", diff[OpProgram])
	}
	if _, ok := diff[OpRead]; ok {
		t.Error("unchanged class should be absent from diff")
	}
	// Snapshot must be a copy, not a view.
	snap[OpErase] = 0
	if l.Of(OpErase) != 15*time.Millisecond {
		t.Error("mutating snapshot affected ledger")
	}
}

func TestLedgerString(t *testing.T) {
	var l Ledger
	l.Charge(OpProgram, time.Millisecond)
	l.Charge(OpErase, time.Second)
	s := l.String()
	if !strings.Contains(s, "erase=1s(n=1)") || !strings.Contains(s, "program=1ms(n=1)") {
		t.Errorf("String = %q", s)
	}
	// Stable order: erase before program.
	if strings.Index(s, "erase") > strings.Index(s, "program") {
		t.Errorf("String not sorted: %q", s)
	}
}

// Property: Total equals the sum of individual charges.
func TestQuickLedgerConservation(t *testing.T) {
	f := func(eraseMs, progUs, readNs []uint16) bool {
		var l Ledger
		var want time.Duration
		for _, v := range eraseMs {
			d := time.Duration(v) * time.Millisecond
			l.Charge(OpErase, d)
			want += d
		}
		for _, v := range progUs {
			d := time.Duration(v) * time.Microsecond
			l.Charge(OpProgram, d)
			want += d
		}
		for _, v := range readNs {
			d := time.Duration(v) * time.Nanosecond
			l.Charge(OpRead, d)
			want += d
		}
		return l.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
