package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
)

func decodeEnrollReport(t *testing.T, resp *http.Response) EnrollReport {
	t.Helper()
	defer resp.Body.Close()
	var rep EnrollReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEnrollWithoutRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postChip(t, ts.URL+"/v1/enroll", chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 1001))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("enroll without registry: status %d, want 501", resp.StatusCode)
	}
}

func TestEnrollRejectsNonGenuine(t *testing.T) {
	_, ts := newTestServer(t, Config{Provenance: registry.NewMemory(0)})
	resp := postChip(t, ts.URL+"/v1/enroll", chipBytes(t, counterfeit.ClassUnmarked, 0xA2, 1002))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("enroll of unmarked chip: status %d, want 422", resp.StatusCode)
	}
}

func TestEnrollAndEscalate(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{Provenance: store})
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 1001)
	// Same signed identity (die 1001) on a different physical die: the
	// replay-imprint clone scenario. Physics alone calls both GENUINE.
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xB7, 1001)

	resp := postChip(t, ts.URL+"/v1/enroll?source=line-a", genuine)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enroll: status %d", resp.StatusCode)
	}
	er := decodeEnrollReport(t, resp)
	if er.Verdict != "GENUINE" || !er.Accepted || er.Count != 1 || er.Duplicate || er.Conflict {
		t.Fatalf("first enrollment: %+v", er)
	}
	if er.DieID != 1001 || er.Fingerprint == "" {
		t.Fatalf("enrollment identity: %+v", er)
	}

	// Re-enrolling the same physical chip is a duplicate, not a conflict.
	er = decodeEnrollReport(t, postChip(t, ts.URL+"/v1/enroll", genuine))
	if !er.Duplicate || er.Conflict || !er.Accepted || er.Count != 2 {
		t.Fatalf("re-enrollment of same chip: %+v", er)
	}

	// The enrolled chip itself re-verifies clean.
	rep := decodeReport(t, postChip(t, ts.URL+"/v1/verify", genuine))
	if rep.Verdict != "GENUINE" || rep.Provenance != "" {
		t.Fatalf("enrolled chip re-verify: %+v", rep)
	}

	// The clone is escalated: physics-GENUINE, but its die id is on
	// file under a different fingerprint.
	rep = decodeReport(t, postChip(t, ts.URL+"/v1/verify", clone))
	if rep.Verdict != "DUPLICATE-ID" || rep.Accepted {
		t.Fatalf("clone verify: %+v", rep)
	}
	if rep.Provenance == "" {
		t.Fatal("escalated report must carry the provenance reason")
	}

	// Enrolling the clone makes the identity conflicted — and the taint
	// retroactively catches the original holder too.
	er = decodeEnrollReport(t, postChip(t, ts.URL+"/v1/enroll", clone))
	if !er.Conflict || er.Accepted || er.Verdict != "DUPLICATE-ID" {
		t.Fatalf("clone enrollment: %+v", er)
	}
	rep = decodeReport(t, postChip(t, ts.URL+"/v1/verify", genuine))
	if rep.Verdict != "DUPLICATE-ID" {
		t.Fatalf("victim after conflict: %+v", rep)
	}

	vars := metricsVars(t, ts.URL)
	if got := counterValue(t, vars, "fmverifyd_enroll_total"); got != 3 {
		t.Fatalf("enroll_total %d, want 3", got)
	}
	if got := counterValue(t, vars, "fmverifyd_enroll_conflicts_total"); got != 1 {
		t.Fatalf("enroll_conflicts_total %d, want 1", got)
	}
	if got := counterValue(t, vars, "fmverifyd_provenance_escalations_total"); got != 2 {
		t.Fatalf("escalations %d, want 2 (clone verify + victim verify)", got)
	}
	if got := counterValue(t, vars, "fmregistry_keys"); got != 1 {
		t.Fatalf("fmregistry_keys %d, want 1", got)
	}
	if got := counterValue(t, vars, "fmregistry_conflicts"); got != 1 {
		t.Fatalf("fmregistry_conflicts %d, want 1", got)
	}
}

// TestEscalationNotCached pins the cache/provenance layering: the cache
// stores the physics verdict, so an escalation reflects live registry
// state even when the chip bytes are cache-hits.
func TestEscalationNotCached(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{Provenance: store})
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xB7, 2002)

	// First sight: registry is empty, the chip passes and is cached.
	rep := decodeReport(t, postChip(t, ts.URL+"/v1/verify", clone))
	if rep.Verdict != "GENUINE" {
		t.Fatalf("pre-enrollment verify: %+v", rep)
	}
	// Another physical chip enrolls the same id directly into the store.
	if _, err := store.Enroll(registry.Enrollment{
		Key:         registry.Key{Manufacturer: rep.Payload.Manufacturer, DieID: rep.Payload.DieID},
		Fingerprint: registry.DeviceFingerprint("other-part", 999),
		Source:      "line-b",
	}); err != nil {
		t.Fatal(err)
	}
	// The same bytes now escalate despite the cache hit.
	resp := postChip(t, ts.URL+"/v1/verify", clone)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("expected a cache hit, got %q", resp.Header.Get("X-Cache"))
	}
	rep = decodeReport(t, resp)
	if rep.Verdict != "DUPLICATE-ID" || rep.Provenance == "" {
		t.Fatalf("cache-hit escalation: %+v", rep)
	}
}

// TestDurableRestartDetection is the acceptance scenario: a duplicate
// die id enrolled in one fmverifyd process lifetime is detected in the
// next one — the registry survives restart.
func TestDurableRestartDetection(t *testing.T) {
	dir := t.TempDir()
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 3003)
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xC9, 3003)

	store1, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Provenance: store1})
	er := decodeEnrollReport(t, postChip(t, ts1.URL+"/v1/enroll", genuine))
	if !er.Accepted {
		t.Fatalf("enrollment in first lifetime: %+v", er)
	}
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process lifetime: same directory, fresh store and server.
	store2, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	_, ts2 := newTestServer(t, Config{Provenance: store2})
	rep := decodeReport(t, postChip(t, ts2.URL+"/v1/verify", clone))
	if rep.Verdict != "DUPLICATE-ID" || rep.Accepted {
		t.Fatalf("clone after restart: %+v", rep)
	}
	// The enrolled original still verifies clean after recovery.
	rep = decodeReport(t, postChip(t, ts2.URL+"/v1/verify", genuine))
	if rep.Verdict != "GENUINE" {
		t.Fatalf("original after restart: %+v", rep)
	}
}

// TestBatchProvenanceDeterministic pins batch semantics: cross-item
// duplicate detection with retroactive taint, retry-safety for
// identical bytes, and byte-identical responses across repeated posts.
func TestBatchProvenanceDeterministic(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{Provenance: store, BatchWorkers: 4})
	chipA := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 4004) // victim
	cloneA := chipBytes(t, counterfeit.ClassGenuineAccept, 0xD2, 4004)
	chipB := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA3, 4005) // clean
	unmarked := chipBytes(t, counterfeit.ClassUnmarked, 0xA4, 4006)

	mkBatch := func(chips ...[]byte) []byte {
		req := BatchRequest{}
		for _, c := range chips {
			req.Chips = append(req.Chips, json.RawMessage(c))
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// A batch of pure retries must not escalate: same bytes, same
	// fingerprint, no conflict.
	resp := postChip(t, ts.URL+"/v1/verify/batch", mkBatch(chipB, chipB))
	raw := readAll(t, resp)
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Summary.Accepted != 2 || br.Summary.Verdicts["DUPLICATE-ID"] != 0 {
		t.Fatalf("retry batch summary: %+v", br.Summary)
	}

	// Victim first, clone later: the post-pass retroactively taints the
	// victim even though it was screened first.
	batch := mkBatch(chipA, chipB, unmarked, cloneA)
	resp = postChip(t, ts.URL+"/v1/verify/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	first := readAll(t, resp)
	if err := json.Unmarshal(first, &br); err != nil {
		t.Fatal(err)
	}
	if br.Summary.Chips != 4 || br.Summary.Failed != 0 {
		t.Fatalf("batch summary: %+v", br.Summary)
	}
	if br.Summary.Verdicts["DUPLICATE-ID"] != 2 {
		t.Fatalf("duplicate verdicts %d, want 2 (victim and clone): %+v",
			br.Summary.Verdicts["DUPLICATE-ID"], br.Summary)
	}
	if br.Summary.Accepted != 1 {
		t.Fatalf("accepted %d, want 1 (only the clean chip): %+v", br.Summary.Accepted, br.Summary)
	}
	for _, idx := range []int{0, 3} {
		var rep ChipReport
		if err := json.Unmarshal(br.Results[idx], &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != "DUPLICATE-ID" || rep.Provenance == "" {
			t.Fatalf("result %d not escalated: %+v", idx, rep)
		}
	}

	// Determinism: the same batch again — now fully cache-hot and with
	// possibly different fan-out scheduling — must produce exactly the
	// same bytes.
	for i := 0; i < 3; i++ {
		again := readAll(t, postChip(t, ts.URL+"/v1/verify/batch", batch))
		if !bytes.Equal(first, again) {
			t.Fatalf("batch response %d not byte-identical:\n%s\nvs\n%s", i, first, again)
		}
	}
}

// TestBatchFleetEscalation pins the fleet half of the batch post-pass:
// an id enrolled outside the batch escalates batch members bearing it.
func TestBatchFleetEscalation(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{Provenance: store})
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 5005)
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xE4, 5005)

	if resp := postChip(t, ts.URL+"/v1/enroll", genuine); resp.StatusCode != http.StatusOK {
		t.Fatalf("enroll status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	body, err := json.Marshal(BatchRequest{Chips: []json.RawMessage{clone}})
	if err != nil {
		t.Fatal(err)
	}
	resp := postChip(t, ts.URL+"/v1/verify/batch", body)
	var br BatchResponse
	if err := json.Unmarshal(readAll(t, resp), &br); err != nil {
		t.Fatal(err)
	}
	var rep ChipReport
	if err := json.Unmarshal(br.Results[0], &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "DUPLICATE-ID" {
		t.Fatalf("fleet escalation in batch: %+v", rep)
	}
}

// TestProvenanceOffIsUnchanged guards the default path: without a
// registry, duplicate ids inside one batch pass exactly as before.
func TestProvenanceOffIsUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	chipA := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 6006)
	cloneA := chipBytes(t, counterfeit.ClassGenuineAccept, 0xF5, 6006)
	body, err := json.Marshal(BatchRequest{Chips: []json.RawMessage{chipA, cloneA}})
	if err != nil {
		t.Fatal(err)
	}
	resp := postChip(t, ts.URL+"/v1/verify/batch", body)
	var br BatchResponse
	if err := json.Unmarshal(readAll(t, resp), &br); err != nil {
		t.Fatal(err)
	}
	if br.Summary.Accepted != 2 {
		t.Fatalf("without a registry both chips pass physics: %+v", br.Summary)
	}
}

// TestEnrollSourceLabel pins that the ?source= label lands in the store.
func TestEnrollSourceLabel(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{Provenance: store})
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 7007)
	er := decodeEnrollReport(t, postChip(t, ts.URL+"/v1/enroll?source=station-9", genuine))
	if !er.Accepted {
		t.Fatalf("enroll: %+v", er)
	}
	lr, ok := store.Lookup(registry.Key{Manufacturer: er.Manufacturer, DieID: er.DieID})
	if !ok {
		t.Fatal("enrollment not in store")
	}
	if lr.First.Source != "station-9" {
		t.Fatalf("source %q, want station-9", lr.First.Source)
	}
	if lr.First.UnixMicro == 0 {
		t.Fatal("enrollment timestamp not stamped")
	}
	if fmt.Sprintf("%x", lr.Fingerprint[:8]) != er.Fingerprint[:16] {
		t.Fatalf("fingerprint mismatch: store %s, report %s", lr.Fingerprint, er.Fingerprint)
	}
}
