package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/registry"
)

func decodeChallengeReport(t *testing.T, resp *http.Response) ChallengeReport {
	t.Helper()
	defer resp.Body.Close()
	var rep ChallengeReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestChallengeRequiresRegistry(t *testing.T) {
	_, err := New(Config{Verifier: testVerifier(), Challenge: &challenge.Policy{}})
	if err == nil {
		t.Fatal("a challenge plane without a registry was accepted")
	}
	_, err = New(Config{
		Verifier:   testVerifier(),
		Provenance: registry.NewMemory(0),
		Challenge:  &challenge.Policy{Reads: 4},
	})
	if err == nil {
		t.Fatal("an invalid challenge policy was accepted")
	}
}

func TestChallengeWithoutPlane(t *testing.T) {
	_, ts := newTestServer(t, Config{Provenance: registry.NewMemory(0)})
	resp := postChip(t, ts.URL+"/v1/challenge", chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 1001))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("challenge without plane: status %d, want 501", resp.StatusCode)
	}
}

func TestChallengeRejectsNonGenuine(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Provenance: registry.NewMemory(0),
		Challenge:  &challenge.Policy{},
	})
	resp := postChip(t, ts.URL+"/v1/challenge", chipBytes(t, counterfeit.ClassUnmarked, 0xA2, 1002))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("challenge of unmarked chip: status %d, want 422", resp.StatusCode)
	}
	resp = postChip(t, ts.URL+"/v1/challenge", []byte("not a chip"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("challenge of garbage: status %d, want 400", resp.StatusCode)
	}
}

// TestChallengeCatchesCloneAfterPhysicsPass is the acceptance scenario
// for the second identity axis: in the honest-hardware regime (no
// simulator fingerprints in the registry), a replay clone of an
// enrolled chip passes /v1/verify — and is then escalated by
// /v1/challenge, because its die answers the challenge with its own
// process variation, not the victim's.
func TestChallengeCatchesCloneAfterPhysicsPass(t *testing.T) {
	store := registry.NewMemory(0)
	_, ts := newTestServer(t, Config{
		Provenance:            store,
		Challenge:             &challenge.Policy{},
		OmitDeviceFingerprint: true,
	})
	victim := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 8001)
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xB7, 8001)
	stranger := chipBytes(t, counterfeit.ClassGenuineAccept, 0xC3, 8002)

	er := decodeEnrollReport(t, postChip(t, ts.URL+"/v1/enroll?source=line-a", victim))
	if !er.Accepted || er.Conflict || er.ChallengeConflict {
		t.Fatalf("victim enrollment: %+v", er)
	}
	if er.ChallengeFingerprint == "" {
		t.Fatal("enrollment with a challenge plane must report the response fingerprint")
	}

	// The physics axis clears the clone: zero fingerprints never
	// conflict, so the registry has nothing to escalate on.
	rep := decodeReport(t, postChip(t, ts.URL+"/v1/verify", clone))
	if rep.Verdict != "GENUINE" {
		t.Fatalf("clone physics verify: %+v", rep)
	}

	// The challenge axis catches it.
	cr := decodeChallengeReport(t, postChip(t, ts.URL+"/v1/challenge", clone))
	if cr.Verdict != "DUPLICATE-ID" || cr.Accepted || !cr.Enrolled || cr.Match {
		t.Fatalf("clone challenge: %+v", cr)
	}
	if cr.Provenance == "" {
		t.Fatal("escalated challenge report must carry the provenance reason")
	}
	if cr.DieID != 8001 || cr.Bits == 0 || cr.Fingerprint == "" {
		t.Fatalf("challenge report identity: %+v", cr)
	}

	// The victim itself reproduces its enrolled response.
	cr = decodeChallengeReport(t, postChip(t, ts.URL+"/v1/challenge", victim))
	if cr.Verdict != "GENUINE" || !cr.Accepted || !cr.Enrolled || !cr.Match {
		t.Fatalf("victim challenge: %+v", cr)
	}

	// A genuine chip never enrolled answers GENUINE with enrolled=false.
	cr = decodeChallengeReport(t, postChip(t, ts.URL+"/v1/challenge", stranger))
	if cr.Verdict != "GENUINE" || cr.Enrolled || cr.Match {
		t.Fatalf("unenrolled challenge: %+v", cr)
	}

	// Enrolling the clone conflicts on the challenge axis alone.
	er = decodeEnrollReport(t, postChip(t, ts.URL+"/v1/enroll", clone))
	if !er.ChallengeConflict || er.Conflict || er.Accepted || er.Verdict != "DUPLICATE-ID" {
		t.Fatalf("clone enrollment: %+v", er)
	}

	vars := metricsVars(t, ts.URL)
	for name, want := range map[string]int{
		"fmverifyd_challenge_total":            3,
		"fmverifyd_challenge_matches_total":    1,
		"fmverifyd_challenge_mismatches_total": 1,
		"fmverifyd_challenge_unenrolled_total": 1,
		"fmverifyd_enroll_conflicts_total":     1,
	} {
		if got := counterValue(t, vars, name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if got := counterValue(t, vars, "fmverifyd_provenance_escalations_total"); got != 1 {
		t.Fatalf("escalations = %d, want 1 (the challenge mismatch)", got)
	}
}

// TestChallengeAdmissionAndDrain pins that /v1/challenge rides the same
// admission gate and drain machinery as /v1/verify: a saturated gate
// answers 429 with Retry-After, and a draining server refuses with 503
// while letting the in-flight challenge finish.
func TestChallengeAdmissionAndDrain(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:      1,
		QueueDepth:   -1,
		CacheEntries: -1,
		Provenance:   registry.NewMemory(0),
		Challenge:    &challenge.Policy{},
		Decorate: func(d device.Device) device.Device {
			return &blockingDevice{Device: d, gate: gate}
		},
	})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xF1, 8501)

	var wg sync.WaitGroup
	wg.Add(1)
	code := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/challenge", "application/json", bytes.NewReader(chip))
		if err != nil {
			code <- -1
			return
		}
		resp.Body.Close()
		code <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.gate.pending.Load() == 1 })

	resp := postChip(t, ts.URL+"/v1/challenge", chip)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	waitFor(t, srv.Draining)
	resp = postChip(t, ts.URL+"/v1/challenge", chip)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("challenge during drain: %d, want 503", resp.StatusCode)
	}

	close(gate)
	wg.Wait()
	if got := <-code; got != http.StatusOK {
		t.Fatalf("in-flight challenge dropped with status %d", got)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain under load failed: %v", err)
	}
}

// TestClusterChallengeByteIdentical pins the distributed face of the
// challenge plane: enrollment and challenge served through a sharded
// cluster registry answer byte-for-byte what a single local registry
// answers — the derived challenge keys ride the shard ring like any
// other key.
func TestClusterChallengeByteIdentical(t *testing.T) {
	pol := &challenge.Policy{}
	localCfg := Config{
		Provenance:            registry.NewMemory(0),
		Challenge:             pol,
		OmitDeviceFingerprint: true,
	}
	_, localTS := newTestServer(t, localCfg)

	clusterClient, err := cluster.NewClient(
		[]cluster.ShardSpec{{Primary: startShard(t)}, {Primary: startShard(t)}},
		cluster.ClientOptions{Timeout: 2 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterClient.Close() })
	clusterCfg := localCfg
	clusterCfg.Provenance = clusterClient
	_, clusterTS := newTestServer(t, clusterCfg)

	victim := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 9001)
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xE2, 9001)

	for _, url := range []string{localTS.URL, clusterTS.URL} {
		resp := postChip(t, url+"/v1/enroll?source=line-a", victim)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("enroll via %s: status %d", url, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The clone passes physics verification on both planes, then is
	// escalated by the challenge on both, byte-identically.
	for _, chip := range [][]byte{clone, victim} {
		localVerify := readAll(t, postChip(t, localTS.URL+"/v1/verify", chip))
		clusterVerify := readAll(t, postChip(t, clusterTS.URL+"/v1/verify", chip))
		if !bytes.Equal(localVerify, clusterVerify) {
			t.Fatalf("verify diverged:\nlocal:   %s\ncluster: %s", localVerify, clusterVerify)
		}
		localCh := readAll(t, postChip(t, localTS.URL+"/v1/challenge", chip))
		clusterCh := readAll(t, postChip(t, clusterTS.URL+"/v1/challenge", chip))
		if !bytes.Equal(localCh, clusterCh) {
			t.Fatalf("challenge diverged:\nlocal:   %s\ncluster: %s", localCh, clusterCh)
		}
	}

	var cr ChallengeReport
	if err := json.Unmarshal(readAll(t, postChip(t, clusterTS.URL+"/v1/challenge", clone)), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Verdict != "DUPLICATE-ID" || cr.Match {
		t.Fatalf("clone challenge through the cluster: %+v", cr)
	}
	if err := json.Unmarshal(readAll(t, postChip(t, clusterTS.URL+"/v1/challenge", victim)), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Verdict != "GENUINE" || !cr.Match {
		t.Fatalf("victim challenge through the cluster: %+v", cr)
	}
}
