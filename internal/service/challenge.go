package service

// The challenge-response plane: the second, independent physical-identity
// axis. Physics verification reads the watermark the factory imprinted;
// the challenge interrogation (internal/challenge) measures which cells
// of a probe segment switch fast under a self-calibrated partial erase —
// process variation no imprint procedure transfers. With Config.Challenge
// set:
//
//   - POST /v1/enroll additionally interrogates the chip and records the
//     response fingerprint in the registry, keyed beside the identity.
//   - POST /v1/challenge screens a chip (it must verify GENUINE),
//     re-interrogates it, and compares against the enrolled response
//     fingerprint: a mismatch escalates to DUPLICATE-ID even when the
//     physics verdict and the fleet registry both cleared the chip.
//
// The response fingerprints live in the same registry as the physical
// identities, under a reserved key prefix, so they replicate and shard
// through the cluster plane unchanged and the single-node and sharded
// answers stay byte-identical.

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
)

// ChallengeReport is the response body of POST /v1/challenge.
type ChallengeReport struct {
	SHA256       string `json:"sha256"`
	Manufacturer string `json:"manufacturer"`
	DieID        uint64 `json:"dieId"`
	// Nonce/Segment/PulseUs/Ones/Bits echo the interrogation (see
	// challenge.Response).
	Nonce   uint64  `json:"nonce"`
	Segment int     `json:"segment"`
	PulseUs float64 `json:"pulseUs"`
	Ones    int     `json:"ones"`
	Bits    int     `json:"bits"`
	// Fingerprint is this chip's response fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Enrolled reports whether the registry held a response fingerprint
	// for this identity; Match whether this chip reproduced it.
	Enrolled bool `json:"enrolled"`
	Match    bool `json:"match"`
	// Verdict is GENUINE when the challenge matched (or no enrollment
	// exists to compare against), DUPLICATE-ID on a mismatch.
	Verdict  string `json:"verdict"`
	Accepted bool   `json:"accepted"`
	// Provenance explains an escalation.
	Provenance   string `json:"provenance,omitempty"`
	DeviceTimeUs int64  `json:"deviceTimeUs"`
}

// challengeKeyPrefix reserves a registry namespace for challenge
// fingerprints. The NUL bytes cannot appear in a decoded watermark
// manufacturer (payload strings are printable), so derived keys never
// collide with physical-identity keys.
const challengeKeyPrefix = "\x00crp\x00"

// challengeKey derives the registry key a chip identity's challenge
// fingerprint is stored under. It rides the same Store interface —
// WAL, replication, and shard routing apply unchanged.
func challengeKey(k registry.Key) registry.Key {
	return registry.Key{Manufacturer: challengeKeyPrefix + k.Manufacturer, DieID: k.DieID}
}

// Escalation reasons for the challenge axis. Shared constants keep the
// single-node and cluster response bodies byte-identical.
const (
	challengeMismatchReason = "chip answered the challenge with a different response fingerprint than enrolled for this die id"
	challengeConflictReason = "challenge fingerprint for this die id is conflicted in the fleet registry"
)

// interrogateRaw loads a fresh device from the posted chip bytes and
// runs the configured challenge interrogation on it. The device is
// rebuilt per call (interrogation destroys the probe segment's content,
// and pooled loader storage must not outlive the call).
func (s *Server) interrogateRaw(raw []byte) (challenge.Response, int64, *httpError) {
	ld := s.loaders.Get().(*chipLoader)
	defer s.loaders.Put(ld)
	dev, err := ld.load(raw)
	if err != nil {
		return challenge.Response{}, 0, &httpError{http.StatusBadRequest, err.Error()}
	}
	if s.cfg.Decorate != nil {
		dev = s.cfg.Decorate(dev)
	}
	resp, err := challenge.Interrogate(dev, *s.cfg.Challenge)
	if err != nil {
		return challenge.Response{}, 0, &httpError{http.StatusUnprocessableEntity,
			"challenge interrogation failed: " + err.Error()}
	}
	return resp, dev.Clock().Now().Microseconds(), nil
}

// enrollChallenge records a chip's challenge-response fingerprint
// beside its enrolled identity. Returns the interrogation and whether
// the registry now holds conflicting response fingerprints for the id
// (a different physical chip enrolled the same identity earlier).
func (s *Server) enrollChallenge(k registry.Key, source string, raw []byte) (challenge.Response, registry.EnrollResult, *httpError) {
	resp, _, herr := s.interrogateRaw(raw)
	if herr != nil {
		return challenge.Response{}, registry.EnrollResult{}, herr
	}
	res, err := s.cfg.Provenance.Enroll(registry.Enrollment{
		Key:         challengeKey(k),
		Fingerprint: resp.Fingerprint,
		Source:      source,
		UnixMicro:   s.cfg.Now().UnixMicro(),
	})
	if err != nil {
		return challenge.Response{}, registry.EnrollResult{},
			&httpError{http.StatusInternalServerError, "challenge enrollment failed: " + err.Error()}
	}
	return resp, res, nil
}

// handleChallenge answers POST /v1/challenge: screen the chip (only a
// physics-GENUINE chip is worth challenging), interrogate it, and judge
// the response against the enrolled fingerprint.
func (s *Server) handleChallenge(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a chip file body")
		return
	}
	if s.cfg.Challenge == nil {
		s.met.errors.Inc()
		writeError(w, http.StatusNotImplemented, "no challenge-response plane configured (start fmverifyd with -challenge)")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, releaseBody, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	defer releaseBody()
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if err == errOverloaded {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	_, rep, verdict, _, herr := s.screenCached(ctx, chipKey(raw), raw)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	k, _, ok := chipIdentity(&rep)
	if !ok {
		s.countChip(verdict)
		s.met.errors.Inc()
		writeError(w, http.StatusUnprocessableEntity,
			"only chips that verify GENUINE can be challenged; this chip screened "+rep.Verdict)
		return
	}
	resp, devUs, herr := s.interrogateRaw(raw)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	s.met.challenges.Inc()
	out := ChallengeReport{
		SHA256:       rep.SHA256,
		Manufacturer: k.Manufacturer,
		DieID:        k.DieID,
		Nonce:        resp.Nonce,
		Segment:      resp.Segment,
		PulseUs:      resp.PulseUs,
		Ones:         resp.Ones,
		Bits:         resp.Bits,
		Fingerprint:  resp.Fingerprint.String(),
		Verdict:      counterfeit.VerdictGenuine.String(),
		Accepted:     true,
		DeviceTimeUs: devUs,
	}
	lr, found := s.cfg.Provenance.Lookup(challengeKey(k))
	switch {
	case !found || lr.Fingerprint.IsZero() && !lr.Conflict:
		s.met.challengeUnenrolled.Inc()
	case lr.Conflict:
		out.Enrolled = true
		s.met.challengeMismatches.Inc()
		s.met.escalations.Inc()
		out.Verdict = counterfeit.VerdictDuplicateID.String()
		out.Accepted = false
		out.Provenance = challengeConflictReason
	case lr.Fingerprint == resp.Fingerprint:
		out.Enrolled = true
		out.Match = true
		s.met.challengeMatches.Inc()
	default:
		out.Enrolled = true
		s.met.challengeMismatches.Inc()
		s.met.escalations.Inc()
		out.Verdict = counterfeit.VerdictDuplicateID.String()
		out.Accepted = false
		out.Provenance = challengeMismatchReason
	}
	if out.Accepted {
		s.countChip(counterfeit.VerdictGenuine)
	} else {
		s.countChip(counterfeit.VerdictDuplicateID)
	}
	body, merr := json.Marshal(out)
	if merr != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "encoding report: "+merr.Error())
		return
	}
	s.logf("challenge %s/%d (%s) -> %s (enrolled=%v match=%v) in %v",
		k.Manufacturer, k.DieID, rep.SHA256[:12], out.Verdict, out.Enrolled, out.Match,
		s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, body)
}
