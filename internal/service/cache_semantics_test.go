package service

import (
	"container/list"
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/registry"
)

// TestCacheHitBypassesAdmission pins the handler ordering: a cache hit
// is served before the admission gate, so a saturated verification
// queue (Workers=1, QueueDepth=0, worker wedged) still answers known
// chips while refusing unknown ones with 429.
func TestCacheHitBypassesAdmission(t *testing.T) {
	var blocking atomic.Bool
	entered := make(chan struct{})
	block := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: -1,
		Decorate: func(d device.Device) device.Device {
			if blocking.Load() {
				entered <- struct{}{}
				<-block
			}
			return d
		},
	})
	_ = srv

	known := chipBytes(t, counterfeit.ClassGenuineAccept, 0xCA, 6001)
	other := chipBytes(t, counterfeit.ClassGenuineAccept, 0xCB, 6002)
	third := chipBytes(t, counterfeit.ClassGenuineAccept, 0xCC, 6003)

	// Warm the cache while the worker is free.
	resp := postChip(t, ts.URL+"/v1/verify", known)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("warmup: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp.Body.Close()

	// Wedge the only worker on an uncached chip.
	blocking.Store(true)
	wedged := make(chan *http.Response, 1)
	go func() { wedged <- postChip(t, ts.URL+"/v1/verify", other) }()
	<-entered

	// An uncached chip now finds the gate full.
	blocking.Store(false)
	resp = postChip(t, ts.URL+"/v1/verify", third)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached chip under saturation: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// The cached chip is still served, without touching the gate.
	resp = postChip(t, ts.URL+"/v1/verify", known)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached chip under saturation: status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("cached chip under saturation: X-Cache %q, want hit", resp.Header.Get("X-Cache"))
	}
	if rep := decodeReport(t, resp); rep.Verdict != "GENUINE" {
		t.Fatalf("cached verdict: %+v", rep)
	}

	close(block)
	resp = <-wedged
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wedged request: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDrainRefusesCachedRequests pins the other side of the ordering:
// the drain check runs before the cache lookup, so a draining server
// refuses even chips it could answer from cache.
func TestDrainRefusesCachedRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	known := chipBytes(t, counterfeit.ClassGenuineAccept, 0xDA, 6101)
	resp := postChip(t, ts.URL+"/v1/verify", known)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = postChip(t, ts.URL+"/v1/verify", known)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cached chip while draining: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestEscalatedReportNeverCached looks inside the verdict cache: a chip
// whose very first screening is escalated by the provenance registry
// must still be cached with its physics verdict, provenance-free, on
// both the miss path and subsequent hits.
func TestEscalatedReportNeverCached(t *testing.T) {
	store := registry.NewMemory(0)
	srv, ts := newTestServer(t, Config{Provenance: store})
	clone := chipBytes(t, counterfeit.ClassGenuineAccept, 0xEA, 6201)

	// Learn the clone's identity, then enroll a different physical chip
	// under it so the clone escalates from its first screening onward.
	probe := decodeReport(t, postChip(t, ts.URL+"/v1/verify", clone))
	if probe.Verdict != "GENUINE" {
		t.Fatalf("probe: %+v", probe)
	}
	srv.cache.mu.Lock()
	srv.cache.items = map[string]*list.Element{}
	srv.cache.ll.Init()
	srv.cache.mu.Unlock()
	if _, err := store.Enroll(registry.Enrollment{
		Key:         registry.Key{Manufacturer: probe.Payload.Manufacturer, DieID: probe.Payload.DieID},
		Fingerprint: registry.DeviceFingerprint("other-part", 999),
		Source:      "line-b",
	}); err != nil {
		t.Fatal(err)
	}

	for _, wantCache := range []string{"miss", "hit"} {
		resp := postChip(t, ts.URL+"/v1/verify", clone)
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Fatalf("X-Cache = %q, want %q", got, wantCache)
		}
		rep := decodeReport(t, resp)
		if rep.Verdict != "DUPLICATE-ID" || rep.Provenance == "" {
			t.Fatalf("%s-path escalation: %+v", wantCache, rep)
		}
		body, cachedRep, verdict, ok := srv.cache.Get(chipKey(clone))
		if !ok {
			t.Fatalf("%s path: chip not cached", wantCache)
		}
		if cachedRep.Verdict != "GENUINE" || verdict != counterfeit.VerdictGenuine {
			t.Fatalf("%s path: cached verdict %q / %v, want physics GENUINE", wantCache, cachedRep.Verdict, verdict)
		}
		if cachedRep.Provenance != "" || strings.Contains(string(body), `"provenance"`) {
			t.Fatalf("%s path: escalation leaked into the cache: %s", wantCache, body)
		}
	}
}
