package service

import (
	"container/list"
	"sync"

	"github.com/flashmark/flashmark/internal/counterfeit"
)

// verdictCache is the chip-registry cache: a thread-safe LRU from chip
// content hash to the serialized verdict response. Verification of a
// chip file is a pure function of its bytes and the server's fixed
// verifier policy (the simulation is deterministic and the service never
// persists the mutated device), so a repeat screening of the same lot
// can skip parsing and re-verification entirely and return the cached
// response byte-for-byte.
type verdictCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
	// rep is the decoded form of body, kept so the per-request
	// provenance overlay can inspect a hit without re-unmarshaling it.
	// Get hands out a value copy; the shared Payload pointer is
	// read-only by contract (escalation rewrites scalar fields only).
	rep     ChipReport
	verdict counterfeit.Verdict
}

// newVerdictCache builds a cache bounded to max entries; max <= 0
// disables caching (every lookup misses, puts are dropped).
func newVerdictCache(max int) *verdictCache {
	return &verdictCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached response body, its decoded report, and the
// verdict for key, marking the entry most recently used. The report is
// a value copy the caller may overlay; the body must not be mutated.
func (c *verdictCache) Get(key string) ([]byte, ChipReport, counterfeit.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, ChipReport{}, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.rep, e.verdict, true
}

// Put stores the response for key, evicting the least recently used
// entry when full.
func (c *verdictCache) Put(key string, body []byte, rep ChipReport, verdict counterfeit.Verdict) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.body, e.rep, e.verdict = body, rep, verdict
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, rep: rep, verdict: verdict})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *verdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
