package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/wmcode"
)

const testKey = "service-test-key"

func testVerifier() counterfeit.Verifier {
	return counterfeit.Verifier{Codec: wmcode.Codec{Key: []byte(testKey)}}
}

// chipBytes fabricates one chip of the given class and serializes it the
// way a client would upload it.
func chipBytes(t testing.TB, class counterfeit.ChipClass, seed, die uint64) []byte {
	t.Helper()
	cfg := counterfeit.FactoryConfig{
		Fab:   mcu.Fab(mcu.PartSmallSim()),
		Codec: wmcode.Codec{Key: []byte(testKey)},
	}
	dev, err := counterfeit.Fabricate(class, cfg, seed, die)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if len(cfg.Verifier.Codec.Key) == 0 {
		cfg.Verifier = testVerifier()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postChip(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeReport(t *testing.T, resp *http.Response) ChipReport {
	t.Helper()
	defer resp.Body.Close()
	var rep ChipReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// metricsVars fetches /debug/vars as a flat map.
func metricsVars(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func counterValue(t *testing.T, vars map[string]any, name string) int {
	t.Helper()
	v, ok := vars[name]
	if !ok {
		t.Fatalf("metric %s not exported", name)
	}
	return int(v.(float64))
}

func TestVerifyGenuineAndCounterfeit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 1001)
	resp := postChip(t, ts.URL+"/v1/verify", genuine)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("genuine chip: status %d", resp.StatusCode)
	}
	rep := decodeReport(t, resp)
	if rep.Verdict != "GENUINE" || !rep.Accepted {
		t.Fatalf("genuine chip classified %+v", rep)
	}
	if rep.Payload == nil || rep.Payload.DieID != 1001 {
		t.Fatalf("payload not decoded: %+v", rep.Payload)
	}

	unmarked := chipBytes(t, counterfeit.ClassUnmarked, 0xA2, 1002)
	rep = decodeReport(t, postChip(t, ts.URL+"/v1/verify", unmarked))
	if rep.Verdict != "NO-WATERMARK" || rep.Accepted {
		t.Fatalf("unmarked chip classified %+v", rep)
	}
}

func TestVerifyMalformedChip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string][]byte{
		"not json":     []byte("not a chip"),
		"wrong format": []byte(`{"format":"flashmark-chip","version":99}`),
		"empty":        {},
		"bad array":    []byte(`{"format":"flashmark-chip","version":1,"part":"FM-SIM16","array":"!!!"}`),
	} {
		resp := postChip(t, ts.URL+"/v1/verify", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET verify: status %d, want 405", resp.StatusCode)
	}
}

func TestVerifyBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	resp := postChip(t, ts.URL+"/v1/verify", bytes.Repeat([]byte("x"), 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestRegistryCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xB1, 1101)
	first := postChip(t, ts.URL+"/v1/verify", chip)
	b1 := readAll(t, first)
	if first.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first screening must miss, got %q", first.Header.Get("X-Cache"))
	}
	second := postChip(t, ts.URL+"/v1/verify", chip)
	b2 := readAll(t, second)
	if second.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second screening must hit, got %q", second.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached response differs:\n%s\n%s", b1, b2)
	}
	vars := metricsVars(t, ts.URL)
	if counterValue(t, vars, "fmverifyd_cache_hits_total") != 1 ||
		counterValue(t, vars, "fmverifyd_cache_misses_total") != 1 {
		t.Fatalf("cache counters off: %v", vars)
	}
	if counterValue(t, vars, "fmverifyd_verdict_genuine_total") != 2 {
		t.Fatal("cache hits must still count verdicts")
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFaultInjectedInconclusive(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Decorate: func(d device.Device) device.Device {
			return device.InjectFaults(d, device.FaultConfig{Seed: 7, EraseTimeoutProb: 1})
		},
	})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xC1, 1201)
	resp := postChip(t, ts.URL+"/v1/verify", chip)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault must answer 200 + INCONCLUSIVE, got status %d", resp.StatusCode)
	}
	rep := decodeReport(t, resp)
	if rep.Verdict != "INCONCLUSIVE" || rep.Accepted {
		t.Fatalf("fault classified %+v", rep)
	}
	if rep.Fault == "" {
		t.Fatal("fault detail missing from report")
	}
	vars := metricsVars(t, ts.URL)
	if counterValue(t, vars, "fmverifyd_device_faults_total") != 1 {
		t.Fatal("fault counter not incremented")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xD1, 1301)
	resp := postChip(t, ts.URL+"/v1/verify", chip)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	vars := metricsVars(t, ts.URL)
	if counterValue(t, vars, "fmverifyd_deadline_exceeded_total") != 1 {
		t.Fatal("deadline counter not incremented")
	}
}

func TestPanicRecovery(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Decorate: func(d device.Device) device.Device {
			panic("decorator exploded")
		},
	})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xE1, 1401)
	resp := postChip(t, ts.URL+"/v1/verify", chip)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	vars := metricsVars(t, ts.URL)
	if counterValue(t, vars, "fmverifyd_panics_total") != 1 {
		t.Fatal("panic counter not incremented")
	}
	// The server keeps serving after a panic.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("server died after panic")
	}
}

// blockingDevice holds every verification inside Unlock until the gate
// channel is closed, so tests can pin requests in flight.
type blockingDevice struct {
	device.Device
	gate <-chan struct{}
}

func (b *blockingDevice) Unlock() error {
	<-b.gate
	return b.Device.Unlock()
}

// TestServiceOverload is the acceptance load smoke: a saturated queue
// answers 429 with Retry-After while in-flight requests complete, a
// drain under load finishes cleanly, identical batches are
// byte-identical, and the counters reconcile with the traffic sent.
func TestServiceOverload(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:      1,
		QueueDepth:   1,
		CacheEntries: -1, // every request must occupy a worker
		Decorate: func(d device.Device) device.Device {
			return &blockingDevice{Device: d, gate: gate}
		},
	})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0xF1, 1501)

	// Fill the worker slot and the queue with blocked requests.
	const inflight = 2
	codes := make(chan int, inflight)
	bodies := make(chan []byte, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(chip))
			if err != nil {
				codes <- -1
				return
			}
			codes <- resp.StatusCode
			bodies <- readAll(t, resp)
		}()
	}
	// Wait until both are admitted (1 running + 1 queued).
	waitFor(t, func() bool { return srv.gate.pending.Load() == inflight })

	// Everything beyond workers+queue is refused immediately.
	rejected := 0
	for i := 0; i < 5; i++ {
		resp := postChip(t, ts.URL+"/v1/verify", chip)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated queue answered %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 must carry Retry-After")
		}
		rejected++
	}

	// Begin draining while requests are still in flight: readiness flips
	// immediately, new work is refused, in-flight work completes.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	waitFor(t, srv.Draining)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp = postChip(t, ts.URL+"/v1/verify", chip)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify during drain: %d, want 503", resp.StatusCode)
	}
	draining := 1

	// Release the blocked verifications: both must complete with 200 —
	// overload and drain never drop admitted work.
	close(gate)
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight request dropped with status %d", code)
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain under load failed: %v", err)
	}
	b1, b2 := <-bodies, <-bodies
	if !bytes.Equal(b1, b2) {
		t.Fatalf("identical chips produced different verdict JSON:\n%s\n%s", b1, b2)
	}

	// Counters reconcile with the traffic sent: 2 verified + 5 rejected
	// + 1 refused-during-drain verify requests hit the verify endpoint.
	vars := metricsVars(t, ts.URL)
	requests := counterValue(t, vars, "fmverifyd_requests_total")
	if want := inflight + rejected + draining; requests != want {
		t.Fatalf("requests_total = %d, want %d", requests, want)
	}
	if got := counterValue(t, vars, "fmverifyd_rejected_total"); got != rejected {
		t.Fatalf("rejected_total = %d, want %d", got, rejected)
	}
	if got := counterValue(t, vars, "fmverifyd_chips_total"); got != inflight {
		t.Fatalf("chips_total = %d, want %d", got, inflight)
	}
	if got := counterValue(t, vars, "fmverifyd_verdict_genuine_total"); got != inflight {
		t.Fatalf("verdict_genuine_total = %d, want %d", got, inflight)
	}
	if got := counterValue(t, vars, "fmverifyd_errors_total"); got != draining {
		t.Fatalf("errors_total = %d, want %d", got, draining)
	}
	if got := counterValue(t, vars, "fmverifyd_queue_depth"); got != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestBatchDeterministicAndSummarized pins the batch contract: results
// indexed by input order, per-chip failures embedded, and two identical
// requests byte-identical even across worker schedules.
func TestBatchDeterministicAndSummarized(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWorkers: 4, CacheEntries: -1})
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0x1A, 1601)
	reject := chipBytes(t, counterfeit.ClassGenuineReject, 0x1B, 1602)
	unmarked := chipBytes(t, counterfeit.ClassUnmarked, 0x1C, 1603)
	var req BatchRequest
	for _, c := range [][]byte{genuine, reject, unmarked, genuine, []byte(`{"format":"bogus"}`)} {
		req.Chips = append(req.Chips, json.RawMessage(c))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r1 := postChip(t, ts.URL+"/v1/verify/batch", body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", r1.StatusCode)
	}
	b1 := readAll(t, r1)
	var resp BatchResponse
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Chips != 5 || resp.Summary.Accepted != 2 || resp.Summary.Refused != 2 || resp.Summary.Failed != 1 {
		t.Fatalf("summary %+v", resp.Summary)
	}
	if resp.Summary.Verdicts["GENUINE"] != 2 || resp.Summary.Verdicts["REJECT-DIE"] != 1 {
		t.Fatalf("verdict tally %v", resp.Summary.Verdicts)
	}
	var second ChipReport
	if err := json.Unmarshal(resp.Results[1], &second); err != nil {
		t.Fatal(err)
	}
	if second.Verdict != "REJECT-DIE" {
		t.Fatalf("results not indexed by input order: %+v", second)
	}
	var failed ChipReport
	if err := json.Unmarshal(resp.Results[4], &failed); err != nil {
		t.Fatal(err)
	}
	if failed.Error == "" {
		t.Fatal("malformed chip must embed its error in the batch result")
	}
	// Byte-identical on repeat.
	r2 := postChip(t, ts.URL+"/v1/verify/batch", body)
	b2 := readAll(t, r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("identical batch requests produced different JSON")
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":  "nope",
		"no chips":  `{"chips":[]}`,
		"bad shape": `{"chips":42}`,
	} {
		resp := postChip(t, ts.URL+"/v1/verify/batch", []byte(body))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestBatchUsesRegistryCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, 0x2A, 1701)
	var req BatchRequest
	for i := 0; i < 4; i++ {
		req.Chips = append(req.Chips, json.RawMessage(chip))
	}
	body, _ := json.Marshal(req)
	resp := postChip(t, ts.URL+"/v1/verify/batch", body)
	readAll(t, resp)
	vars := metricsVars(t, ts.URL)
	// One miss computes; repeats of the same lot hit. (The first chips
	// may race each other before the cache fills, so assert bounds.)
	hits := counterValue(t, vars, "fmverifyd_cache_hits_total")
	misses := counterValue(t, vars, "fmverifyd_cache_misses_total")
	if hits+misses != 4 || hits < 1 {
		t.Fatalf("cache hits=%d misses=%d, want 4 total with hits >= 1", hits, misses)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if !strings.Contains(string(b), "# TYPE fmverifyd_requests_total counter") {
		t.Fatalf("metrics exposition missing service counters:\n%s", b)
	}
}

func TestNewRejectsAuditor(t *testing.T) {
	v := testVerifier()
	v.Audit = counterfeit.NewAuditor()
	if _, err := New(Config{Verifier: v}); err == nil {
		t.Fatal("config with an Auditor must be rejected")
	}
}

func TestNANDChipVerifies(t *testing.T) {
	// A NAND chip goes through the same endpoint via format sniffing;
	// an unwatermarked NAND blank refuses as NO-WATERMARK.
	_, ts := newTestServer(t, Config{})
	nandDev := nandBlank(t, 0x3A)
	resp := postChip(t, ts.URL+"/v1/verify", nandDev)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NAND chip status %d", resp.StatusCode)
	}
	rep := decodeReport(t, resp)
	if rep.Verdict != "NO-WATERMARK" || rep.Part != "NAND-SIM" {
		t.Fatalf("NAND blank classified %+v", rep)
	}
}

// TestStatsHook pins the drain/queue introspection surface the load
// harness leans on: idle zeros, Running while a verification is held
// open, cache growth, and the draining flag.
func TestStatsHook(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv, ts := newTestServer(t, Config{
		Workers: 2,
		Decorate: func(d device.Device) device.Device {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-hold
			return d
		},
	})
	if st := srv.Stats(); st != (Stats{}) {
		t.Fatalf("idle stats = %+v, want zero", st)
	}
	genuine := chipBytes(t, counterfeit.ClassGenuineAccept, 0x5A, 1801)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(genuine))
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered
	if st := srv.Stats(); st.Running != 1 || st.Queued != 0 || st.Draining {
		t.Fatalf("in-flight stats = %+v, want Running=1", st)
	}
	close(hold)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := srv.Stats()
		return st.Running == 0 && st.CacheEntries == 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !st.Draining || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("post-drain stats = %+v, want Draining with empty gate", st)
	}
}

// TestInjectedClockDrivesLatency proves the wall-clock seam: with a
// fake Now, the latency histogram records the fixture's durations, not
// the host's — the point of the check_clock.sh guardrail.
func TestInjectedClockDrivesLatency(t *testing.T) {
	const step = 32 * time.Millisecond
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	srv, ts := newTestServer(t, Config{
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(step)
			return now
		},
	})
	resp := postChip(t, ts.URL+"/v1/verify", chipBytes(t, counterfeit.ClassGenuineAccept, 0x5B, 1802))
	resp.Body.Close()
	var snap struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	}
	vars := metricsVars(t, ts.URL)
	b, err := json.Marshal(vars["fmverifyd_request_seconds"])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 1 {
		t.Fatalf("latency count = %d, want 1", snap.Count)
	}
	// Every observed duration is a whole number of fake-clock steps, and
	// at least one step long — impossible for a real-time measurement of
	// this handler, so the fixture clock demonstrably drove it.
	steps := snap.Sum / step.Seconds()
	if steps < 1 || math.Abs(steps-math.Round(steps)) > 1e-6 {
		t.Fatalf("latency sum %gs is not a positive whole number of %v fake steps", snap.Sum, step)
	}
	_ = srv
}

func nandBlank(t testing.TB, seed uint64) []byte {
	t.Helper()
	dev, err := nand.Open(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ExampleChipReport documents the single-verify response shape.
func ExampleChipReport() {
	rep := ChipReport{
		SHA256:   "…content hash…",
		Part:     "FM-SIM16",
		Verdict:  "GENUINE",
		Accepted: true,
	}
	b, _ := json.Marshal(rep.Verdict)
	fmt.Println(string(b))
	// Output: "GENUINE"
}
