package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// errOverloaded is returned by the gate when the bounded queue is full;
// the handler maps it to 429 + Retry-After.
var errOverloaded = errors.New("service: admission queue full")

// gate is the admission controller: at most `workers` verifications run
// concurrently, at most `queue` more wait for a slot, and everything
// beyond that is refused immediately so overload sheds load instead of
// accumulating unbounded goroutines. In-flight work is never dropped —
// the gate only refuses at the door.
type gate struct {
	slots   chan struct{}
	pending atomic.Int64 // admitted requests: waiting + running
	limit   int64        // workers + queue depth
}

func newGate(workers, queue int) *gate {
	return &gate{
		slots: make(chan struct{}, workers),
		limit: int64(workers + queue),
	}
}

// acquire admits the caller or refuses. On success it returns a release
// function the caller must invoke when the verification finishes. A
// full queue returns errOverloaded without blocking; a context
// cancellation while queued returns the context error.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	if g.pending.Add(1) > g.limit {
		g.pending.Add(-1)
		return nil, errOverloaded
	}
	select {
	case g.slots <- struct{}{}:
		return func() {
			<-g.slots
			g.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		g.pending.Add(-1)
		return nil, ctx.Err()
	}
}

// queued returns how many admitted requests are waiting for a worker
// slot (the queue-depth gauge).
func (g *gate) queued() int64 {
	q := g.pending.Load() - int64(len(g.slots))
	if q < 0 {
		q = 0
	}
	return q
}

// running returns how many requests hold a worker slot.
func (g *gate) running() int64 { return int64(len(g.slots)) }
