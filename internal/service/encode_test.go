package service

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// adversarialStrings covers every escaping branch of appendJSONString:
// HTML-escaped bytes, short escapes, generic control bytes, invalid
// UTF-8, the JSONP separators, and plain multi-byte text.
var adversarialStrings = []string{
	"",
	"plain ascii",
	`quotes " and \ backslash`,
	"html <tags> & ampersand",
	"\b\f\n\r\t",
	"\x00\x01\x1f control",
	"caf\u00e9 \u65e5\u672c\u8a9e",
	"invalid \xff\xfe utf8",
	"separators \u2028 and \u2029",
	"mixed <\n\xffé\u2028> tail",
	strings.Repeat("long & repeated <segment>\x07 ", 20),
}

func TestAppendJSONStringMatchesMarshal(t *testing.T) {
	for _, s := range adversarialStrings {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("string %q:\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	for _, f := range []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0, 6.25e-7, 1e-7, -1e-7,
		1e-6, 9.999999e-7, 1e21, 1e20, -1e21, 2.5e-9, 3.14159, 1e300,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 123456789.123456789,
	} {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("float %v: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("float %v:\n got %s\nwant %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, wantErr := json.Marshal(f)
		_, gotErr := appendJSONFloat(nil, f)
		if gotErr == nil || wantErr == nil {
			t.Fatalf("float %v: expected errors, got %v / %v", f, gotErr, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("float %v error:\n got %q\nwant %q", f, gotErr, wantErr)
		}
	}
}

// chipReportCases walks the omitempty lattice plus adversarial content.
func chipReportCases() []ChipReport {
	return []ChipReport{
		{},
		{SHA256: "abc", Verdict: "GENUINE", Accepted: true},
		{SHA256: "abc", Part: "FM-SIM16", Seed: 7, Verdict: "GENUINE", Accepted: true,
			Payload:             &PayloadReport{Manufacturer: "TC", DieID: 42, SpeedGrade: 3, Status: "production", YearWeek: 2413},
			ReplicaDisagreement: 0.03125, WornDataSegments: 2, SampledDataSegments: 2, DeviceTimeUs: 123456},
		{SHA256: "abc", Part: "NAND-SIM", Verdict: "NO-WATERMARK", ReplicaDisagreement: 6.25e-7},
		{SHA256: "abc", Part: "FM-SIM16+faults", Seed: 9, Verdict: "INCONCLUSIVE",
			Fault: "device: erase at 0x0 timed out: device: injected fault", DeviceTimeUs: -1},
		{SHA256: "abc", Verdict: "ERROR", Error: `mcu: not a chip file (format "bogus")`},
		{SHA256: "x", Part: "part <&> \u2028\xff", Verdict: "GENUINE",
			Payload:    &PayloadReport{Manufacturer: "weird \"quotes\"\n", Status: "<s>"},
			Provenance: "die id already enrolled under a different physical fingerprint",
			Error:      "tab\there"},
	}
}

func TestAppendChipReportMatchesMarshal(t *testing.T) {
	for i, rep := range chipReportCases() {
		want, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendChipReport(nil, &rep)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
	rep := ChipReport{ReplicaDisagreement: math.NaN()}
	if _, err := appendChipReport(nil, &rep); err == nil {
		t.Error("NaN disagreement encoded without error")
	}
}

func TestAppendBatchResponseMatchesMarshal(t *testing.T) {
	var results [][]byte
	for _, rep := range chipReportCases() {
		b, err := appendChipReport(nil, &rep)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, b)
	}
	sum := BatchSummary{
		Chips: len(results), Accepted: 2, Refused: 4, Failed: 1,
		Verdicts: map[string]int{"GENUINE": 3, "ERROR": 1, "NO-WATERMARK": 1, "INCONCLUSIVE": 1, "DUPLICATE-ID": 2},
	}
	resp := BatchResponse{Summary: sum}
	for _, r := range results {
		resp.Results = append(resp.Results, json.RawMessage(r))
	}
	want, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	got := appendBatchResponse(nil, results, sum, nil)
	if !bytes.Equal(got, want) {
		t.Errorf("batch envelope:\n got %s\nwant %s", got, want)
	}
	// Empty tally (every chip failed) still matches.
	sum = BatchSummary{Chips: 1, Failed: 1, Verdicts: map[string]int{}}
	want, err = json.Marshal(BatchResponse{Results: []json.RawMessage{results[0]}, Summary: sum})
	if err != nil {
		t.Fatal(err)
	}
	if got := appendBatchResponse(nil, results[:1], sum, nil); !bytes.Equal(got, want) {
		t.Errorf("empty tally:\n got %s\nwant %s", got, want)
	}
}
