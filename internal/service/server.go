// Package service implements fmverifyd's HTTP layer: a stdlib-only
// watermark-verification service that accepts serialized chip files
// (either backend's format) and returns authenticity verdicts. The
// production concerns live here, not in the binary, so they are testable
// with httptest: admission control with a bounded queue (429 +
// Retry-After on overload), per-request deadlines threaded through
// context into the verify path, panic-to-500 recovery, graceful drain,
// an LRU chip-registry cache keyed by content hash, and first-class
// metrics on /metrics and /debug/vars.
//
// Endpoints:
//
//	POST /v1/verify        one chip file -> one verdict JSON
//	POST /v1/verify/batch  {"chips":[...]} -> per-chip verdicts + summary
//	POST /v1/enroll        record a GENUINE chip's identity in the registry
//	POST /v1/challenge     challenge-response screen against the enrolled fingerprint
//	GET  /healthz          liveness (200 while the process serves)
//	GET  /readyz           readiness (503 once draining)
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/vars       expvar-style JSON snapshot
package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/metrics"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/wallclock"
)

// Config assembles a Server. The zero value of every field selects a
// production-sane default.
type Config struct {
	// Verifier is the incoming-inspection policy applied to every chip.
	// It must not carry an Auditor: requests are stateless and
	// concurrent, and batch-local replay audits belong to the client
	// (see cmd/flashmark batch).
	Verifier counterfeit.Verifier

	// Workers bounds concurrent verifications (0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond Workers
	// (0 selects 64; negative means no queue — refuse unless a worker
	// slot is free).
	QueueDepth int
	// RequestTimeout is the per-request verification deadline
	// (0 selects 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps an accepted request body (0 selects 16 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the chip-registry LRU (0 selects 4096;
	// negative disables caching).
	CacheEntries int
	// BatchWorkers bounds the per-batch fan-out on the parallel engine
	// (0 selects Workers).
	BatchWorkers int

	// Decorate, when set, wraps every loaded device before verification
	// — the chaos/testing seam for fault injectors and recorders.
	Decorate func(device.Device) device.Device

	// Provenance, when set, is the fleet-scale die-identity registry:
	// POST /v1/enroll records verified identities into it, and the
	// verify endpoints escalate physics-GENUINE chips to DUPLICATE-ID
	// when their die id is on file under a different physical
	// fingerprint (see internal/registry). The server does not close
	// the store; the owner does.
	Provenance registry.Store

	// Challenge, when set, enables POST /v1/challenge: the second,
	// independent physical-identity axis. Enrollment interrogates the
	// chip with this policy and records the response fingerprint; the
	// challenge endpoint re-interrogates and escalates on a mismatch.
	// Requires Provenance (the fingerprints live in the registry).
	Challenge *challenge.Policy

	// OmitDeviceFingerprint, when set, enrolls identities with a zero
	// physical fingerprint. The fleet registry then cannot distinguish
	// two chips claiming one die id by simulator identity — the
	// honest-hardware regime, where only observable physics (the
	// challenge-response axis) separates a clone from its victim.
	OmitDeviceFingerprint bool

	// Registry receives the service metrics (nil creates a private one).
	Registry *metrics.Registry

	// Now supplies wall time for latency accounting and enrollment
	// timestamps (nil selects wallclock.Now). Injecting a fake makes
	// the latency histograms and enroll stamps fixture-testable; the
	// per-request deadline still rides the context machinery.
	Now func() time.Time

	// Logf, when set, receives one line per completed request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 4096
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = c.Workers
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Now == nil {
		c.Now = wallclock.Now
	}
	return c
}

// serviceMetrics is every instrument the server exports.
type serviceMetrics struct {
	requests  *metrics.Counter
	rejected  *metrics.Counter
	errors    *metrics.Counter
	deadlines *metrics.Counter
	panics    *metrics.Counter
	faults    *metrics.Counter
	cacheHit  *metrics.Counter
	cacheMiss *metrics.Counter
	chips     *metrics.Counter
	verdicts  map[counterfeit.Verdict]*metrics.Counter
	latency   *metrics.Histogram

	enrolls          *metrics.Counter
	enrollDuplicates *metrics.Counter
	enrollConflicts  *metrics.Counter
	escalations      *metrics.Counter

	challenges          *metrics.Counter
	challengeMatches    *metrics.Counter
	challengeMismatches *metrics.Counter
	challengeUnenrolled *metrics.Counter
}

func newServiceMetrics(reg *metrics.Registry, g *gate, cache *verdictCache) *serviceMetrics {
	m := &serviceMetrics{
		requests:  reg.Counter("fmverifyd_requests_total", "verification requests accepted for processing"),
		rejected:  reg.Counter("fmverifyd_rejected_total", "requests refused with 429 by admission control"),
		errors:    reg.Counter("fmverifyd_errors_total", "requests answered with a 4xx/5xx other than 429"),
		deadlines: reg.Counter("fmverifyd_deadline_exceeded_total", "verifications aborted by the per-request deadline"),
		panics:    reg.Counter("fmverifyd_panics_total", "handler panics converted to 500"),
		faults:    reg.Counter("fmverifyd_device_faults_total", "chips answered INCONCLUSIVE on an injected device fault"),
		cacheHit:  reg.Counter("fmverifyd_cache_hits_total", "chip verdicts served from the registry cache"),
		cacheMiss: reg.Counter("fmverifyd_cache_misses_total", "chip verdicts computed fresh"),
		chips:     reg.Counter("fmverifyd_chips_total", "chips screened (batch requests count each chip)"),
		verdicts:  make(map[counterfeit.Verdict]*metrics.Counter),
		latency: reg.Histogram("fmverifyd_request_seconds", "wall-clock request latency",
			metrics.DefaultLatencyBuckets()),
	}
	for v := counterfeit.VerdictGenuine; v <= counterfeit.VerdictInconclusive; v++ {
		name := "fmverifyd_verdict_" + strings.ToLower(strings.ReplaceAll(v.String(), "-", "_")) + "_total"
		m.verdicts[v] = reg.Counter(name, "chips classified "+v.String())
	}
	m.enrolls = reg.Counter("fmverifyd_enroll_total", "identities enrolled into the fleet registry")
	m.enrollDuplicates = reg.Counter("fmverifyd_enroll_duplicates_total", "enrollments of an identity already on file")
	m.enrollConflicts = reg.Counter("fmverifyd_enroll_conflicts_total", "enrollments that made an identity conflicted")
	m.escalations = reg.Counter("fmverifyd_provenance_escalations_total", "physics-GENUINE chips escalated to DUPLICATE-ID by the registry")
	m.challenges = reg.Counter("fmverifyd_challenge_total", "challenge-response interrogations completed")
	m.challengeMatches = reg.Counter("fmverifyd_challenge_matches_total", "challenges answered with the enrolled response fingerprint")
	m.challengeMismatches = reg.Counter("fmverifyd_challenge_mismatches_total", "challenges answered with a fingerprint other than the enrolled one")
	m.challengeUnenrolled = reg.Counter("fmverifyd_challenge_unenrolled_total", "challenges of identities with no enrolled response fingerprint")
	reg.GaugeFunc("fmverifyd_queue_depth", "admitted requests waiting for a worker", g.queued)
	reg.GaugeFunc("fmverifyd_inflight", "requests holding a worker slot", g.running)
	reg.GaugeFunc("fmverifyd_cache_entries", "chip verdicts resident in the registry cache",
		func() int64 { return int64(cache.Len()) })
	return m
}

// Server is the verification service. Create with New, mount via
// Handler, stop with Drain.
type Server struct {
	cfg      Config
	gate     *gate
	cache    *verdictCache
	met      *serviceMetrics
	mux      *http.ServeMux
	draining chan struct{}
	drainMu  sync.Mutex
	inflight sync.WaitGroup
	// loaders pools one reusable chip loader per concurrent screening;
	// a loader is checked out for the duration of one screenChip call
	// (the devices it returns alias its storage).
	loaders sync.Pool
}

// New validates the config and assembles a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Verifier.Audit != nil {
		return nil, fmt.Errorf("service: verifier must not carry an Auditor (requests are stateless and concurrent)")
	}
	if cfg.Challenge != nil {
		if cfg.Provenance == nil {
			return nil, fmt.Errorf("service: the challenge-response plane requires a fleet registry (Config.Provenance)")
		}
		if err := cfg.Challenge.Validate(); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		gate:     newGate(cfg.Workers, cfg.QueueDepth),
		cache:    newVerdictCache(cfg.CacheEntries),
		draining: make(chan struct{}),
	}
	s.loaders.New = func() any { return new(chipLoader) }
	s.met = newServiceMetrics(cfg.Registry, s.gate, s.cache)
	if cfg.Provenance != nil {
		registerRegistryGauges(cfg.Registry, cfg.Provenance)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/verify/batch", s.handleVerifyBatch)
	s.mux.HandleFunc("/v1/enroll", s.handleEnroll)
	s.mux.HandleFunc("/v1/challenge", s.handleChallenge)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", cfg.Registry.Handler())
	s.mux.Handle("/debug/vars", cfg.Registry.VarsHandler())
	return s, nil
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// Stats is a point-in-time view of the server's admission and drain
// state. It exists for tests and the load harness, which need to assert
// "the queue actually emptied" directly rather than scraping and
// parsing the /metrics text for the same gauges.
type Stats struct {
	// Queued counts admitted requests waiting for a worker slot.
	Queued int64
	// Running counts requests holding a worker slot.
	Running int64
	// Draining reports whether Drain has been called.
	Draining bool
	// CacheEntries is the number of resident chip-verdict cache entries.
	CacheEntries int
}

// Stats snapshots the admission gate, drain flag, and verdict cache.
func (s *Server) Stats() Stats {
	return Stats{
		Queued:       s.gate.queued(),
		Running:      s.gate.running(),
		Draining:     s.Draining(),
		CacheEntries: s.cache.Len(),
	}
}

// Handler returns the service's root handler with panic recovery
// applied; mount it on an http.Server (or httptest.Server).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Inc()
				s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				// Best effort: if the handler already wrote, this is a no-op.
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain begins a graceful shutdown: readiness flips to 503 so load
// balancers stop sending traffic, new verification requests are refused
// with 503, and the call blocks until every in-flight verification has
// completed or ctx expires (in which case the number still in flight is
// reported in the error). Liveness, metrics and debug endpoints keep
// serving throughout so the drain itself is observable.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain aborted with requests still in flight: %w", ctx.Err())
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// since measures elapsed wall time against the configured clock, so a
// fixture clock sees exactly the durations the handlers record.
func (s *Server) since(start time.Time) time.Duration {
	return s.cfg.Now().Sub(start)
}
