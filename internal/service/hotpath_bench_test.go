package service

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/flashmark/flashmark/internal/counterfeit"
)

// Hot-path benchmark for the full /v1/verify request lifecycle: HTTP
// mux dispatch, admission, body read, format sniff, chip-file load,
// device construction, physics verify, and report encode — everything
// a cache-missing request pays, measured single-core through the real
// http.Handler. The cache-hit sub-benchmark isolates the service
// overhead that remains when the physics verdict is already on file.
//
// With -hotjson the results are written as BENCH_hotpath.json (schema
// flashmark-bench-hotpath/v1), which CI gates via scripts/check_bench.sh
// against scripts/bench_hotpath_baseline.json: a hard allocs/op ceiling
// on both paths and a chips-verified/sec floor on the miss path.
//
// Run: make bench-hotpath

var hotJSON = flag.String("hotjson", "", "write hot-path benchmark results to this JSON file")

type hotPath struct {
	NsOp        int64   `json:"ns_op"`
	AllocsOp    float64 `json:"allocs_op"`
	ChipsPerSec float64 `json:"chips_per_sec"`
}

type hotReport struct {
	Schema     string   `json:"schema"`
	GoMaxProcs int      `json:"go_max_procs"`
	GoVersion  string   `json:"go_version"`
	Miss       *hotPath `json:"verify_miss,omitempty"`
	Hit        *hotPath `json:"verify_hit,omitempty"`
}

var (
	hotMu  sync.Mutex
	hotOut = hotReport{
		Schema:     "flashmark-bench-hotpath/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
)

func writeHotReport() error {
	hotMu.Lock()
	defer hotMu.Unlock()
	if *hotJSON == "" || (hotOut.Miss == nil && hotOut.Hit == nil) {
		return nil
	}
	data, err := json.MarshalIndent(hotOut, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*hotJSON, append(data, '\n'), 0o644)
}

// TestMain flushes the bench report after all benchmarks have finished;
// it is a no-op for plain test runs.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writeHotReport(); err != nil {
		os.Stderr.WriteString("hotjson: " + err.Error() + "\n")
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func hotNsOp(b *testing.B) int64 {
	if b.N == 0 {
		return 0
	}
	return b.Elapsed().Nanoseconds() / int64(b.N)
}

// hotResponseWriter is a reusable discarding ResponseWriter so the
// benchmark measures the service, not httptest.ResponseRecorder.
type hotResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *hotResponseWriter) Header() http.Header { return w.h }

func (w *hotResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += len(p)
	return len(p), nil
}

func (w *hotResponseWriter) WriteHeader(code int) { w.status = code }

func (w *hotResponseWriter) reset() {
	w.status = 0
	w.n = 0
	clear(w.h)
}

// hotDriver posts one fixed chip at /v1/verify through the server's
// real handler chain, reusing the request, body reader, and response
// writer across calls so only per-request costs are counted.
type hotDriver struct {
	handler http.Handler
	req     *http.Request
	body    *rewindReader
	rw      *hotResponseWriter
}

type rewindReader struct {
	data []byte
	off  int
}

func (r *rewindReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *rewindReader) Close() error { return nil }

func newHotDriver(b *testing.B, s *Server, chip []byte) *hotDriver {
	b.Helper()
	body := &rewindReader{data: chip}
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", nil)
	req.Body = body
	req.ContentLength = int64(len(chip))
	return &hotDriver{
		handler: s.Handler(),
		req:     req,
		body:    body,
		rw:      &hotResponseWriter{h: make(http.Header)},
	}
}

func (d *hotDriver) verify(b *testing.B) {
	d.body.off = 0
	d.rw.reset()
	d.handler.ServeHTTP(d.rw, d.req)
	if d.rw.status != http.StatusOK {
		b.Fatalf("verify status %d", d.rw.status)
	}
}

// BenchmarkVerifyHotPath is the headline single-core chips-verified/sec
// figure. The miss sub-benchmark disables the verdict cache so every
// request runs the full lifecycle; the hit sub-benchmark serves a warm
// cache entry, isolating the fixed per-request service overhead.
func BenchmarkVerifyHotPath(b *testing.B) {
	chip := chipBytes(b, counterfeit.ClassGenuineAccept, 0xB001, 9001)

	b.Run("miss", func(b *testing.B) {
		s, err := New(Config{Verifier: testVerifier(), Workers: 1, CacheEntries: -1})
		if err != nil {
			b.Fatal(err)
		}
		d := newHotDriver(b, s, chip)
		allocs := testing.AllocsPerRun(5, func() { d.verify(b) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.verify(b)
		}
		b.StopTimer()
		ns := hotNsOp(b)
		perSec := 0.0
		if ns > 0 {
			perSec = 1e9 / float64(ns)
		}
		b.ReportMetric(perSec, "chips/s")
		hotMu.Lock()
		hotOut.Miss = &hotPath{NsOp: ns, AllocsOp: allocs, ChipsPerSec: perSec}
		hotMu.Unlock()
	})

	b.Run("hit", func(b *testing.B) {
		s, err := New(Config{Verifier: testVerifier(), Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		d := newHotDriver(b, s, chip)
		d.verify(b) // warm the verdict cache
		allocs := testing.AllocsPerRun(10, func() { d.verify(b) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.verify(b)
		}
		b.StopTimer()
		ns := hotNsOp(b)
		perSec := 0.0
		if ns > 0 {
			perSec = 1e9 / float64(ns)
		}
		b.ReportMetric(perSec, "chips/s")
		hotMu.Lock()
		hotOut.Hit = &hotPath{NsOp: ns, AllocsOp: allocs, ChipsPerSec: perSec}
		hotMu.Unlock()
	})
}
