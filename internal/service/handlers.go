package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/reram"
)

// ChipReport is the verdict JSON for one screened chip. Fields are
// derived only from the chip bytes and the server's verifier policy, so
// the report for a given chip file is byte-stable across requests and
// cacheable by content hash.
type ChipReport struct {
	SHA256              string         `json:"sha256"`
	Part                string         `json:"part,omitempty"`
	Seed                uint64         `json:"seed,omitempty"`
	Verdict             string         `json:"verdict"`
	Accepted            bool           `json:"accepted"`
	Payload             *PayloadReport `json:"payload,omitempty"`
	ReplicaDisagreement float64        `json:"replicaDisagreement"`
	WornDataSegments    int            `json:"wornDataSegments"`
	SampledDataSegments int            `json:"sampledDataSegments"`
	Fault               string         `json:"fault,omitempty"`
	DeviceTimeUs        int64          `json:"deviceTimeUs"`
	// Provenance explains a registry escalation: why a physics-GENUINE
	// chip was answered DUPLICATE-ID. Only set when the server runs
	// with a fleet registry; escalated reports are not cached.
	Provenance string `json:"provenance,omitempty"`
	Error      string `json:"error,omitempty"`
}

// PayloadReport is the decoded watermark payload, present when the chip
// carried a structurally valid watermark.
type PayloadReport struct {
	Manufacturer string `json:"manufacturer"`
	DieID        uint64 `json:"dieId"`
	SpeedGrade   uint8  `json:"speedGrade"`
	Status       string `json:"status"`
	YearWeek     uint16 `json:"yearWeek"`
}

// BatchRequest is the body of POST /v1/verify/batch: each element of
// Chips is one complete chip file (the same JSON either backend's Save
// writes).
type BatchRequest struct {
	Chips []json.RawMessage `json:"chips"`
}

// BatchSummary aggregates a batch's verdicts.
type BatchSummary struct {
	Chips    int            `json:"chips"`
	Accepted int            `json:"accepted"`
	Refused  int            `json:"refused"`
	Failed   int            `json:"failed"`
	Verdicts map[string]int `json:"verdicts"`
}

// BatchResponse is the body answered by POST /v1/verify/batch. Results
// are indexed by input position regardless of completion order.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
	Summary BatchSummary      `json:"summary"`
}

// httpError carries a status code through the screening path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

func writeJSONBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		_, _ = io.WriteString(w, "\n")
	}
}

// beginRequest registers an in-flight verification unless the server is
// draining; the caller must invoke the returned done func.
func (s *Server) beginRequest() (done func(), ok bool) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.Draining() {
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, true
}

// bodyScratch recycles request-body read buffers across requests: the
// dominant body (one chip file, ~100KB of base64) is read into pooled
// capacity instead of a fresh io.ReadAll allocation chain per request.
var bodyScratch = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// readBody drains the request body under the configured cap into a
// pooled buffer. On success the caller owns raw until it calls release
// (typically deferred to the end of the handler); raw must not be
// retained past it. Everything handed onward — report bodies, cache
// entries, batch chip elements — is copied out of raw by construction.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (raw []byte, release func(), herr *httpError) {
	bp := bodyScratch.Get().(*[]byte)
	buf := (*bp)[:0]
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = buf[:0]
			bodyScratch.Put(bp)
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return nil, nil, &httpError{http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
			}
			return nil, nil, &httpError{http.StatusBadRequest, "reading request body: " + err.Error()}
		}
	}
	return buf, func() { *bp = buf[:0]; bodyScratch.Put(bp) }, nil
}

// sniffFormat scans the head of a chip file for the leading
// {"format":"..."} member without parsing the whole body. Both backends'
// Save writes the format member first with no escapes, so the fast scan
// answers for every file the CLI produces; anything else (the member
// elsewhere, escapes, non-objects) reports !ok and the caller falls back
// to a full unmarshal for its exact legacy error surface.
func sniffFormat(raw []byte) ([]byte, bool) {
	i := 0
	skipWS := func() {
		for i < len(raw) && (raw[i] == ' ' || raw[i] == '\t' || raw[i] == '\n' || raw[i] == '\r') {
			i++
		}
	}
	skipWS()
	if i >= len(raw) || raw[i] != '{' {
		return nil, false
	}
	i++
	skipWS()
	const key = `"format"`
	if len(raw)-i < len(key) || string(raw[i:i+len(key)]) != key {
		return nil, false
	}
	i += len(key)
	skipWS()
	if i >= len(raw) || raw[i] != ':' {
		return nil, false
	}
	i++
	skipWS()
	if i >= len(raw) || raw[i] != '"' {
		return nil, false
	}
	i++
	start := i
	for ; i < len(raw); i++ {
		if raw[i] == '\\' {
			return nil, false
		}
		if raw[i] == '"' {
			return raw[start:i], true
		}
	}
	return nil, false
}

// chipLoader bundles one reusable loader per backend; the server pools
// them so a steady request stream reloads chips into recycled arrays.
// The device a load returns aliases the loader's storage, so a loader
// checked out of the pool must not be returned until the device is no
// longer used (screenChip's scope).
type chipLoader struct {
	mcu   mcu.Loader
	nand  nand.Loader
	reram reram.Loader
}

// load sniffs the chip file's self-describing format field and
// dispatches to the matching backend loader, mirroring the flashmark
// CLI's loader so the service accepts exactly the files the CLI writes.
func (l *chipLoader) load(raw []byte) (device.Device, error) {
	format, ok := sniffFormat(raw)
	if !ok {
		var head struct {
			Format string `json:"format"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("not a chip file: %w", err)
		}
		format = []byte(head.Format)
	}
	if string(format) == "flashmark-nand-chip" {
		a, err := l.nand.Load(raw)
		if err != nil {
			return nil, err
		}
		return a, nil
	}
	if string(format) == reram.ChipFormat {
		d, err := l.reram.Load(raw)
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	d, err := l.mcu.Load(raw)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// screenChip runs one chip's bytes through parse -> decorate -> verify
// and renders the ChipReport. The encoded body, its decoded form, and
// the verdict come back for caching; failures come back as *httpError.
func (s *Server) screenChip(ctx context.Context, raw []byte, sum string) ([]byte, ChipReport, counterfeit.Verdict, *httpError) {
	ld := s.loaders.Get().(*chipLoader)
	defer s.loaders.Put(ld)
	dev, err := ld.load(raw)
	if err != nil {
		return nil, ChipReport{}, 0, &httpError{http.StatusBadRequest, err.Error()}
	}
	if s.cfg.Decorate != nil {
		dev = s.cfg.Decorate(dev)
	}
	res, err := s.cfg.Verifier.VerifyContext(ctx, dev)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.deadlines.Inc()
			return nil, ChipReport{}, 0, &httpError{http.StatusGatewayTimeout, "verification deadline exceeded"}
		}
		if errors.Is(err, context.Canceled) {
			return nil, ChipReport{}, 0, &httpError{statusClientClosedRequest, "client canceled the request"}
		}
		return nil, ChipReport{}, 0, &httpError{http.StatusUnprocessableEntity, "verification failed: " + err.Error()}
	}
	rep := ChipReport{
		SHA256:              sum,
		Part:                dev.PartName(),
		Seed:                dev.Seed(),
		Verdict:             res.Verdict.String(),
		Accepted:            res.Verdict.Accepted(),
		ReplicaDisagreement: res.ReplicaDisagreement,
		WornDataSegments:    res.WornDataSegments,
		SampledDataSegments: res.SampledDataSegments,
		DeviceTimeUs:        dev.Clock().Now().Microseconds(),
	}
	if res.DecodeErr == nil && res.Verdict != counterfeit.VerdictInconclusive {
		rep.Payload = &PayloadReport{
			Manufacturer: res.Payload.Manufacturer,
			DieID:        res.Payload.DieID,
			SpeedGrade:   res.Payload.SpeedGrade,
			Status:       res.Payload.Status.String(),
			YearWeek:     res.Payload.YearWeek,
		}
	}
	if res.FaultErr != nil {
		rep.Fault = res.FaultErr.Error()
	}
	body, err := encodeChipReport(&rep)
	if err != nil {
		return nil, ChipReport{}, 0, &httpError{http.StatusInternalServerError, "encoding report: " + err.Error()}
	}
	return body, rep, res.Verdict, nil
}

// statusClientClosedRequest is nginx's conventional code for a request
// the client abandoned; no RFC status fits better.
const statusClientClosedRequest = 499

// chipKey is the registry-cache key: the content hash of the chip bytes.
// The verifier policy is fixed per server, so the hash alone identifies
// the verdict.
func chipKey(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// screenCached serves one chip through the verdict cache: a hit skips
// parsing and verification entirely, a miss computes and populates.
// key must be chipKey(raw); callers compute it once and reuse it.
// Cached entries hold the physics verdict only — the provenance overlay
// (applyProvenance/batchProvenance) runs per request on top, and the
// caller counts the final verdict into the metrics.
func (s *Server) screenCached(ctx context.Context, key string, raw []byte) ([]byte, ChipReport, counterfeit.Verdict, bool, *httpError) {
	if body, rep, verdict, ok := s.cache.Get(key); ok {
		s.met.cacheHit.Inc()
		return body, rep, verdict, true, nil
	}
	s.met.cacheMiss.Inc()
	body, rep, verdict, herr := s.screenChip(ctx, raw, key)
	if herr != nil {
		return nil, ChipReport{}, 0, false, herr
	}
	s.cache.Put(key, body, rep, verdict)
	return body, rep, verdict, false, nil
}

func (s *Server) countChip(v counterfeit.Verdict) {
	s.met.chips.Inc()
	if c, ok := s.met.verdicts[v]; ok {
		c.Inc()
	}
	if v == counterfeit.VerdictInconclusive {
		s.met.faults.Inc()
	}
}

// handleVerify answers POST /v1/verify: one chip file in, one
// ChipReport out.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a chip file body")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, release, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	defer release()
	// A cache hit bypasses admission: it consumes no verification
	// worker. The provenance overlay still applies — escalation depends
	// on live registry state, which is exactly what the cache omits.
	key := chipKey(raw)
	if body, rep, verdict, ok := s.cache.Get(key); ok {
		s.met.cacheHit.Inc()
		body, verdict, herr := s.applyProvenance(body, &rep, verdict)
		if herr != nil {
			s.met.errors.Inc()
			writeError(w, herr.status, herr.msg)
			return
		}
		s.countChip(verdict)
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, rep, verdict, cached, herr := s.screenCached(ctx, key, raw)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	body, verdict, herr = s.applyProvenance(body, &rep, verdict)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	s.countChip(verdict)
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.logf("verify %s -> %s in %v", key[:12], verdict, s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, body)
}

// handleVerifyBatch answers POST /v1/verify/batch: a population of chip
// files fans out over the deterministic parallel engine; results are
// indexed by input order, so two identical batch requests produce
// byte-identical response bodies no matter how the fan-out is scheduled.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON batch body")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, release, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	defer release()
	// Unmarshal copies each chip element out of raw (RawMessage always
	// appends into its own storage), so the pooled body can be released
	// when the handler returns.
	var req BatchRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, "batch body must be {\"chips\":[...]}: "+err.Error())
		return
	}
	if len(req.Chips) == 0 {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, "batch contains no chips")
		return
	}
	// The whole batch occupies one admission slot; its internal fan-out
	// is bounded separately by BatchWorkers on the parallel engine.
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	type chipOutcome struct {
		body    []byte
		rep     ChipReport
		verdict counterfeit.Verdict
		failed  bool
	}
	pool := parallel.Pool{Workers: s.cfg.BatchWorkers}
	outcomes, err := parallel.MapContext(ctx, pool, len(req.Chips), func(i int) (chipOutcome, error) {
		key := chipKey(req.Chips[i])
		body, rep, verdict, _, herr := s.screenCached(ctx, key, req.Chips[i])
		if herr != nil {
			if herr.status == http.StatusGatewayTimeout || herr.status == statusClientClosedRequest {
				// A dead context ends the whole batch, not just this chip.
				return chipOutcome{}, ctx.Err()
			}
			rep := ChipReport{SHA256: key, Verdict: "ERROR", Error: herr.msg}
			eb, merr := encodeChipReport(&rep)
			if merr != nil {
				return chipOutcome{}, merr
			}
			return chipOutcome{body: eb, rep: rep, failed: true}, nil
		}
		return chipOutcome{body: body, rep: rep, verdict: verdict}, nil
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.deadlines.Inc()
			s.met.errors.Inc()
			writeError(w, http.StatusGatewayTimeout, "batch verification deadline exceeded")
			return
		}
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "batch verification failed: "+err.Error())
		return
	}
	// Registry post-pass: serial, in input order, after the parallel
	// physics fan-out — the response stays byte-deterministic no matter
	// how the fan-out was scheduled.
	bodies := make([][]byte, len(outcomes))
	reps := make([]ChipReport, len(outcomes))
	verdicts := make([]counterfeit.Verdict, len(outcomes))
	failed := make([]bool, len(outcomes))
	for i, o := range outcomes {
		bodies[i], reps[i], verdicts[i], failed[i] = o.body, o.rep, o.verdict, o.failed
	}
	if herr := s.batchProvenance(bodies, reps, verdicts, failed); herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	summary := BatchSummary{Chips: len(outcomes), Verdicts: make(map[string]int)}
	for i := range outcomes {
		if failed[i] {
			summary.Failed++
			continue
		}
		s.countChip(verdicts[i])
		summary.Verdicts[verdicts[i].String()]++
		if verdicts[i].Accepted() {
			summary.Accepted++
		} else {
			summary.Refused++
		}
	}
	body := appendBatchResponse(nil, bodies, summary, nil)
	s.logf("batch of %d -> %d accepted, %d refused, %d failed in %v",
		summary.Chips, summary.Accepted, summary.Refused,
		summary.Failed, s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, body)
}

// handleHealthz answers liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSONBody(w, http.StatusOK, []byte(`{"status":"ok"}`))
}

// handleReadyz answers readiness: 503 once draining so load balancers
// stop routing new work here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSONBody(w, http.StatusServiceUnavailable, []byte(`{"status":"draining"}`))
		return
	}
	writeJSONBody(w, http.StatusOK, []byte(`{"status":"ready"}`))
}
