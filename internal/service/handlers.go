package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/parallel"
)

// ChipReport is the verdict JSON for one screened chip. Fields are
// derived only from the chip bytes and the server's verifier policy, so
// the report for a given chip file is byte-stable across requests and
// cacheable by content hash.
type ChipReport struct {
	SHA256              string         `json:"sha256"`
	Part                string         `json:"part,omitempty"`
	Seed                uint64         `json:"seed,omitempty"`
	Verdict             string         `json:"verdict"`
	Accepted            bool           `json:"accepted"`
	Payload             *PayloadReport `json:"payload,omitempty"`
	ReplicaDisagreement float64        `json:"replicaDisagreement"`
	WornDataSegments    int            `json:"wornDataSegments"`
	SampledDataSegments int            `json:"sampledDataSegments"`
	Fault               string         `json:"fault,omitempty"`
	DeviceTimeUs        int64          `json:"deviceTimeUs"`
	// Provenance explains a registry escalation: why a physics-GENUINE
	// chip was answered DUPLICATE-ID. Only set when the server runs
	// with a fleet registry; escalated reports are not cached.
	Provenance string `json:"provenance,omitempty"`
	Error      string `json:"error,omitempty"`
}

// PayloadReport is the decoded watermark payload, present when the chip
// carried a structurally valid watermark.
type PayloadReport struct {
	Manufacturer string `json:"manufacturer"`
	DieID        uint64 `json:"dieId"`
	SpeedGrade   uint8  `json:"speedGrade"`
	Status       string `json:"status"`
	YearWeek     uint16 `json:"yearWeek"`
}

// BatchRequest is the body of POST /v1/verify/batch: each element of
// Chips is one complete chip file (the same JSON either backend's Save
// writes).
type BatchRequest struct {
	Chips []json.RawMessage `json:"chips"`
}

// BatchSummary aggregates a batch's verdicts.
type BatchSummary struct {
	Chips    int            `json:"chips"`
	Accepted int            `json:"accepted"`
	Refused  int            `json:"refused"`
	Failed   int            `json:"failed"`
	Verdicts map[string]int `json:"verdicts"`
}

// BatchResponse is the body answered by POST /v1/verify/batch. Results
// are indexed by input position regardless of completion order.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
	Summary BatchSummary      `json:"summary"`
}

// httpError carries a status code through the screening path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

func writeJSONBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		_, _ = io.WriteString(w, "\n")
	}
}

// beginRequest registers an in-flight verification unless the server is
// draining; the caller must invoke the returned done func.
func (s *Server) beginRequest() (done func(), ok bool) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.Draining() {
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, true
}

// readBody drains the request body under the configured cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *httpError) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, &httpError{http.StatusBadRequest, "reading request body: " + err.Error()}
	}
	return raw, nil
}

// parseChip sniffs the chip file's self-describing format field and
// dispatches to the matching backend loader, mirroring the flashmark
// CLI's loader so the service accepts exactly the files the CLI writes.
func parseChip(raw []byte) (device.Device, error) {
	var head struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, fmt.Errorf("not a chip file: %w", err)
	}
	switch head.Format {
	case "flashmark-nand-chip":
		return nand.LoadAdapter(bytes.NewReader(raw))
	default:
		return mcu.LoadDevice(bytes.NewReader(raw))
	}
}

// screenChip runs one chip's bytes through parse -> decorate -> verify
// and renders the ChipReport. The report bytes plus verdict come back
// for caching; failures come back as *httpError.
func (s *Server) screenChip(ctx context.Context, raw []byte, sum string) ([]byte, counterfeit.Verdict, *httpError) {
	dev, err := parseChip(raw)
	if err != nil {
		return nil, 0, &httpError{http.StatusBadRequest, err.Error()}
	}
	if s.cfg.Decorate != nil {
		dev = s.cfg.Decorate(dev)
	}
	res, err := s.cfg.Verifier.VerifyContext(ctx, dev)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.deadlines.Inc()
			return nil, 0, &httpError{http.StatusGatewayTimeout, "verification deadline exceeded"}
		}
		if errors.Is(err, context.Canceled) {
			return nil, 0, &httpError{statusClientClosedRequest, "client canceled the request"}
		}
		return nil, 0, &httpError{http.StatusUnprocessableEntity, "verification failed: " + err.Error()}
	}
	rep := ChipReport{
		SHA256:              sum,
		Part:                dev.PartName(),
		Seed:                dev.Seed(),
		Verdict:             res.Verdict.String(),
		Accepted:            res.Verdict.Accepted(),
		ReplicaDisagreement: res.ReplicaDisagreement,
		WornDataSegments:    res.WornDataSegments,
		SampledDataSegments: res.SampledDataSegments,
		DeviceTimeUs:        dev.Clock().Now().Microseconds(),
	}
	if res.DecodeErr == nil && res.Verdict != counterfeit.VerdictInconclusive {
		rep.Payload = &PayloadReport{
			Manufacturer: res.Payload.Manufacturer,
			DieID:        res.Payload.DieID,
			SpeedGrade:   res.Payload.SpeedGrade,
			Status:       res.Payload.Status.String(),
			YearWeek:     res.Payload.YearWeek,
		}
	}
	if res.FaultErr != nil {
		rep.Fault = res.FaultErr.Error()
	}
	body, err := json.Marshal(rep)
	if err != nil {
		return nil, 0, &httpError{http.StatusInternalServerError, "encoding report: " + err.Error()}
	}
	return body, res.Verdict, nil
}

// statusClientClosedRequest is nginx's conventional code for a request
// the client abandoned; no RFC status fits better.
const statusClientClosedRequest = 499

// chipKey is the registry-cache key: the content hash of the chip bytes.
// The verifier policy is fixed per server, so the hash alone identifies
// the verdict.
func chipKey(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// screenCached serves one chip through the verdict cache: a hit skips
// parsing and verification entirely, a miss computes and populates.
// Cached entries hold the physics verdict only — the provenance overlay
// (applyProvenance/batchProvenance) runs per request on top, and the
// caller counts the final verdict into the metrics.
func (s *Server) screenCached(ctx context.Context, raw []byte) ([]byte, counterfeit.Verdict, bool, *httpError) {
	key := chipKey(raw)
	if body, verdict, ok := s.cache.Get(key); ok {
		s.met.cacheHit.Inc()
		return body, verdict, true, nil
	}
	s.met.cacheMiss.Inc()
	body, verdict, herr := s.screenChip(ctx, raw, key)
	if herr != nil {
		return nil, 0, false, herr
	}
	s.cache.Put(key, body, verdict)
	return body, verdict, false, nil
}

func (s *Server) countChip(v counterfeit.Verdict) {
	s.met.chips.Inc()
	if c, ok := s.met.verdicts[v]; ok {
		c.Inc()
	}
	if v == counterfeit.VerdictInconclusive {
		s.met.faults.Inc()
	}
}

// handleVerify answers POST /v1/verify: one chip file in, one
// ChipReport out.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a chip file body")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	// A cache hit bypasses admission: it consumes no verification
	// worker. The provenance overlay still applies — escalation depends
	// on live registry state, which is exactly what the cache omits.
	key := chipKey(raw)
	if body, verdict, ok := s.cache.Get(key); ok {
		s.met.cacheHit.Inc()
		body, verdict, herr := s.applyProvenance(body, verdict)
		if herr != nil {
			s.met.errors.Inc()
			writeError(w, herr.status, herr.msg)
			return
		}
		s.countChip(verdict)
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, verdict, cached, herr := s.screenCached(ctx, raw)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	body, verdict, herr = s.applyProvenance(body, verdict)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	s.countChip(verdict)
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.logf("verify %s -> %s in %v", key[:12], verdict, s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, body)
}

// handleVerifyBatch answers POST /v1/verify/batch: a population of chip
// files fans out over the deterministic parallel engine; results are
// indexed by input order, so two identical batch requests produce
// byte-identical response bodies no matter how the fan-out is scheduled.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON batch body")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, "batch body must be {\"chips\":[...]}: "+err.Error())
		return
	}
	if len(req.Chips) == 0 {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, "batch contains no chips")
		return
	}
	// The whole batch occupies one admission slot; its internal fan-out
	// is bounded separately by BatchWorkers on the parallel engine.
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	type chipOutcome struct {
		body    []byte
		verdict counterfeit.Verdict
		failed  bool
	}
	pool := parallel.Pool{Workers: s.cfg.BatchWorkers}
	outcomes, err := parallel.MapContext(ctx, pool, len(req.Chips), func(i int) (chipOutcome, error) {
		body, verdict, _, herr := s.screenCached(ctx, req.Chips[i])
		if herr != nil {
			if herr.status == http.StatusGatewayTimeout || herr.status == statusClientClosedRequest {
				// A dead context ends the whole batch, not just this chip.
				return chipOutcome{}, ctx.Err()
			}
			rep := ChipReport{SHA256: chipKey(req.Chips[i]), Verdict: "ERROR", Error: herr.msg}
			eb, merr := json.Marshal(rep)
			if merr != nil {
				return chipOutcome{}, merr
			}
			return chipOutcome{body: eb, failed: true}, nil
		}
		return chipOutcome{body: body, verdict: verdict}, nil
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.deadlines.Inc()
			s.met.errors.Inc()
			writeError(w, http.StatusGatewayTimeout, "batch verification deadline exceeded")
			return
		}
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "batch verification failed: "+err.Error())
		return
	}
	// Registry post-pass: serial, in input order, after the parallel
	// physics fan-out — the response stays byte-deterministic no matter
	// how the fan-out was scheduled.
	bodies := make([][]byte, len(outcomes))
	verdicts := make([]counterfeit.Verdict, len(outcomes))
	failed := make([]bool, len(outcomes))
	for i, o := range outcomes {
		bodies[i], verdicts[i], failed[i] = o.body, o.verdict, o.failed
	}
	if herr := s.batchProvenance(bodies, verdicts, failed); herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	resp := BatchResponse{
		Results: make([]json.RawMessage, len(outcomes)),
		Summary: BatchSummary{Chips: len(outcomes), Verdicts: make(map[string]int)},
	}
	for i := range outcomes {
		resp.Results[i] = bodies[i]
		if failed[i] {
			resp.Summary.Failed++
			continue
		}
		s.countChip(verdicts[i])
		resp.Summary.Verdicts[verdicts[i].String()]++
		if verdicts[i].Accepted() {
			resp.Summary.Accepted++
		} else {
			resp.Summary.Refused++
		}
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "encoding batch response: "+merr.Error())
		return
	}
	s.logf("batch of %d -> %d accepted, %d refused, %d failed in %v",
		resp.Summary.Chips, resp.Summary.Accepted, resp.Summary.Refused,
		resp.Summary.Failed, s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, body)
}

// handleHealthz answers liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSONBody(w, http.StatusOK, []byte(`{"status":"ok"}`))
}

// handleReadyz answers readiness: 503 once draining so load balancers
// stop routing new work here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSONBody(w, http.StatusServiceUnavailable, []byte(`{"status":"draining"}`))
		return
	}
	writeJSONBody(w, http.StatusOK, []byte(`{"status":"ready"}`))
}
